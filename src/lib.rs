//! # paxraft
//!
//! Umbrella crate for the reproduction of *"On the Parallels between Paxos
//! and Raft, and how to Port Optimizations"* (Wang et al., PODC 2019).
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can use a single dependency:
//!
//! - [`spec`] — the TLA+-like specification DSL, explicit-state model
//!   checker, refinement checker, and the automatic optimization-porting
//!   engine (Section 4 of the paper), together with specs of MultiPaxos,
//!   Raft*, PQL, Raft*-PQL, Coordinated Paxos (Mencius) and Coordinated
//!   Raft* (Appendices B.1–B.6).
//! - [`sim`] — a deterministic discrete-event simulator with a 5-region
//!   geo-latency model, NIC bandwidth queues and CPU service queues,
//!   substituting for the paper's EC2 testbed.
//! - [`core`] — runnable replicas: MultiPaxos, Raft, Raft*, Raft*-PQL
//!   (plus a Leader-Lease baseline) and Raft*-Mencius, a replicated KV
//!   state machine, closed-loop clients and a cluster harness.
//! - [`workload`] — the YCSB-like workload generator, latency/throughput
//!   metrics and a linearizability checker.
//!
//! ## Quickstart
//!
//! ```
//! use paxraft::core::harness::{Cluster, ProtocolKind};
//! use paxraft::core::kv::Op;
//!
//! let mut cluster = Cluster::builder(ProtocolKind::RaftStar).seed(7).build();
//! cluster.elect_leader();
//! let v = cluster.submit_and_wait(Op::Put { key: 1, value: b"hello".to_vec() });
//! assert!(v.is_ok());
//! ```
pub use paxraft_core as core;
pub use paxraft_sim as sim;
pub use paxraft_spec as spec;
pub use paxraft_workload as workload;
