//! Randomized property tests on core data structures and protocol
//! invariants.
//!
//! These were originally written against `proptest`; the workspace is
//! dependency-free, so each property is exercised over many cases drawn
//! from the deterministic [`SimRng`] instead. Runs are reproducible by
//! construction, and assertion messages carry the failing case index.

use paxraft::core::kv::{CmdId, Command, KvStore};
use paxraft::core::log::{Entry, Log};
use paxraft::core::replicate::Replicator;
use paxraft::core::types::{quorum, NodeId, Slot, Term};
use paxraft::sim::rng::SimRng;
use paxraft::sim::time::{SimDuration, SimTime};
use paxraft::workload::linearize::{check_register, Action, OpRecord};
use paxraft::workload::metrics::LatencyRecorder;

const CASES: u64 = 200;

fn entry(term: u64, key: u64) -> Entry {
    Entry {
        term: Term(term),
        bal: Term(term),
        cmd: Command::put(
            CmdId {
                client: 1,
                seq: key + 1,
            },
            key,
            vec![0; 8],
        ),
    }
}

/// Raft* `replace_suffix` never loses the prefix below `prev` and
/// always yields `prev + suffix.len()` entries.
#[test]
fn replace_suffix_preserves_prefix() {
    let mut rng = SimRng::new(0xA1);
    for case in 0..CASES {
        let base = rng.gen_range_inclusive(1, 19) as usize;
        let prev = (rng.gen_range(20) as usize).min(base);
        let add = rng.gen_range_inclusive(1, 19) as usize;
        let mut log = Log::new();
        for i in 0..base {
            log.append(entry(1, i as u64));
        }
        let suffix: Vec<Entry> = (0..add.max(base - prev))
            .map(|i| entry(2, 100 + i as u64))
            .collect();
        let before: Vec<_> = (1..=prev as u64)
            .map(|s| log.get(Slot(s)).cloned())
            .collect();
        log.replace_suffix(Slot(prev as u64), suffix.clone());
        assert_eq!(log.len(), prev + suffix.len(), "case {case}");
        for (i, old) in before.into_iter().enumerate() {
            assert_eq!(log.get(Slot(i as u64 + 1)).cloned(), old, "case {case}");
        }
    }
}

/// `set_bal_upto` rewrites exactly the covered prefix and never the
/// entry terms.
#[test]
fn bal_rewrite_covers_exactly_prefix() {
    let mut rng = SimRng::new(0xA2);
    for case in 0..CASES {
        let len = rng.gen_range_inclusive(1, 29) as usize;
        let upto = rng.gen_range(40);
        let t = rng.gen_range_inclusive(3, 8);
        let mut log = Log::new();
        for i in 0..len {
            log.append(entry(1 + (i as u64 % 2), i as u64));
        }
        let terms: Vec<_> = log.iter().map(|(_, e)| e.term).collect();
        log.set_bal_upto(Slot(upto), Term(t));
        for (s, e) in log.iter() {
            if s.0 <= upto {
                assert_eq!(e.bal, Term(t), "case {case}");
            } else {
                assert!(e.bal != Term(t) || t <= 2, "case {case}");
            }
            assert_eq!(
                e.term,
                terms[s.0 as usize - 1],
                "terms untouched, case {case}"
            );
        }
    }
}

/// The replicator's quorum match is monotone in acknowledgements and
/// never exceeds the max ack.
#[test]
fn quorum_match_is_sound() {
    let mut rng = SimRng::new(0xA3);
    for case in 0..CASES {
        let n_acks = rng.gen_range_inclusive(1, 39) as usize;
        let mut r = Replicator::new(5);
        let mut prev = Slot::NONE;
        for _ in 0..n_acks {
            let p = rng.gen_range_inclusive(1, 4) as u32;
            let idx = rng.gen_range_inclusive(1, 49);
            r.on_ack(NodeId(p), Slot(idx));
            let q = r.kth_largest_match(2, NodeId(0));
            assert!(q >= prev, "monotone, case {case}");
            prev = q;
            // Soundness: at least 2 followers acked >= q.
            let count = (1..5u32).filter(|&x| r.match_index(NodeId(x)) >= q).count();
            assert!(q == Slot::NONE || count >= 2, "case {case}");
        }
    }
}

/// Ballot encoding round-trips owner and round for any cluster size.
#[test]
fn ballot_encoding_roundtrip() {
    let mut rng = SimRng::new(0xA4);
    for case in 0..CASES {
        let n = rng.gen_range_inclusive(1, 7) as usize;
        let node = rng.gen_range(n as u64) as u32;
        let round = rng.gen_range(1000);
        let t = Term::encode(round, NodeId(node), n);
        assert_eq!(t.owner(n), NodeId(node), "case {case}");
        assert_eq!(t.round(n), round, "case {case}");
        let nx = t.next_for(NodeId(node), n);
        assert!(nx > t, "case {case}");
        assert_eq!(nx.owner(n), NodeId(node), "case {case}");
    }
}

/// Quorums of any odd cluster overlap: 2*quorum(n) > n.
#[test]
fn quorums_intersect() {
    for k in 0usize..10 {
        let n = 2 * k + 1;
        assert!(2 * quorum(n) > n);
    }
}

/// KV session dedup: replaying a command stream with duplicates
/// injected never changes the final state.
#[test]
fn kv_replay_is_idempotent() {
    let mut rng = SimRng::new(0xA5);
    for case in 0..CASES {
        let n_ops = rng.gen_range_inclusive(1, 29) as usize;
        let cmds: Vec<Command> = (0..n_ops)
            .map(|i| {
                let k = rng.gen_range(5);
                let c = rng.gen_range(3) as u32;
                Command::put(
                    CmdId {
                        client: c,
                        seq: i as u64 + 1,
                    },
                    k,
                    vec![0; 8],
                )
            })
            .collect();
        let mut kv1 = KvStore::new();
        for c in &cmds {
            kv1.apply(c);
        }
        // Replay with duplicates injected after every op.
        let mut kv2 = KvStore::new();
        for c in &cmds {
            kv2.apply(c);
            kv2.apply(c); // duplicate
        }
        for k in 0..5u64 {
            assert_eq!(kv1.read_local(k), kv2.read_local(k), "case {case}");
        }
    }
}

/// Sequential histories (each op completes before the next begins)
/// with correct read values are always linearizable.
#[test]
fn sequential_histories_linearizable() {
    let mut rng = SimRng::new(0xA6);
    for _ in 0..50 {
        let n_writes = rng.gen_range_inclusive(1, 39) as usize;
        let mut history = Vec::new();
        let mut t = 0u64;
        for i in 0..n_writes {
            let vid = i as u64 + 1;
            history.push(OpRecord {
                client: 0,
                key: 1,
                action: Action::Write(vid),
                invoke_ns: t,
                respond_ns: t + 1,
            });
            t += 2;
            history.push(OpRecord {
                client: 1,
                key: 1,
                action: Action::Read(Some(vid)),
                invoke_ns: t,
                respond_ns: t + 1,
            });
            t += 2;
        }
        assert!(check_register(&history, 1 << 20).is_ok());
    }
}

/// A read returning a never-written value is never linearizable.
#[test]
fn phantom_reads_rejected() {
    for n_writes in 1usize..10 {
        let mut history: Vec<OpRecord> = (0..n_writes)
            .map(|i| OpRecord {
                client: i,
                key: 1,
                action: Action::Write(i as u64 + 1),
                invoke_ns: (i * 2) as u64,
                respond_ns: (i * 2 + 1) as u64,
            })
            .collect();
        history.push(OpRecord {
            client: 99,
            key: 1,
            action: Action::Read(Some(777)),
            invoke_ns: 1000,
            respond_ns: 1001,
        });
        assert!(check_register(&history, 1 << 20).is_err());
    }
}

/// Latency percentiles are monotone in the percentile and bounded by
/// the extreme samples.
#[test]
fn percentiles_monotone() {
    let mut rng = SimRng::new(0xA7);
    for case in 0..CASES {
        let n = rng.gen_range_inclusive(1, 199) as usize;
        let samples: Vec<u64> = (0..n)
            .map(|_| rng.gen_range_inclusive(1, 999_999_999))
            .collect();
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record_ns(s);
        }
        let p50 = rec.percentile_ms(50.0).unwrap();
        let p90 = rec.percentile_ms(90.0).unwrap();
        let p99 = rec.percentile_ms(99.0).unwrap();
        assert!(p50 <= p90 && p90 <= p99, "case {case}");
        let min = *samples.iter().min().unwrap() as f64 / 1e6;
        let max = *samples.iter().max().unwrap() as f64 / 1e6;
        assert!(p50 >= min && p99 <= max, "case {case}");
    }
}

/// The deterministic RNG produces identical streams for equal seeds
/// and in-range values for gen_range.
#[test]
fn rng_deterministic_and_bounded() {
    let mut seeder = SimRng::new(0xA8);
    for _ in 0..CASES {
        let seed = seeder.next_u64();
        let bound = seeder.gen_range_inclusive(1, 999);
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            let x = a.gen_range(bound);
            assert_eq!(x, b.gen_range(bound));
            assert!(x < bound);
        }
    }
}

/// Virtual-time arithmetic: since() inverts addition.
#[test]
fn time_arithmetic_roundtrip() {
    let mut rng = SimRng::new(0xA9);
    for _ in 0..CASES {
        let base = rng.gen_range(1_000_000_000);
        let d = rng.gen_range(1_000_000_000);
        let t = SimTime::from_nanos(base);
        let dur = SimDuration::from_nanos(d);
        assert_eq!((t + dur).since(t), dur);
    }
}
