//! Property-based tests (proptest) on core data structures and
//! protocol invariants.

use proptest::prelude::*;

use paxraft::core::kv::{CmdId, Command, KvStore};
use paxraft::core::log::{Entry, Log};
use paxraft::core::replicate::Replicator;
use paxraft::core::types::{quorum, NodeId, Slot, Term};
use paxraft::sim::rng::SimRng;
use paxraft::sim::time::{SimDuration, SimTime};
use paxraft::workload::linearize::{check_register, Action, OpRecord};
use paxraft::workload::metrics::LatencyRecorder;

fn entry(term: u64, key: u64) -> Entry {
    Entry {
        term: Term(term),
        bal: Term(term),
        cmd: Command::put(CmdId { client: 1, seq: key + 1 }, key, vec![0; 8]),
    }
}

proptest! {
    /// Raft* `replace_suffix` never loses the prefix below `prev` and
    /// always yields `prev + suffix.len()` entries.
    #[test]
    fn replace_suffix_preserves_prefix(
        base in 1usize..20,
        prev in 0usize..20,
        add in 1usize..20,
    ) {
        let prev = prev.min(base);
        let mut log = Log::new();
        for i in 0..base {
            log.append(entry(1, i as u64));
        }
        let suffix: Vec<Entry> = (0..add.max(base - prev)).map(|i| entry(2, 100 + i as u64)).collect();
        let before: Vec<_> = (1..=prev as u64).map(|s| log.get(Slot(s)).cloned()).collect();
        log.replace_suffix(Slot(prev as u64), suffix.clone());
        prop_assert_eq!(log.len(), prev + suffix.len());
        for (i, old) in before.into_iter().enumerate() {
            prop_assert_eq!(log.get(Slot(i as u64 + 1)).cloned(), old);
        }
    }

    /// `set_bal_upto` rewrites exactly the covered prefix and never the
    /// entry terms.
    #[test]
    fn bal_rewrite_covers_exactly_prefix(len in 1usize..30, upto in 0u64..40, t in 3u64..9) {
        let mut log = Log::new();
        for i in 0..len {
            log.append(entry(1 + (i as u64 % 2), i as u64));
        }
        let terms: Vec<_> = log.iter().map(|(_, e)| e.term).collect();
        log.set_bal_upto(Slot(upto), Term(t));
        for (s, e) in log.iter() {
            if s.0 <= upto {
                prop_assert_eq!(e.bal, Term(t));
            } else {
                prop_assert!(e.bal != Term(t) || t <= 2);
            }
            prop_assert_eq!(e.term, terms[s.0 as usize - 1], "terms untouched");
        }
    }

    /// The replicator's quorum match is monotone in acknowledgements and
    /// never exceeds the max ack.
    #[test]
    fn quorum_match_is_sound(acks in proptest::collection::vec((1u32..5, 1u64..50), 1..40)) {
        let mut r = Replicator::new(5);
        let mut prev = Slot::NONE;
        for (p, idx) in acks {
            r.on_ack(NodeId(p), Slot(idx));
            let q = r.kth_largest_match(2, NodeId(0));
            prop_assert!(q >= prev, "monotone");
            prev = q;
            // Soundness: at least 2 followers acked >= q.
            let count = (1..5u32).filter(|&x| r.match_index(NodeId(x)) >= q).count();
            prop_assert!(q == Slot::NONE || count >= 2);
        }
    }

    /// Ballot encoding round-trips owner and round for any cluster size.
    #[test]
    fn ballot_encoding_roundtrip(round in 0u64..1000, node in 0u32..7, n in 1usize..8) {
        prop_assume!((node as usize) < n);
        let t = Term::encode(round, NodeId(node), n);
        prop_assert_eq!(t.owner(n), NodeId(node));
        prop_assert_eq!(t.round(n), round);
        let nx = t.next_for(NodeId(node), n);
        prop_assert!(nx > t);
        prop_assert_eq!(nx.owner(n), NodeId(node));
    }

    /// Quorums of any odd cluster overlap: 2*quorum(n) > n.
    #[test]
    fn quorums_intersect(k in 0usize..10) {
        let n = 2 * k + 1;
        prop_assert!(2 * quorum(n) > n);
    }

    /// KV session dedup: replaying any prefix of a command stream never
    /// changes the final state.
    #[test]
    fn kv_replay_is_idempotent(ops in proptest::collection::vec((0u64..5, 0u64..3), 1..30)) {
        let cmds: Vec<Command> = ops
            .iter()
            .enumerate()
            .map(|(i, (k, c))| Command::put(CmdId { client: *c as u32, seq: i as u64 + 1 }, *k, vec![0; 8]))
            .collect();
        let mut kv1 = KvStore::new();
        for c in &cmds {
            kv1.apply(c);
        }
        // Replay with duplicates injected after every op.
        let mut kv2 = KvStore::new();
        for c in &cmds {
            kv2.apply(c);
            kv2.apply(c); // duplicate
        }
        for k in 0..5u64 {
            prop_assert_eq!(kv1.read_local(k), kv2.read_local(k));
        }
    }

    /// Sequential histories (each op completes before the next begins)
    /// with correct read values are always linearizable.
    #[test]
    fn sequential_histories_linearizable(writes in proptest::collection::vec(0u64..100, 1..40)) {
        let mut history = Vec::new();
        let mut t = 0u64;
        for (i, _) in writes.iter().enumerate() {
            let vid = i as u64 + 1;
            history.push(OpRecord {
                client: 0,
                key: 1,
                action: Action::Write(vid),
                invoke_ns: t,
                respond_ns: t + 1,
            });
            t += 2;
            history.push(OpRecord {
                client: 1,
                key: 1,
                action: Action::Read(Some(vid)),
                invoke_ns: t,
                respond_ns: t + 1,
            });
            t += 2;
        }
        prop_assert!(check_register(&history, 1 << 20).is_ok());
    }

    /// A read returning a never-written value is never linearizable.
    #[test]
    fn phantom_reads_rejected(n_writes in 1usize..10) {
        let mut history: Vec<OpRecord> = (0..n_writes)
            .map(|i| OpRecord {
                client: i,
                key: 1,
                action: Action::Write(i as u64 + 1),
                invoke_ns: (i * 2) as u64,
                respond_ns: (i * 2 + 1) as u64,
            })
            .collect();
        history.push(OpRecord {
            client: 99,
            key: 1,
            action: Action::Read(Some(777)),
            invoke_ns: 1000,
            respond_ns: 1001,
        });
        prop_assert!(check_register(&history, 1 << 20).is_err());
    }

    /// Latency percentiles are monotone in the percentile and bounded by
    /// the extreme samples.
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(1u64..1_000_000_000, 1..200)) {
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record_ns(s);
        }
        let p50 = rec.percentile_ms(50.0).unwrap();
        let p90 = rec.percentile_ms(90.0).unwrap();
        let p99 = rec.percentile_ms(99.0).unwrap();
        prop_assert!(p50 <= p90 && p90 <= p99);
        let min = *samples.iter().min().unwrap() as f64 / 1e6;
        let max = *samples.iter().max().unwrap() as f64 / 1e6;
        prop_assert!(p50 >= min && p99 <= max);
    }

    /// The deterministic RNG produces identical streams for equal seeds
    /// and in-range values for gen_range.
    #[test]
    fn rng_deterministic_and_bounded(seed in any::<u64>(), bound in 1u64..1000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            let x = a.gen_range(bound);
            prop_assert_eq!(x, b.gen_range(bound));
            prop_assert!(x < bound);
        }
    }

    /// Virtual-time arithmetic: since() inverts addition.
    #[test]
    fn time_arithmetic_roundtrip(base in 0u64..1_000_000_000, d in 0u64..1_000_000_000) {
        let t = SimTime::from_nanos(base);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t + dur).since(t), dur);
    }
}
