//! End-to-end integration of the Section-4 porting pipeline through the
//! public API: both case studies, from delta definition to mechanically
//! checked ported protocol.

use paxraft::spec::check::{explore, Invariant, Limits};
use paxraft::spec::port::{extended_map, port, projection_map, remap_expr};
use paxraft::spec::refine::check_refinement;
use paxraft::spec::specs::{kvlog, mencius, multipaxos, pql, raftstar};

#[test]
fn figure4_pipeline_end_to_end() {
    let a = kvlog::kv_store();
    let b = kvlog::log_store();
    let delta = kvlog::size_delta();
    let map = kvlog::port_map();
    delta.check_non_mutating(&a).expect("non-mutating");
    let bd = port(&a, &delta, &b, &map).expect("port");
    let ad = delta.apply_to(&a);
    let ext = extended_map(&a, &b, &delta, &map.state_map);
    let r1 = check_refinement(&bd, &ad, &ext, Limits::default()).expect("B∆ ⇒ A∆");
    assert!(r1.exhausted);
    let r2 = check_refinement(&bd, &b, &projection_map(&b), Limits::default()).expect("B∆ ⇒ B");
    assert!(r2.exhausted);
}

#[test]
fn pql_port_pipeline_end_to_end() {
    let cfg = multipaxos::MpConfig {
        max_ballot: 2,
        ..Default::default()
    };
    let mp = multipaxos::spec(&cfg);
    let rs = raftstar::spec(&cfg);
    let d = pql::delta(&cfg);
    d.check_non_mutating(&mp).expect("PQL non-mutating");
    let map = pql::raftstar_port_map(&cfg);
    let rql = port(&mp, &d, &rs, &map).expect("port");
    // The generated protocol satisfies the ported lease invariant.
    let inv = remap_expr(&mp, &rs, &map.state_map, &pql::lease_inv(&cfg));
    let report = explore(
        &rql,
        &[Invariant::new("LeaseInv", inv)],
        Limits::states(5_000),
    );
    assert!(report.ok(), "{:?}", report.verdict);
}

#[test]
fn mencius_port_pipeline_end_to_end() {
    let cfg = multipaxos::MpConfig {
        max_ballot: 3,
        values: vec![1, mencius::NOOP],
        ..Default::default()
    };
    let mp = multipaxos::spec(&cfg);
    let rs = raftstar::spec(&cfg);
    let d = mencius::delta(&cfg);
    d.check_non_mutating(&mp).expect("Mencius non-mutating");
    let map = mencius::raftstar_port_map(&cfg);
    let coor = port(&mp, &d, &rs, &map).expect("port");
    let inv = remap_expr(&mp, &rs, &map.state_map, &mencius::skip_safety_inv(&cfg));
    let report = explore(
        &coor,
        &[Invariant::new("SkipSafety", inv)],
        Limits::states(5_000),
    );
    assert!(report.ok(), "{:?}", report.verdict);
}

#[test]
fn mutating_deltas_are_rejected() {
    // Sanity for the Section-4.2 gate: a delta that writes an A variable
    // must be refused by the porting engine.
    let a = kvlog::kv_store();
    let b = kvlog::log_store();
    let mut bad = kvlog::size_delta();
    bad.modified[0]
        .extra_updates
        .push((0, paxraft::spec::expr::int(0))); // writes A's `table`
    let err = port(&a, &bad, &b, &kvlog::port_map()).unwrap_err();
    assert!(err.contains("non-mutating"), "{err}");
}
