//! Fault-injection integration tests: message loss, leader crashes and
//! partitions against the full protocol stack.

use paxraft::core::harness::{Cluster, ProtocolKind};
use paxraft::core::kv::{Op, Reply};
use paxraft::core::raftstar::RaftStarReplica;
use paxraft::sim::time::{SimDuration, SimTime};
use paxraft::workload::generator::WorkloadConfig;

#[test]
fn raft_survives_five_percent_message_loss() {
    let mut cluster = Cluster::builder(ProtocolKind::Raft)
        .clients_per_region(3)
        .workload(WorkloadConfig { read_fraction: 0.5, ..Default::default() })
        .seed(51)
        .build();
    cluster.sim.set_drop_rate_at(0.05, SimTime::from_millis(1));
    cluster.elect_leader();
    let report = cluster.run_measurement(
        SimDuration::from_secs(2),
        SimDuration::from_secs(6),
        SimDuration::from_secs(1),
    );
    assert!(
        report.throughput_ops > 10.0,
        "retransmission keeps the cluster live under loss: {}",
        report.throughput_ops
    );
}

#[test]
fn raftstar_survives_five_percent_message_loss() {
    let mut cluster = Cluster::builder(ProtocolKind::RaftStar)
        .clients_per_region(3)
        .workload(WorkloadConfig { read_fraction: 0.5, ..Default::default() })
        .seed(53)
        .build();
    cluster.sim.set_drop_rate_at(0.05, SimTime::from_millis(1));
    cluster.elect_leader();
    let report = cluster.run_measurement(
        SimDuration::from_secs(2),
        SimDuration::from_secs(6),
        SimDuration::from_secs(1),
    );
    assert!(report.throughput_ops > 10.0, "got {}", report.throughput_ops);
}

#[test]
fn mencius_survives_message_loss() {
    let mut cluster = Cluster::builder(ProtocolKind::RaftStarMencius)
        .clients_per_region(3)
        .workload(WorkloadConfig { read_fraction: 0.0, ..Default::default() })
        .seed(57)
        .build();
    // Mencius coordination relies on more messages; 2% loss.
    cluster.sim.set_drop_rate_at(0.02, SimTime::from_millis(1));
    cluster.elect_leader();
    let report = cluster.run_measurement(
        SimDuration::from_secs(2),
        SimDuration::from_secs(6),
        SimDuration::from_secs(1),
    );
    assert!(report.throughput_ops > 5.0, "got {}", report.throughput_ops);
}

#[test]
fn raftstar_leader_crash_preserves_committed_writes() {
    let mut cluster = Cluster::builder(ProtocolKind::RaftStar).seed(59).build();
    cluster.elect_leader();
    for k in 0..5u64 {
        cluster
            .submit_and_wait(Op::Put { key: k, value: vec![k as u8; 16] })
            .expect("put commits");
    }
    let leader = cluster.replicas()[0];
    cluster.sim.crash_at(leader, cluster.sim.now() + SimDuration::from_millis(5));
    // All five committed writes must survive the failover.
    for k in 0..5u64 {
        let r = cluster.submit_and_wait(Op::Get { key: k }).expect("get after failover");
        assert!(matches!(r, Reply::Value(Some(_))), "key {k} survived, got {r:?}");
    }
    // A new leader exists and it is not the crashed node.
    let new_leader = cluster
        .replicas()
        .iter()
        .find(|&&r| !cluster.sim.is_crashed(r) && cluster.sim.actor::<RaftStarReplica>(r).is_leader());
    assert!(new_leader.is_some(), "failover elected a new leader");
}

#[test]
fn minority_partition_does_not_block_majority() {
    let mut cluster = Cluster::builder(ProtocolKind::RaftStar).seed(61).build();
    cluster.elect_leader();
    cluster.submit_and_wait(Op::Put { key: 1, value: vec![7; 8] }).expect("pre-partition put");
    // Partition replicas 3 and 4 away from {0, 1, 2} + clients + probe.
    let total = cluster.sim.len();
    let mut groups = vec![0u32; total];
    groups[3] = 1;
    groups[4] = 1;
    cluster.sim.partition_at(groups, cluster.sim.now() + SimDuration::from_millis(1));
    cluster.sim.run_for(SimDuration::from_millis(10));
    cluster
        .submit_and_wait(Op::Put { key: 2, value: vec![8; 8] })
        .expect("majority commits during minority partition");
    // Heal; the minority catches up and the data is still there.
    cluster.sim.heal_at(cluster.sim.now() + SimDuration::from_millis(1));
    cluster.sim.run_for(SimDuration::from_secs(2));
    let r = cluster.submit_and_wait(Op::Get { key: 2 }).expect("get after heal");
    assert!(matches!(r, Reply::Value(Some(_))));
}

#[test]
fn majority_partition_blocks_commits_until_heal() {
    let mut cluster = Cluster::builder(ProtocolKind::RaftStar).seed(63).build();
    cluster.elect_leader();
    // Cut the leader (node 0) plus everything else off from {1,2,3,4}:
    // leave the leader alone with the clients and probe — no quorum.
    let total = cluster.sim.len();
    let mut groups = vec![0u32; total];
    for r in 1..5 {
        groups[r] = 1;
    }
    cluster.sim.partition_at(groups, cluster.sim.now() + SimDuration::from_millis(1));
    cluster.sim.run_for(SimDuration::from_millis(10));
    let err = cluster.submit_and_wait(Op::Put { key: 9, value: vec![1; 8] });
    assert!(err.is_err(), "no quorum on the leader's side: {err:?}");
    // After healing, the same write goes through (possibly via a new
    // leader on the other side; the probe falls back to live replicas).
    cluster.sim.heal_at(cluster.sim.now() + SimDuration::from_millis(1));
    cluster.sim.run_for(SimDuration::from_secs(3));
    cluster
        .submit_and_wait(Op::Put { key: 9, value: vec![1; 8] })
        .expect("commit succeeds after heal");
}
