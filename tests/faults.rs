//! Fault-injection integration tests: message loss, leader crashes and
//! partitions against the full protocol stack — including snapshot-based
//! catch-up of partitioned replicas in every protocol family.

use paxraft::core::harness::{Cluster, ProtocolKind};
use paxraft::core::kv::{Op, Reply};
use paxraft::core::mencius::MenciusReplica;
use paxraft::core::multipaxos::MultiPaxosReplica;
use paxraft::core::raft::RaftReplica;
use paxraft::core::raftstar::RaftStarReplica;
use paxraft::core::snapshot::{SnapshotConfig, SnapshotStats};
use paxraft::sim::time::{SimDuration, SimTime};
use paxraft::workload::generator::WorkloadConfig;

#[test]
fn raft_survives_five_percent_message_loss() {
    let mut cluster = Cluster::builder(ProtocolKind::Raft)
        .clients_per_region(3)
        .workload(WorkloadConfig {
            read_fraction: 0.5,
            ..Default::default()
        })
        .seed(51)
        .build();
    cluster.sim.set_drop_rate_at(0.05, SimTime::from_millis(1));
    cluster.elect_leader();
    let report = cluster.run_measurement(
        SimDuration::from_secs(2),
        SimDuration::from_secs(6),
        SimDuration::from_secs(1),
    );
    assert!(
        report.throughput_ops > 10.0,
        "retransmission keeps the cluster live under loss: {}",
        report.throughput_ops
    );
}

#[test]
fn raftstar_survives_five_percent_message_loss() {
    let mut cluster = Cluster::builder(ProtocolKind::RaftStar)
        .clients_per_region(3)
        .workload(WorkloadConfig {
            read_fraction: 0.5,
            ..Default::default()
        })
        .seed(53)
        .build();
    cluster.sim.set_drop_rate_at(0.05, SimTime::from_millis(1));
    cluster.elect_leader();
    let report = cluster.run_measurement(
        SimDuration::from_secs(2),
        SimDuration::from_secs(6),
        SimDuration::from_secs(1),
    );
    assert!(
        report.throughput_ops > 10.0,
        "got {}",
        report.throughput_ops
    );
}

#[test]
fn mencius_survives_message_loss() {
    let mut cluster = Cluster::builder(ProtocolKind::RaftStarMencius)
        .clients_per_region(3)
        .workload(WorkloadConfig {
            read_fraction: 0.0,
            ..Default::default()
        })
        .seed(57)
        .build();
    // Mencius coordination relies on more messages; 2% loss.
    cluster.sim.set_drop_rate_at(0.02, SimTime::from_millis(1));
    cluster.elect_leader();
    let report = cluster.run_measurement(
        SimDuration::from_secs(2),
        SimDuration::from_secs(6),
        SimDuration::from_secs(1),
    );
    assert!(report.throughput_ops > 5.0, "got {}", report.throughput_ops);
}

#[test]
fn raftstar_leader_crash_preserves_committed_writes() {
    let mut cluster = Cluster::builder(ProtocolKind::RaftStar).seed(59).build();
    cluster.elect_leader();
    for k in 0..5u64 {
        cluster
            .submit_and_wait(Op::Put {
                key: k,
                value: vec![k as u8; 16],
            })
            .expect("put commits");
    }
    let leader = cluster.replicas()[0];
    cluster
        .sim
        .crash_at(leader, cluster.sim.now() + SimDuration::from_millis(5));
    // All five committed writes must survive the failover.
    for k in 0..5u64 {
        let r = cluster
            .submit_and_wait(Op::Get { key: k })
            .expect("get after failover");
        assert!(
            matches!(r, Reply::Value(Some(_))),
            "key {k} survived, got {r:?}"
        );
    }
    // A new leader exists and it is not the crashed node.
    let new_leader = cluster.replicas().iter().find(|&&r| {
        !cluster.sim.is_crashed(r) && cluster.sim.actor::<RaftStarReplica>(r).is_leader()
    });
    assert!(new_leader.is_some(), "failover elected a new leader");
}

#[test]
fn minority_partition_does_not_block_majority() {
    let mut cluster = Cluster::builder(ProtocolKind::RaftStar).seed(61).build();
    cluster.elect_leader();
    cluster
        .submit_and_wait(Op::Put {
            key: 1,
            value: vec![7; 8],
        })
        .expect("pre-partition put");
    // Partition replicas 3 and 4 away from {0, 1, 2} + clients + probe.
    let total = cluster.sim.len();
    let mut groups = vec![0u32; total];
    groups[3] = 1;
    groups[4] = 1;
    cluster
        .sim
        .partition_at(groups, cluster.sim.now() + SimDuration::from_millis(1));
    cluster.sim.run_for(SimDuration::from_millis(10));
    cluster
        .submit_and_wait(Op::Put {
            key: 2,
            value: vec![8; 8],
        })
        .expect("majority commits during minority partition");
    // Heal; the minority catches up and the data is still there.
    cluster
        .sim
        .heal_at(cluster.sim.now() + SimDuration::from_millis(1));
    cluster.sim.run_for(SimDuration::from_secs(2));
    let r = cluster
        .submit_and_wait(Op::Get { key: 2 })
        .expect("get after heal");
    assert!(matches!(r, Reply::Value(Some(_))));
}

// ── snapshot / log-compaction scenarios ─────────────────────────────

/// Runs a write-heavy cluster with a low compaction threshold, cuts one
/// follower off long enough for the survivors to compact past its next
/// slot, heals, and lets it catch up. Returns the rejoined replica's
/// counters, its applied index, and the cluster maximum applied index.
fn snapshot_catchup_scenario(
    p: ProtocolKind,
    seed: u64,
) -> (SnapshotStats, SnapshotStats, u64, u64) {
    snapshot_catchup_with(p, seed, 8, SnapshotConfig::every(32))
}

/// Returns (lagger's counters, cluster-wide counters, lagger's applied
/// index, cluster max applied index).
fn snapshot_catchup_with(
    p: ProtocolKind,
    seed: u64,
    value_size: usize,
    snapshot: SnapshotConfig,
) -> (SnapshotStats, SnapshotStats, u64, u64) {
    let lagger = 4; // Seoul replica; leader stays at 0 (Oregon)
    let mut cluster = Cluster::builder(p)
        .clients_per_region(2)
        .workload(WorkloadConfig {
            read_fraction: 0.0,
            conflict_rate: 0.0,
            value_size,
            ..Default::default()
        })
        .snapshot_config(snapshot)
        .seed(seed)
        .build();
    cluster.elect_leader();
    cluster.sim.run_for(SimDuration::from_secs(2));
    // Cut the follower off (its own clients stay connected to the
    // majority side and simply stall).
    let total = cluster.sim.len();
    let mut groups = vec![0u32; total];
    groups[lagger] = 1;
    cluster
        .sim
        .partition_at(groups, cluster.sim.now() + SimDuration::from_millis(1));
    // Far more than 32 writes commit while the follower is away, so the
    // survivors compact past its next slot.
    cluster.sim.run_for(SimDuration::from_secs(25));
    cluster
        .sim
        .heal_at(cluster.sim.now() + SimDuration::from_millis(1));
    cluster.sim.run_for(SimDuration::from_secs(12));
    let r = cluster.replicas()[lagger];
    let (stats, applied) = match p {
        ProtocolKind::MultiPaxos => {
            let rep = cluster.sim.actor::<MultiPaxosReplica>(r);
            (rep.snap_stats(), rep.exec_index().0)
        }
        ProtocolKind::Raft => {
            let rep = cluster.sim.actor::<RaftReplica>(r);
            (rep.snap_stats(), rep.commit_index().0)
        }
        ProtocolKind::RaftStar => {
            let rep = cluster.sim.actor::<RaftStarReplica>(r);
            (rep.snap_stats(), rep.commit_index().0)
        }
        ProtocolKind::RaftStarMencius => {
            let rep = cluster.sim.actor::<MenciusReplica>(r);
            (rep.snap_stats(), rep.exec_index().0)
        }
        other => panic!("scenario not wired for {}", other.name()),
    };
    let max_applied = (0..total.min(5))
        .map(|i| {
            let rr = cluster.replicas()[i];
            match p {
                ProtocolKind::MultiPaxos => {
                    cluster.sim.actor::<MultiPaxosReplica>(rr).exec_index().0
                }
                ProtocolKind::Raft => cluster.sim.actor::<RaftReplica>(rr).commit_index().0,
                ProtocolKind::RaftStar => cluster.sim.actor::<RaftStarReplica>(rr).commit_index().0,
                ProtocolKind::RaftStarMencius => {
                    cluster.sim.actor::<MenciusReplica>(rr).exec_index().0
                }
                other => panic!("scenario not wired for {}", other.name()),
            }
        })
        .max()
        .unwrap();
    (stats, cluster.snapshot_stats(), applied, max_applied)
}

fn assert_caught_up_via_snapshot(p: ProtocolKind, seed: u64) {
    let (stats, _cluster, applied, max_applied) = snapshot_catchup_scenario(p, seed);
    assert!(
        stats.snapshots_installed >= 1,
        "{}: rejoined replica installed a snapshot (stats: {stats:?})",
        p.name()
    );
    assert!(
        max_applied > 64,
        "{}: enough load to trip compaction ({max_applied})",
        p.name()
    );
    assert!(
        applied + 200 > max_applied,
        "{}: rejoined replica converged ({applied} vs {max_applied})",
        p.name()
    );
}

#[test]
fn raft_partitioned_follower_rejoins_via_snapshot() {
    assert_caught_up_via_snapshot(ProtocolKind::Raft, 71);
}

#[test]
fn raftstar_partitioned_follower_rejoins_via_snapshot() {
    assert_caught_up_via_snapshot(ProtocolKind::RaftStar, 73);
}

#[test]
fn multipaxos_partitioned_acceptor_rejoins_via_checkpoint() {
    assert_caught_up_via_snapshot(ProtocolKind::MultiPaxos, 79);
}

#[test]
fn mencius_partitioned_replica_rejoins_via_checkpoint() {
    assert_caught_up_via_snapshot(ProtocolKind::RaftStarMencius, 83);
}

#[test]
fn multi_chunk_snapshot_transfer_converges() {
    // Large values + a small chunk size force snapshots of dozens of
    // chunks through the real protocol paths — including the Mencius
    // case where several peers ship the laggard overlapping interleaved
    // transfers and per-sender reassembly must keep them apart.
    for p in [ProtocolKind::RaftStar, ProtocolKind::RaftStarMencius] {
        let cfg = SnapshotConfig {
            threshold_entries: 32,
            chunk_bytes: 4096,
            ..SnapshotConfig::default()
        };
        let (stats, cluster, applied, max_applied) = snapshot_catchup_with(p, 101, 2048, cfg);
        assert!(
            stats.snapshots_installed >= 1,
            "{}: installed via chunks ({stats:?})",
            p.name()
        );
        assert!(
            cluster.snapshot_bytes_sent > 4 * 4096,
            "{}: transfer spanned many chunks ({cluster:?})",
            p.name()
        );
        assert!(
            applied + 200 > max_applied,
            "{}: converged ({applied} vs {max_applied})",
            p.name()
        );
    }
}

#[test]
fn snapshot_catchup_is_deterministic() {
    // Identical seeds must produce byte-identical snapshot traffic and
    // identical final state — the whole subsystem stays inside the
    // simulator's determinism envelope.
    for p in [ProtocolKind::Raft, ProtocolKind::RaftStarMencius] {
        let a = snapshot_catchup_scenario(p, 91);
        let b = snapshot_catchup_scenario(p, 91);
        assert_eq!(a, b, "{}: identical seeds, identical outcome", p.name());
    }
}

#[test]
fn compaction_bounds_peak_log_size_under_sustained_writes() {
    for p in [
        ProtocolKind::Raft,
        ProtocolKind::RaftStar,
        ProtocolKind::MultiPaxos,
        ProtocolKind::RaftStarMencius,
    ] {
        let mut cluster = Cluster::builder(p)
            .clients_per_region(3)
            .workload(WorkloadConfig {
                read_fraction: 0.0,
                conflict_rate: 0.0,
                ..Default::default()
            })
            .snapshot_config(SnapshotConfig::every(64))
            .seed(97)
            .build();
        cluster.elect_leader();
        let report = cluster.run_measurement(
            SimDuration::from_secs(2),
            SimDuration::from_secs(10),
            SimDuration::from_secs(1),
        );
        let completed = (report.throughput_ops * 10.0) as u64;
        assert!(
            completed > 300,
            "{}: sustained load ({completed} ops)",
            p.name()
        );
        let s = report.snapshots;
        assert!(s.compactions >= 1, "{}: compaction ran ({s:?})", p.name());
        assert!(
            s.entries_discarded > 64,
            "{}: prefix actually discarded ({s:?})",
            p.name()
        );
        // The bound: peak retained size stays a small multiple of the
        // threshold even though far more entries were committed.
        assert!(
            s.peak_log_entries < 1024,
            "{}: peak log bounded, got {} after {completed} ops",
            p.name(),
            s.peak_log_entries
        );
        assert!(
            s.entries_discarded + 2048 > completed,
            "{}: most of the history was compacted away ({s:?})",
            p.name()
        );
    }
}

#[test]
fn majority_partition_blocks_commits_until_heal() {
    let mut cluster = Cluster::builder(ProtocolKind::RaftStar).seed(63).build();
    cluster.elect_leader();
    // Cut the leader (node 0) plus everything else off from {1,2,3,4}:
    // leave the leader alone with the clients and probe — no quorum.
    let total = cluster.sim.len();
    let mut groups = vec![0u32; total];
    for r in 1..5 {
        groups[r] = 1;
    }
    cluster
        .sim
        .partition_at(groups, cluster.sim.now() + SimDuration::from_millis(1));
    cluster.sim.run_for(SimDuration::from_millis(10));
    let err = cluster.submit_and_wait(Op::Put {
        key: 9,
        value: vec![1; 8],
    });
    assert!(err.is_err(), "no quorum on the leader's side: {err:?}");
    // After healing, the same write goes through (possibly via a new
    // leader on the other side; the probe falls back to live replicas).
    cluster
        .sim
        .heal_at(cluster.sim.now() + SimDuration::from_millis(1));
    cluster.sim.run_for(SimDuration::from_secs(3));
    cluster
        .submit_and_wait(Op::Put {
            key: 9,
            value: vec![1; 8],
        })
        .expect("commit succeeds after heal");
}
