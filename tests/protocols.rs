//! Cross-crate integration tests: every protocol running on the
//! simulated 5-region WAN through the public harness API.

use paxraft::core::harness::{Cluster, ProtocolKind};
use paxraft::core::kv::{Op, Reply};
use paxraft::sim::time::SimDuration;
use paxraft::workload::generator::WorkloadConfig;

const ALL: [ProtocolKind; 6] = [
    ProtocolKind::MultiPaxos,
    ProtocolKind::Raft,
    ProtocolKind::RaftStar,
    ProtocolKind::RaftStarPql,
    ProtocolKind::LeaderLease,
    ProtocolKind::RaftStarMencius,
];

#[test]
fn every_protocol_commits_and_reads_back() {
    for p in ALL {
        let mut cluster = Cluster::builder(p).seed(13).build();
        cluster.elect_leader();
        cluster
            .submit_and_wait(Op::Put {
                key: 5,
                value: vec![1; 16],
            })
            .unwrap_or_else(|e| panic!("{}: put failed: {e}", p.name()));
        let r = cluster
            .submit_and_wait(Op::Get { key: 5 })
            .unwrap_or_else(|e| panic!("{}: get failed: {e}", p.name()));
        assert!(
            matches!(r, Reply::Value(Some(_))),
            "{}: read must observe the write, got {r:?}",
            p.name()
        );
    }
}

#[test]
fn every_protocol_sustains_a_mixed_workload() {
    let workload = WorkloadConfig {
        read_fraction: 0.5,
        conflict_rate: 0.05,
        ..Default::default()
    };
    for p in ALL {
        let mut cluster = Cluster::builder(p)
            .clients_per_region(5)
            .workload(workload.clone())
            .seed(17)
            .build();
        cluster.elect_leader();
        let report = cluster.run_measurement(
            SimDuration::from_secs(2),
            SimDuration::from_secs(4),
            SimDuration::from_millis(500),
        );
        assert!(
            report.throughput_ops > 10.0,
            "{}: throughput too low: {}",
            p.name(),
            report.throughput_ops
        );
    }
}

#[test]
fn runs_are_deterministic_given_a_seed() {
    let run = |seed: u64| {
        let workload = WorkloadConfig::default();
        let mut cluster = Cluster::builder(ProtocolKind::RaftStar)
            .clients_per_region(3)
            .workload(workload)
            .seed(seed)
            .build();
        cluster.elect_leader();
        let r = cluster.run_measurement(
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
            SimDuration::from_millis(500),
        );
        (r.throughput_ops, r.leader_writes.map(|t| t.p90_ms))
    };
    assert_eq!(run(99), run(99), "same seed, same results");
    // Different seeds must diverge somewhere. With adaptive batching the
    // completed-op count in a fixed window is a coarse statistic (the
    // closed loop is latency-bound, so ±2% jitter rarely moves it);
    // latency percentiles carry the jitter, so compare the full tuple.
    assert_ne!(run(1), run(2), "different seeds diverge");
}

#[test]
fn pql_reads_are_fast_and_writes_slower_than_raft() {
    let workload = WorkloadConfig {
        read_fraction: 0.9,
        conflict_rate: 0.0,
        ..Default::default()
    };
    let measure = |p| {
        let mut cluster = Cluster::builder(p)
            .clients_per_region(10)
            .workload(workload.clone())
            .seed(23)
            .build();
        cluster.elect_leader();
        cluster.run_measurement(
            SimDuration::from_secs(2),
            SimDuration::from_secs(4),
            SimDuration::from_millis(500),
        )
    };
    let raft = measure(ProtocolKind::Raft);
    let pql = measure(ProtocolKind::RaftStarPql);
    let raft_read = raft.follower_reads.expect("raft reads").p50_ms;
    let pql_read = pql.follower_reads.expect("pql reads").p50_ms;
    assert!(
        pql_read < raft_read / 10.0,
        "PQL follower reads local ({pql_read:.2}ms) vs Raft WAN ({raft_read:.2}ms)"
    );
    let raft_write = raft.leader_writes.expect("raft writes").p50_ms;
    let pql_write = pql.leader_writes.expect("pql writes").p50_ms;
    assert!(
        pql_write > raft_write,
        "PQL writes wait for all leaseholders ({pql_write:.1}ms vs {raft_write:.1}ms)"
    );
}

#[test]
fn mencius_beats_raft_under_saturating_writes() {
    let workload = WorkloadConfig {
        read_fraction: 0.0,
        conflict_rate: 0.0,
        ..Default::default()
    };
    let peak = |p| {
        // Past the single-leader saturation point (Figure 10a's
        // crossover sits near 2-3K clients/region).
        let mut cluster = Cluster::builder(p)
            .clients_per_region(3000)
            .workload(workload.clone())
            .seed(29)
            .build();
        cluster.elect_leader();
        cluster
            .run_measurement(
                SimDuration::from_secs(1),
                SimDuration::from_secs(2),
                SimDuration::from_millis(500),
            )
            .throughput_ops
    };
    let raft = peak(ProtocolKind::Raft);
    let mencius = peak(ProtocolKind::RaftStarMencius);
    assert!(
        mencius > raft * 1.1,
        "Mencius balances load: {mencius:.0} vs Raft {raft:.0} ops/s"
    );
}
