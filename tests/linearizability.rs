//! Validates the PQL paper's consistency claim ("both read and write are
//! consistent", Section A.1) on simulated runs: record per-key histories
//! at the clients and check them with the Wing–Gong linearizability
//! checker — including under contention and under lease-holder crashes.

use paxraft::core::harness::{Cluster, ProtocolKind};
use paxraft::sim::time::SimDuration;
use paxraft::workload::generator::{WorkloadConfig, HOT_KEY};
use paxraft::workload::linearize::check_history;

const BUDGET: usize = 1 << 22;

fn hot_key_history(p: ProtocolKind, conflict: f64, seed: u64) -> Vec<paxraft::workload::OpRecord> {
    let workload = WorkloadConfig {
        read_fraction: 0.6,
        conflict_rate: conflict,
        ..Default::default()
    };
    let mut cluster = Cluster::builder(p)
        .clients_per_region(3)
        .workload(workload)
        .record_history_for(HOT_KEY)
        .seed(seed)
        .build();
    cluster.elect_leader();
    let report = cluster.run_measurement(
        SimDuration::from_secs(2),
        SimDuration::from_secs(6),
        SimDuration::from_secs(1),
    );
    report.histories
}

#[test]
fn raft_hot_key_history_is_linearizable() {
    let h = hot_key_history(ProtocolKind::Raft, 0.5, 31);
    assert!(h.len() > 20, "enough contended ops recorded: {}", h.len());
    check_history(&h, BUDGET).expect("Raft history linearizable");
}

#[test]
fn pql_local_reads_are_linearizable_under_contention() {
    // The paper's core safety claim for quorum leases: local reads stay
    // strongly consistent even while the hot key is being written.
    let h = hot_key_history(ProtocolKind::RaftStarPql, 0.5, 37);
    assert!(h.len() > 20, "enough contended ops recorded: {}", h.len());
    check_history(&h, BUDGET).expect("PQL history linearizable");
}

#[test]
fn leader_lease_reads_are_linearizable() {
    let h = hot_key_history(ProtocolKind::LeaderLease, 0.5, 41);
    assert!(h.len() > 20);
    check_history(&h, BUDGET).expect("LL history linearizable");
}

#[test]
fn mencius_writes_and_reads_are_linearizable() {
    let h = hot_key_history(ProtocolKind::RaftStarMencius, 0.5, 43);
    assert!(h.len() > 20);
    check_history(&h, BUDGET).expect("Mencius history linearizable");
}

/// Group commit moves every attesting ack behind a batched fsync; under
/// 15% message loss the retransmit/dedup machinery interleaves with the
/// deferred-ack queue. The recorded client histories must still be
/// linearizable — deferral reorders nothing observable, it only delays.
#[test]
fn group_commit_under_loss_is_linearizable() {
    use paxraft::core::config::DurabilityConfig;
    for p in [ProtocolKind::Raft, ProtocolKind::RaftStarMencius] {
        let workload = WorkloadConfig {
            read_fraction: 0.6,
            conflict_rate: 0.5,
            ..Default::default()
        };
        let mut cluster = Cluster::builder(p)
            .clients_per_region(2)
            .workload(workload)
            .record_history_for(HOT_KEY)
            .durability_config(DurabilityConfig::group_commit(
                SimDuration::from_millis(1),
                8,
                SimDuration::from_millis(2),
            ))
            .seed(53)
            .build();
        cluster.elect_leader();
        cluster
            .sim
            .set_drop_rate_at(0.15, paxraft::sim::time::SimTime::from_secs(3));
        let report = cluster.run_measurement(
            SimDuration::from_secs(2),
            SimDuration::from_secs(8),
            SimDuration::from_secs(1),
        );
        assert!(report.histories.len() > 10, "{p:?}: enough ops recorded");
        assert!(report.durability.fsyncs > 0, "{p:?}: the run hit the disk");
        check_history(&report.histories, BUDGET)
            .unwrap_or_else(|e| panic!("{p:?} group-commit history linearizable: {e:?}"));
    }
}

#[test]
fn pql_stays_linearizable_across_leaseholder_crash() {
    let workload = WorkloadConfig {
        read_fraction: 0.6,
        conflict_rate: 0.5,
        ..Default::default()
    };
    let mut cluster = Cluster::builder(ProtocolKind::RaftStarPql)
        .clients_per_region(2)
        .workload(workload)
        .record_history_for(HOT_KEY)
        .seed(47)
        .build();
    cluster.elect_leader();
    // Crash a follower leaseholder mid-run and restart it later.
    let victim = cluster.replicas()[3];
    cluster
        .sim
        .crash_at(victim, paxraft::sim::time::SimTime::from_secs(4));
    cluster
        .sim
        .restart_at(victim, paxraft::sim::time::SimTime::from_secs(7));
    let report = cluster.run_measurement(
        SimDuration::from_secs(2),
        SimDuration::from_secs(8),
        SimDuration::from_secs(1),
    );
    assert!(report.histories.len() > 10);
    check_history(&report.histories, BUDGET)
        .expect("PQL history linearizable across a leaseholder crash");
}
