//! Quorum leases: the state behind Raft*-PQL and the Leader-Lease (LL)
//! baseline (Section 5.1, Appendix A.1–A.2).
//!
//! A replica may serve a read locally when it holds *valid leases from a
//! quorum* of replicas (`validLeasesNum ≥ f + 1`, Figure 13 line 3). The
//! flip side is the write path: a leader may only commit once it has
//! acknowledgements from **all current lease holders** — Figure 8's
//! `LeaderLearn`, where `holderSet` is the union of holders reported by
//! the `f` responders **plus the holders granted by the leader itself**
//! (the detail the paper's hand-worked port got wrong).
//!
//! Grants are two-way: a grantor counts a replica as a *holder* only
//! after the replica acknowledges the grant, so a crashed holder stops
//! gating writes once its last acknowledged grant expires. Expiry uses
//! the simulator's global clock, playing the role of the TLA+ spec's
//! global `timer`; a real deployment subtracts a clock-drift guard band.

use paxraft_sim::time::SimTime;

use crate::config::{LeaseConfig, ReadMode};
use crate::types::{max_failures, NodeId, Slot};

/// Lease bookkeeping for one replica.
#[derive(Debug)]
pub struct LeaseManager {
    cfg: LeaseConfig,
    mode: ReadMode,
    n: usize,
    me: NodeId,
    /// `granted_to[h]`: expiry of the last grant to `h` that `h` acked.
    granted_to: Vec<SimTime>,
    /// `held_from[g]`: expiry of the lease this replica holds from `g`.
    held_from: Vec<SimTime>,
    /// Local reads must wait until the replica has applied through this
    /// slot: the highest grantor log index attached to any grant that
    /// (re-)established a lapsed lease. Writes committed while this
    /// replica held no lease never waited for its acknowledgement, so
    /// a freshly re-leased replica must catch up first.
    read_floor: Slot,
}

impl LeaseManager {
    /// Creates the manager for replica `me` of `n`.
    pub fn new(cfg: LeaseConfig, mode: ReadMode, n: usize, me: NodeId) -> Self {
        LeaseManager {
            cfg,
            mode,
            n,
            me,
            granted_to: vec![SimTime::ZERO; n],
            held_from: vec![SimTime::ZERO; n],
            read_floor: Slot::NONE,
        }
    }

    /// The read mode this manager serves.
    pub fn mode(&self) -> ReadMode {
        self.mode
    }

    /// Who this replica grants leases to on each renewal: every replica
    /// under quorum leases, only the (believed) leader under LL.
    pub fn grant_targets(&self, leader_hint: Option<NodeId>) -> Vec<NodeId> {
        match self.mode {
            ReadMode::QuorumLease => (0..self.n as u32)
                .map(NodeId)
                .filter(|&x| x != self.me)
                .collect(),
            ReadMode::LeaderLease => match leader_hint {
                Some(l) if l != self.me => vec![l],
                _ => Vec::new(),
            },
            ReadMode::LogRead => Vec::new(),
        }
    }

    /// The expiry a grant issued `now` carries.
    pub fn grant_expiry(&self, now: SimTime) -> SimTime {
        now + self.cfg.duration
    }

    /// Records the self-grant performed on each renewal tick (a replica
    /// trivially holds its own lease; "at least f + 1 replicas (including
    /// itself)", Section 5.1).
    pub fn self_grant(&mut self, now: SimTime) {
        let exp = self.grant_expiry(now);
        let me = self.me.0 as usize;
        self.held_from[me] = exp;
        self.granted_to[me] = exp;
    }

    /// Records a received grant from `grantor`. `grantor_last` is the
    /// grantor's log tail at grant time and `now` the receipt time: when
    /// this grant *re-establishes* a lapsed lease, local reads are gated
    /// until the replica has applied through `grantor_last`.
    pub fn on_grant(
        &mut self,
        grantor: NodeId,
        expires: SimTime,
        grantor_last: Slot,
        now: SimTime,
    ) {
        let e = &mut self.held_from[grantor.0 as usize];
        if *e <= now && grantor_last > self.read_floor {
            // The previous grant from this grantor had lapsed (or never
            // existed): catch up before reading locally again.
            self.read_floor = grantor_last;
        }
        if expires > *e {
            *e = expires;
        }
    }

    /// The slot local reads must have applied through (see `on_grant`).
    pub fn read_floor(&self) -> Slot {
        self.read_floor
    }

    /// Records a holder's acknowledgement of our grant.
    pub fn on_grant_ack(&mut self, holder: NodeId, expires: SimTime) {
        let e = &mut self.granted_to[holder.0 as usize];
        if expires > *e {
            *e = expires;
        }
    }

    /// `validLeasesNum`: how many replicas' leases this replica holds.
    pub fn valid_leases(&self, now: SimTime) -> usize {
        self.held_from.iter().filter(|&&e| e > now).count()
    }

    /// Figure 13 line 3: can this replica serve reads locally?
    pub fn has_quorum_lease(&self, now: SimTime) -> bool {
        self.valid_leases(now) >= max_failures(self.n) + 1
    }

    /// Holders granted by this replica whose grants are still valid —
    /// attached to `appendOK` (Figure 8 Phase2b) and unioned into
    /// `holderSet` at the leader.
    pub fn current_holders(&self, now: SimTime) -> Vec<NodeId> {
        (0..self.n as u32)
            .map(NodeId)
            .filter(|h| self.granted_to[h.0 as usize] > now)
            .collect()
    }

    /// Drops every lease this replica *holds* (crash behaviour: holders
    /// lose volatile lease state; grants they gave must expire naturally).
    pub fn drop_held(&mut self) {
        self.held_from = vec![SimTime::ZERO; self.n];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxraft_sim::time::SimDuration;

    fn mgr(mode: ReadMode) -> LeaseManager {
        LeaseManager::new(LeaseConfig::default(), mode, 5, NodeId(2))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn quorum_lease_grants_to_everyone_else() {
        let m = mgr(ReadMode::QuorumLease);
        let targets = m.grant_targets(Some(NodeId(0)));
        assert_eq!(targets.len(), 4);
        assert!(!targets.contains(&NodeId(2)));
    }

    #[test]
    fn leader_lease_grants_only_to_leader() {
        let m = mgr(ReadMode::LeaderLease);
        assert_eq!(m.grant_targets(Some(NodeId(0))), vec![NodeId(0)]);
        assert!(m.grant_targets(None).is_empty());
        // The leader itself grants to nobody (it self-grants).
        let lm = LeaseManager::new(LeaseConfig::default(), ReadMode::LeaderLease, 5, NodeId(0));
        assert!(lm.grant_targets(Some(NodeId(0))).is_empty());
    }

    #[test]
    fn log_read_mode_grants_nothing() {
        let m = mgr(ReadMode::LogRead);
        assert!(m.grant_targets(Some(NodeId(0))).is_empty());
    }

    #[test]
    fn quorum_lease_requires_f_plus_one() {
        let mut m = mgr(ReadMode::QuorumLease);
        assert!(!m.has_quorum_lease(t(0)));
        m.self_grant(t(0));
        m.on_grant(NodeId(0), t(2000), Slot::NONE, t(0));
        assert_eq!(m.valid_leases(t(1)), 2);
        assert!(!m.has_quorum_lease(t(1)), "2 < f+1 = 3");
        m.on_grant(NodeId(1), t(2000), Slot::NONE, t(0));
        assert!(m.has_quorum_lease(t(1)), "3 >= f+1");
    }

    #[test]
    fn leases_expire() {
        let mut m = mgr(ReadMode::QuorumLease);
        m.self_grant(t(0));
        m.on_grant(NodeId(0), t(100), Slot::NONE, t(0));
        m.on_grant(NodeId(1), t(100), Slot::NONE, t(0));
        assert!(m.has_quorum_lease(t(50)));
        assert!(!m.has_quorum_lease(t(150)), "grants from 0 and 1 expired");
    }

    #[test]
    fn stale_grant_does_not_shorten() {
        let mut m = mgr(ReadMode::QuorumLease);
        m.on_grant(NodeId(0), t(500), Slot::NONE, t(0));
        m.on_grant(NodeId(0), t(300), Slot::NONE, t(100)); // reordered older grant
        assert_eq!(m.valid_leases(t(400)), 1);
    }

    #[test]
    fn holders_require_ack() {
        let mut m = mgr(ReadMode::QuorumLease);
        assert!(m.current_holders(t(0)).is_empty(), "no acks yet");
        m.on_grant_ack(NodeId(4), t(2000));
        assert_eq!(m.current_holders(t(1)), vec![NodeId(4)]);
        // After expiry the holder no longer gates writes.
        assert!(m.current_holders(t(3000)).is_empty());
    }

    #[test]
    fn self_grant_counts_as_holder_and_held() {
        let mut m = mgr(ReadMode::QuorumLease);
        m.self_grant(t(0));
        assert_eq!(m.current_holders(t(1)), vec![NodeId(2)]);
        assert_eq!(m.valid_leases(t(1)), 1);
    }

    #[test]
    fn drop_held_clears_only_held_side() {
        let mut m = mgr(ReadMode::QuorumLease);
        m.self_grant(t(0));
        m.on_grant(NodeId(0), t(2000), Slot::NONE, t(0));
        m.on_grant_ack(NodeId(1), t(2000));
        m.drop_held();
        assert_eq!(m.valid_leases(t(1)), 0);
        assert!(
            m.current_holders(t(1)).contains(&NodeId(1)),
            "grants given persist"
        );
    }

    #[test]
    fn grant_expiry_is_duration_ahead() {
        let m = mgr(ReadMode::QuorumLease);
        assert_eq!(m.grant_expiry(t(100)), t(100) + SimDuration::from_secs(2));
    }
}
