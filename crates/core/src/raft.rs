//! Standard Raft (Section 2.1, Figure 2 *without* the blue Raft* code),
//! expressed as [`ProtocolRules`] over the shared [`ReplicaEngine`] and
//! the Raft-family [`RaftBase`].
//!
//! The two behaviours that distinguish Raft from Raft* (Section 3) are
//! implemented here exactly as Raft specifies them:
//!
//! 1. **Followers erase extraneous entries**: a follower whose log
//!    conflicts with (or extends past) the leader's AppendEntries payload
//!    truncates its suffix ([`crate::log::Log::truncate_from`]). This is
//!    the state transition that has no MultiPaxos counterpart.
//! 2. **Entry terms are never rewritten**: a leader replicates previously
//!    uncommitted entries with their original terms, which forces the
//!    extra commit restriction of the Raft paper's Section 5.4.2 — a
//!    leader only counts replicas for entries of its *own* term.
//!
//! Everything protocol-agnostic — batching, forwarding, client dedup,
//! timers, snapshot transfer — is inherited from the engine, and the
//! Raft-family replication plumbing (appends, heartbeats, apply loop,
//! snapshot install) from [`RaftBase`]; this file holds only the vote
//! rule, the append acceptance rule and the 5.4.2 commit rule.
//!
//! One engineering liberty shared by all our replicas: terms use the
//! Paxos ballot encoding `round * n + node` so every term has a unique
//! owner. This replaces Raft's per-term `votedFor` vote splitting (a
//! node grants at most one vote per term by construction) without
//! changing any other behaviour.
//!
//! # Durability (group commit)
//!
//! With a [`crate::config::DurabilityConfig`] enabled, every log append
//! (follower *and* leader) is charged as a disk write, and any message
//! that **attests to log content** — `AppendOk` here — is routed
//! through [`EngineCore::ack_after_sync`] so it leaves only after an
//! fsync covers the write it attests to. The safety argument is the
//! classic one: an `AppendOk` for index *i* is a promise that entry *i*
//! survives a crash; if the ack could outrun the fsync, a quorum could
//! commit an entry that a crash then erases from enough replicas to
//! lose it. Symmetrically the *leader's own* log copy only counts
//! toward commit once locally durable: [`RaftRules::advance_commit`]
//! clamps the quorum match by [`RaftBase::durable_tail`], and the
//! engine's `on_durable` hook re-runs the tally when an fsync lands.
//! Vote/reject messages stay immediate: the model treats the tiny
//! term/vote metadata write as free and always-durable (terms survive
//! [`RaftBase::crash_reset`]), so a vote never attests to anything
//! volatile; only entry payloads ride the modeled disk.

use paxraft_sim::sim::{ActorId, Ctx};

use crate::config::ReplicaConfig;
use crate::engine::raft_family::RaftBase;
use crate::engine::{self, EngineCore, ProtocolRules, ReplicaEngine};
use crate::kv::Command;
use crate::log::{Entry, Log};
use crate::msg::{Msg, RaftMsg};
use crate::snapshot::{Snapshot, SnapshotStats};
use crate::types::{max_failures, me_bit, quorum, Slot, Term};

pub use crate::engine::raft_family::Role;

/// A standard Raft replica: the shared engine running [`RaftRules`].
pub type RaftReplica = ReplicaEngine<RaftRules>;

/// What standard Raft adds on top of the engine and [`RaftBase`]: the
/// plain up-to-date vote rule, truncating append acceptance, and the
/// 5.4.2 commit rule.
pub struct RaftRules {
    base: RaftBase,
}

impl RaftReplica {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ReplicaConfig) -> Self {
        cfg.validate().expect("invalid replica config");
        let n = cfg.n;
        ReplicaEngine::from_parts(
            EngineCore::new(cfg),
            RaftRules {
                base: RaftBase::new(n),
            },
        )
    }

    /// Current term.
    pub fn current_term(&self) -> Term {
        self.rules.base.current_term
    }

    /// The replica's log (for convergence tests).
    pub fn log(&self) -> &Log {
        &self.rules.base.log
    }

    /// Commit index.
    pub fn commit_index(&self) -> Slot {
        self.rules.base.commit_index
    }
}

impl RaftRules {
    /// Figure 2a `RequestVote`: campaign with a fresh owned term.
    fn start_election(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.base.begin_election(core, ctx);
        self.try_become_leader(core, ctx); // n = 1 degenerate case
    }

    fn try_become_leader(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if self.base.role != Role::Candidate
            || (self.base.votes.count_ones() as usize) < quorum(core.cfg.n)
        {
            return;
        }
        self.base.role = Role::Leader;
        core.leader_hint = Some(core.cfg.id);
        // Optimistically assume followers hold our pre-existing log; the
        // no-op of the new term below lets the leader commit the tail of
        // its log under the Section-5.4.2 restriction.
        self.base
            .repl
            .reset_for_leadership(self.base.log.last_index());
        core.pipe.reset();
        let noop = Entry {
            term: self.base.current_term,
            bal: self.base.current_term,
            cmd: Command::noop(),
        };
        let bytes = noop.size_bytes();
        self.base.log.append(noop);
        self.base
            .note_append_durable(core, ctx, bytes, 1, self.base.log.last_index());
        self.base.broadcast_append(core, ctx);
        core.arm_heartbeat(ctx);
        engine::flush_pending(self, core, ctx);
    }

    /// Advances `commit_index` using the 5.4.2 rule: only entries of the
    /// current term commit by counting.
    fn advance_commit(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if self.base.role != Role::Leader {
            return;
        }
        let f = max_failures(core.cfg.n);
        // The f-th largest follower match is replicated on f followers +
        // the leader = a majority — but the leader's copy only counts
        // once locally durable, so the target is clamped by the fsynced
        // tail (no-op when durability is disabled). Without the clamp,
        // f durable followers plus the leader's volatile copy could
        // commit an entry that a leader crash erases from the one
        // replica a future election quorum might be counting on.
        let tally = self.base.repl.kth_largest_match(f, core.cfg.id);
        let quorum_match = tally.min(self.base.durable_tail(core));
        // Span bookkeeping: the term-checked tally *before* the
        // durability clamp is the replication-quorum instant — from
        // here, only the fsync holds commit back.
        if self.base.log.term_at(tally) == Some(self.base.current_term) {
            self.base.note_quorum(ctx, tally);
        }
        if quorum_match > self.base.commit_index
            && self.base.log.term_at(quorum_match) == Some(self.base.current_term)
        {
            self.base.commit_index = quorum_match;
            self.apply_committed(core, ctx);
        }
    }

    fn apply_committed(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.base.apply_loop(core, ctx);
        self.base.maybe_compact(core, ctx);
    }

    fn on_raft(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, from: ActorId, msg: RaftMsg) {
        match msg {
            RaftMsg::RequestVote {
                term,
                last_idx,
                last_term,
            } => {
                if term > self.base.current_term {
                    // Adopt the term, then apply Raft's up-to-date check.
                    let up_to_date = (last_term, last_idx)
                        >= (self.base.log.last_term(), self.base.log.last_index());
                    self.base.step_down(core, term, ctx);
                    core.leader_hint = None;
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::Vote {
                            term,
                            granted: up_to_date,
                            extra_start: Slot::NONE,
                            extra: Vec::new(),
                        }),
                    );
                }
            }
            RaftMsg::Vote { term, granted, .. } => {
                if term > self.base.current_term {
                    self.base.step_down(core, term, ctx);
                } else if term == self.base.current_term && granted {
                    self.base.votes |= me_bit(core.cfg.node_of(from));
                    self.try_become_leader(core, ctx);
                }
            }
            RaftMsg::Append {
                term,
                prev,
                prev_term,
                entries,
                commit,
                window_room,
            } => {
                if term < self.base.current_term {
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::AppendReject {
                            term: self.base.current_term,
                            last_idx: self.base.log.last_index(),
                        }),
                    );
                    return;
                }
                self.base.current_term = term;
                self.base.role = Role::Follower;
                core.leader_hint = Some(term.owner(core.cfg.n));
                core.note_window_hint(window_room, ctx.now());
                self.base.arm_election(core, ctx);
                let bytes: usize = entries.iter().map(Entry::size_bytes).sum();
                ctx.charge(
                    core.cfg.costs.append_fixed
                        + core.cfg.costs.append_per_cmd * entries.len().max(1) as u64
                        + core.cfg.costs.size_cost(bytes),
                );
                // Entries at or below our compaction floor are applied
                // committed state: skip the overlap and anchor the
                // consistency check at the floor instead.
                let (floor, floor_term) = self.base.log.last_included();
                let (prev, prev_term, entries) = if prev < floor {
                    let overlap = (floor.0 - prev.0) as usize;
                    if entries.len() <= overlap {
                        // Nothing beyond the snapshot: everything the
                        // leader sent is already covered. The ack still
                        // attests to log content, so it rides the
                        // ack-after-fsync path (immediate when nothing
                        // is unsynced).
                        let ok = Msg::Raft(RaftMsg::AppendOk {
                            term: self.base.current_term,
                            last_idx: floor,
                            holders: Vec::new(),
                        });
                        core.ack_after_sync(ctx, from, ok);
                        return;
                    }
                    (floor, floor_term, entries[overlap..].to_vec())
                } else {
                    (prev, prev_term, entries)
                };
                if !self.base.log.matches(prev, prev_term) {
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::AppendReject {
                            term: self.base.current_term,
                            last_idx: self.base.log.last_index().min(prev),
                        }),
                    );
                    return;
                }
                // Raft conflict handling: truncate at the first mismatch,
                // then append what is missing. Matching existing entries
                // are kept (and a longer non-conflicting log survives).
                let mut idx = prev;
                let mut to_append = Vec::new();
                for e in entries.iter() {
                    idx = idx.next();
                    match self.base.log.term_at(idx) {
                        Some(t) if t == e.term => continue,
                        Some(_) => {
                            // The truncated suffix's durability no
                            // longer speaks for these indexes: clamp
                            // the fsynced watermark (and any in-flight
                            // fsync claims) below the rewrite point
                            // before recording the replacement write.
                            self.base.note_rewrite_from(idx);
                            self.base.log.truncate_from(idx);
                            to_append.push(e.clone());
                        }
                        None => to_append.push(e.clone()),
                    }
                }
                let appended = to_append.len();
                let appended_bytes: usize = to_append.iter().map(Entry::size_bytes).sum();
                for e in to_append {
                    self.base.log.append(e);
                }
                let match_through = Slot(prev.0 + entries.len() as u64);
                if appended > 0 {
                    self.base.note_append_durable(
                        core,
                        ctx,
                        appended_bytes,
                        appended,
                        match_through,
                    );
                }
                if commit > self.base.commit_index {
                    self.base.commit_index = Slot(commit.0.min(match_through.0));
                    self.apply_committed(core, ctx);
                }
                // Acked only after the entries it vouches for are
                // fsynced (group commit batches the fsync; see the
                // module docs for the safety argument).
                let ok = Msg::Raft(RaftMsg::AppendOk {
                    term: self.base.current_term,
                    last_idx: match_through,
                    holders: Vec::new(),
                });
                core.ack_after_sync(ctx, from, ok);
            }
            RaftMsg::AppendOk { term, last_idx, .. } => {
                if term > self.base.current_term {
                    self.base.step_down(core, term, ctx);
                } else if term == self.base.current_term && self.base.role == Role::Leader {
                    ctx.charge(core.cfg.costs.ack_process);
                    let peer = core.cfg.node_of(from);
                    core.pipe.on_ack(peer, last_idx);
                    if self.base.repl.on_ack(peer, last_idx) {
                        self.advance_commit(core, ctx);
                    }
                    // The freed window slot may have a backlog waiting.
                    self.base.pump(core, ctx, peer);
                }
            }
            RaftMsg::AppendReject { term, last_idx } => {
                if term > self.base.current_term {
                    self.base.step_down(core, term, ctx);
                } else if term == self.base.current_term && self.base.role == Role::Leader {
                    // Back off toward the follower's tail and re-probe;
                    // in-flight rounds to that follower are dead.
                    let peer = core.cfg.node_of(from);
                    self.base.repl.on_reject(peer, last_idx);
                    core.pipe.on_regress(peer);
                    self.base.send_append_to(core, ctx, peer);
                }
            }
        }
    }
}

impl ProtocolRules for RaftRules {
    fn can_propose(&self, _core: &EngineCore) -> bool {
        self.base.role == Role::Leader
    }

    fn applied_index(&self, _core: &EngineCore) -> Slot {
        self.base.last_applied
    }

    fn propose(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, cmds: Vec<Command>) {
        let count = cmds.len();
        let mut bytes = 0;
        for cmd in cmds {
            let e = Entry {
                term: self.base.current_term,
                bal: self.base.current_term,
                cmd,
            };
            bytes += e.size_bytes();
            self.base.log.append(e);
        }
        // The leader's own copy is a disk write too; commit advance is
        // clamped by `durable_tail` until its fsync lands.
        self.base
            .note_append_durable(core, ctx, bytes, count, self.base.log.last_index());
        self.base.broadcast_append(core, ctx);
    }

    fn on_start(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.base.arm_election(core, ctx);
    }

    fn on_election_timeout(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.start_election(core, ctx);
    }

    fn on_heartbeat(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.base.heartbeat(core, ctx);
    }

    fn on_msg(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, from: ActorId, msg: Msg) {
        if let Msg::Raft(m) = msg {
            self.on_raft(core, ctx, from, m);
        }
    }

    fn accept_snapshot_chunk(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        seal: Term,
    ) -> bool {
        self.base.accept_snapshot_chunk(core, ctx, from, seal)
    }

    fn install_snapshot(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        snap: Snapshot,
    ) {
        self.base.install_snapshot(core, ctx, snap);
        self.base.ack_snapshot(core, ctx, from);
    }

    fn on_snapshot_ack(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        seal: Term,
        upto: Slot,
    ) {
        if self.base.on_snapshot_ack(core, ctx, from, seal, upto) {
            self.advance_commit(core, ctx);
        }
    }

    fn decorate_stats(&self, stats: &mut SnapshotStats) {
        self.base.decorate_stats(stats);
    }

    fn on_durable(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        // An fsync landed: absorb the new durable watermark and re-run
        // the commit tally — the leader's own contribution may have
        // just become countable.
        self.base.absorb_synced(core);
        self.advance_commit(core, ctx);
    }

    fn on_crash(&mut self, core: &mut EngineCore) {
        self.base.crash_reset(core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{cluster_with, drive_until, TestClient};
    use crate::types::NodeId;
    use paxraft_sim::sim::Simulation;
    use paxraft_sim::time::{SimDuration, SimTime};

    fn raft_cluster(n: usize) -> (Simulation<Msg>, Vec<ActorId>, ActorId) {
        cluster_with(n, |mut cfg| {
            cfg.initial_leader = Some(NodeId(0));
            Box::new(RaftReplica::new(cfg))
        })
    }

    #[test]
    fn logs_converge_across_replicas() {
        let (mut sim, replicas, client) = raft_cluster(5);
        for k in 0..20 {
            sim.actor_mut::<TestClient>(client).enqueue_put(k);
        }
        assert!(drive_until(&mut sim, SimTime::from_secs(20), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 20
        }));
        sim.run_for(SimDuration::from_secs(2)); // let heartbeats sync commit
        let log0: Vec<_> = sim
            .actor::<RaftReplica>(replicas[0])
            .log()
            .iter()
            .map(|(s, e)| (s, e.term, e.cmd.id))
            .collect();
        for &r in &replicas[1..] {
            let lr: Vec<_> = sim
                .actor::<RaftReplica>(r)
                .log()
                .iter()
                .map(|(s, e)| (s, e.term, e.cmd.id))
                .collect();
            assert_eq!(lr, log0, "log matching across replicas");
        }
    }

    #[test]
    fn partitioned_leader_truncates_divergent_suffix_on_rejoin() {
        let (mut sim, replicas, client) = raft_cluster(3);
        sim.actor_mut::<TestClient>(client).enqueue_put(1);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        }));
        // Isolate the leader with the client; leader appends entries it
        // can never commit.
        let t0 = sim.now();
        // Groups cover replicas 0..2 plus the client (with the leader).
        sim.partition_at(vec![0, 1, 1, 0], t0 + SimDuration::from_millis(1));
        sim.actor_mut::<TestClient>(client).enqueue_put(7);
        // Run long enough for {1,2} to elect a new leader.
        sim.run_for(SimDuration::from_secs(8));
        let old_leader_log_len = sim.actor::<RaftReplica>(replicas[0]).log().len();
        assert!(
            sim.actor::<RaftReplica>(replicas[1]).is_leader()
                || sim.actor::<RaftReplica>(replicas[2]).is_leader(),
            "majority side elected a new leader"
        );
        // Heal; client fails over; the divergent suffix must be erased.
        sim.heal_at(sim.now() + SimDuration::from_millis(1));
        sim.actor_mut::<TestClient>(client).target = replicas[1];
        assert!(drive_until(&mut sim, SimTime::from_secs(30), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 2
        }));
        sim.run_for(SimDuration::from_secs(2));
        let log0: Vec<_> = sim
            .actor::<RaftReplica>(replicas[0])
            .log()
            .iter()
            .map(|(s, e)| (s, e.term, e.cmd.id))
            .collect();
        let log1: Vec<_> = sim
            .actor::<RaftReplica>(replicas[1])
            .log()
            .iter()
            .map(|(s, e)| (s, e.term, e.cmd.id))
            .collect();
        assert_eq!(log0, log1, "rejoined leader truncated and converged");
        let _ = old_leader_log_len;
    }

    #[test]
    fn committed_entries_survive_leader_change() {
        let (mut sim, replicas, client) = raft_cluster(5);
        for k in 0..5 {
            sim.actor_mut::<TestClient>(client).enqueue_put(k);
        }
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 5
        }));
        let committed = sim.actor::<RaftReplica>(replicas[0]).commit_index();
        sim.crash_at(replicas[0], sim.now() + SimDuration::from_millis(1));
        sim.actor_mut::<TestClient>(client).target = replicas[1];
        sim.actor_mut::<TestClient>(client).enqueue_get(3);
        assert!(drive_until(&mut sim, SimTime::from_secs(30), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 6
        }));
        // The read must see the committed write to key 3.
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[5].1.value_id().is_some(),
            "committed write preserved"
        );
        assert!(committed.0 >= 5);
    }
}
