//! Standard Raft (Section 2.1, Figure 2 *without* the blue Raft* code).
//!
//! The two behaviours that distinguish Raft from Raft* (Section 3) are
//! implemented here exactly as Raft specifies them:
//!
//! 1. **Followers erase extraneous entries**: a follower whose log
//!    conflicts with (or extends past) the leader's AppendEntries payload
//!    truncates its suffix ([`crate::log::Log::truncate_from`]). This is
//!    the state transition that has no MultiPaxos counterpart.
//! 2. **Entry terms are never rewritten**: a leader replicates previously
//!    uncommitted entries with their original terms, which forces the
//!    extra commit restriction of the Raft paper's Section 5.4.2 — a
//!    leader only counts replicas for entries of its *own* term.
//!
//! One engineering liberty shared by all our replicas: terms use the
//! Paxos ballot encoding `round * n + node` so every term has a unique
//! owner. This replaces Raft's per-term `votedFor` vote splitting (a
//! node grants at most one vote per term by construction) without
//! changing any other behaviour.

use paxraft_sim::impl_actor_any;
use paxraft_sim::sim::{Actor, ActorId, Ctx};
use paxraft_sim::time::SimDuration;

use crate::config::ReplicaConfig;
use crate::kv::{Command, KvStore};
use crate::log::{Entry, Log};
use crate::msg::{ClientMsg, Msg, RaftMsg};
use crate::replicate::Replicator;
use crate::snapshot::{self, Snapshot, SnapshotAssembler, SnapshotSender, SnapshotStats};
use crate::types::{max_failures, quorum, NodeId, Slot, Term};

const T_ELECTION: u64 = 1 << 48;
const T_HEARTBEAT: u64 = 2 << 48;
const T_BATCH: u64 = 3 << 48;
const KIND_MASK: u64 = 0xFFFF << 48;

/// Raft roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive replica.
    Follower,
    /// Campaigning for leadership.
    Candidate,
    /// Elected leader.
    Leader,
}

/// A standard Raft replica.
pub struct RaftReplica {
    cfg: ReplicaConfig,
    current_term: Term,
    role: Role,
    leader_hint: Option<NodeId>,
    log: Log,
    commit_index: Slot,
    last_applied: Slot,
    kv: KvStore,
    votes: u64,
    repl: Replicator,
    pending: Vec<Command>,
    batch_armed: bool,
    election_gen: u64,
    heartbeat_gen: u64,
    /// Reassembles incoming snapshot chunks (follower side).
    snap_asm: SnapshotAssembler,
    /// Per-peer transfer rate-limiting (leader side).
    snap_send: SnapshotSender,
    /// The durable snapshot the log was last compacted against (models
    /// the on-disk snapshot file); restored on crash-restart because the
    /// compacted log prefix can no longer be replayed.
    stable_snap: Option<Snapshot>,
    snap_stats: SnapshotStats,
    /// Client responses sent (stats).
    pub responses_sent: u64,
}

impl RaftReplica {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ReplicaConfig) -> Self {
        cfg.validate().expect("invalid replica config");
        let n = cfg.n;
        RaftReplica {
            cfg,
            current_term: Term::ZERO,
            role: Role::Follower,
            leader_hint: None,
            log: Log::new(),
            commit_index: Slot::NONE,
            last_applied: Slot::NONE,
            kv: KvStore::new(),
            votes: 0,
            repl: Replicator::new(n),
            pending: Vec::new(),
            batch_armed: false,
            election_gen: 0,
            heartbeat_gen: 0,
            snap_asm: SnapshotAssembler::default(),
            snap_send: SnapshotSender::new(n),
            stable_snap: None,
            snap_stats: SnapshotStats::default(),
            responses_sent: 0,
        }
    }

    /// Whether this replica is the leader.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Current term.
    pub fn current_term(&self) -> Term {
        self.current_term
    }

    /// The replica's log (for convergence tests).
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// Commit index.
    pub fn commit_index(&self) -> Slot {
        self.commit_index
    }

    /// Read-only state machine access.
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// Compaction / snapshot-transfer counters, peaks included.
    pub fn snap_stats(&self) -> SnapshotStats {
        let mut s = self.snap_stats;
        s.note_log_size(self.log.peak_entries(), self.log.peak_bytes());
        s
    }

    fn me_bit(&self) -> u64 {
        1 << self.cfg.id.0
    }

    fn arm_election(&mut self, ctx: &mut Ctx<Msg>) {
        self.election_gen += 1;
        let span = self.cfg.election_max.as_nanos() - self.cfg.election_min.as_nanos();
        let delay =
            if self.cfg.initial_leader == Some(self.cfg.id) && self.current_term == Term::ZERO {
                SimDuration::from_millis(5)
            } else {
                self.cfg.election_min + SimDuration::from_nanos(ctx.rng().gen_range(span.max(1)))
            };
        ctx.set_timer(delay, T_ELECTION | self.election_gen);
    }

    fn arm_heartbeat(&mut self, ctx: &mut Ctx<Msg>) {
        self.heartbeat_gen += 1;
        ctx.set_timer(self.cfg.heartbeat, T_HEARTBEAT | self.heartbeat_gen);
    }

    fn arm_batch(&mut self, ctx: &mut Ctx<Msg>) {
        if !self.batch_armed {
            self.batch_armed = true;
            ctx.set_timer(self.cfg.batch_delay, T_BATCH);
        }
    }

    fn step_down(&mut self, term: Term, ctx: &mut Ctx<Msg>) {
        self.current_term = term;
        self.role = Role::Follower;
        self.arm_election(ctx);
    }

    /// Figure 2a `RequestVote`: campaign with a fresh owned term.
    fn start_election(&mut self, ctx: &mut Ctx<Msg>) {
        self.current_term = self.current_term.next_for(self.cfg.id, self.cfg.n);
        self.role = Role::Candidate;
        self.leader_hint = None;
        self.votes = self.me_bit();
        for peer in self.cfg.others() {
            ctx.send(
                self.cfg.peer(peer),
                Msg::Raft(RaftMsg::RequestVote {
                    term: self.current_term,
                    last_idx: self.log.last_index(),
                    last_term: self.log.last_term(),
                }),
            );
        }
        self.arm_election(ctx);
        self.try_become_leader(ctx); // n = 1 degenerate case
    }

    fn try_become_leader(&mut self, ctx: &mut Ctx<Msg>) {
        if self.role != Role::Candidate || (self.votes.count_ones() as usize) < quorum(self.cfg.n) {
            return;
        }
        self.role = Role::Leader;
        self.leader_hint = Some(self.cfg.id);
        // Optimistically assume followers hold our pre-existing log; the
        // no-op of the new term below lets the leader commit the tail of
        // its log under the Section-5.4.2 restriction.
        self.repl.reset_for_leadership(self.log.last_index());
        self.log.append(Entry {
            term: self.current_term,
            bal: self.current_term,
            cmd: Command::noop(),
        });
        self.broadcast_append(ctx);
        self.arm_heartbeat(ctx);
        self.flush_pending(ctx);
    }

    /// Sends each follower its tailored suffix.
    fn broadcast_append(&mut self, ctx: &mut Ctx<Msg>) {
        let peers: Vec<NodeId> = self.cfg.others().collect();
        for peer in peers {
            self.send_append_to(ctx, peer);
        }
    }

    fn send_append_to(&mut self, ctx: &mut Ctx<Msg>, peer: NodeId) {
        let mut prev = self.repl.next_prev(peer);
        if prev < self.log.last_included().0 {
            // The follower's next entry was compacted away: ship a
            // snapshot instead of (unavailable) log entries, then
            // pipeline the retained suffix behind it — FIFO links
            // deliver the chunks first, so the Append matches once the
            // snapshot installs.
            let Some(snap_slot) = self.send_snapshot_to(ctx, peer) else {
                return; // a transfer is in flight; let it finish
            };
            prev = snap_slot;
        }
        let prev_term = self.log.term_at(prev).unwrap_or(Term::ZERO);
        let entries = self.log.suffix_from(prev);
        self.repl
            .mark_sent(peer, prev, self.log.last_index(), ctx.now());
        ctx.send(
            self.cfg.peer(peer),
            Msg::Raft(RaftMsg::Append {
                term: self.current_term,
                prev,
                prev_term,
                entries,
                commit: self.commit_index,
            }),
        );
    }

    /// Ships the current state-machine snapshot to `peer` in chunks,
    /// rate-limited to one transfer per retry interval. Returns the
    /// snapshot point, or `None` when a transfer is already in flight.
    fn send_snapshot_to(&mut self, ctx: &mut Ctx<Msg>, peer: NodeId) -> Option<Slot> {
        if !self
            .snap_send
            .try_begin(peer.0 as usize, ctx.now(), self.cfg.retry_interval)
        {
            return None;
        }
        let last_slot = self.last_applied;
        let last_term = self.log.term_at(last_slot).unwrap_or(Term::ZERO);
        let snap = Snapshot {
            last_slot,
            last_term,
            kv: self.kv.snapshot(),
        };
        ctx.charge(self.cfg.costs.snapshot_cost(snap.size_bytes()));
        self.snap_stats.note_sent(snap.size_bytes());
        for (offset, total, data) in snap.chunks(self.cfg.snapshot.chunk_bytes) {
            ctx.send(
                self.cfg.peer(peer),
                Msg::Raft(RaftMsg::InstallSnapshot {
                    term: self.current_term,
                    last_slot,
                    last_term,
                    offset,
                    total,
                    data,
                }),
            );
        }
        Some(last_slot)
    }

    /// Leader batch flush: append pending commands and replicate.
    fn flush_pending(&mut self, ctx: &mut Ctx<Msg>) {
        if self.role != Role::Leader {
            self.forward_pending(ctx);
            return;
        }
        if self.pending.is_empty() {
            return;
        }
        let cmds = std::mem::take(&mut self.pending);
        let bytes: usize = cmds.iter().map(Command::size_bytes).sum();
        ctx.charge(
            self.cfg.costs.propose_fixed
                + self.cfg.costs.propose_per_cmd * cmds.len() as u64
                + self.cfg.costs.size_cost(bytes),
        );
        for cmd in cmds {
            self.log.append(Entry {
                term: self.current_term,
                bal: self.current_term,
                cmd,
            });
        }
        self.broadcast_append(ctx);
    }

    fn forward_pending(&mut self, ctx: &mut Ctx<Msg>) {
        let Some(leader) = self.leader_hint else {
            if !self.pending.is_empty() {
                self.batch_armed = false;
                self.arm_batch(ctx);
            }
            return;
        };
        if leader == self.cfg.id || self.pending.is_empty() {
            return;
        }
        let cmds = std::mem::take(&mut self.pending);
        ctx.charge(self.cfg.costs.forward_per_cmd * cmds.len() as u64);
        ctx.send(self.cfg.peer(leader), Msg::Raft(RaftMsg::Forward { cmds }));
    }

    /// Advances `commit_index` using the 5.4.2 rule: only entries of the
    /// current term commit by counting.
    fn advance_commit(&mut self, ctx: &mut Ctx<Msg>) {
        if self.role != Role::Leader {
            return;
        }
        let f = max_failures(self.cfg.n);
        // The f-th largest follower match is replicated on f followers +
        // the leader = a majority.
        let quorum_match = self.repl.kth_largest_match(f, self.cfg.id);
        if quorum_match > self.commit_index
            && self.log.term_at(quorum_match) == Some(self.current_term)
        {
            self.commit_index = quorum_match;
            self.apply_committed(ctx);
        }
    }

    fn apply_committed(&mut self, ctx: &mut Ctx<Msg>) {
        while self.last_applied < self.commit_index {
            let next = self.last_applied.next();
            let Some(entry) = self.log.get(next) else {
                break;
            };
            let cmd = entry.cmd.clone();
            ctx.charge(self.cfg.costs.apply_per_cmd);
            let reply = self.kv.apply(&cmd);
            self.last_applied = next;
            if self.role == Role::Leader && cmd.id.client != u32::MAX {
                ctx.charge(self.cfg.costs.reply_fixed);
                ctx.send(
                    self.cfg.client_actor(cmd.id.client),
                    Msg::Client(ClientMsg::Response { id: cmd.id, reply }),
                );
                self.responses_sent += 1;
            }
        }
        self.maybe_compact(ctx);
    }

    /// Compacts the applied log prefix once it crosses the configured
    /// threshold, snapshotting the state machine first (the snapshot is
    /// the durable replacement for the discarded entries).
    fn maybe_compact(&mut self, ctx: &mut Ctx<Msg>) {
        if let Some(bytes) = snapshot::compact_applied_prefix(
            &self.cfg.snapshot,
            &mut self.log,
            &self.kv,
            self.last_applied,
            &mut self.stable_snap,
            &mut self.snap_stats,
        ) {
            ctx.charge(self.cfg.costs.snapshot_cost(bytes));
        }
    }

    /// Installs a fully reassembled snapshot received from the leader.
    fn install_snapshot(&mut self, ctx: &mut Ctx<Msg>, from: ActorId, snap: Snapshot) {
        let bytes = snap.size_bytes();
        if snapshot::install_into_raft_state(
            snap,
            &mut self.log,
            &mut self.kv,
            &mut self.last_applied,
            &mut self.commit_index,
            &mut self.stable_snap,
            &mut self.snap_stats,
        ) {
            ctx.charge(self.cfg.costs.snapshot_cost(bytes));
        }
        // Ack even a stale transfer: the applied prefix is committed
        // state, so the leader may treat it as matched and resume
        // normal appends from there.
        ctx.send(
            from,
            Msg::Raft(RaftMsg::SnapshotAck {
                term: self.current_term,
                last_idx: self.last_applied,
            }),
        );
    }

    fn on_raft(&mut self, ctx: &mut Ctx<Msg>, from: ActorId, msg: RaftMsg) {
        match msg {
            RaftMsg::RequestVote {
                term,
                last_idx,
                last_term,
            } => {
                if term > self.current_term {
                    // Adopt the term, then apply Raft's up-to-date check.
                    let up_to_date =
                        (last_term, last_idx) >= (self.log.last_term(), self.log.last_index());
                    self.step_down(term, ctx);
                    self.leader_hint = None;
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::Vote {
                            term,
                            granted: up_to_date,
                            extra_start: Slot::NONE,
                            extra: Vec::new(),
                        }),
                    );
                }
            }
            RaftMsg::Vote { term, granted, .. } => {
                if term > self.current_term {
                    self.step_down(term, ctx);
                } else if term == self.current_term && granted {
                    self.votes |= 1 << node_of(from).0;
                    self.try_become_leader(ctx);
                }
            }
            RaftMsg::Append {
                term,
                prev,
                prev_term,
                entries,
                commit,
            } => {
                if term < self.current_term {
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::AppendReject {
                            term: self.current_term,
                            last_idx: self.log.last_index(),
                        }),
                    );
                    return;
                }
                self.current_term = term;
                self.role = Role::Follower;
                self.leader_hint = Some(term.owner(self.cfg.n));
                self.arm_election(ctx);
                let bytes: usize = entries.iter().map(Entry::size_bytes).sum();
                ctx.charge(
                    self.cfg.costs.append_fixed
                        + self.cfg.costs.append_per_cmd * entries.len().max(1) as u64
                        + self.cfg.costs.size_cost(bytes),
                );
                // Entries at or below our compaction floor are applied
                // committed state: skip the overlap and anchor the
                // consistency check at the floor instead.
                let (floor, floor_term) = self.log.last_included();
                let (prev, prev_term, entries) = if prev < floor {
                    let overlap = (floor.0 - prev.0) as usize;
                    if entries.len() <= overlap {
                        // Nothing beyond the snapshot: everything the
                        // leader sent is already covered.
                        ctx.send(
                            from,
                            Msg::Raft(RaftMsg::AppendOk {
                                term: self.current_term,
                                last_idx: floor,
                                holders: Vec::new(),
                            }),
                        );
                        return;
                    }
                    (floor, floor_term, entries[overlap..].to_vec())
                } else {
                    (prev, prev_term, entries)
                };
                if !self.log.matches(prev, prev_term) {
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::AppendReject {
                            term: self.current_term,
                            last_idx: self.log.last_index().min(prev),
                        }),
                    );
                    return;
                }
                // Raft conflict handling: truncate at the first mismatch,
                // then append what is missing. Matching existing entries
                // are kept (and a longer non-conflicting log survives).
                let mut idx = prev;
                let mut to_append = Vec::new();
                for e in entries.iter() {
                    idx = idx.next();
                    match self.log.term_at(idx) {
                        Some(t) if t == e.term => continue,
                        Some(_) => {
                            self.log.truncate_from(idx);
                            to_append.push(e.clone());
                        }
                        None => to_append.push(e.clone()),
                    }
                }
                for e in to_append {
                    self.log.append(e);
                }
                let match_through = Slot(prev.0 + entries.len() as u64);
                if commit > self.commit_index {
                    self.commit_index = Slot(commit.0.min(match_through.0));
                    self.apply_committed(ctx);
                }
                ctx.send(
                    from,
                    Msg::Raft(RaftMsg::AppendOk {
                        term: self.current_term,
                        last_idx: match_through,
                        holders: Vec::new(),
                    }),
                );
            }
            RaftMsg::AppendOk { term, last_idx, .. } => {
                if term > self.current_term {
                    self.step_down(term, ctx);
                } else if term == self.current_term && self.role == Role::Leader {
                    ctx.charge(self.cfg.costs.ack_process);
                    if self.repl.on_ack(node_of(from), last_idx) {
                        self.advance_commit(ctx);
                    }
                }
            }
            RaftMsg::AppendReject { term, last_idx } => {
                if term > self.current_term {
                    self.step_down(term, ctx);
                } else if term == self.current_term && self.role == Role::Leader {
                    // Back off toward the follower's tail and re-probe.
                    self.repl.on_reject(node_of(from), last_idx);
                    self.send_append_to(ctx, node_of(from));
                }
            }
            RaftMsg::Forward { cmds } => {
                ctx.charge(self.cfg.costs.forward_per_cmd * cmds.len() as u64);
                self.pending.extend(cmds);
                if self.role == Role::Leader && self.pending.len() >= self.cfg.batch_max {
                    self.flush_pending(ctx);
                } else {
                    self.arm_batch(ctx);
                }
            }
            // `last_term` rides inside the encoded payload; the header
            // copy only matters for observability.
            RaftMsg::InstallSnapshot {
                term,
                last_slot,
                last_term: _,
                offset,
                total,
                data,
            } => {
                if term < self.current_term {
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::AppendReject {
                            term: self.current_term,
                            last_idx: self.log.last_index(),
                        }),
                    );
                    return;
                }
                self.current_term = term;
                self.role = Role::Follower;
                self.leader_hint = Some(term.owner(self.cfg.n));
                self.arm_election(ctx);
                ctx.charge(self.cfg.costs.append_fixed + self.cfg.costs.snapshot_cost(data.len()));
                if let Some(snap) =
                    self.snap_asm
                        .offer(from.0 as u64, last_slot, offset, total, &data)
                {
                    self.install_snapshot(ctx, from, snap);
                }
            }
            RaftMsg::SnapshotAck { term, last_idx } => {
                if term > self.current_term {
                    self.step_down(term, ctx);
                } else if term == self.current_term && self.role == Role::Leader {
                    self.snap_send.finish(node_of(from).0 as usize);
                    if self.repl.on_ack(node_of(from), last_idx) {
                        self.advance_commit(ctx);
                    }
                }
            }
        }
    }
}

fn node_of(from: ActorId) -> NodeId {
    NodeId(from.0 as u32)
}

impl Actor<Msg> for RaftReplica {
    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        self.arm_election(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Raft(m) => self.on_raft(ctx, from, m),
            Msg::Client(ClientMsg::Request { cmd }) => {
                ctx.charge(self.cfg.costs.client_req);
                self.pending.push(cmd);
                if self.role == Role::Leader && self.pending.len() >= self.cfg.batch_max {
                    self.flush_pending(ctx);
                } else {
                    self.arm_batch(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, token: u64) {
        match token & KIND_MASK {
            T_ELECTION => {
                if token & !KIND_MASK == self.election_gen && self.role != Role::Leader {
                    self.start_election(ctx);
                }
            }
            T_HEARTBEAT => {
                if token & !KIND_MASK == self.heartbeat_gen && self.role == Role::Leader {
                    let peers: Vec<NodeId> = self.cfg.others().collect();
                    for peer in peers {
                        // Timed retransmission of unacknowledged suffixes.
                        self.repl
                            .maybe_rewind(peer, ctx.now(), self.cfg.retry_interval);
                        self.send_append_to(ctx, peer);
                    }
                    self.arm_heartbeat(ctx);
                }
            }
            T_BATCH => {
                self.batch_armed = false;
                if !self.pending.is_empty() {
                    self.flush_pending(ctx);
                }
                if !self.pending.is_empty() {
                    self.arm_batch(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_crash(&mut self) {
        // Persisted: current_term, log, and the durable snapshot the log
        // was compacted against. Volatile: everything else. The state
        // machine restarts from the snapshot (the compacted prefix is
        // not replayable) and re-applies the retained log as the commit
        // index re-advances.
        self.role = Role::Follower;
        self.leader_hint = None;
        self.votes = 0;
        self.commit_index = Slot::NONE;
        self.last_applied = Slot::NONE;
        self.kv = KvStore::new();
        if let Some(snap) = &self.stable_snap {
            self.kv.restore(&snap.kv);
            self.last_applied = snap.last_slot;
            self.commit_index = snap.last_slot;
        }
        self.pending.clear();
        self.batch_armed = false;
        self.snap_asm.clear();
        self.snap_send.reset();
    }

    impl_actor_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{cluster_with, drive_until, TestClient};
    use paxraft_sim::sim::Simulation;
    use paxraft_sim::time::SimTime;

    fn raft_cluster(n: usize) -> (Simulation<Msg>, Vec<ActorId>, ActorId) {
        cluster_with(n, |mut cfg| {
            cfg.initial_leader = Some(NodeId(0));
            Box::new(RaftReplica::new(cfg))
        })
    }

    #[test]
    fn elects_initial_leader() {
        let (mut sim, replicas, _client) = raft_cluster(3);
        assert!(drive_until(&mut sim, SimTime::from_secs(2), |sim| {
            sim.actor::<RaftReplica>(replicas[0]).is_leader()
        }));
    }

    #[test]
    fn commits_and_replies() {
        let (mut sim, _replicas, client) = raft_cluster(3);
        sim.actor_mut::<TestClient>(client).enqueue_put(42);
        sim.actor_mut::<TestClient>(client).enqueue_get(42);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 2
        }));
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[1].1.value_id().is_some(),
            "read observes the write"
        );
    }

    #[test]
    fn logs_converge_across_replicas() {
        let (mut sim, replicas, client) = raft_cluster(5);
        for k in 0..20 {
            sim.actor_mut::<TestClient>(client).enqueue_put(k);
        }
        assert!(drive_until(&mut sim, SimTime::from_secs(20), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 20
        }));
        sim.run_for(SimDuration::from_secs(2)); // let heartbeats sync commit
        let log0: Vec<_> = sim
            .actor::<RaftReplica>(replicas[0])
            .log()
            .iter()
            .map(|(s, e)| (s, e.term, e.cmd.id))
            .collect();
        for &r in &replicas[1..] {
            let lr: Vec<_> = sim
                .actor::<RaftReplica>(r)
                .log()
                .iter()
                .map(|(s, e)| (s, e.term, e.cmd.id))
                .collect();
            assert_eq!(lr, log0, "log matching across replicas");
        }
    }

    #[test]
    fn leader_crash_failover() {
        let (mut sim, replicas, client) = raft_cluster(3);
        sim.actor_mut::<TestClient>(client).enqueue_put(1);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        }));
        sim.crash_at(replicas[0], sim.now() + SimDuration::from_millis(1));
        sim.actor_mut::<TestClient>(client).target = replicas[1];
        sim.actor_mut::<TestClient>(client).enqueue_put(2);
        sim.actor_mut::<TestClient>(client).enqueue_get(2);
        assert!(drive_until(&mut sim, SimTime::from_secs(30), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 3
        }));
        let c = sim.actor::<TestClient>(client);
        assert!(c.replies[2].1.value_id().is_some());
    }

    #[test]
    fn partitioned_leader_truncates_divergent_suffix_on_rejoin() {
        let (mut sim, replicas, client) = raft_cluster(3);
        sim.actor_mut::<TestClient>(client).enqueue_put(1);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        }));
        // Isolate the leader with the client; leader appends entries it
        // can never commit.
        let t0 = sim.now();
        // Groups cover replicas 0..2 plus the client (with the leader).
        sim.partition_at(vec![0, 1, 1, 0], t0 + SimDuration::from_millis(1));
        sim.actor_mut::<TestClient>(client).enqueue_put(7);
        // Run long enough for {1,2} to elect a new leader.
        sim.run_for(SimDuration::from_secs(8));
        let old_leader_log_len = sim.actor::<RaftReplica>(replicas[0]).log().len();
        assert!(
            sim.actor::<RaftReplica>(replicas[1]).is_leader()
                || sim.actor::<RaftReplica>(replicas[2]).is_leader(),
            "majority side elected a new leader"
        );
        // Heal; client fails over; the divergent suffix must be erased.
        sim.heal_at(sim.now() + SimDuration::from_millis(1));
        sim.actor_mut::<TestClient>(client).target = replicas[1];
        assert!(drive_until(&mut sim, SimTime::from_secs(30), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 2
        }));
        sim.run_for(SimDuration::from_secs(2));
        let log0: Vec<_> = sim
            .actor::<RaftReplica>(replicas[0])
            .log()
            .iter()
            .map(|(s, e)| (s, e.term, e.cmd.id))
            .collect();
        let log1: Vec<_> = sim
            .actor::<RaftReplica>(replicas[1])
            .log()
            .iter()
            .map(|(s, e)| (s, e.term, e.cmd.id))
            .collect();
        assert_eq!(log0, log1, "rejoined leader truncated and converged");
        let _ = old_leader_log_len;
    }

    #[test]
    fn committed_entries_survive_leader_change() {
        let (mut sim, replicas, client) = raft_cluster(5);
        for k in 0..5 {
            sim.actor_mut::<TestClient>(client).enqueue_put(k);
        }
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 5
        }));
        let committed = sim.actor::<RaftReplica>(replicas[0]).commit_index();
        sim.crash_at(replicas[0], sim.now() + SimDuration::from_millis(1));
        sim.actor_mut::<TestClient>(client).target = replicas[1];
        sim.actor_mut::<TestClient>(client).enqueue_get(3);
        assert!(drive_until(&mut sim, SimTime::from_secs(30), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 6
        }));
        // The read must see the committed write to key 3.
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[5].1.value_id().is_some(),
            "committed write preserved"
        );
        assert!(committed.0 >= 5);
    }
}
