//! MultiPaxos (Figure 1): a stable-leader multi-decree Paxos, expressed
//! as [`ProtocolRules`] over the shared [`ReplicaEngine`].
//!
//! Structure follows the paper's pseudocode: `Phase1a`/`Phase1b` and
//! `Phase1Succeed` elect a proposer by ballot; `Phase2a`/`Phase2b`
//! replicate values per instance; `Learn` marks instances chosen on a
//! majority of `acceptOK`s. Instances commit **out of order** (the
//! property that blocks a direct Raft→Paxos mapping, Section 3), but
//! execution still applies the log prefix in order.
//!
//! Batching, forwarding, client dedup and checkpoint transfer are
//! engine-provided; this file holds only ballots, the instance store,
//! phase-1 value adoption and the per-instance commit rule.
//!
//! # Durability (group commit)
//!
//! With a [`crate::config::DurabilityConfig`] enabled, an accepted value
//! is charged as a disk write and its `acceptOK` is routed through
//! [`EngineCore::ack_after_sync`]: a Phase2b vote is a promise that the
//! accepted value survives a crash (Paxos's acceptor-persistence
//! requirement), so it may not outrun the fsync covering it. The
//! proposer's *own* implicit acceptOK gets the same treatment — with
//! durability on, a freshly proposed instance seeds an empty ack bitmap
//! and the self-vote is added by the engine's `on_durable` hook only
//! once the local write is fsynced ([`PaxosRules::pending_self`]).
//! Crash-restart drops accepted values whose write never synced
//! ([`Instance::wseq`] beyond the durable watermark): unsynced and
//! unacked they contributed to no quorum, so dropping them cannot lose
//! chosen state — a *committed* instance that loses its value this way
//! degrades to `committed_no_value` and is re-fetched. Ballot promises
//! are modeled like Raft terms: a tiny always-durable metadata write
//! (ballots survive crashes), so `prepareOK` defers only behind
//! outstanding *value* writes.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use paxraft_sim::sim::{ActorId, Ctx};

use crate::config::ReplicaConfig;
use crate::engine::{self, EngineCore, ProtocolRules, ReplicaEngine};
use crate::kv::Command;
use crate::msg::{EngineMsg, Msg, PaxosMsg};
use crate::snapshot::Snapshot;
use crate::types::{quorum, NodeId, Slot, Term};

/// One Paxos instance (Figure 1's `s.instances[i]`).
#[derive(Debug, Clone)]
struct Instance {
    /// Highest ballot this replica accepted the value at (`instance.bal`).
    bal: Term,
    /// The accepted value (`instance.val`).
    cmd: Option<Command>,
    /// Whether the value is known chosen.
    committed: bool,
    /// Leader-side acknowledgement bitmap for the current ballot.
    acks: u64,
    /// Durability: engine write sequence of the last value write (0 when
    /// durability is disabled). A crash drops values whose write never
    /// fsynced (`wseq` beyond the durable watermark).
    wseq: u64,
}

impl Instance {
    fn empty() -> Self {
        Instance {
            bal: Term::ZERO,
            cmd: None,
            committed: false,
            acks: 0,
            wseq: 0,
        }
    }
}

/// A MultiPaxos replica (proposer + acceptor + learner): the shared
/// engine running [`PaxosRules`].
pub type MultiPaxosReplica = ReplicaEngine<PaxosRules>;

/// What MultiPaxos adds on top of the engine: ballots, the out-of-order
/// instance store, and phase-1/phase-2 semantics.
pub struct PaxosRules {
    /// Highest ballot seen (`s.ballot`).
    ballot: Term,
    /// Figure 1's `phase1Succeeded`: this replica is the active proposer.
    phase1_succeeded: bool,
    instances: BTreeMap<u64, Instance>,
    /// Chosen-slot notifications that arrived before their Accept.
    committed_no_value: BTreeSet<u64>,
    /// Leader's next unused instance id.
    next_slot: Slot,
    /// Phase-1 replies: voter → (accepted entries, log tail, checkpoint
    /// floor).
    prepare_acks: HashMap<NodeId, (Vec<(Slot, Term, Command)>, Slot, Slot)>,
    /// All instances below this are applied.
    exec_index: Slot,
    /// Checkpoint floor: instances at or below it were discarded after
    /// execution; their effects live in the state machine (and in
    /// `stable_snap`).
    compacted_through: Slot,
    /// Retained instance payload bytes (compaction byte trigger).
    instance_bytes: usize,
    /// Highest instance ever offered to each acceptor (send cursor):
    /// instances above it were cut into rounds this acceptor's full
    /// window made it skip, and are pumped to it as acks free slots.
    accept_cursor: Vec<Slot>,
    /// Executed prefix each acceptor reported on its last AcceptOk.
    acceptor_exec: Vec<Slot>,
    /// `acceptor_exec` as of the previous heartbeat: a report that did
    /// not move between heartbeats marks a *stalled* acceptor (gap in
    /// its instances), as opposed to one merely trailing by a WAN
    /// round-trip.
    acceptor_exec_prev: Vec<Slot>,
    /// Durability: proposals whose *own* acceptOK awaits the local
    /// fsync, as (write seq, ballot, slots). Drained by `on_durable`;
    /// empty when durability is disabled (the self-vote is immediate).
    pending_self: Vec<(u64, Term, Vec<Slot>)>,
}

impl MultiPaxosReplica {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ReplicaConfig) -> Self {
        cfg.validate().expect("invalid replica config");
        let n = cfg.n;
        ReplicaEngine::from_parts(
            EngineCore::new(cfg),
            PaxosRules {
                ballot: Term::ZERO,
                phase1_succeeded: false,
                instances: BTreeMap::new(),
                committed_no_value: BTreeSet::new(),
                next_slot: Slot(1),
                prepare_acks: HashMap::new(),
                exec_index: Slot::NONE,
                compacted_through: Slot::NONE,
                instance_bytes: 0,
                accept_cursor: vec![Slot::NONE; n],
                acceptor_exec: vec![Slot::NONE; n],
                acceptor_exec_prev: vec![Slot::NONE; n],
                pending_self: Vec::new(),
            },
        )
    }

    /// The current ballot.
    pub fn ballot(&self) -> Term {
        self.rules.ballot
    }

    /// Applied prefix (for tests).
    pub fn exec_index(&self) -> Slot {
        self.rules.exec_index
    }

    /// Chosen value at a slot, if committed (for agreement tests).
    pub fn committed_at(&self, slot: Slot) -> Option<&Command> {
        let inst = self.rules.instances.get(&slot.0)?;
        if inst.committed {
            inst.cmd.as_ref()
        } else {
            None
        }
    }

    /// Retained (uncompacted) instances.
    pub fn retained_instances(&self) -> usize {
        self.rules.instances.len()
    }
}

impl PaxosRules {
    fn arm_election(&self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        core.arm_election(ctx, self.ballot == Term::ZERO);
    }

    fn broadcast(&self, core: &EngineCore, ctx: &mut Ctx<Msg>, msg: PaxosMsg) {
        for peer in core.cfg.others() {
            ctx.send(core.cfg.peer(peer), Msg::Paxos(msg.clone()));
        }
    }

    /// Ships one pipelined Accept round: every acceptor whose window has
    /// room gets the batch now; a saturated acceptor is skipped and
    /// receives the backlog from [`PaxosRules::pump_accepts`] as its
    /// acks free slots (with the heartbeat retransmission as the
    /// loss-recovery backstop). Commits only need a quorum, so a round
    /// skipped by a minority of slow acceptors commits undelayed.
    fn send_accept_round(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        items: &[(Slot, Command)],
    ) {
        let Some(upto) = items.iter().map(|(s, _)| *s).max() else {
            return;
        };
        let peers: Vec<NodeId> = core.cfg.others().collect();
        for peer in peers {
            if !core.pipe.has_room(peer) {
                continue;
            }
            core.pipe.on_sent(peer, upto, ctx.now());
            let cur = &mut self.accept_cursor[peer.0 as usize];
            *cur = (*cur).max(upto);
            let window_room = core.pipe.quorum_has_room(core.cfg.id, core.cfg.n);
            ctx.send(
                core.cfg.peer(peer),
                Msg::Paxos(PaxosMsg::Accept {
                    ballot: self.ballot,
                    items: items.to_vec(),
                    window_room,
                }),
            );
        }
    }

    /// Ships `peer` the uncommitted instances that accumulated past its
    /// send cursor while its window was full. Called after one of its
    /// acknowledgements frees a slot — the MultiPaxos spelling of the
    /// Raft family's backlog pump.
    fn pump_accepts(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, peer: NodeId) {
        let highest = Slot(self.next_slot.0.saturating_sub(1));
        let i = peer.0 as usize;
        if self.accept_cursor[i] >= highest || !core.pipe.has_room(peer) {
            return;
        }
        let items: Vec<(Slot, Command)> = self
            .instances
            .range(self.accept_cursor[i].next().0..)
            .filter(|(_, inst)| !inst.committed)
            .filter_map(|(&s, inst)| inst.cmd.clone().map(|c| (Slot(s), c)))
            .take(64)
            .collect();
        match items.last() {
            None => {
                // Everything past the cursor is committed; Learn covers it.
                self.accept_cursor[i] = highest;
            }
            Some(&(upto, _)) => {
                self.accept_cursor[i] = if items.len() < 64 { highest } else { upto };
                core.pipe.on_sent(peer, upto, ctx.now());
                let window_room = core.pipe.quorum_has_room(core.cfg.id, core.cfg.n);
                ctx.send(
                    core.cfg.peer(peer),
                    Msg::Paxos(PaxosMsg::Accept {
                        ballot: self.ballot,
                        items,
                        window_room,
                    }),
                );
            }
        }
    }

    /// Figure 1 `Phase1a`: pick a fresh owned ballot and prepare.
    fn start_phase1(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.ballot = self.ballot.next_for(core.cfg.id, core.cfg.n);
        self.phase1_succeeded = false;
        self.prepare_acks.clear();
        // Self-votes recorded under the old ballot no longer apply.
        self.pending_self.clear();
        let from_slot = self.first_unchosen();
        // Record our own accepted instances as an implicit Phase1b reply.
        let mine = self.accepted_from(from_slot);
        let tail = self.log_tail();
        self.prepare_acks
            .insert(core.cfg.id, (mine, tail, self.compacted_through));
        self.broadcast(
            core,
            ctx,
            PaxosMsg::Prepare {
                ballot: self.ballot,
                from_slot,
            },
        );
        self.arm_election(core, ctx); // retry if this round stalls
    }

    fn first_unchosen(&self) -> Slot {
        let mut s = self.exec_index.next();
        while self
            .instances
            .get(&s.0)
            .map(|i| i.committed)
            .unwrap_or(false)
        {
            s = s.next();
        }
        s
    }

    fn log_tail(&self) -> Slot {
        self.instances
            .iter()
            .next_back()
            .map(|(&s, _)| Slot(s))
            .unwrap_or(Slot::NONE)
    }

    fn accepted_from(&self, from: Slot) -> Vec<(Slot, Term, Command)> {
        self.instances
            .range(from.0..)
            .filter_map(|(&s, inst)| inst.cmd.clone().map(|c| (Slot(s), inst.bal, c)))
            .collect()
    }

    /// Durability: charges the local disk write for freshly proposed
    /// values, tags their instances with the write sequence, and queues
    /// the proposer's *own* acceptOK for [`ProtocolRules::on_durable`].
    /// With durability disabled this only no-ops through
    /// [`EngineCore::durable_write`] (the self-vote was seeded
    /// immediately, as before).
    fn note_proposed_durable(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        items: &[(Slot, Command)],
    ) {
        if items.is_empty() {
            return;
        }
        let bytes: usize = items.iter().map(|(_, c)| c.size_bytes()).sum();
        core.durable_write(ctx, bytes, items.len());
        if !core.dur.enabled() {
            return;
        }
        let seq = core.dur.write_seq();
        let slots: Vec<Slot> = items.iter().map(|(s, _)| *s).collect();
        for s in &slots {
            if let Some(inst) = self.instances.get_mut(&s.0) {
                inst.wseq = seq;
            }
        }
        self.pending_self.push((seq, self.ballot, slots));
    }

    /// Learn tally for a set of slots that just gained an ack bit:
    /// marks newly chosen instances, broadcasts the Learn, executes.
    fn learn_tally(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, slots: &[Slot], bit: u64) {
        let q = quorum(core.cfg.n);
        let mut chosen = Vec::new();
        for slot in slots {
            if let Some(inst) = self.instances.get_mut(&slot.0) {
                inst.acks |= bit;
                if !inst.committed && inst.acks.count_ones() as usize >= q {
                    inst.committed = true;
                    chosen.push(*slot);
                }
            }
        }
        if !chosen.is_empty() {
            self.broadcast(core, ctx, PaxosMsg::Learn { slots: chosen });
            self.try_execute(core, ctx);
        }
    }

    /// Figure 1 `Phase1Succeed`: adopt safe values and go active.
    fn try_phase1_succeed(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if self.phase1_succeeded || self.prepare_acks.len() < quorum(core.cfg.n) {
            return;
        }
        // Never fill slots at or below a replying acceptor's checkpoint
        // floor: those instances are chosen but unreportable (the
        // acceptor discarded them after execution), so a no-op fill
        // would overwrite a chosen value. The acceptor ships us its
        // checkpoint alongside the PrepareOk; execution of the covered
        // prefix resumes once it installs.
        let max_floor = self
            .prepare_acks
            .values()
            .map(|(_, _, floor)| *floor)
            .max()
            .unwrap_or(Slot::NONE);
        let start = self.first_unchosen().max(max_floor.next());
        let end = self
            .prepare_acks
            .values()
            .map(|(_, tail, _)| *tail)
            .max()
            .unwrap_or(Slot::NONE);
        // safeEntry: highest accepted ballot per instance; Noop for gaps.
        let mut safe: BTreeMap<u64, (Term, Command)> = BTreeMap::new();
        for (entries, _, _) in self.prepare_acks.values() {
            for (slot, bal, cmd) in entries {
                if slot.0 < start.0 {
                    continue;
                }
                match safe.get(&slot.0) {
                    Some((b, _)) if *b >= *bal => {}
                    _ => {
                        safe.insert(slot.0, (*bal, cmd.clone()));
                    }
                }
            }
        }
        let mut items = Vec::new();
        let mut s = start;
        let me_bit = core.me_bit();
        let gated = core.dur.enabled();
        while s <= end {
            let inst = self.instances.entry(s.0).or_insert_with(Instance::empty);
            if !inst.committed {
                let cmd = safe
                    .get(&s.0)
                    .map(|(_, c)| c.clone())
                    .unwrap_or_else(Command::noop);
                inst.bal = self.ballot;
                let old = inst.cmd.replace(cmd.clone());
                // Our own acceptOK counts only once the value is on
                // disk; `on_durable` adds the bit after the fsync.
                inst.acks = if gated { 0 } else { me_bit };
                self.instance_bytes += cmd.size_bytes();
                self.instance_bytes -= old.map_or(0, |c| c.size_bytes());
                items.push((s, cmd));
            }
            s = s.next();
        }
        self.note_proposed_durable(core, ctx, &items);
        core.snap_stats
            .note_log_size(self.instances.len(), self.instance_bytes);
        self.phase1_succeeded = true;
        core.leader_hint = Some(core.cfg.id);
        core.pipe.reset();
        for c in &mut self.accept_cursor {
            *c = Slot::NONE;
        }
        self.next_slot = Slot(end.0.max(self.log_tail().0) + 1);
        self.send_accept_round(core, ctx, &items);
        core.arm_heartbeat(ctx);
        // Anything buffered while campaigning goes out now.
        engine::flush_pending(self, core, ctx);
    }

    /// Applies the contiguous committed prefix; the proposer answers
    /// clients at apply time.
    fn try_execute(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        loop {
            let next = self.exec_index.next();
            let Some(inst) = self.instances.get(&next.0) else {
                break;
            };
            if !inst.committed {
                break;
            }
            let cmd = inst.cmd.clone().expect("committed instance has a value");
            ctx.charge(core.cfg.costs.apply_per_cmd);
            let reply = engine::apply_command(core, ctx, &cmd, self.phase1_succeeded);
            self.exec_index = next;
            if self.phase1_succeeded && cmd.id.client != u32::MAX {
                core.respond(ctx, cmd.id, reply);
            }
        }
        self.maybe_compact(core, ctx);
    }

    /// Discards the executed instance prefix once it crosses the
    /// configured threshold, checkpointing the state machine first.
    fn maybe_compact(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if !core.cfg.snapshot.enabled() {
            return;
        }
        let executed_retained = (self.exec_index.0 - self.compacted_through.0) as usize;
        if !core
            .cfg
            .snapshot
            .should_compact(executed_retained, self.instance_bytes)
        {
            return;
        }
        let snap = Snapshot {
            last_slot: self.exec_index,
            last_term: Term::ZERO,
            kv: core.kv.snapshot(),
        };
        ctx.charge(core.cfg.costs.snapshot_cost(snap.size_bytes()));
        // The checkpoint file replaces the discarded instances as their
        // durable form; charge its write (modeled atomic, no ack waits
        // on it — see `raft_family::RaftBase::maybe_compact`).
        core.durable_write(ctx, snap.size_bytes(), 1);
        let retained = self.instances.split_off(&(self.exec_index.0 + 1));
        let discarded = self.instances.len();
        for inst in self.instances.values() {
            self.instance_bytes -= inst.cmd.as_ref().map_or(0, Command::size_bytes);
        }
        self.instances = retained;
        self.committed_no_value = self.committed_no_value.split_off(&(self.exec_index.0 + 1));
        self.compacted_through = self.exec_index;
        core.stable_snap = Some(snap);
        core.snap_stats.compactions += 1;
        core.snap_stats.entries_discarded += discarded as u64;
    }

    fn on_paxos(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        msg: PaxosMsg,
    ) {
        match msg {
            PaxosMsg::Prepare { ballot, from_slot } => {
                // Figure 1 Phase1b.
                if ballot > self.ballot {
                    self.ballot = ballot;
                    self.phase1_succeeded = false;
                    core.leader_hint = Some(ballot.owner(core.cfg.n));
                    self.arm_election(core, ctx);
                    // The promise itself is free always-durable metadata
                    // (see the module docs), but the reply reports
                    // accepted *values*; deferring it behind any
                    // outstanding value write keeps the report's
                    // contents crash-stable.
                    let ok = Msg::Paxos(PaxosMsg::PrepareOk {
                        ballot,
                        entries: self.accepted_from(from_slot),
                        log_tail: self.log_tail(),
                        floor: self.compacted_through,
                    });
                    core.ack_after_sync(ctx, from, ok);
                    // The candidate asks for instances we checkpointed
                    // away: ship the checkpoint so it can execute the
                    // covered prefix it will never see as entries.
                    if from_slot <= self.compacted_through {
                        engine::ship_snapshot(
                            core,
                            ctx,
                            core.cfg.node_of(from),
                            (self.exec_index, Term::ZERO),
                            self.ballot,
                        );
                    }
                }
            }
            PaxosMsg::PrepareOk {
                ballot,
                entries,
                log_tail,
                floor,
            } => {
                if ballot == self.ballot && !self.phase1_succeeded {
                    let node = core.cfg.node_of(from);
                    self.prepare_acks.insert(node, (entries, log_tail, floor));
                    self.try_phase1_succeed(core, ctx);
                }
            }
            PaxosMsg::Accept {
                ballot,
                items,
                window_room,
            } => {
                // Figure 1 Phase2b.
                if ballot >= self.ballot {
                    if ballot > self.ballot {
                        self.ballot = ballot;
                        self.phase1_succeeded = false;
                    }
                    core.leader_hint = Some(ballot.owner(core.cfg.n));
                    core.note_window_hint(window_room, ctx.now());
                    let bytes: usize = items.iter().map(|(_, c)| c.size_bytes()).sum();
                    ctx.charge(
                        core.cfg.costs.append_fixed
                            + core.cfg.costs.append_per_cmd * items.len() as u64
                            + core.cfg.costs.size_cost(bytes),
                    );
                    let mut slots = Vec::with_capacity(items.len());
                    let mut below_floor = false;
                    let mut written = Vec::new();
                    let mut written_bytes = 0usize;
                    for (slot, cmd) in items {
                        if slot <= self.compacted_through {
                            // Checkpointed away: the instance is chosen
                            // and executed here; a proposer asking about
                            // it is behind our floor.
                            below_floor = true;
                            continue;
                        }
                        let inst = self.instances.entry(slot.0).or_insert_with(Instance::empty);
                        if !inst.committed {
                            inst.bal = ballot;
                            written_bytes += cmd.size_bytes();
                            written.push(slot);
                            self.instance_bytes += cmd.size_bytes();
                            self.instance_bytes -=
                                inst.cmd.replace(cmd).map_or(0, |c| c.size_bytes());
                            if self.committed_no_value.remove(&slot.0) {
                                inst.committed = true;
                            }
                        }
                        slots.push(slot);
                    }
                    // The freshly accepted values are one disk write;
                    // tag their instances so a crash before the
                    // covering fsync drops exactly them.
                    if !written.is_empty() {
                        core.durable_write(ctx, written_bytes, written.len());
                        if core.dur.enabled() {
                            let seq = core.dur.write_seq();
                            for s in &written {
                                if let Some(inst) = self.instances.get_mut(&s.0) {
                                    inst.wseq = seq;
                                }
                            }
                        }
                    }
                    core.snap_stats
                        .note_log_size(self.instances.len(), self.instance_bytes);
                    self.arm_election(core, ctx); // accepts double as heartbeats
                                                  // Phase2b promises the accepted values survive a
                                                  // crash: the acceptOK leaves only after the fsync
                                                  // covering them (group commit batches the fsync).
                    let ok = Msg::Paxos(PaxosMsg::AcceptOk {
                        ballot,
                        slots,
                        exec: self.exec_index,
                    });
                    core.ack_after_sync(ctx, from, ok);
                    if below_floor {
                        engine::ship_snapshot(
                            core,
                            ctx,
                            core.cfg.node_of(from),
                            (self.exec_index, Term::ZERO),
                            self.ballot,
                        );
                    }
                    self.try_execute(core, ctx);
                }
            }
            PaxosMsg::AcceptOk {
                ballot,
                slots,
                exec,
            } => {
                // Figure 1 Learn.
                let node = core.cfg.node_of(from);
                if exec > self.acceptor_exec[node.0 as usize] {
                    self.acceptor_exec[node.0 as usize] = exec;
                }
                if let Some(&upto) = slots.iter().max() {
                    core.pipe.on_ack(node, upto);
                }
                if ballot == self.ballot && self.phase1_succeeded {
                    ctx.charge(core.cfg.costs.ack_process);
                    let bit = 1u64 << node.0;
                    let mut chosen = Vec::new();
                    for slot in slots {
                        if let Some(inst) = self.instances.get_mut(&slot.0) {
                            inst.acks |= bit;
                            if !inst.committed
                                && inst.acks.count_ones() as usize >= quorum(core.cfg.n)
                            {
                                inst.committed = true;
                                chosen.push(slot);
                            }
                        }
                    }
                    // An acceptor's executed prefix is chosen globally.
                    // Instances we proposed at our own ballot (i.e.
                    // after a successful phase 1) need no quorum count
                    // there: their value agrees with the chosen one by
                    // the phase-1 safety argument. Stale-ballot values
                    // may differ from what was chosen, so they must
                    // wait for a Learn or checkpoint instead.
                    for (&s, inst) in self.instances.range_mut(..=exec.0) {
                        if !inst.committed && inst.cmd.is_some() && inst.bal == self.ballot {
                            inst.committed = true;
                            chosen.push(Slot(s));
                        }
                    }
                    if !chosen.is_empty() {
                        self.broadcast(core, ctx, PaxosMsg::Learn { slots: chosen });
                        self.try_execute(core, ctx);
                    }
                    // The freed window slot may have a backlog waiting.
                    self.pump_accepts(core, ctx, node);
                }
            }
            PaxosMsg::Learn { slots } => {
                for slot in slots {
                    if slot <= self.compacted_through {
                        continue; // already executed and checkpointed
                    }
                    match self.instances.get_mut(&slot.0) {
                        Some(inst) if inst.cmd.is_some() => inst.committed = true,
                        _ => {
                            self.committed_no_value.insert(slot.0);
                        }
                    }
                }
                self.try_execute(core, ctx);
            }
        }
    }

    /// Heartbeat: retransmit uncommitted instances, re-Learn committed
    /// ones, and catch lagging acceptors up — by instance replay while
    /// their gap is still retained, by checkpoint once it is not.
    fn heartbeat(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if !self.phase1_succeeded {
            return;
        }
        // Rounds whose acks never came are presumed lost; the heartbeat
        // retransmission below re-covers their instances, so the window
        // must not stay pinned by them.
        core.pipe.expire_stale(ctx.now(), core.cfg.retry_interval);
        let retransmit: Vec<(Slot, Command)> = self
            .instances
            .range(self.exec_index.next().0..)
            .filter(|(_, i)| !i.committed)
            .filter_map(|(&s, i)| i.cmd.clone().map(|c| (Slot(s), c)))
            .collect();
        let committed: Vec<Slot> = self
            .instances
            .range(self.exec_index.0.saturating_sub(64)..)
            .filter(|(_, i)| i.committed)
            .map(|(&s, _)| Slot(s))
            .collect();
        // The heartbeat Accept doubles as the hint refresh: even an idle
        // cluster re-teaches acceptors the proposer's window occupancy.
        let window_room = core.pipe.quorum_has_room(core.cfg.id, core.cfg.n);
        self.broadcast(
            core,
            ctx,
            PaxosMsg::Accept {
                ballot: self.ballot,
                items: retransmit,
                window_room,
            },
        );
        if !committed.is_empty() {
            self.broadcast(core, ctx, PaxosMsg::Learn { slots: committed });
        }
        // Per-acceptor catch-up, 64 instances per round to bound the
        // burst. An acceptor behind the checkpoint floor can only be
        // caught up by state transfer — the instances are gone. A
        // healthy acceptor's report always trails by a WAN round-trip,
        // so replay targets only *stalled* reports: ones that did not
        // advance between two consecutive heartbeats.
        let peers: Vec<NodeId> = core.cfg.others().collect();
        for peer in peers {
            let i = peer.0 as usize;
            let fexec = self.acceptor_exec[i];
            let stalled = fexec == self.acceptor_exec_prev[i];
            self.acceptor_exec_prev[i] = fexec;
            if fexec >= self.exec_index || !stalled {
                continue;
            }
            if fexec < self.compacted_through {
                engine::ship_snapshot(core, ctx, peer, (self.exec_index, Term::ZERO), self.ballot);
                continue;
            }
            let replay: Vec<(Slot, Command)> = self
                .instances
                .range(fexec.next().0..)
                .take(64)
                .filter(|(_, i)| i.committed)
                .filter_map(|(&s, i)| i.cmd.clone().map(|c| (Slot(s), c)))
                .collect();
            if replay.is_empty() {
                continue;
            }
            let slots: Vec<Slot> = replay.iter().map(|(s, _)| *s).collect();
            ctx.send(
                core.cfg.peer(peer),
                Msg::Paxos(PaxosMsg::Accept {
                    ballot: self.ballot,
                    items: replay,
                    window_room,
                }),
            );
            ctx.send(core.cfg.peer(peer), Msg::Paxos(PaxosMsg::Learn { slots }));
        }
        core.arm_heartbeat(ctx);
    }
}

impl ProtocolRules for PaxosRules {
    fn can_propose(&self, _core: &EngineCore) -> bool {
        self.phase1_succeeded
    }

    fn applied_index(&self, _core: &EngineCore) -> Slot {
        self.exec_index
    }

    /// Figure 1 `Phase2a`, batched.
    fn propose(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, cmds: Vec<Command>) {
        let mut items = Vec::with_capacity(cmds.len());
        // With durability on, the proposer's implicit acceptOK waits for
        // its own fsync (`on_durable` adds the bit); without it, the
        // self-vote is immediate, as before.
        let self_ack = if core.dur.enabled() { 0 } else { core.me_bit() };
        for cmd in cmds {
            let slot = self.next_slot;
            self.next_slot = self.next_slot.next();
            self.instance_bytes += cmd.size_bytes();
            self.instances.insert(
                slot.0,
                Instance {
                    bal: self.ballot,
                    cmd: Some(cmd.clone()),
                    committed: false,
                    acks: self_ack,
                    wseq: 0,
                },
            );
            items.push((slot, cmd));
        }
        self.note_proposed_durable(core, ctx, &items);
        core.snap_stats
            .note_log_size(self.instances.len(), self.instance_bytes);
        self.send_accept_round(core, ctx, &items);
    }

    fn on_start(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.arm_election(core, ctx);
    }

    fn on_election_timeout(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.start_phase1(core, ctx);
    }

    fn on_heartbeat(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.heartbeat(core, ctx);
    }

    fn on_msg(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, from: ActorId, msg: Msg) {
        if let Msg::Paxos(p) = msg {
            self.on_paxos(core, ctx, from, p);
        }
    }

    fn accept_snapshot_chunk(
        &mut self,
        _core: &mut EngineCore,
        _ctx: &mut Ctx<Msg>,
        _from: ActorId,
        seal: Term,
    ) -> bool {
        // A stale proposer's checkpoint is ignored.
        seal >= self.ballot
    }

    /// The Paxos `Checkpoint`/`CheckpointOk` spelling is leaner on the
    /// wire than Raft's `InstallSnapshot`/`SnapshotAck`.
    fn snapshot_wire_overhead(&self, costs: &crate::costs::CostModel) -> (usize, usize) {
        (costs.checkpoint_chunk_header, costs.checkpoint_ack_header)
    }

    /// Installs a fully reassembled checkpoint.
    fn install_snapshot(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        snap: Snapshot,
    ) {
        if snap.last_slot > self.exec_index {
            ctx.charge(core.cfg.costs.snapshot_cost(snap.size_bytes()));
            // The installed checkpoint is this replica's new recovery
            // floor; the ack below attests to holding it, so the write
            // is charged and the ack deferred behind its fsync.
            core.durable_write(ctx, snap.size_bytes(), 1);
            core.kv.restore(&snap.kv);
            self.exec_index = snap.last_slot;
            let retained = self.instances.split_off(&(snap.last_slot.0 + 1));
            for inst in self.instances.values() {
                self.instance_bytes -= inst.cmd.as_ref().map_or(0, Command::size_bytes);
            }
            self.instances = retained;
            self.committed_no_value = self.committed_no_value.split_off(&(snap.last_slot.0 + 1));
            self.compacted_through = self.compacted_through.max(snap.last_slot);
            if self.next_slot <= snap.last_slot {
                self.next_slot = snap.last_slot.next();
            }
            // A mid-campaign phase-1 picture is stale now; the armed
            // election timer retries with a fresh ballot.
            if !self.phase1_succeeded {
                self.prepare_acks.clear();
            }
            core.stable_snap = Some(snap.clone());
            core.snap_stats.snapshots_installed += 1;
            self.try_execute(core, ctx);
        }
        let ack = Msg::Engine(EngineMsg::SnapshotAck {
            group: core.cfg.group_id(),
            seal: self.ballot,
            upto: self.exec_index,
            header_bytes: core.snap_wire.1,
        });
        core.ack_after_sync(ctx, from, ack);
    }

    fn on_snapshot_ack(
        &mut self,
        core: &mut EngineCore,
        _ctx: &mut Ctx<Msg>,
        from: ActorId,
        _seal: Term,
        upto: Slot,
    ) {
        let node = core.cfg.node_of(from);
        core.snap_send.finish(node.0 as usize);
        if upto > self.acceptor_exec[node.0 as usize] {
            self.acceptor_exec[node.0 as usize] = upto;
        }
    }

    fn on_durable(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        // An fsync landed: the proposer's own accepted values up to the
        // durable watermark now count toward their quorums.
        if !self.phase1_succeeded || self.pending_self.is_empty() {
            return;
        }
        let synced = core.dur.synced_seq();
        let me = core.me_bit();
        let ballot = self.ballot;
        let mut ready: Vec<Slot> = Vec::new();
        self.pending_self.retain(|(seq, bal, slots)| {
            if *seq > synced {
                return true;
            }
            // Recorded under a superseded ballot: the vote no longer
            // applies (the bitmap was reseeded at the new ballot).
            if *bal == ballot {
                ready.extend_from_slice(slots);
            }
            false
        });
        if !ready.is_empty() {
            self.learn_tally(core, ctx, &ready, me);
        }
    }

    fn on_crash(&mut self, core: &mut EngineCore) {
        // Model a restart with stable storage: ballot, *fsynced*
        // accepted values, commit flags, the executed state and the
        // checkpoint persist; volatile leadership does not. With
        // durability enabled, accepted values whose write never fsynced
        // are gone: their acceptOK (and the proposer's own pending
        // self-vote) was withheld by the ack-after-fsync invariant, so
        // they contributed to no quorum and dropping them cannot lose
        // chosen state. A committed instance losing its value this way
        // degrades to `committed_no_value` and is re-fetched from the
        // proposer's retransmission or a checkpoint.
        if core.dur.enabled() {
            let synced = core.dur.synced_seq();
            let from = self.exec_index.0 + 1;
            let mut dropped = Vec::new();
            for (&s, inst) in self.instances.range_mut(from..) {
                if inst.wseq > synced && inst.cmd.is_some() {
                    self.instance_bytes -= inst.cmd.take().map_or(0, |c| c.size_bytes());
                    inst.bal = Term::ZERO;
                    inst.acks = 0;
                    inst.wseq = 0;
                    if inst.committed {
                        inst.committed = false;
                        self.committed_no_value.insert(s);
                    }
                    dropped.push(s);
                }
            }
            // Fully empty uncommitted instances need no placeholder.
            for s in dropped {
                if self
                    .instances
                    .get(&s)
                    .map(|i| !i.committed && i.cmd.is_none())
                    .unwrap_or(false)
                    && !self.committed_no_value.contains(&s)
                {
                    self.instances.remove(&s);
                }
            }
            self.pending_self.clear();
        }
        self.phase1_succeeded = false;
        self.prepare_acks.clear();
        for c in &mut self.accept_cursor {
            *c = Slot::NONE;
        }
        for e in &mut self.acceptor_exec {
            *e = Slot::NONE;
        }
        for e in &mut self.acceptor_exec_prev {
            *e = Slot::NONE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{cluster_with, drive_until, TestClient};
    use paxraft_sim::sim::Simulation;
    use paxraft_sim::time::{SimDuration, SimTime};

    fn paxos_cluster(n: usize) -> (Simulation<Msg>, Vec<ActorId>, ActorId) {
        cluster_with(n, |cfg| {
            let mut cfg = cfg;
            cfg.initial_leader = Some(NodeId(0));
            Box::new(MultiPaxosReplica::new(cfg))
        })
    }

    #[test]
    fn all_replicas_converge_on_same_log() {
        let (mut sim, replicas, client) = paxos_cluster(3);
        for k in 0..10 {
            sim.actor_mut::<TestClient>(client).enqueue_put(k);
        }
        drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 10
        });
        // Heartbeats spread Learn messages; run a little longer.
        sim.run_for(SimDuration::from_secs(1));
        let exec0 = sim.actor::<MultiPaxosReplica>(replicas[0]).exec_index();
        assert!(exec0.0 >= 10);
        for s in 1..=exec0.0 {
            let c0 = sim
                .actor::<MultiPaxosReplica>(replicas[0])
                .committed_at(Slot(s))
                .cloned();
            for &r in &replicas[1..] {
                if let Some(c) = sim.actor::<MultiPaxosReplica>(r).committed_at(Slot(s)) {
                    assert_eq!(Some(c.clone()), c0, "agreement at slot {s}");
                }
            }
        }
    }
}
