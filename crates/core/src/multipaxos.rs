//! MultiPaxos (Figure 1): a stable-leader multi-decree Paxos.
//!
//! Structure follows the paper's pseudocode: `Phase1a`/`Phase1b` and
//! `Phase1Succeed` elect a proposer by ballot; `Phase2a`/`Phase2b`
//! replicate values per instance; `Learn` marks instances chosen on a
//! majority of `acceptOK`s. Instances commit **out of order** (the
//! property that blocks a direct Raft→Paxos mapping, Section 3), but
//! execution still applies the log prefix in order.
//!
//! Engineering details follow Section 5's etcd-derived setup: followers
//! forward client requests to the leader in batches, the leader batches
//! phase-2 messages, and heartbeats retransmit unacknowledged instances.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use paxraft_sim::impl_actor_any;
use paxraft_sim::sim::{Actor, ActorId, Ctx};
use paxraft_sim::time::SimDuration;

use crate::config::ReplicaConfig;
use crate::kv::{Command, KvStore};
use crate::msg::{ClientMsg, Msg, PaxosMsg};
use crate::snapshot::{Snapshot, SnapshotAssembler, SnapshotSender, SnapshotStats};
use crate::types::{quorum, NodeId, Slot, Term};

/// Timer token kinds (upper bits) — generation counters live in the lower
/// bits so stale timers are ignored.
const T_ELECTION: u64 = 1 << 48;
const T_HEARTBEAT: u64 = 2 << 48;
const T_BATCH: u64 = 3 << 48;
const KIND_MASK: u64 = 0xFFFF << 48;

/// One Paxos instance (Figure 1's `s.instances[i]`).
#[derive(Debug, Clone)]
struct Instance {
    /// Highest ballot this replica accepted the value at (`instance.bal`).
    bal: Term,
    /// The accepted value (`instance.val`).
    cmd: Option<Command>,
    /// Whether the value is known chosen.
    committed: bool,
    /// Leader-side acknowledgement bitmap for the current ballot.
    acks: u64,
}

impl Instance {
    fn empty() -> Self {
        Instance {
            bal: Term::ZERO,
            cmd: None,
            committed: false,
            acks: 0,
        }
    }
}

/// A MultiPaxos replica (proposer + acceptor + learner).
pub struct MultiPaxosReplica {
    cfg: ReplicaConfig,
    /// Highest ballot seen (`s.ballot`).
    ballot: Term,
    /// Figure 1's `phase1Succeeded`: this replica is the active proposer.
    phase1_succeeded: bool,
    leader_hint: Option<NodeId>,
    instances: BTreeMap<u64, Instance>,
    /// Chosen-slot notifications that arrived before their Accept.
    committed_no_value: BTreeSet<u64>,
    /// Leader's next unused instance id.
    next_slot: Slot,
    /// Phase-1 replies: voter → (accepted entries, log tail, checkpoint
    /// floor).
    prepare_acks: HashMap<NodeId, (Vec<(Slot, Term, Command)>, Slot, Slot)>,
    /// All instances below this are applied.
    exec_index: Slot,
    kv: KvStore,
    /// Checkpoint floor: instances at or below it were discarded after
    /// execution; their effects live in the state machine (and in
    /// `stable_snap`).
    compacted_through: Slot,
    /// Retained instance payload bytes (compaction byte trigger).
    instance_bytes: usize,
    /// Executed prefix each acceptor reported on its last AcceptOk.
    acceptor_exec: Vec<Slot>,
    /// `acceptor_exec` as of the previous heartbeat: a report that did
    /// not move between heartbeats marks a *stalled* acceptor (gap in
    /// its instances), as opposed to one merely trailing by a WAN
    /// round-trip.
    acceptor_exec_prev: Vec<Slot>,
    /// Per-peer checkpoint transfer rate-limiting.
    ckpt_send: SnapshotSender,
    /// Reassembles incoming checkpoint chunks.
    snap_asm: SnapshotAssembler,
    /// Durable checkpoint backing the discarded instances.
    stable_snap: Option<Snapshot>,
    snap_stats: SnapshotStats,
    /// Leader batch buffer (or, at followers, the forward buffer).
    pending: Vec<Command>,
    batch_armed: bool,
    election_gen: u64,
    heartbeat_gen: u64,
    /// Stats: client responses sent.
    pub responses_sent: u64,
}

impl MultiPaxosReplica {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ReplicaConfig) -> Self {
        cfg.validate().expect("invalid replica config");
        let n = cfg.n;
        MultiPaxosReplica {
            cfg,
            ballot: Term::ZERO,
            phase1_succeeded: false,
            leader_hint: None,
            instances: BTreeMap::new(),
            committed_no_value: BTreeSet::new(),
            next_slot: Slot(1),
            prepare_acks: HashMap::new(),
            exec_index: Slot::NONE,
            kv: KvStore::new(),
            compacted_through: Slot::NONE,
            instance_bytes: 0,
            acceptor_exec: vec![Slot::NONE; n],
            acceptor_exec_prev: vec![Slot::NONE; n],
            ckpt_send: SnapshotSender::new(n),
            snap_asm: SnapshotAssembler::default(),
            stable_snap: None,
            snap_stats: SnapshotStats::default(),
            pending: Vec::new(),
            batch_armed: false,
            election_gen: 0,
            heartbeat_gen: 0,
            responses_sent: 0,
        }
    }

    /// Whether this replica currently believes it is the proposer.
    pub fn is_leader(&self) -> bool {
        self.phase1_succeeded
    }

    /// The current ballot.
    pub fn ballot(&self) -> Term {
        self.ballot
    }

    /// Applied prefix (for tests).
    pub fn exec_index(&self) -> Slot {
        self.exec_index
    }

    /// Read-only view of the state machine (for tests).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// Chosen value at a slot, if committed (for agreement tests).
    pub fn committed_at(&self, slot: Slot) -> Option<&Command> {
        let inst = self.instances.get(&slot.0)?;
        if inst.committed {
            inst.cmd.as_ref()
        } else {
            None
        }
    }

    /// Checkpoint / compaction counters, peaks included.
    pub fn snap_stats(&self) -> SnapshotStats {
        self.snap_stats
    }

    /// Retained (uncompacted) instances.
    pub fn retained_instances(&self) -> usize {
        self.instances.len()
    }

    fn me_bit(&self) -> u64 {
        1 << self.cfg.id.0
    }

    fn arm_election(&mut self, ctx: &mut Ctx<Msg>) {
        self.election_gen += 1;
        let span = self.cfg.election_max.as_nanos() - self.cfg.election_min.as_nanos();
        let delay = if self.cfg.initial_leader == Some(self.cfg.id) && self.ballot == Term::ZERO {
            SimDuration::from_millis(5)
        } else {
            self.cfg.election_min + SimDuration::from_nanos(ctx.rng().gen_range(span.max(1)))
        };
        ctx.set_timer(delay, T_ELECTION | self.election_gen);
    }

    fn arm_heartbeat(&mut self, ctx: &mut Ctx<Msg>) {
        self.heartbeat_gen += 1;
        ctx.set_timer(self.cfg.heartbeat, T_HEARTBEAT | self.heartbeat_gen);
    }

    fn arm_batch(&mut self, ctx: &mut Ctx<Msg>) {
        if !self.batch_armed {
            self.batch_armed = true;
            ctx.set_timer(self.cfg.batch_delay, T_BATCH);
        }
    }

    fn broadcast(&self, ctx: &mut Ctx<Msg>, msg: PaxosMsg) {
        for peer in self.cfg.others() {
            ctx.send(self.cfg.peer(peer), Msg::Paxos(msg.clone()));
        }
    }

    /// Figure 1 `Phase1a`: pick a fresh owned ballot and prepare.
    fn start_phase1(&mut self, ctx: &mut Ctx<Msg>) {
        self.ballot = self.ballot.next_for(self.cfg.id, self.cfg.n);
        self.phase1_succeeded = false;
        self.prepare_acks.clear();
        let from_slot = self.first_unchosen();
        // Record our own accepted instances as an implicit Phase1b reply.
        let mine = self.accepted_from(from_slot);
        let tail = self.log_tail();
        self.prepare_acks
            .insert(self.cfg.id, (mine, tail, self.compacted_through));
        self.broadcast(
            ctx,
            PaxosMsg::Prepare {
                ballot: self.ballot,
                from_slot,
            },
        );
        self.arm_election(ctx); // retry if this round stalls
    }

    fn first_unchosen(&self) -> Slot {
        let mut s = self.exec_index.next();
        while self
            .instances
            .get(&s.0)
            .map(|i| i.committed)
            .unwrap_or(false)
        {
            s = s.next();
        }
        s
    }

    fn log_tail(&self) -> Slot {
        self.instances
            .iter()
            .next_back()
            .map(|(&s, _)| Slot(s))
            .unwrap_or(Slot::NONE)
    }

    fn accepted_from(&self, from: Slot) -> Vec<(Slot, Term, Command)> {
        self.instances
            .range(from.0..)
            .filter_map(|(&s, inst)| inst.cmd.clone().map(|c| (Slot(s), inst.bal, c)))
            .collect()
    }

    /// Figure 1 `Phase1Succeed`: adopt safe values and go active.
    fn try_phase1_succeed(&mut self, ctx: &mut Ctx<Msg>) {
        if self.phase1_succeeded || self.prepare_acks.len() < quorum(self.cfg.n) {
            return;
        }
        // Never fill slots at or below a replying acceptor's checkpoint
        // floor: those instances are chosen but unreportable (the
        // acceptor discarded them after execution), so a no-op fill
        // would overwrite a chosen value. The acceptor ships us its
        // checkpoint alongside the PrepareOk; execution of the covered
        // prefix resumes once it installs.
        let max_floor = self
            .prepare_acks
            .values()
            .map(|(_, _, floor)| *floor)
            .max()
            .unwrap_or(Slot::NONE);
        let start = self.first_unchosen().max(max_floor.next());
        let end = self
            .prepare_acks
            .values()
            .map(|(_, tail, _)| *tail)
            .max()
            .unwrap_or(Slot::NONE);
        // safeEntry: highest accepted ballot per instance; Noop for gaps.
        let mut safe: BTreeMap<u64, (Term, Command)> = BTreeMap::new();
        for (entries, _, _) in self.prepare_acks.values() {
            for (slot, bal, cmd) in entries {
                if slot.0 < start.0 {
                    continue;
                }
                match safe.get(&slot.0) {
                    Some((b, _)) if *b >= *bal => {}
                    _ => {
                        safe.insert(slot.0, (*bal, cmd.clone()));
                    }
                }
            }
        }
        let mut items = Vec::new();
        let mut s = start;
        let me_bit = self.me_bit();
        while s <= end {
            let inst = self.instances.entry(s.0).or_insert_with(Instance::empty);
            if !inst.committed {
                let cmd = safe
                    .get(&s.0)
                    .map(|(_, c)| c.clone())
                    .unwrap_or_else(Command::noop);
                inst.bal = self.ballot;
                let old = inst.cmd.replace(cmd.clone());
                inst.acks = me_bit;
                self.instance_bytes += cmd.size_bytes();
                self.instance_bytes -= old.map_or(0, |c| c.size_bytes());
                items.push((s, cmd));
            }
            s = s.next();
        }
        self.snap_stats
            .note_log_size(self.instances.len(), self.instance_bytes);
        self.phase1_succeeded = true;
        self.leader_hint = Some(self.cfg.id);
        self.next_slot = Slot(end.0.max(self.log_tail().0) + 1);
        if !items.is_empty() {
            self.broadcast(
                ctx,
                PaxosMsg::Accept {
                    ballot: self.ballot,
                    items,
                },
            );
        }
        self.arm_heartbeat(ctx);
        // Anything buffered while campaigning goes out now.
        self.flush_pending(ctx);
    }

    /// Leader flush: Figure 1 `Phase2a`, batched.
    fn flush_pending(&mut self, ctx: &mut Ctx<Msg>) {
        if !self.phase1_succeeded {
            self.forward_pending(ctx);
            return;
        }
        if self.pending.is_empty() {
            return;
        }
        let cmds = std::mem::take(&mut self.pending);
        let bytes: usize = cmds.iter().map(Command::size_bytes).sum();
        ctx.charge(
            self.cfg.costs.propose_fixed
                + self.cfg.costs.propose_per_cmd * cmds.len() as u64
                + self.cfg.costs.size_cost(bytes),
        );
        let mut items = Vec::with_capacity(cmds.len());
        for cmd in cmds {
            let slot = self.next_slot;
            self.next_slot = self.next_slot.next();
            self.instance_bytes += cmd.size_bytes();
            self.instances.insert(
                slot.0,
                Instance {
                    bal: self.ballot,
                    cmd: Some(cmd.clone()),
                    committed: false,
                    acks: self.me_bit(),
                },
            );
            items.push((slot, cmd));
        }
        self.snap_stats
            .note_log_size(self.instances.len(), self.instance_bytes);
        self.broadcast(
            ctx,
            PaxosMsg::Accept {
                ballot: self.ballot,
                items,
            },
        );
    }

    /// Follower flush: forward buffered requests to the leader.
    fn forward_pending(&mut self, ctx: &mut Ctx<Msg>) {
        let Some(leader) = self.leader_hint else {
            // No leader known yet; keep buffering and retry on the batch
            // timer.
            if !self.pending.is_empty() {
                self.batch_armed = false;
                self.arm_batch(ctx);
            }
            return;
        };
        if leader == self.cfg.id || self.pending.is_empty() {
            return;
        }
        let cmds = std::mem::take(&mut self.pending);
        ctx.charge(self.cfg.costs.forward_per_cmd * cmds.len() as u64);
        ctx.send(
            self.cfg.peer(leader),
            Msg::Paxos(PaxosMsg::Forward { cmds }),
        );
    }

    /// Applies the contiguous committed prefix; the proposer answers
    /// clients at apply time.
    fn try_execute(&mut self, ctx: &mut Ctx<Msg>) {
        loop {
            let next = self.exec_index.next();
            let Some(inst) = self.instances.get(&next.0) else {
                break;
            };
            if !inst.committed {
                break;
            }
            let cmd = inst.cmd.clone().expect("committed instance has a value");
            ctx.charge(self.cfg.costs.apply_per_cmd);
            let reply = self.kv.apply(&cmd);
            self.exec_index = next;
            if self.phase1_succeeded && cmd.id.client != u32::MAX {
                ctx.charge(self.cfg.costs.reply_fixed);
                ctx.send(
                    self.cfg.client_actor(cmd.id.client),
                    Msg::Client(ClientMsg::Response { id: cmd.id, reply }),
                );
                self.responses_sent += 1;
            }
        }
        self.maybe_compact(ctx);
    }

    /// Discards the executed instance prefix once it crosses the
    /// configured threshold, checkpointing the state machine first.
    fn maybe_compact(&mut self, ctx: &mut Ctx<Msg>) {
        if !self.cfg.snapshot.enabled() {
            return;
        }
        let executed_retained = (self.exec_index.0 - self.compacted_through.0) as usize;
        if !self
            .cfg
            .snapshot
            .should_compact(executed_retained, self.instance_bytes)
        {
            return;
        }
        let snap = Snapshot {
            last_slot: self.exec_index,
            last_term: Term::ZERO,
            kv: self.kv.snapshot(),
        };
        ctx.charge(self.cfg.costs.snapshot_cost(snap.size_bytes()));
        let retained = self.instances.split_off(&(self.exec_index.0 + 1));
        let discarded = self.instances.len();
        for inst in self.instances.values() {
            self.instance_bytes -= inst.cmd.as_ref().map_or(0, Command::size_bytes);
        }
        self.instances = retained;
        self.committed_no_value = self.committed_no_value.split_off(&(self.exec_index.0 + 1));
        self.compacted_through = self.exec_index;
        self.stable_snap = Some(snap);
        self.snap_stats.compactions += 1;
        self.snap_stats.entries_discarded += discarded as u64;
    }

    /// Ships the current checkpoint to `peer` in chunks, rate-limited to
    /// one transfer per retry interval.
    fn send_checkpoint_to(&mut self, ctx: &mut Ctx<Msg>, peer: NodeId) {
        if !self
            .ckpt_send
            .try_begin(peer.0 as usize, ctx.now(), self.cfg.retry_interval)
        {
            return;
        }
        let snap = Snapshot {
            last_slot: self.exec_index,
            last_term: Term::ZERO,
            kv: self.kv.snapshot(),
        };
        ctx.charge(self.cfg.costs.snapshot_cost(snap.size_bytes()));
        self.snap_stats.note_sent(snap.size_bytes());
        for (offset, total, data) in snap.chunks(self.cfg.snapshot.chunk_bytes) {
            ctx.send(
                self.cfg.peer(peer),
                Msg::Paxos(PaxosMsg::Checkpoint {
                    ballot: self.ballot,
                    upto: snap.last_slot,
                    offset,
                    total,
                    data,
                }),
            );
        }
    }

    /// Installs a fully reassembled checkpoint.
    fn install_checkpoint(&mut self, ctx: &mut Ctx<Msg>, from: ActorId, snap: Snapshot) {
        if snap.last_slot > self.exec_index {
            ctx.charge(self.cfg.costs.snapshot_cost(snap.size_bytes()));
            self.kv.restore(&snap.kv);
            self.exec_index = snap.last_slot;
            let retained = self.instances.split_off(&(snap.last_slot.0 + 1));
            for inst in self.instances.values() {
                self.instance_bytes -= inst.cmd.as_ref().map_or(0, Command::size_bytes);
            }
            self.instances = retained;
            self.committed_no_value = self.committed_no_value.split_off(&(snap.last_slot.0 + 1));
            self.compacted_through = self.compacted_through.max(snap.last_slot);
            if self.next_slot <= snap.last_slot {
                self.next_slot = snap.last_slot.next();
            }
            // A mid-campaign phase-1 picture is stale now; the armed
            // election timer retries with a fresh ballot.
            if !self.phase1_succeeded {
                self.prepare_acks.clear();
            }
            self.stable_snap = Some(snap.clone());
            self.snap_stats.snapshots_installed += 1;
            self.try_execute(ctx);
        }
        ctx.send(
            from,
            Msg::Paxos(PaxosMsg::CheckpointOk {
                ballot: self.ballot,
                upto: self.exec_index,
            }),
        );
    }

    fn on_paxos(&mut self, ctx: &mut Ctx<Msg>, from: ActorId, msg: PaxosMsg) {
        match msg {
            PaxosMsg::Prepare { ballot, from_slot } => {
                // Figure 1 Phase1b.
                if ballot > self.ballot {
                    self.ballot = ballot;
                    self.phase1_succeeded = false;
                    self.leader_hint = Some(ballot.owner(self.cfg.n));
                    self.arm_election(ctx);
                    ctx.send(
                        from,
                        Msg::Paxos(PaxosMsg::PrepareOk {
                            ballot,
                            entries: self.accepted_from(from_slot),
                            log_tail: self.log_tail(),
                            floor: self.compacted_through,
                        }),
                    );
                    // The candidate asks for instances we checkpointed
                    // away: ship the checkpoint so it can execute the
                    // covered prefix it will never see as entries.
                    if from_slot <= self.compacted_through {
                        self.send_checkpoint_to(ctx, node_of(from));
                    }
                }
            }
            PaxosMsg::PrepareOk {
                ballot,
                entries,
                log_tail,
                floor,
            } => {
                if ballot == self.ballot && !self.phase1_succeeded {
                    let node = node_of(from);
                    self.prepare_acks.insert(node, (entries, log_tail, floor));
                    self.try_phase1_succeed(ctx);
                }
            }
            PaxosMsg::Accept { ballot, items } => {
                // Figure 1 Phase2b.
                if ballot >= self.ballot {
                    if ballot > self.ballot {
                        self.ballot = ballot;
                        self.phase1_succeeded = false;
                    }
                    self.leader_hint = Some(ballot.owner(self.cfg.n));
                    let bytes: usize = items.iter().map(|(_, c)| c.size_bytes()).sum();
                    ctx.charge(
                        self.cfg.costs.append_fixed
                            + self.cfg.costs.append_per_cmd * items.len() as u64
                            + self.cfg.costs.size_cost(bytes),
                    );
                    let mut slots = Vec::with_capacity(items.len());
                    let mut below_floor = false;
                    for (slot, cmd) in items {
                        if slot <= self.compacted_through {
                            // Checkpointed away: the instance is chosen
                            // and executed here; a proposer asking about
                            // it is behind our floor.
                            below_floor = true;
                            continue;
                        }
                        let inst = self.instances.entry(slot.0).or_insert_with(Instance::empty);
                        if !inst.committed {
                            inst.bal = ballot;
                            self.instance_bytes += cmd.size_bytes();
                            self.instance_bytes -=
                                inst.cmd.replace(cmd).map_or(0, |c| c.size_bytes());
                            if self.committed_no_value.remove(&slot.0) {
                                inst.committed = true;
                            }
                        }
                        slots.push(slot);
                    }
                    self.snap_stats
                        .note_log_size(self.instances.len(), self.instance_bytes);
                    self.arm_election(ctx); // accepts double as heartbeats
                    ctx.send(
                        from,
                        Msg::Paxos(PaxosMsg::AcceptOk {
                            ballot,
                            slots,
                            exec: self.exec_index,
                        }),
                    );
                    if below_floor {
                        self.send_checkpoint_to(ctx, node_of(from));
                    }
                    self.try_execute(ctx);
                }
            }
            PaxosMsg::AcceptOk {
                ballot,
                slots,
                exec,
            } => {
                // Figure 1 Learn.
                let node = node_of(from);
                if exec > self.acceptor_exec[node.0 as usize] {
                    self.acceptor_exec[node.0 as usize] = exec;
                }
                if ballot == self.ballot && self.phase1_succeeded {
                    ctx.charge(self.cfg.costs.ack_process);
                    let bit = 1u64 << node.0;
                    let mut chosen = Vec::new();
                    for slot in slots {
                        if let Some(inst) = self.instances.get_mut(&slot.0) {
                            inst.acks |= bit;
                            if !inst.committed
                                && inst.acks.count_ones() as usize >= quorum(self.cfg.n)
                            {
                                inst.committed = true;
                                chosen.push(slot);
                            }
                        }
                    }
                    // An acceptor's executed prefix is chosen globally.
                    // Instances we proposed at our own ballot (i.e.
                    // after a successful phase 1) need no quorum count
                    // there: their value agrees with the chosen one by
                    // the phase-1 safety argument. Stale-ballot values
                    // may differ from what was chosen, so they must
                    // wait for a Learn or checkpoint instead.
                    for (&s, inst) in self.instances.range_mut(..=exec.0) {
                        if !inst.committed && inst.cmd.is_some() && inst.bal == self.ballot {
                            inst.committed = true;
                            chosen.push(Slot(s));
                        }
                    }
                    if !chosen.is_empty() {
                        self.broadcast(ctx, PaxosMsg::Learn { slots: chosen });
                        self.try_execute(ctx);
                    }
                }
            }
            PaxosMsg::Learn { slots } => {
                for slot in slots {
                    if slot <= self.compacted_through {
                        continue; // already executed and checkpointed
                    }
                    match self.instances.get_mut(&slot.0) {
                        Some(inst) if inst.cmd.is_some() => inst.committed = true,
                        _ => {
                            self.committed_no_value.insert(slot.0);
                        }
                    }
                }
                self.try_execute(ctx);
            }
            PaxosMsg::Forward { cmds } => {
                ctx.charge(self.cfg.costs.forward_per_cmd * cmds.len() as u64);
                self.pending.extend(cmds);
                if self.pending.len() >= self.cfg.batch_max {
                    self.flush_pending(ctx);
                } else {
                    self.arm_batch(ctx);
                }
            }
            PaxosMsg::Checkpoint {
                ballot,
                upto,
                offset,
                total,
                data,
            } => {
                if ballot < self.ballot {
                    return; // stale sender; ignore
                }
                ctx.charge(self.cfg.costs.append_fixed + self.cfg.costs.snapshot_cost(data.len()));
                if let Some(snap) = self
                    .snap_asm
                    .offer(from.0 as u64, upto, offset, total, &data)
                {
                    self.install_checkpoint(ctx, from, snap);
                }
            }
            PaxosMsg::CheckpointOk { upto, .. } => {
                let node = node_of(from);
                self.ckpt_send.finish(node.0 as usize);
                if upto > self.acceptor_exec[node.0 as usize] {
                    self.acceptor_exec[node.0 as usize] = upto;
                }
            }
        }
    }

    /// Heartbeat: retransmit uncommitted instances, re-Learn committed
    /// ones, and catch lagging acceptors up — by instance replay while
    /// their gap is still retained, by checkpoint once it is not.
    fn heartbeat(&mut self, ctx: &mut Ctx<Msg>) {
        if !self.phase1_succeeded {
            return;
        }
        let retransmit: Vec<(Slot, Command)> = self
            .instances
            .range(self.exec_index.next().0..)
            .filter(|(_, i)| !i.committed)
            .filter_map(|(&s, i)| i.cmd.clone().map(|c| (Slot(s), c)))
            .collect();
        let committed: Vec<Slot> = self
            .instances
            .range(self.exec_index.0.saturating_sub(64)..)
            .filter(|(_, i)| i.committed)
            .map(|(&s, _)| Slot(s))
            .collect();
        self.broadcast(
            ctx,
            PaxosMsg::Accept {
                ballot: self.ballot,
                items: retransmit,
            },
        );
        if !committed.is_empty() {
            self.broadcast(ctx, PaxosMsg::Learn { slots: committed });
        }
        // Per-acceptor catch-up, 64 instances per round to bound the
        // burst. An acceptor behind the checkpoint floor can only be
        // caught up by state transfer — the instances are gone. A
        // healthy acceptor's report always trails by a WAN round-trip,
        // so replay targets only *stalled* reports: ones that did not
        // advance between two consecutive heartbeats.
        let peers: Vec<NodeId> = self.cfg.others().collect();
        for peer in peers {
            let i = peer.0 as usize;
            let fexec = self.acceptor_exec[i];
            let stalled = fexec == self.acceptor_exec_prev[i];
            self.acceptor_exec_prev[i] = fexec;
            if fexec >= self.exec_index || !stalled {
                continue;
            }
            if fexec < self.compacted_through {
                self.send_checkpoint_to(ctx, peer);
                continue;
            }
            let replay: Vec<(Slot, Command)> = self
                .instances
                .range(fexec.next().0..)
                .take(64)
                .filter(|(_, i)| i.committed)
                .filter_map(|(&s, i)| i.cmd.clone().map(|c| (Slot(s), c)))
                .collect();
            if replay.is_empty() {
                continue;
            }
            let slots: Vec<Slot> = replay.iter().map(|(s, _)| *s).collect();
            ctx.send(
                self.cfg.peer(peer),
                Msg::Paxos(PaxosMsg::Accept {
                    ballot: self.ballot,
                    items: replay,
                }),
            );
            ctx.send(self.cfg.peer(peer), Msg::Paxos(PaxosMsg::Learn { slots }));
        }
        self.arm_heartbeat(ctx);
    }
}

fn node_of(from: ActorId) -> NodeId {
    // Replica actors are created first, so ActorId(i) == NodeId(i).
    NodeId(from.0 as u32)
}

impl Actor<Msg> for MultiPaxosReplica {
    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        self.arm_election(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Paxos(p) => self.on_paxos(ctx, from, p),
            Msg::Client(ClientMsg::Request { cmd }) => {
                ctx.charge(self.cfg.costs.client_req);
                self.pending.push(cmd);
                if self.phase1_succeeded && self.pending.len() >= self.cfg.batch_max {
                    self.flush_pending(ctx);
                } else {
                    self.arm_batch(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, token: u64) {
        match token & KIND_MASK {
            T_ELECTION => {
                // Only the most recently armed election timer may fire.
                if token & !KIND_MASK == self.election_gen && !self.phase1_succeeded {
                    self.start_phase1(ctx);
                }
            }
            T_HEARTBEAT => {
                if token & !KIND_MASK == self.heartbeat_gen {
                    self.heartbeat(ctx);
                }
            }
            T_BATCH => {
                self.batch_armed = false;
                if !self.pending.is_empty() {
                    self.flush_pending(ctx);
                }
                if !self.pending.is_empty() {
                    // Still buffered (e.g. no leader known): retry later.
                    self.arm_batch(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_crash(&mut self) {
        // Model a full restart with stable storage: ballot, accepted
        // instances, commit flags, the executed state and the checkpoint
        // all persist; volatile leadership does not.
        self.phase1_succeeded = false;
        self.leader_hint = None;
        self.prepare_acks.clear();
        self.pending.clear();
        self.batch_armed = false;
        self.snap_asm.clear();
        self.ckpt_send.reset();
        for e in &mut self.acceptor_exec {
            *e = Slot::NONE;
        }
        for e in &mut self.acceptor_exec_prev {
            *e = Slot::NONE;
        }
    }

    impl_actor_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{cluster_with, drive_until, TestClient};
    use paxraft_sim::net::Region;
    use paxraft_sim::sim::Simulation;
    use paxraft_sim::time::SimTime;

    fn paxos_cluster(n: usize) -> (Simulation<Msg>, Vec<ActorId>, ActorId) {
        cluster_with(n, |cfg| {
            let mut cfg = cfg;
            cfg.initial_leader = Some(NodeId(0));
            Box::new(MultiPaxosReplica::new(cfg))
        })
    }

    #[test]
    fn elects_initial_leader() {
        let (mut sim, replicas, _client) = paxos_cluster(3);
        drive_until(&mut sim, SimTime::from_secs(2), |sim| {
            sim.actor::<MultiPaxosReplica>(replicas[0]).is_leader()
        });
        assert!(sim.actor::<MultiPaxosReplica>(replicas[0]).is_leader());
        assert!(!sim.actor::<MultiPaxosReplica>(replicas[1]).is_leader());
    }

    #[test]
    fn commits_and_replies() {
        let (mut sim, replicas, client) = paxos_cluster(3);
        sim.actor_mut::<TestClient>(client).enqueue_put(42);
        sim.actor_mut::<TestClient>(client).enqueue_get(42);
        drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 2
        });
        let c = sim.actor::<TestClient>(client);
        assert_eq!(c.replies.len(), 2, "both ops answered");
        // The get observes the put.
        assert!(c.replies[1].1.value_id().is_some());
        let _ = replicas;
    }

    #[test]
    fn all_replicas_converge_on_same_log() {
        let (mut sim, replicas, client) = paxos_cluster(3);
        for k in 0..10 {
            sim.actor_mut::<TestClient>(client).enqueue_put(k);
        }
        drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 10
        });
        // Heartbeats spread Learn messages; run a little longer.
        sim.run_for(SimDuration::from_secs(1));
        let exec0 = sim.actor::<MultiPaxosReplica>(replicas[0]).exec_index();
        assert!(exec0.0 >= 10);
        for s in 1..=exec0.0 {
            let c0 = sim
                .actor::<MultiPaxosReplica>(replicas[0])
                .committed_at(Slot(s))
                .cloned();
            for &r in &replicas[1..] {
                if let Some(c) = sim.actor::<MultiPaxosReplica>(r).committed_at(Slot(s)) {
                    assert_eq!(Some(c.clone()), c0, "agreement at slot {s}");
                }
            }
        }
    }

    #[test]
    fn survives_leader_crash_and_reelects() {
        let (mut sim, replicas, client) = paxos_cluster(3);
        sim.actor_mut::<TestClient>(client).enqueue_put(1);
        drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        });
        assert_eq!(sim.actor::<TestClient>(client).replies.len(), 1);
        // Crash the leader; the client fails over to a survivor; a new
        // leader must finish the remaining work.
        let crash_at = sim.now() + SimDuration::from_millis(10);
        sim.crash_at(replicas[0], crash_at);
        sim.actor_mut::<TestClient>(client).target = replicas[1];
        sim.actor_mut::<TestClient>(client).enqueue_put(2);
        sim.actor_mut::<TestClient>(client).enqueue_get(2);
        drive_until(&mut sim, SimTime::from_secs(30), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 3
        });
        let c = sim.actor::<TestClient>(client);
        assert_eq!(c.replies.len(), 3, "new leader served the remaining ops");
        assert!(c.replies[2].1.value_id().is_some(), "get sees the put");
    }

    #[test]
    fn forwarding_reaches_leader_from_any_replica() {
        let (mut sim, replicas, _) = paxos_cluster(3);
        // A client whose target is a follower.
        let mut tc = TestClient::new(1, replicas[2]);
        tc.enqueue_put(9);
        let tc_id = sim.add_actor(Region::Ireland, Box::new(tc));
        // note: cluster_with reserves client ids starting at the base the
        // replicas were configured with; client 1 is this actor.
        drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            !sim.actor::<TestClient>(tc_id).replies.is_empty()
        });
        assert_eq!(sim.actor::<TestClient>(tc_id).replies.len(), 1);
    }

    #[test]
    fn duplicate_requests_dedup() {
        let (mut sim, _replicas, client) = paxos_cluster(3);
        sim.actor_mut::<TestClient>(client).enqueue_put(5);
        drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        });
        // Manually resend the same command; the session table dedups it
        // and the cached reply comes back rather than a double apply.
        let cmd = sim.actor::<TestClient>(client).sent[0].clone();
        let target = sim.actor::<TestClient>(client).target;
        sim.send_external(
            target,
            Msg::Client(ClientMsg::Request { cmd }),
            SimDuration::ZERO,
        );
        sim.run_for(SimDuration::from_secs(2));
        let kv_writes = sim
            .actor::<MultiPaxosReplica>(ActorId(0))
            .kv()
            .applied_ops();
        // 1 put + possibly noops; the duplicate must not raise the count by
        // a full apply of the same session seq.
        assert!(kv_writes <= 2, "dedup kept applies at {kv_writes}");
    }
}
