//! A one-shot scripted client used by [`crate::harness::Cluster`] for
//! `submit_and_wait`-style interactions (examples, tests, demos) — not
//! for measurement.

use paxraft_sim::impl_actor_any;
use paxraft_sim::sim::{Actor, ActorId, Ctx};
use paxraft_sim::time::SimDuration;

use crate::kv::{CmdId, Reply};
use crate::msg::{ClientMsg, Msg};

/// Polls an outbox and captures the matching response.
#[derive(Debug, Default)]
pub struct ProbeClient {
    /// The command id the probe is waiting on.
    pub waiting: Option<CmdId>,
    /// The captured reply.
    pub reply: Option<Reply>,
    /// A request to send on the next poll tick.
    pub outbox: Option<(ActorId, Msg)>,
    last_request: Option<(ActorId, Msg)>,
    ticks_since_send: u32,
}

impl Actor<Msg> for ProbeClient {
    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        ctx.set_timer(SimDuration::from_millis(1), 1);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<Msg>, _from: ActorId, msg: Msg) {
        if let Msg::Client(ClientMsg::Response { id, reply }) = msg {
            if self.waiting == Some(id) {
                self.waiting = None;
                self.reply = Some(reply);
                self.last_request = None;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, _token: u64) {
        if let Some((to, msg)) = self.outbox.take() {
            self.last_request = Some((to, msg.clone()));
            self.ticks_since_send = 0;
            ctx.send(to, msg);
        } else if self.waiting.is_some() {
            // Retry a lost request every ~5 virtual seconds.
            self.ticks_since_send += 1;
            if self.ticks_since_send >= 500 {
                if let Some((to, msg)) = self.last_request.clone() {
                    self.ticks_since_send = 0;
                    ctx.send(to, msg);
                }
            }
        }
        ctx.set_timer(SimDuration::from_millis(10), 1);
    }

    impl_actor_any!();
}
