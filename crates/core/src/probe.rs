//! A one-shot scripted client used by [`crate::harness::Cluster`] for
//! `submit_and_wait`-style interactions (examples, tests, demos) — not
//! for measurement.

use paxraft_sim::impl_actor_any;
use paxraft_sim::sim::{Actor, ActorId, Ctx};
use paxraft_sim::time::SimDuration;

use crate::kv::{CmdId, Reply};
use crate::msg::{ClientMsg, Msg};

/// Polls an outbox and captures the matching response.
#[derive(Debug, Default)]
pub struct ProbeClient {
    /// The command id the probe is waiting on.
    pub waiting: Option<CmdId>,
    /// The captured reply.
    pub reply: Option<Reply>,
    /// A request to send on the next poll tick.
    pub outbox: Option<(ActorId, Msg)>,
    /// Sharded clusters: `group_targets[g]` serves group `g` for this
    /// probe, so a [`Reply::WrongGroup`] redirect can be followed (live
    /// rebalancing moves ranges while probes are in flight).
    pub group_targets: Vec<ActorId>,
    /// Highest partition-map version observed on redirects; an older
    /// redirect is a lagging replica, waited out on the poll tick
    /// instead of followed backwards.
    pub seen_version: u64,
    last_request: Option<(ActorId, Msg)>,
    ticks_since_send: u32,
}

impl Actor<Msg> for ProbeClient {
    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        ctx.set_timer(SimDuration::from_millis(1), 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, _from: ActorId, msg: Msg) {
        if let Msg::Client(ClientMsg::Response { id, reply }) = msg {
            if self.waiting == Some(id) {
                if let Reply::WrongGroup { group, version } = &reply {
                    if *version >= self.seen_version {
                        // Follow the redirect if we know the named
                        // group's replica.
                        self.seen_version = *version;
                        if let Some(&target) = self.group_targets.get(*group as usize) {
                            if let Some((_, msg)) = &self.last_request {
                                let msg = msg.clone();
                                self.last_request = Some((target, msg.clone()));
                                self.ticks_since_send = 0;
                                ctx.send(target, msg);
                                return;
                            }
                        }
                    } else {
                        // Stale replier: schedule a short re-send from
                        // the poll tick rather than ping-ponging.
                        self.ticks_since_send = RETRY_TICKS.saturating_sub(5);
                        return;
                    }
                }
                self.waiting = None;
                self.reply = Some(reply);
                self.last_request = None;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, _token: u64) {
        if let Some((to, msg)) = self.outbox.take() {
            self.last_request = Some((to, msg.clone()));
            self.ticks_since_send = 0;
            ctx.send(to, msg);
        } else if self.waiting.is_some() {
            // Retry a lost request every ~5 virtual seconds (sooner when
            // a stale redirect shortened the fuse).
            self.ticks_since_send += 1;
            if self.ticks_since_send >= RETRY_TICKS {
                if let Some((to, msg)) = self.last_request.clone() {
                    self.ticks_since_send = 0;
                    ctx.send(to, msg);
                }
            }
        }
        ctx.set_timer(SimDuration::from_millis(10), 1);
    }

    impl_actor_any!();
}

/// Poll ticks (10 ms each) between retries of an unanswered request.
const RETRY_TICKS: u32 = 500;
