//! The per-peer replication pipeline window, written once for every
//! protocol.
//!
//! The highest-leverage throughput optimization reported for both
//! protocol families is the same mechanism under two names: etcd-style
//! *pipelined AppendEntries* (Raft) and *α-bounded in-flight instances*
//! (Paxos). Because it only concerns *when a leader may start another
//! replication round toward a peer*, it is protocol-agnostic under the
//! paper's Figure-3 vocabulary map — an append round ↔ an accept round —
//! and therefore belongs in the engine: implemented here once, inherited
//! by Raft, Raft*, MultiPaxos and Mencius (which pipelines rounds of its
//! own round-robin slot range).
//!
//! The window tracks, per peer, the replication rounds that were sent
//! but not yet acknowledged. Three behaviors matter:
//!
//! - **Depth bound**: at most [`PipelineConfig::depth`] rounds may be in
//!   flight per peer; senders consult [`PipelineWindow::has_room`]
//!   before shipping *new* entries (retransmissions are not gated).
//! - **Out-of-order ack accounting**: an acknowledgement covering slot
//!   `s` retires every round whose end lies at or below `s`, so a lost
//!   ack does not pin the window once a later one arrives.
//! - **Retransmit-on-regress**: when a peer rejects or times out, its
//!   in-flight rounds are cleared ([`PipelineWindow::on_regress`]) so
//!   the retransmission path starts a fresh window rather than counting
//!   dead rounds against the depth.
//!
//! The window also drives the engine's **adaptive batch cutter** (see
//! [`super::ReplicaEngine`]): while a replication quorum has window room
//! a pending batch is flushed immediately (pipelining hides the round
//! trip, so waiting only adds latency); once the window saturates,
//! commands accumulate up to `batch_max` or the batch timer — exactly
//! the regime where batching amortizes per-round cost.

use std::collections::VecDeque;

use paxraft_sim::time::{SimDuration, SimTime};

use crate::types::{NodeId, Slot};

/// Pipelining parameters, shared by every protocol.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Maximum in-flight (unacknowledged) replication rounds per peer.
    /// `0` disables pipelining entirely: no eager batch cutting and no
    /// per-peer send gating — the pre-pipeline one-round-per-timer/ack
    /// behavior.
    pub depth: usize,
    /// Follower-side adaptive forwarding: when on, leaders piggyback
    /// their window occupancy on replication/heartbeat traffic
    /// (`window_room`) and a follower holding pending commands forwards
    /// them immediately while the hint says the leader can absorb a
    /// fresh round — instead of always paying the batch delay before
    /// forwarding. **On by default** since the PR 5 fingerprint re-pin
    /// (`PARITY_pr5.txt`); it removes the ~2 ms batch delay per
    /// far-follower commit with no wire cost.
    pub follower_hints: bool,
    /// NIC-aware batch cutting: when on, the adaptive cutter refuses to
    /// cut eagerly while this node's egress NIC backlog exceeds a
    /// quarter of the batch delay — a message cut then queues behind
    /// the backlog instead of starting promptly, and per-round overhead
    /// costs throughput once bytes (not window room) are the bottleneck
    /// (the Figure-10b regime; see the `payload_4kb_*` bench rows).
    pub nic_aware: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            depth: 8,
            follower_hints: true,
            nic_aware: true,
        }
    }
}

impl PipelineConfig {
    /// Whether pipelining is on.
    pub fn enabled(&self) -> bool {
        self.depth > 0
    }

    /// Pipelining disabled (legacy batching discipline).
    pub fn disabled() -> Self {
        PipelineConfig {
            depth: 0,
            follower_hints: false,
            nic_aware: false,
        }
    }

    /// Pipelining with the given window depth.
    pub fn depth(depth: usize) -> Self {
        PipelineConfig {
            depth,
            ..PipelineConfig::default()
        }
    }

    /// This configuration with follower-side adaptive forwarding on
    /// (the default since PR 5; kept for call-site compatibility).
    pub fn with_follower_hints(mut self) -> Self {
        self.follower_hints = true;
        self
    }

    /// This configuration with follower-side adaptive forwarding off
    /// (the pre-PR 5 default).
    pub fn without_follower_hints(mut self) -> Self {
        self.follower_hints = false;
        self
    }

    /// This configuration with NIC-aware batch cutting off (the cutter
    /// then consults window room alone, the PR 3/4 behavior).
    pub fn without_nic_aware_cutting(mut self) -> Self {
        self.nic_aware = false;
        self
    }
}

/// One in-flight replication round toward a peer.
#[derive(Debug, Clone, Copy)]
struct Round {
    /// Highest slot the round carries; an ack at or above it retires
    /// the round.
    upto: Slot,
    /// When the round was shipped (staleness expiry).
    sent_at: SimTime,
}

/// Occupancy and cutter counters, aggregated into
/// [`crate::harness::RunReport::pipeline`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Replication rounds shipped through the window.
    pub rounds_sent: u64,
    /// High-water mark of in-flight rounds to any single peer.
    pub peak_in_flight: u64,
    /// Batch flushes triggered by window room (no timer wait).
    pub eager_flushes: u64,
    /// Times the cutter accumulated instead because the window was
    /// saturated.
    pub window_deferrals: u64,
    /// Rounds retired by out-of-order/cumulative acknowledgements.
    pub rounds_acked: u64,
    /// Rounds cleared by a regress (rejection, rewind, or expiry).
    pub rounds_regressed: u64,
    /// Follower forwards cut early because a piggybacked leader
    /// occupancy hint said the window had room
    /// ([`PipelineConfig::follower_hints`]).
    pub hint_flushes: u64,
    /// Eager cuts refused because the egress NIC backlog exceeded the
    /// batch delay ([`PipelineConfig::nic_aware`]): the bandwidth-bound
    /// regime where batching amortizes per-message overhead.
    pub nic_deferrals: u64,
}

impl PipelineStats {
    /// Accumulates another replica's counters (peaks take the max).
    pub fn absorb(&mut self, other: &PipelineStats) {
        self.rounds_sent += other.rounds_sent;
        self.peak_in_flight = self.peak_in_flight.max(other.peak_in_flight);
        self.eager_flushes += other.eager_flushes;
        self.window_deferrals += other.window_deferrals;
        self.rounds_acked += other.rounds_acked;
        self.rounds_regressed += other.rounds_regressed;
        self.hint_flushes += other.hint_flushes;
        self.nic_deferrals += other.nic_deferrals;
    }
}

/// Per-peer in-flight round tracking for one replica.
#[derive(Debug)]
pub struct PipelineWindow {
    depth: usize,
    inflight: Vec<VecDeque<Round>>,
    /// Occupancy and cutter counters.
    pub stats: PipelineStats,
}

impl PipelineWindow {
    /// An empty window over `n` peers with the configured depth.
    pub fn new(n: usize, cfg: &PipelineConfig) -> Self {
        PipelineWindow {
            depth: cfg.depth,
            inflight: vec![VecDeque::new(); n],
            stats: PipelineStats::default(),
        }
    }

    /// Whether pipelining is active (depth > 0).
    pub fn enabled(&self) -> bool {
        self.depth > 0
    }

    /// In-flight rounds toward `peer`.
    pub fn in_flight(&self, peer: NodeId) -> usize {
        self.inflight[peer.0 as usize].len()
    }

    /// Total in-flight rounds across every peer — the occupancy gauge
    /// the telemetry sampler reads.
    pub fn total_in_flight(&self) -> usize {
        self.inflight.iter().map(VecDeque::len).sum()
    }

    /// Whether a new round may be started toward `peer`. Always true
    /// when pipelining is disabled (the legacy unbounded behavior).
    pub fn has_room(&self, peer: NodeId) -> bool {
        !self.enabled() || self.in_flight(peer) < self.depth
    }

    /// Whether enough peers have window room that a fresh round could
    /// still be acknowledged by a replication quorum: at least
    /// `quorum - 1` of the *other* replicas (the sender supplies the
    /// remaining vote itself).
    pub fn quorum_has_room(&self, me: NodeId, n: usize) -> bool {
        if !self.enabled() {
            return false;
        }
        let need = crate::types::quorum(n) - 1;
        let with_room = (0..n)
            .filter(|&i| i != me.0 as usize)
            .filter(|&i| self.inflight[i].len() < self.depth)
            .count();
        with_room >= need
    }

    /// Records a round covering slots up to `upto` shipped to `peer`.
    pub fn on_sent(&mut self, peer: NodeId, upto: Slot, now: SimTime) {
        let q = &mut self.inflight[peer.0 as usize];
        q.push_back(Round { upto, sent_at: now });
        self.stats.rounds_sent += 1;
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(q.len() as u64);
    }

    /// Records an acknowledgement from `peer` covering slots through
    /// `upto`: every round ending at or below it retires, including
    /// rounds skipped over by an out-of-order (later) acknowledgement.
    pub fn on_ack(&mut self, peer: NodeId, upto: Slot) {
        let q = &mut self.inflight[peer.0 as usize];
        while q.front().is_some_and(|r| r.upto <= upto) {
            q.pop_front();
            self.stats.rounds_acked += 1;
        }
    }

    /// Clears `peer`'s in-flight rounds after a rejection or rewind: the
    /// retransmission path re-ships the suffix as a fresh round.
    pub fn on_regress(&mut self, peer: NodeId) {
        let q = &mut self.inflight[peer.0 as usize];
        self.stats.rounds_regressed += q.len() as u64;
        q.clear();
    }

    /// Drops rounds older than `retry` (their acks are presumed lost and
    /// a periodic retransmission path covers the data). Keeps a stalled
    /// peer from pinning the window shut forever.
    pub fn expire_stale(&mut self, now: SimTime, retry: SimDuration) {
        for q in &mut self.inflight {
            while q
                .front()
                .is_some_and(|r| now.since(r.sent_at.min(now)) > retry)
            {
                q.pop_front();
                self.stats.rounds_regressed += 1;
            }
        }
    }

    /// Forgets every in-flight round (leadership change, crash).
    pub fn reset(&mut self) {
        for q in &mut self.inflight {
            q.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(depth: usize) -> PipelineWindow {
        PipelineWindow::new(5, &PipelineConfig::depth(depth))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn depth_bounds_in_flight_rounds() {
        let mut w = window(2);
        assert!(w.has_room(NodeId(1)));
        w.on_sent(NodeId(1), Slot(5), t(0));
        assert!(w.has_room(NodeId(1)));
        w.on_sent(NodeId(1), Slot(9), t(1));
        assert!(!w.has_room(NodeId(1)), "window full at depth 2");
        assert!(w.has_room(NodeId(2)), "per-peer accounting");
    }

    #[test]
    fn cumulative_ack_retires_covered_rounds() {
        let mut w = window(4);
        w.on_sent(NodeId(1), Slot(3), t(0));
        w.on_sent(NodeId(1), Slot(6), t(1));
        w.on_sent(NodeId(1), Slot(9), t(2));
        // The ack for the second round also covers the first (whose own
        // ack may have been lost or reordered behind it).
        w.on_ack(NodeId(1), Slot(6));
        assert_eq!(w.in_flight(NodeId(1)), 1);
        w.on_ack(NodeId(1), Slot(9));
        assert_eq!(w.in_flight(NodeId(1)), 0);
    }

    #[test]
    fn stale_ack_retires_nothing() {
        let mut w = window(4);
        w.on_sent(NodeId(1), Slot(8), t(0));
        w.on_ack(NodeId(1), Slot(4));
        assert_eq!(w.in_flight(NodeId(1)), 1);
    }

    #[test]
    fn regress_clears_the_peer_window() {
        let mut w = window(2);
        w.on_sent(NodeId(3), Slot(5), t(0));
        w.on_sent(NodeId(3), Slot(9), t(1));
        assert!(!w.has_room(NodeId(3)));
        w.on_regress(NodeId(3));
        assert!(w.has_room(NodeId(3)), "retransmission starts fresh");
        assert_eq!(w.stats.rounds_regressed, 2);
    }

    #[test]
    fn expiry_drops_old_rounds_only() {
        let mut w = window(4);
        w.on_sent(NodeId(1), Slot(5), t(0));
        w.on_sent(NodeId(1), Slot(9), t(500));
        w.expire_stale(t(700), SimDuration::from_millis(600));
        assert_eq!(w.in_flight(NodeId(1)), 1, "only the 700ms-old round");
    }

    #[test]
    fn quorum_room_needs_enough_followers() {
        let mut w = window(1);
        // n = 5, me = 0: need 2 of the 4 others with room.
        assert!(w.quorum_has_room(NodeId(0), 5));
        w.on_sent(NodeId(1), Slot(1), t(0));
        w.on_sent(NodeId(2), Slot(1), t(0));
        assert!(w.quorum_has_room(NodeId(0), 5), "3 and 4 still have room");
        w.on_sent(NodeId(3), Slot(1), t(0));
        assert!(!w.quorum_has_room(NodeId(0), 5), "only node 4 has room");
    }

    #[test]
    fn disabled_window_never_gates_but_never_offers_quorum_room() {
        let mut w = window(0);
        w.on_sent(NodeId(1), Slot(1), t(0));
        w.on_sent(NodeId(1), Slot(2), t(0));
        assert!(w.has_room(NodeId(1)), "depth 0 = unbounded legacy sends");
        assert!(!w.quorum_has_room(NodeId(0), 5), "no eager cutting");
    }

    #[test]
    fn peak_occupancy_is_tracked() {
        let mut w = window(8);
        for i in 1..=5u64 {
            w.on_sent(NodeId(2), Slot(i), t(i));
        }
        w.on_ack(NodeId(2), Slot(5));
        assert_eq!(w.stats.peak_in_flight, 5);
        assert_eq!(w.stats.rounds_acked, 5);
    }
}
