//! Engine-level durability: write sequencing, fsync scheduling, and
//! ack-after-fsync deferral — the **group commit** optimization written
//! once and inherited by all four protocols.
//!
//! The invariant this module enforces is protocol-independent: *an
//! acknowledgement must never precede durability of what it attests
//! to*. A Raft `AppendOk`, a Paxos `AcceptOk`/`PrepareOk`, a Mencius
//! `SuggestOk` and a snapshot ack all claim "I hold this state"; if the
//! claimant crashes and restarts without the state, a quorum that
//! counted the claim can lose a committed entry. So every durability
//! write is tagged with a monotone sequence number, every attesting ack
//! is deferred until the fsync covering its sequence completes, and the
//! crash path discards whatever the last completed fsync did not cover.
//!
//! Two policies schedule the fsyncs ([`FsyncPolicy`]):
//!
//! - **FsyncPerEntry**: every entry gets its own flush barrier, in
//!   order. Durable latency for an N-entry append is N serial fsyncs —
//!   the regime where a 1 ms device caps a replica near 1000 entries/s.
//! - **GroupCommit**: entries accumulate unsynced; one batched fsync
//!   covers all of them. At most one fsync is in flight; the next is
//!   issued when `max_batch` entries wait or `max_delay` after the
//!   batch opened. Device cost amortizes across the batch, so
//!   throughput decouples from fsync latency while the ack invariant
//!   is untouched — acks simply ride the batch's completion.

use std::collections::VecDeque;

use paxraft_sim::sim::{ActorId, Ctx};

use crate::config::{DurabilityConfig, FsyncPolicy};
use crate::msg::Msg;

use super::{KIND_MASK, T_FSYNC, T_FSYNC_DELAY};

/// Cumulative durability counters (reporting only).
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityStats {
    /// Fsyncs completed.
    pub fsyncs: u64,
    /// Entries covered by completed fsyncs (batch sizes summed).
    pub fsync_entries: u64,
    /// Acks that had to wait for an fsync before being sent.
    pub deferred_acks: u64,
    /// Entries covered by the most recent fsync.
    pub last_batch_len: u64,
}

impl DurabilityStats {
    /// Mean entries per fsync — the group-commit amortization factor.
    pub fn mean_batch_len(&self) -> f64 {
        if self.fsyncs == 0 {
            0.0
        } else {
            self.fsync_entries as f64 / self.fsyncs as f64
        }
    }

    /// Sums another replica's counters into this one (report
    /// aggregation); `last_batch_len` keeps the max.
    pub fn absorb(&mut self, other: &DurabilityStats) {
        self.fsyncs += other.fsyncs;
        self.fsync_entries += other.fsync_entries;
        self.deferred_acks += other.deferred_acks;
        self.last_batch_len = self.last_batch_len.max(other.last_batch_len);
    }
}

/// Per-replica durability state machine.
///
/// `write_seq` stamps every durability write; `synced_seq` trails it at
/// the last completed fsync. Acks deferred at a sequence flush when
/// `synced_seq` reaches it. On crash, everything above `synced_seq`
/// never happened — the protocols truncate their logs to match.
#[derive(Debug)]
pub struct DurabilityState {
    policy: Option<FsyncPolicy>,
    write_seq: u64,
    synced_seq: u64,
    /// Entries written since the last fsync was issued (group commit's
    /// batch-in-formation).
    unsynced_entries: usize,
    /// Group commit: whether an fsync is in flight (at most one).
    inflight: bool,
    /// Group commit: whether the max-delay timer is armed.
    delay_armed: bool,
    delay_gen: u64,
    /// Issued fsyncs not yet completed: `(covering seq, entries)`.
    issued: VecDeque<(u64, u64)>,
    /// Acks waiting for durability: `(covering seq, to, msg)`, seq
    /// non-decreasing (FIFO per replica, like a real completion queue).
    deferred: VecDeque<(u64, ActorId, Msg)>,
    /// Cumulative counters.
    pub stats: DurabilityStats,
}

impl DurabilityState {
    /// Durability state for one replica's config.
    pub fn new(cfg: &DurabilityConfig) -> Self {
        DurabilityState {
            policy: cfg.policy.clone(),
            write_seq: 0,
            synced_seq: 0,
            unsynced_entries: 0,
            inflight: false,
            delay_armed: false,
            delay_gen: 0,
            issued: VecDeque::new(),
            deferred: VecDeque::new(),
            stats: DurabilityStats::default(),
        }
    }

    /// Whether acks wait for fsync at all.
    pub fn enabled(&self) -> bool {
        self.policy.is_some()
    }

    /// The sequence of the most recent durability write.
    pub fn write_seq(&self) -> u64 {
        self.write_seq
    }

    /// The sequence covered by the last completed fsync: writes at or
    /// below it are durable and survive a crash.
    pub fn synced_seq(&self) -> u64 {
        self.synced_seq
    }

    /// Generation of the group-commit max-delay timer.
    pub fn delay_gen(&self) -> u64 {
        self.delay_gen
    }

    /// Records one durability write of `bytes` covering `entries` log
    /// entries (0 for pure metadata, counted as 1 toward batching) and
    /// schedules fsyncs per the policy. No-op when disabled.
    pub fn durable_write(&mut self, ctx: &mut Ctx<Msg>, bytes: usize, entries: usize) {
        let Some(policy) = &self.policy else {
            return;
        };
        ctx.disk_write(bytes);
        let units = entries.max(1);
        match policy {
            FsyncPolicy::FsyncPerEntry => {
                // One barrier per entry, in order: the disk serializes
                // them, so an N-entry write waits out N device latencies.
                for _ in 0..units {
                    self.write_seq += 1;
                    self.issued.push_back((self.write_seq, 1));
                    ctx.fsync(T_FSYNC | self.write_seq);
                }
                ctx.trace_app(
                    "disk_queue_depth",
                    self.issued.len() as u64,
                    ctx.disk_backlog().as_nanos() / 1_000_000,
                );
            }
            FsyncPolicy::GroupCommit { .. } => {
                self.write_seq += 1;
                self.unsynced_entries += units;
                self.maybe_issue(ctx);
            }
        }
    }

    /// Sends `msg` now if everything written so far is already durable,
    /// otherwise defers it until the fsync covering the current write
    /// sequence completes. The deferred queue is FIFO, so ack order is
    /// preserved relative to other deferred acks.
    pub fn ack_after_sync(&mut self, ctx: &mut Ctx<Msg>, to: ActorId, msg: Msg) {
        if self.policy.is_none() || self.write_seq <= self.synced_seq {
            ctx.send(to, msg);
            return;
        }
        self.stats.deferred_acks += 1;
        self.deferred.push_back((self.write_seq, to, msg));
        // A metadata-only ack (no entry written since the last fsync
        // batch opened) must still be covered by *some* future fsync;
        // group commit may be idle with an empty batch, so make sure
        // the delay clock is running.
        if let Some(FsyncPolicy::GroupCommit { .. }) = &self.policy {
            self.maybe_issue(ctx);
        }
    }

    /// Group commit: issues the next fsync when the batch is full, or
    /// arms the max-delay timer when work waits and nothing is in
    /// flight. Called on writes and after each completion.
    pub fn maybe_issue(&mut self, ctx: &mut Ctx<Msg>) {
        let Some(FsyncPolicy::GroupCommit {
            max_batch,
            max_delay,
        }) = &self.policy
        else {
            return;
        };
        if self.inflight || self.write_seq <= self.synced_seq {
            return;
        }
        if self.unsynced_entries >= *max_batch {
            self.issue_fsync(ctx);
        } else if !self.delay_armed {
            self.delay_armed = true;
            self.delay_gen += 1;
            ctx.set_timer(*max_delay, T_FSYNC_DELAY | (self.delay_gen & !KIND_MASK));
        }
    }

    /// The (generation-valid) max-delay timer fired: flush whatever is
    /// waiting unless an fsync is already in flight (its completion
    /// will re-evaluate).
    pub fn on_delay_fire(&mut self, ctx: &mut Ctx<Msg>) {
        self.delay_armed = false;
        if !self.inflight && self.write_seq > self.synced_seq {
            self.issue_fsync(ctx);
        }
    }

    fn issue_fsync(&mut self, ctx: &mut Ctx<Msg>) {
        self.inflight = true;
        // Retire any armed delay timer: this fsync covers its batch.
        if self.delay_armed {
            self.delay_armed = false;
            self.delay_gen += 1;
        }
        self.issued
            .push_back((self.write_seq, self.unsynced_entries as u64));
        self.unsynced_entries = 0;
        ctx.trace_app(
            "disk_queue_depth",
            self.issued.len() as u64,
            ctx.disk_backlog().as_nanos() / 1_000_000,
        );
        ctx.fsync(T_FSYNC | (self.write_seq & !KIND_MASK));
    }

    /// An fsync completion arrived for `seq`: advance the durable
    /// watermark, release every ack it covers, and return them with the
    /// completed batch size (entries).
    pub fn on_fsync_complete(&mut self, seq: u64) -> (Vec<(ActorId, Msg)>, u64) {
        self.synced_seq = self.synced_seq.max(seq);
        self.inflight = false;
        let mut batch = 0;
        while let Some(&(s, entries)) = self.issued.front() {
            if s > seq {
                break;
            }
            batch += entries;
            self.issued.pop_front();
        }
        self.stats.fsyncs += 1;
        self.stats.fsync_entries += batch;
        self.stats.last_batch_len = batch;
        let mut acks = Vec::new();
        while let Some(&(s, ..)) = self.deferred.front() {
            if s > self.synced_seq {
                break;
            }
            let (_, to, msg) = self.deferred.pop_front().expect("peeked");
            acks.push((to, msg));
        }
        (acks, batch)
    }

    /// Crash: unsynced writes never happened. Deferred acks die with
    /// them (exactly the point — they were never sent), in-flight
    /// fsyncs are cancelled by the sim's crash epoch, and the write
    /// sequence rewinds to the durable watermark. `synced_seq` itself
    /// persists: it *is* the on-disk state.
    pub fn crash_reset(&mut self) {
        self.write_seq = self.synced_seq;
        self.unsynced_entries = 0;
        self.inflight = false;
        self.delay_armed = false;
        self.delay_gen += 1;
        self.issued.clear();
        self.deferred.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxraft_sim::time::SimDuration;

    #[test]
    fn stats_mean_and_absorb() {
        let mut a = DurabilityStats {
            fsyncs: 2,
            fsync_entries: 10,
            deferred_acks: 3,
            last_batch_len: 6,
        };
        assert_eq!(a.mean_batch_len(), 5.0);
        let b = DurabilityStats {
            fsyncs: 1,
            fsync_entries: 2,
            deferred_acks: 1,
            last_batch_len: 2,
        };
        a.absorb(&b);
        assert_eq!(a.fsyncs, 3);
        assert_eq!(a.fsync_entries, 12);
        assert_eq!(a.deferred_acks, 4);
        assert_eq!(a.last_batch_len, 6);
        assert_eq!(DurabilityStats::default().mean_batch_len(), 0.0);
    }

    #[test]
    fn disabled_state_is_inert() {
        let d = DurabilityState::new(&DurabilityConfig::default());
        assert!(!d.enabled());
        assert_eq!(d.write_seq(), 0);
        assert_eq!(d.synced_seq(), 0);
    }

    #[test]
    fn crash_rewinds_to_synced() {
        let cfg = DurabilityConfig::group_commit(
            SimDuration::from_millis(1),
            8,
            SimDuration::from_millis(2),
        );
        let mut d = DurabilityState::new(&cfg);
        d.write_seq = 7;
        d.synced_seq = 4;
        d.unsynced_entries = 3;
        d.inflight = true;
        d.issued.push_back((7, 3));
        d.crash_reset();
        assert_eq!(d.write_seq(), 4);
        assert_eq!(d.synced_seq(), 4);
        assert!(!d.inflight);
        assert!(d.issued.is_empty());
        assert!(d.deferred.is_empty());
    }

    #[test]
    fn completion_drains_covered_acks_in_order() {
        let cfg = DurabilityConfig::per_entry(SimDuration::from_millis(1));
        let mut d = DurabilityState::new(&cfg);
        d.write_seq = 3;
        d.issued.extend([(1, 1), (2, 1), (3, 1)]);
        let stub = || {
            Msg::Engine(crate::msg::EngineMsg::RangeAck {
                group: 0,
                version: 1,
                header_bytes: 0,
            })
        };
        d.deferred.push_back((2, ActorId(9), stub()));
        d.deferred.push_back((3, ActorId(8), stub()));
        let (acks, batch) = d.on_fsync_complete(2);
        assert_eq!(batch, 2);
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].0, ActorId(9));
        assert_eq!(d.synced_seq(), 2);
        let (acks, batch) = d.on_fsync_complete(3);
        assert_eq!(batch, 1);
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].0, ActorId(8));
    }
}
