//! The shared replica engine: every behavior the four protocols have in
//! common, written once.
//!
//! The paper's thesis is that Paxos and Raft share so much structure
//! that optimizations port mechanically between them. This module makes
//! that true *by construction*: [`ReplicaEngine`]`<P>` owns all the
//! protocol-agnostic machinery — the key-value state machine with client
//! session dedup, pending-command batching and follower→leader
//! forwarding, election/heartbeat/batch timer arming, chunked snapshot
//! send and install with per-sender reassembly, and the
//! [`Actor`] plumbing — while each protocol shrinks to a
//! [`ProtocolRules`] impl expressing only what genuinely differs:
//!
//! | rules hook | Raft | Raft* | MultiPaxos | Mencius |
//! |---|---|---|---|---|
//! | `can_propose` | is leader | is leader | phase-1 succeeded | always |
//! | `propose` | append + AppendEntries | + ballot rewrite | next instance + Accept | own round-robin slot + Suggest |
//! | `on_election_timeout` | RequestVote | RequestVote + extras | Phase1a | — (revocation instead) |
//! | commit advance | §5.4.2 term check | f-th match | per-instance quorum | per-slot quorum + skips |
//!
//! An optimization added to the engine (a smarter batcher, snapshot
//! pacing, a new transfer encoding) lands in all four protocols at once:
//! the paper's "port the optimization" becomes "the engine already has
//! it". The worked example is [`pipeline`]: one per-peer replication
//! window plus an adaptive batch cutter (`cut_batch`) that flushes
//! eagerly while a quorum has window room and accumulates once
//! saturated — inherited by every rules impl.

pub mod durability;
pub mod pipeline;
pub mod raft_family;
mod transfer;

#[cfg(test)]
mod conformance;

pub use durability::{DurabilityState, DurabilityStats};
pub use pipeline::{PipelineConfig, PipelineStats, PipelineWindow};
pub use transfer::{compact_applied_prefix, install_into_raft_state, ship_snapshot};

use std::collections::{BTreeSet, HashMap};

use paxraft_sim::impl_actor_any;
use paxraft_sim::sim::{Actor, ActorId, Ctx};
use paxraft_sim::time::{SimDuration, SimTime};
use paxraft_sim::trace::SpanKind;

use crate::config::ReplicaConfig;
use crate::costs::CostModel;
use crate::kv::{CmdId, Command, KvStore, Op, Reply};
use crate::msg::{ClientMsg, EngineMsg, Msg};
use crate::shard::migration::{install_cmd_id, KeyOwnership, RangeExport, RouterVersion};
use crate::snapshot::{ChunkAssembler, Snapshot, SnapshotAssembler, SnapshotSender, SnapshotStats};
use crate::types::{self, NodeId, Slot, Term};

/// Timer token kinds (upper 16 bits); generation counters live in the
/// lower bits so stale timers are ignored. One registry for every
/// protocol — rules-specific timers ([`T_LEASE`], [`T_COORD`]) reach the
/// rules through [`ProtocolRules::on_timer`].
pub const T_ELECTION: u64 = 1 << 48;
/// Leader heartbeat / retransmission tick.
pub const T_HEARTBEAT: u64 = 2 << 48;
/// Pending-batch flush deadline.
pub const T_BATCH: u64 = 3 << 48;
/// Lease renewal tick (Raft*-PQL / LL).
pub const T_LEASE: u64 = 4 << 48;
/// An fsync completion (low bits carry the covered write sequence).
pub const T_FSYNC: u64 = 5 << 48;
/// Mencius coordination tick (skips, commit flush, revocation check).
pub const T_COORD: u64 = 6 << 48;
/// Group-commit max-delay flush deadline (low bits carry the
/// generation).
pub const T_FSYNC_DELAY: u64 = 7 << 48;
/// Mask selecting the timer kind bits.
pub const KIND_MASK: u64 = 0xFFFF << 48;

/// All protocol-agnostic replica state, owned by the engine.
#[derive(Debug)]
pub struct EngineCore {
    /// Static replica configuration.
    pub cfg: ReplicaConfig,
    /// The replicated state machine (client sessions included — the
    /// single implementation of duplicate-request dedup).
    pub kv: KvStore,
    /// Where this replica believes the leader is (forwarding target).
    pub leader_hint: Option<NodeId>,
    /// Commands buffered for the next batch flush (leader) or forward
    /// (follower).
    pub pending: Vec<Command>,
    batch_armed: bool,
    batch_gen: u64,
    /// Election timer generation (stale timers are ignored).
    pub election_gen: u64,
    /// Heartbeat timer generation.
    pub heartbeat_gen: u64,
    /// Reassembles incoming snapshot chunks, keyed by sender.
    pub snap_asm: SnapshotAssembler,
    /// Per-peer outbound transfer rate-limiting.
    pub snap_send: SnapshotSender,
    /// The durable snapshot the log was last compacted against (models
    /// the on-disk snapshot file); restored on crash-restart because the
    /// compacted prefix can no longer be replayed.
    pub stable_snap: Option<Snapshot>,
    /// Compaction / transfer counters.
    pub snap_stats: SnapshotStats,
    /// Client responses sent (stats).
    pub responses_sent: u64,
    /// Batch timers actually armed (stats; the re-arm regression test
    /// asserts a burst of requests arms exactly one).
    pub batch_timers_armed: u64,
    /// Batch flushes performed (stats).
    pub batch_flushes: u64,
    /// Commands forwarded toward the believed leader (stats; the
    /// no-leader retry regression asserts buffered commands are neither
    /// dropped nor duplicated across a leader transition).
    pub forwarded_cmds: u64,
    /// Per-peer in-flight replication round tracking; drives the
    /// adaptive batch cutter and the per-peer send gate.
    pub pipe: PipelineWindow,
    /// `(chunk, ack)` wire-header bytes of this protocol's snapshot
    /// spelling, resolved once from
    /// [`ProtocolRules::snapshot_wire_overhead`] (plus the group header
    /// in a sharded cluster).
    pub snap_wire: (usize, usize),
    /// Last leader window-occupancy hint piggybacked on replication
    /// traffic, and when it arrived. Drives follower-side adaptive
    /// forwarding when [`PipelineConfig::follower_hints`] is on.
    pub window_hint: Option<(bool, SimTime)>,
    /// Engine-level messages dropped because they carried another
    /// group's id (sharded clusters; stats/assertions).
    pub cross_group_dropped: u64,
    /// [`Reply::WrongGroup`] redirects sent to misrouted clients
    /// (sharded clusters). Kept separate from `responses_sent`, which
    /// counts only commit-visible work.
    pub redirects_sent: u64,
    /// Reassembles incoming range-export chunks (live rebalancing),
    /// keyed by sender — separate from `snap_asm` so a migration never
    /// interleaves with a concurrent snapshot transfer from the same
    /// peer.
    pub range_asm: ChunkAssembler,
    /// Migration versions the destination group confirmed installed
    /// (volatile leader-side bookkeeping; stops the re-export loop).
    pub mig_acked: BTreeSet<RouterVersion>,
    /// When each pending migration was last exported (re-export pacing).
    pub mig_last_export: HashMap<RouterVersion, SimTime>,
    /// Export attempts per migration: each retry rotates the receiving
    /// destination replica, so a crashed receiver cannot pin the
    /// transfer.
    pub mig_attempts: HashMap<RouterVersion, u64>,
    /// Range exports shipped (stats).
    pub mig_exports: u64,
    /// Range-export bytes shipped (stats).
    pub mig_export_bytes: u64,
    /// `InstallRange` commands newly absorbed by this replica (stats).
    pub mig_installs: u64,
    /// Apply-path load sketch (sharded clusters): cumulative keyed-op
    /// applies per fixed key-space bucket, counted at the proposer so
    /// summing across groups counts each op once. Pure bookkeeping —
    /// no sends, no timers — so it cannot perturb the schedule. The
    /// auto-rebalancing policy reads this through
    /// [`ReplicaEngine::metric_sample`].
    pub load_sketch: [u64; crate::shard::autobalance::SKETCH_BUCKETS],
    /// Durability sequencing + fsync scheduling (disabled by default).
    pub dur: DurabilityState,
}

impl EngineCore {
    /// Engine state for a validated configuration.
    pub fn new(cfg: ReplicaConfig) -> Self {
        let n = cfg.n;
        let pipe = PipelineWindow::new(n, &cfg.pipeline);
        // Placeholder spelling only: [`ReplicaEngine::from_parts`]
        // re-derives `snap_wire` from the rules' actual snapshot
        // spelling; a bare `EngineCore` never ships snapshots itself.
        let snap_wire = (
            cfg.costs.snapshot_chunk_header,
            cfg.costs.snapshot_ack_header,
        );
        let dur = DurabilityState::new(&cfg.durability);
        EngineCore {
            cfg,
            kv: KvStore::new(),
            leader_hint: None,
            pending: Vec::new(),
            batch_armed: false,
            batch_gen: 0,
            election_gen: 0,
            heartbeat_gen: 0,
            snap_asm: SnapshotAssembler::default(),
            snap_send: SnapshotSender::new(n),
            stable_snap: None,
            snap_stats: SnapshotStats::default(),
            responses_sent: 0,
            batch_timers_armed: 0,
            batch_flushes: 0,
            forwarded_cmds: 0,
            pipe,
            snap_wire,
            window_hint: None,
            cross_group_dropped: 0,
            redirects_sent: 0,
            range_asm: ChunkAssembler::default(),
            mig_acked: BTreeSet::new(),
            mig_last_export: HashMap::new(),
            mig_attempts: HashMap::new(),
            mig_exports: 0,
            mig_export_bytes: 0,
            mig_installs: 0,
            load_sketch: [0; crate::shard::autobalance::SKETCH_BUCKETS],
            dur,
        }
    }

    /// Records one durability write of `bytes` covering `entries` log
    /// entries and schedules fsyncs per the configured policy
    /// ([`crate::config::FsyncPolicy`]). No-op when durability is
    /// disabled — the zero-cost default issues no disk work at all.
    pub fn durable_write(&mut self, ctx: &mut Ctx<Msg>, bytes: usize, entries: usize) {
        self.dur.durable_write(ctx, bytes, entries);
    }

    /// Sends an acknowledgement that attests to replica state — an
    /// `AppendOk`, `AcceptOk`, `PrepareOk`, `SuggestOk` or snapshot ack
    /// — **after** everything written so far is fsynced. With
    /// durability disabled, sends immediately (the pre-durability
    /// behavior, schedule-identical to older builds).
    pub fn ack_after_sync(&mut self, ctx: &mut Ctx<Msg>, to: ActorId, msg: Msg) {
        self.dur.ack_after_sync(ctx, to, msg);
    }

    /// Resolves where a keyed operation belongs in a sharded cluster:
    /// `Some((group, version))` when it must be redirected, `None` when
    /// this replica serves it (always, when unsharded). The replicated
    /// migration overrides in the state machine win over the build-time
    /// map, so a range this group froze away bounces at the migration's
    /// new version and a range it absorbed is accepted even though the
    /// static map disagrees.
    pub fn misroute(&self, op: &Op) -> Option<(u32, RouterVersion)> {
        let shard = self.cfg.shard.as_ref()?;
        let key = op.key()?;
        match self.kv.shard_state().override_for(key) {
            Some(KeyOwnership::Redirect(group, version)) => {
                (group != shard.group).then_some((group, version))
            }
            Some(KeyOwnership::Accept(_)) => None,
            None => {
                let owner = shard.router.group_of(key);
                (owner != shard.group).then_some((owner, self.kv.shard_state().version))
            }
        }
    }

    /// Bounces a misrouted command with a versioned
    /// [`Reply::WrongGroup`] (charged like a reply but counted as a
    /// redirect, not commit-visible work).
    pub(crate) fn send_redirect(
        &mut self,
        ctx: &mut Ctx<Msg>,
        id: CmdId,
        group: u32,
        version: RouterVersion,
    ) {
        ctx.charge(self.cfg.costs.reply_fixed);
        ctx.send(
            self.cfg.client_actor(id.client),
            Msg::Client(ClientMsg::Response {
                id,
                reply: Reply::WrongGroup { group, version },
            }),
        );
        ctx.trace_span(
            SpanKind::Redirect {
                group: group as u64,
            },
            id.client,
            id.seq,
        );
        self.redirects_sent += 1;
    }

    /// Records a leader window-occupancy hint piggybacked on incoming
    /// replication traffic.
    pub fn note_window_hint(&mut self, room: bool, now: SimTime) {
        self.window_hint = Some((room, now));
    }

    /// Whether a fresh hint says the leader's window can absorb a
    /// forwarded batch right now. A hint older than two heartbeat
    /// periods is stale: the leader's occupancy has had time to change
    /// and two missed refreshes suggest the leader itself may be gone.
    pub fn hint_allows_forward(&self, now: SimTime) -> bool {
        self.cfg.pipeline.follower_hints
            && self
                .window_hint
                .is_some_and(|(room, at)| room && now.since(at.min(now)) <= self.cfg.heartbeat * 2)
    }

    /// This replica's bit in quorum bitmaps.
    pub fn me_bit(&self) -> u64 {
        types::me_bit(self.cfg.id)
    }

    /// Arms a fresh randomized election timer (invalidates the previous
    /// one). `never_led` selects the tiny bootstrap timeout on the
    /// configured initial leader's first round.
    pub fn arm_election(&mut self, ctx: &mut Ctx<Msg>, never_led: bool) {
        self.election_gen += 1;
        let span = self.cfg.election_max.as_nanos() - self.cfg.election_min.as_nanos();
        let delay = if self.cfg.initial_leader == Some(self.cfg.id) && never_led {
            SimDuration::from_millis(5)
        } else {
            self.cfg.election_min + SimDuration::from_nanos(ctx.rng().gen_range(span.max(1)))
        };
        ctx.set_timer(delay, T_ELECTION | self.election_gen);
    }

    /// Arms the next heartbeat tick (invalidates the previous one).
    pub fn arm_heartbeat(&mut self, ctx: &mut Ctx<Msg>) {
        self.heartbeat_gen += 1;
        ctx.set_timer(self.cfg.heartbeat, T_HEARTBEAT | self.heartbeat_gen);
    }

    /// Arms the batch-flush timer. At most one batch timer is ever
    /// outstanding: re-arming while armed is a no-op, and the generation
    /// in the token retires superseded timers.
    pub fn arm_batch(&mut self, ctx: &mut Ctx<Msg>) {
        if !self.batch_armed {
            self.batch_armed = true;
            self.batch_gen += 1;
            self.batch_timers_armed += 1;
            ctx.set_timer(self.cfg.batch_delay, T_BATCH | self.batch_gen);
        }
    }

    /// Sends a client response (no CPU charge; callers charge the cost
    /// appropriate to their path first).
    pub fn send_response(&mut self, ctx: &mut Ctx<Msg>, id: CmdId, reply: Reply) {
        ctx.send(
            self.cfg.client_actor(id.client),
            Msg::Client(ClientMsg::Response { id, reply }),
        );
        ctx.trace_span(SpanKind::Reply, id.client, id.seq);
        self.responses_sent += 1;
    }

    /// Charges the reply cost and sends a client response.
    pub fn respond(&mut self, ctx: &mut Ctx<Msg>, id: CmdId, reply: Reply) {
        ctx.charge(self.cfg.costs.reply_fixed);
        self.send_response(ctx, id, reply);
    }

    /// Forwards the buffered commands to the believed leader, or re-arms
    /// the batch timer to retry while no leader is known.
    pub fn forward_pending(&mut self, ctx: &mut Ctx<Msg>) {
        let Some(leader) = self.leader_hint else {
            if !self.pending.is_empty() {
                self.arm_batch(ctx);
            }
            return;
        };
        if leader == self.cfg.id || self.pending.is_empty() {
            return;
        }
        let cmds = std::mem::take(&mut self.pending);
        self.forwarded_cmds += cmds.len() as u64;
        if ctx.spans_enabled() {
            for c in &cmds {
                ctx.trace_span(SpanKind::Forward, c.id.client, c.id.seq);
            }
        }
        ctx.charge(self.cfg.costs.forward_per_cmd * cmds.len() as u64);
        ctx.send(
            self.cfg.peer(leader),
            Msg::Engine(EngineMsg::Forward {
                group: self.cfg.group_id(),
                header_bytes: self.cfg.forward_header_bytes(),
                cmds,
            }),
        );
    }
}

/// What a protocol must define for the engine to run it: ballot/vote
/// semantics, slot assignment, the commit-advance rule, and recovery.
/// Everything else — batching, forwarding, dedup, timers, snapshot
/// transfer — is inherited from [`ReplicaEngine`].
pub trait ProtocolRules: Sized + 'static {
    /// Whether this replica may assign slots to client commands itself
    /// (Raft-family leader, Paxos phase-1 winner; always true under
    /// Mencius, where every replica owns slots).
    fn can_propose(&self, core: &EngineCore) -> bool;

    /// Whether this replica counts as "the leader" for harness
    /// observation. Defaults to [`ProtocolRules::can_propose`].
    fn is_leader(&self, core: &EngineCore) -> bool {
        self.can_propose(core)
    }

    /// The applied prefix (Raft `lastApplied` / Paxos executed index).
    fn applied_index(&self, core: &EngineCore) -> Slot;

    /// Extra per-command propose cost (Mencius coordination overhead).
    fn extra_propose_cost(&self, costs: &CostModel) -> SimDuration {
        let _ = costs;
        SimDuration::ZERO
    }

    /// Assigns slots to a flushed batch and replicates it. Called only
    /// when [`ProtocolRules::can_propose`] holds; the engine has already
    /// charged the propose cost.
    fn propose(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, cmds: Vec<Command>);

    /// Serves a command without replication when a read optimization
    /// applies (quorum-lease local reads). `true` consumes the command.
    fn try_serve_local(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        cmd: &Command,
    ) -> bool {
        let _ = (core, ctx, cmd);
        false
    }

    /// Arms the protocol's initial timers (election bootstrap, lease
    /// renewal, Mencius coordination).
    fn on_start(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>);

    /// The (generation-valid) election timer fired and this replica is
    /// not leading: start recovery (RequestVote / Phase1a).
    fn on_election_timeout(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        let _ = (core, ctx);
    }

    /// The (generation-valid) heartbeat timer fired.
    fn on_heartbeat(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        let _ = (core, ctx);
    }

    /// A protocol-specific timer kind fired ([`T_LEASE`], [`T_COORD`]).
    fn on_timer(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, kind: u64, token: u64) {
        let _ = (core, ctx, kind, token);
    }

    /// The durable watermark advanced (an fsync completed and its
    /// deferred acks were released). Protocols that gate their *own*
    /// quorum contribution on local durability re-run their commit
    /// tally here — a leader's copy counts toward commitment only once
    /// it is fsynced, for the same reason a follower's ack waits.
    fn on_durable(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        let _ = (core, ctx);
    }

    /// Handles one protocol message (everything the engine does not
    /// consume itself).
    fn on_msg(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, from: ActorId, msg: Msg);

    /// Fixed CPU cost of receiving one snapshot chunk.
    fn snapshot_chunk_fixed_cost(&self, costs: &CostModel) -> SimDuration {
        costs.append_fixed
    }

    /// `(chunk, ack)` wire-header bytes of this protocol's snapshot
    /// spelling. Defaults to the Raft `InstallSnapshot`/`SnapshotAck`
    /// header sizes; the Paxos family overrides with its leaner
    /// `Checkpoint`/`CheckpointOk` spelling so the shared envelope keeps
    /// the per-protocol wire-cost distinction.
    fn snapshot_wire_overhead(&self, costs: &CostModel) -> (usize, usize) {
        (costs.snapshot_chunk_header, costs.snapshot_ack_header)
    }

    /// Gates an incoming snapshot chunk (term/ballot check, stepping
    /// down to the sender). `false` drops the chunk un-charged.
    fn accept_snapshot_chunk(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        seal: Term,
    ) -> bool {
        let _ = (core, ctx, from, seal);
        true
    }

    /// Installs a fully reassembled snapshot into the protocol's log /
    /// instance store and acknowledges it.
    fn install_snapshot(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        snap: Snapshot,
    );

    /// Handles a snapshot acknowledgement (release the per-peer transfer
    /// slot via [`SnapshotSender::finish`], then treat `upto` like a
    /// replication ack).
    fn on_snapshot_ack(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        seal: Term,
        upto: Slot,
    );

    /// Folds protocol-held peaks (retained log size) into the reported
    /// stats.
    fn decorate_stats(&self, stats: &mut SnapshotStats) {
        let _ = stats;
    }

    /// Resets volatile protocol state after a crash. The engine has
    /// already cleared its own volatile state (pending batch, transfer
    /// buffers, leader hint); restoring the state machine from
    /// `core.stable_snap` is the rules' job because what survives a
    /// restart differs per protocol family.
    fn on_crash(&mut self, core: &mut EngineCore);
}

/// A replica: the shared engine plus one protocol's rules.
pub struct ReplicaEngine<P: ProtocolRules> {
    pub(crate) core: EngineCore,
    pub(crate) rules: P,
}

impl<P: ProtocolRules> ReplicaEngine<P> {
    /// Assembles a replica from parts (protocol aliases provide `new`).
    pub fn from_parts(mut core: EngineCore, rules: P) -> Self {
        let (chunk, ack) = rules.snapshot_wire_overhead(&core.cfg.costs);
        // Sharded clusters stamp the group id on every engine-level
        // message; the header surcharge applies on top of whatever the
        // protocol's snapshot spelling costs.
        let gh = if core.cfg.shard.is_some() {
            core.cfg.costs.shard_group_header
        } else {
            0
        };
        core.snap_wire = (chunk + gh, ack + gh);
        ReplicaEngine { core, rules }
    }

    /// Whether this replica currently counts as the leader.
    pub fn is_leader(&self) -> bool {
        self.rules.is_leader(&self.core)
    }

    /// Read-only state machine access.
    pub fn kv(&self) -> &KvStore {
        &self.core.kv
    }

    /// The applied prefix (Raft `lastApplied` / Paxos executed index).
    pub fn applied_index(&self) -> Slot {
        self.rules.applied_index(&self.core)
    }

    /// Compaction / snapshot-transfer counters, peaks included.
    pub fn snap_stats(&self) -> SnapshotStats {
        let mut s = self.core.snap_stats;
        self.rules.decorate_stats(&mut s);
        s
    }

    /// Client responses sent (stats).
    pub fn responses_sent(&self) -> u64 {
        self.core.responses_sent
    }

    /// `(batch timers armed, batch flushes)` — stats for the batching
    /// regression tests.
    pub fn batching_stats(&self) -> (u64, u64) {
        (self.core.batch_timers_armed, self.core.batch_flushes)
    }

    /// Pipeline occupancy and adaptive-batching counters.
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.core.pipe.stats
    }

    /// Commands forwarded toward the believed leader (stats).
    pub fn forwarded_cmds(&self) -> u64 {
        self.core.forwarded_cmds
    }

    /// Fsync / deferred-ack counters (durability model).
    pub fn durability_stats(&self) -> DurabilityStats {
        self.core.dur.stats
    }

    /// `(exports shipped, export bytes, installs absorbed)` — live
    /// rebalancing counters.
    pub fn migration_stats(&self) -> (u64, u64, u64) {
        (
            self.core.mig_exports,
            self.core.mig_export_bytes,
            self.core.mig_installs,
        )
    }

    /// Registers this replica's named counters and gauges for the
    /// virtual-time sampler — the single metric source
    /// [`crate::harness::RunReport`] / [`crate::shard::GroupStats`]
    /// aggregates are rebuilt from. Counters carry cumulative values
    /// (the registry differences them into rates); gauges are
    /// instantaneous.
    pub fn metric_sample(&self) -> crate::telemetry::MetricSample {
        let mut s = crate::telemetry::MetricSample::default();
        // Counters (cumulative).
        s.record("responses", self.core.responses_sent as f64);
        s.record("batch_flushes", self.core.batch_flushes as f64);
        s.record("forwarded", self.core.forwarded_cmds as f64);
        s.record("redirects", self.core.redirects_sent as f64);
        s.record("range_exports", self.core.mig_exports as f64);
        s.record("range_export_bytes", self.core.mig_export_bytes as f64);
        s.record("range_installs", self.core.mig_installs as f64);
        s.record("fsyncs", self.core.dur.stats.fsyncs as f64);
        // Gauges (instantaneous).
        s.record("fsync_batch_len", self.core.dur.stats.last_batch_len as f64);
        s.record("pending_depth", self.core.pending.len() as f64);
        s.record(
            "pipeline_occupancy",
            self.core.pipe.total_in_flight() as f64,
        );
        // Apply-path load sketch (sharded clusters only): cumulative
        // per-bucket counts the auto-rebalancing policy differences
        // into rates. Counted at the proposer, so the cluster-wide sum
        // counts each op once at the group that served it.
        if self.core.cfg.shard.is_some() {
            for (b, name) in crate::shard::autobalance::SKETCH_NAMES.iter().enumerate() {
                s.record(name, self.core.load_sketch[b] as f64);
            }
        }
        s
    }

    /// A fully reassembled range export arrived from a source-group
    /// leader. If the migration is already absorbed (this is a
    /// re-export), confirm it straight back; otherwise wrap the export
    /// in its deterministic `InstallRange` command and hand it to the
    /// ordinary propose/forward path — the *destination group's own log*
    /// is what makes the install replicated, crash-safe and
    /// exactly-once.
    fn absorb_range_export(&mut self, ctx: &mut Ctx<Msg>, from: ActorId, export: RangeExport) {
        if export.to_group != self.core.cfg.group_id() {
            self.core.cross_group_dropped += 1;
            return;
        }
        if self.core.kv.shard_state().has_absorbed(export.version) {
            ctx.send(
                from,
                Msg::Engine(EngineMsg::RangeAck {
                    group: export.from_group,
                    version: export.version,
                    header_bytes: self.core.snap_wire.1 + 8,
                }),
            );
            // A re-export means somebody upstream missed a completion
            // signal; re-answer the coordinator too, in case it was its
            // install response that got lost (its freeze retry is what
            // provoked this re-export).
            self.core.send_response(
                ctx,
                install_cmd_id(export.coord, export.version),
                Reply::Done,
            );
            return;
        }
        let cmd = Command {
            id: install_cmd_id(export.coord, export.version),
            op: Op::InstallRange(export),
        };
        // Drop a duplicate still sitting in the pending batch (the
        // source re-exported before our first install committed).
        if self.core.pending.iter().any(|c| c.id == cmd.id) {
            return;
        }
        self.core.pending.push(cmd);
        cut_batch(&mut self.rules, &mut self.core, ctx);
    }
}

/// The single batch-flush implementation: charge the propose cost and
/// hand the batch to the rules, or forward it toward the leader when
/// this replica cannot assign slots itself.
pub fn flush_pending<P: ProtocolRules>(rules: &mut P, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
    if !rules.can_propose(core) {
        core.forward_pending(ctx);
        return;
    }
    if core.pending.is_empty() {
        return;
    }
    let cmds = std::mem::take(&mut core.pending);
    if ctx.spans_enabled() {
        for c in &cmds {
            ctx.trace_span(SpanKind::Propose, c.id.client, c.id.seq);
        }
    }
    let bytes: usize = cmds.iter().map(Command::size_bytes).sum();
    let per_cmd = core.cfg.costs.propose_per_cmd + rules.extra_propose_cost(&core.cfg.costs);
    ctx.charge(
        core.cfg.costs.propose_fixed
            + per_cmd * cmds.len() as u64
            + core.cfg.costs.size_cost(bytes),
    );
    core.batch_flushes += 1;
    rules.propose(core, ctx, cmds);
}

/// Marks every buffered command as deferred by the cutter (window
/// saturated or NIC backpressure) — explicit span evidence that the
/// time it now spends in the batch is a batching decision, not drift.
fn span_defer(core: &EngineCore, ctx: &mut Ctx<Msg>) {
    if ctx.spans_enabled() {
        for c in &core.pending {
            ctx.trace_span(SpanKind::WindowDefer, c.id.client, c.id.seq);
        }
    }
}

/// The adaptive batch cutter: decides, after commands were buffered,
/// whether the batch ships now or accumulates.
///
/// - A **full** batch (`batch_max`) always flushes immediately — a
///   leader proposes it, a follower forwards it. (Forwarding on
///   batch-full regardless of leadership is pre-refactor behavior; PR 2
///   accidentally made non-leader replicas sit on full forwarded
///   batches until the timer.)
/// - Below the limit, a proposer with **pipeline window room** for a
///   replication quorum flushes immediately too: the window hides the
///   round trip, so waiting for the timer would only add latency.
/// - Otherwise (window saturated, or a follower below the limit) the
///   batch accumulates under the batch timer — the regime where
///   batching amortizes per-round cost.
fn cut_batch<P: ProtocolRules>(rules: &mut P, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
    if core.pending.is_empty() {
        return;
    }
    if core.pending.len() >= core.cfg.batch_max {
        flush_pending(rules, core, ctx);
        if !core.pending.is_empty() {
            // Could not ship (e.g. no leader known): retry on the timer.
            core.arm_batch(ctx);
        }
        return;
    }
    // NIC-aware cutting: when this node's egress NIC is backed up by a
    // quarter of the batch delay or more, bytes — not window room — are
    // the bottleneck: a message cut now queues behind the backlog
    // instead of starting promptly, so eager cutting buys little
    // latency while its per-round overhead costs throughput (the
    // Figure-10b regime). Accumulate under the timer instead and let
    // batching amortize.
    let nic_saturated = core.cfg.pipeline.nic_aware && ctx.nic_backlog() * 4 > core.cfg.batch_delay;
    if rules.can_propose(core) && core.pipe.enabled() {
        if core.pipe.quorum_has_room(core.cfg.id, core.cfg.n) {
            if nic_saturated {
                core.pipe.stats.nic_deferrals += 1;
                span_defer(core, ctx);
            } else {
                core.pipe.stats.eager_flushes += 1;
                flush_pending(rules, core, ctx);
                return;
            }
        } else {
            core.pipe.stats.window_deferrals += 1;
            span_defer(core, ctx);
        }
    } else if !rules.can_propose(core)
        && core.leader_hint.is_some()
        && core.hint_allows_forward(ctx.now())
    {
        // Follower-side adaptive forwarding: the leader's piggybacked
        // occupancy hint says its window can absorb a fresh round, so
        // paying the batch delay before forwarding would only add
        // latency (the window hides the round trip, same argument as
        // the leader's eager cut above). A stale or saturated hint —
        // of the leader's window or of our own NIC — falls through to
        // the accumulate-under-timer regime.
        if nic_saturated {
            core.pipe.stats.nic_deferrals += 1;
            span_defer(core, ctx);
        } else {
            core.pipe.stats.hint_flushes += 1;
            flush_pending(rules, core, ctx);
            if core.pending.is_empty() {
                return;
            }
        }
    }
    core.arm_batch(ctx);
}

/// Accepts a forwarded batch: lease-serve what can be served locally,
/// bounce what a migration moved away (the forwarding follower may lag
/// behind the freeze), buffer the rest, and hand the result to the
/// batch cutter.
fn on_forwarded<P: ProtocolRules>(
    rules: &mut P,
    core: &mut EngineCore,
    ctx: &mut Ctx<Msg>,
    cmds: Vec<Command>,
) {
    ctx.charge(core.cfg.costs.forward_per_cmd * cmds.len() as u64);
    for cmd in cmds {
        if let Some((group, version)) = core.misroute(&cmd.op) {
            core.send_redirect(ctx, cmd.id, group, version);
            continue;
        }
        if rules.try_serve_local(core, ctx, &cmd) {
            continue;
        }
        ctx.trace_span(
            SpanKind::Enqueue {
                proposer: rules.can_propose(core),
            },
            cmd.id.client,
            cmd.id.seq,
        );
        core.pending.push(cmd);
    }
    cut_batch(rules, core, ctx);
}

/// The single apply-path implementation shared by every protocol:
/// applies one committed command to the state machine and runs the
/// migration hooks that need the wire — a (re-)applied `FreezeRange`
/// re-arms the source's export pump, and an applied `InstallRange` at
/// the destination's proposer broadcasts [`EngineMsg::RangeAck`] to the
/// source group so its leader (whoever that is by now) stops
/// re-exporting.
pub(crate) fn apply_command(
    core: &mut EngineCore,
    ctx: &mut Ctx<Msg>,
    cmd: &Command,
    is_proposer: bool,
) -> Reply {
    let newly_absorbed = match &cmd.op {
        Op::InstallRange(export) => !core.kv.shard_state().has_absorbed(export.version),
        _ => false,
    };
    // Load sketch: the proposer counts every keyed apply into its
    // key-space bucket (sharded clusters only). Followers skip it so a
    // cluster-wide sum attributes each op to exactly one group.
    if is_proposer {
        if let (Some(shard), Some(key)) = (core.cfg.shard.as_ref(), cmd.op.key()) {
            let records = shard.router.records();
            core.load_sketch[crate::shard::autobalance::bucket_of(records, key)] += 1;
        }
    }
    let reply = core.kv.apply(cmd);
    ctx.trace_app("apply", cmd.id.client as u64, cmd.id.seq);
    // The proposer's apply is the commit point the client's latency
    // observes (followers apply the same slot later, asynchronously).
    if is_proposer {
        ctx.trace_span(SpanKind::Commit, cmd.id.client, cmd.id.seq);
    }
    match &cmd.op {
        Op::FreezeRange { version, .. } => {
            ctx.trace_app("mig-freeze", *version, 0);
            // First apply starts the export; a coordinator's freeze
            // retry (its install-done signal was lost) re-applies as a
            // session dedup hit but still lands here, forcing a fresh
            // export so the destination re-announces the install.
            core.mig_acked.remove(version);
            core.mig_last_export.remove(version);
        }
        Op::InstallRange(export) => {
            if newly_absorbed {
                core.mig_installs += 1;
                ctx.trace_app("mig-install", export.version, export.records.len() as u64);
            }
            if is_proposer && core.cfg.shard.is_some() {
                let nodes: Vec<NodeId> = core.cfg.nodes().collect();
                for node in nodes {
                    ctx.send(
                        core.cfg.group_actor(export.from_group, node),
                        Msg::Engine(EngineMsg::RangeAck {
                            group: export.from_group,
                            version: export.version,
                            header_bytes: core.snap_wire.1 + 8,
                        }),
                    );
                }
            }
        }
        Op::ReleaseRange { version } => ctx.trace_app("mig-release", *version, 0),
        _ => {}
    }
    reply
}

/// The source-side export pump: a proposer holding frozen ranges whose
/// hand-off is neither released nor acknowledged (re-)ships them to the
/// destination group, paced by the retry interval. Called after every
/// handler dispatch, which is what makes the export survive a source
/// leader crash — the successor applies (or restores) the same frozen
/// state and its own pump picks the transfer up.
fn maybe_drive_migration<P: ProtocolRules>(
    rules: &mut P,
    core: &mut EngineCore,
    ctx: &mut Ctx<Msg>,
) {
    if core.cfg.shard.is_none() {
        return;
    }
    let has_pending = core
        .kv
        .shard_state()
        .pending_exports()
        .any(|f| !core.mig_acked.contains(&f.version));
    if !has_pending || !rules.can_propose(core) {
        return;
    }
    let pending: Vec<crate::shard::migration::FrozenRange> = core
        .kv
        .shard_state()
        .pending_exports()
        .filter(|f| !core.mig_acked.contains(&f.version))
        .cloned()
        .collect();
    for f in pending {
        let due = core
            .mig_last_export
            .get(&f.version)
            .is_none_or(|&at| ctx.now().since(at.min(ctx.now())) >= core.cfg.retry_interval);
        if !due {
            continue;
        }
        core.mig_last_export.insert(f.version, ctx.now());
        let export = RangeExport {
            version: f.version,
            lo: f.lo,
            hi: f.hi,
            from_group: core.cfg.group_id(),
            to_group: f.to_group,
            coord: f.coord,
            records: core.kv.export_range(f.lo, f.hi),
            sessions: core.kv.export_sessions(),
        };
        let bytes = export.encode();
        ctx.charge(core.cfg.costs.snapshot_cost(bytes.len()));
        core.mig_exports += 1;
        core.mig_export_bytes += bytes.len() as u64;
        ctx.trace_app("mig-export", f.version, bytes.len() as u64);
        // Ship to the destination group's co-located replica (same
        // node) first; if that replica is not the destination leader,
        // the engine's ordinary forwarding moves the install command
        // on. Retries rotate through the destination's other replicas
        // so a crashed receiver cannot pin the transfer.
        let attempt = core.mig_attempts.entry(f.version).or_insert(0);
        let node = NodeId((core.cfg.id.0 + *attempt as u32) % core.cfg.n as u32);
        *attempt += 1;
        let dest = core.cfg.group_actor(f.to_group, node);
        let chunk = core.cfg.snapshot.chunk_bytes.max(1);
        let total = bytes.len();
        let mut offset = 0;
        loop {
            let end = (offset + chunk).min(total);
            ctx.send(
                dest,
                Msg::Engine(EngineMsg::RangeChunk {
                    group: f.to_group,
                    version: f.version,
                    offset,
                    total,
                    header_bytes: core.snap_wire.0 + 8,
                    data: bytes[offset..end].to_vec(),
                }),
            );
            offset = end;
            if offset >= total {
                break;
            }
        }
    }
}

impl<P: ProtocolRules> Actor<Msg> for ReplicaEngine<P> {
    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        self.rules.on_start(&mut self.core, ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Client(ClientMsg::Request { cmd }) => {
                ctx.charge(self.core.cfg.costs.client_req);
                // Sharded clusters: a key owned by another group —
                // under the build-time map or the replicated migration
                // overrides — is redirected before it can touch this
                // group's log or sessions (the client's partition map
                // raced a config change). Not a response in the
                // commit-visible sense: charged like one but counted as
                // a redirect.
                if let Some((group, version)) = self.core.misroute(&cmd.op) {
                    self.core.send_redirect(ctx, cmd.id, group, version);
                    return;
                }
                if self.rules.try_serve_local(&mut self.core, ctx, &cmd) {
                    return;
                }
                ctx.trace_span(
                    SpanKind::Enqueue {
                        proposer: self.rules.can_propose(&self.core),
                    },
                    cmd.id.client,
                    cmd.id.seq,
                );
                self.core.pending.push(cmd);
                cut_batch(&mut self.rules, &mut self.core, ctx);
            }
            Msg::Client(ClientMsg::RouterUpdate { .. }) => {
                // Router updates address clients; a replica ignores them
                // (its ownership view is replicated through its log).
            }
            Msg::Engine(EngineMsg::Forward { group, cmds, .. }) => {
                if group != self.core.cfg.group_id() {
                    self.core.cross_group_dropped += 1;
                    return;
                }
                on_forwarded(&mut self.rules, &mut self.core, ctx, cmds);
            }
            Msg::Engine(EngineMsg::RangeChunk {
                group,
                version,
                offset,
                total,
                header_bytes: _,
                data,
            }) => {
                if group != self.core.cfg.group_id() {
                    self.core.cross_group_dropped += 1;
                    return;
                }
                ctx.charge(
                    self.rules.snapshot_chunk_fixed_cost(&self.core.cfg.costs)
                        + self.core.cfg.costs.snapshot_cost(data.len()),
                );
                let done =
                    self.core
                        .range_asm
                        .offer(from.0 as u64, Slot(version), offset, total, &data);
                if let Some(bytes) = done {
                    if let Some(export) = RangeExport::decode(&bytes) {
                        self.absorb_range_export(ctx, from, export);
                    }
                }
            }
            Msg::Engine(EngineMsg::RangeAck { group, version, .. }) => {
                if group != self.core.cfg.group_id() {
                    self.core.cross_group_dropped += 1;
                    return;
                }
                // The destination confirmed the install committed: stop
                // re-exporting this migration.
                self.core.mig_acked.insert(version);
            }
            // `last_term` rides inside the encoded payload; the header
            // copy only matters for observability.
            Msg::Engine(EngineMsg::SnapshotChunk {
                group,
                seal,
                last_slot,
                last_term: _,
                offset,
                total,
                header_bytes: _,
                data,
            }) => {
                if group != self.core.cfg.group_id() {
                    self.core.cross_group_dropped += 1;
                    return;
                }
                if !self
                    .rules
                    .accept_snapshot_chunk(&mut self.core, ctx, from, seal)
                {
                    return;
                }
                ctx.charge(
                    self.rules.snapshot_chunk_fixed_cost(&self.core.cfg.costs)
                        + self.core.cfg.costs.snapshot_cost(data.len()),
                );
                if let Some(snap) =
                    self.core
                        .snap_asm
                        .offer(from.0 as u64, last_slot, offset, total, &data)
                {
                    self.rules.install_snapshot(&mut self.core, ctx, from, snap);
                }
            }
            Msg::Engine(EngineMsg::SnapshotAck {
                group, seal, upto, ..
            }) => {
                if group != self.core.cfg.group_id() {
                    self.core.cross_group_dropped += 1;
                    return;
                }
                self.rules
                    .on_snapshot_ack(&mut self.core, ctx, from, seal, upto);
            }
            other => {
                self.rules.on_msg(&mut self.core, ctx, from, other);
                // Acknowledgements may have freed pipeline window room:
                // ship a batch that accumulated while saturated without
                // waiting for its timer.
                if self.core.pipe.enabled() && !self.core.pending.is_empty() {
                    cut_batch(&mut self.rules, &mut self.core, ctx);
                }
            }
        }
        maybe_drive_migration(&mut self.rules, &mut self.core, ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, token: u64) {
        match token & KIND_MASK {
            T_ELECTION => {
                if token & !KIND_MASK == self.core.election_gen && !self.rules.is_leader(&self.core)
                {
                    self.rules.on_election_timeout(&mut self.core, ctx);
                }
            }
            T_HEARTBEAT => {
                if token & !KIND_MASK == self.core.heartbeat_gen {
                    self.rules.on_heartbeat(&mut self.core, ctx);
                }
            }
            T_BATCH => {
                if token & !KIND_MASK != self.core.batch_gen {
                    return;
                }
                self.core.batch_armed = false;
                if !self.core.pending.is_empty() {
                    flush_pending(&mut self.rules, &mut self.core, ctx);
                }
                if !self.core.pending.is_empty() {
                    // Still buffered (e.g. no leader known): retry later.
                    self.core.arm_batch(ctx);
                }
            }
            T_FSYNC => {
                let seq = token & !KIND_MASK;
                let (acks, batch) = self.core.dur.on_fsync_complete(seq);
                ctx.trace_app("disk_fsync", batch, seq);
                for (to, msg) in acks {
                    ctx.send(to, msg);
                }
                // Start the next group-commit batch if one is already
                // waiting, then let the rules advance whatever the new
                // durable watermark unblocks (leader commit tallies).
                self.core.dur.maybe_issue(ctx);
                self.rules.on_durable(&mut self.core, ctx);
            }
            T_FSYNC_DELAY => {
                if token & !KIND_MASK == self.core.dur.delay_gen() {
                    self.core.dur.on_delay_fire(ctx);
                }
            }
            kind => self.rules.on_timer(&mut self.core, ctx, kind, token),
        }
        maybe_drive_migration(&mut self.rules, &mut self.core, ctx);
    }

    fn on_crash(&mut self) {
        // Shared volatile state: the pending batch, the batch timer, any
        // in-flight transfer bookkeeping, the pipeline window and the
        // leader hint die with the process. Durable state (and what of
        // it each protocol restores) is the rules' concern.
        self.core.pending.clear();
        self.core.batch_armed = false;
        // Retire every timer generation: a pre-crash in-flight timer
        // token must never match post-restart state, even if the runtime
        // redelivers it (the engine does not rely on the host dropping
        // timers across a restart).
        self.core.batch_gen += 1;
        self.core.election_gen += 1;
        self.core.heartbeat_gen += 1;
        self.core.leader_hint = None;
        self.core.window_hint = None;
        self.core.snap_asm.clear();
        self.core.snap_send.reset();
        self.core.pipe.reset();
        // In-flight migration transfer state is volatile; the frozen /
        // absorbed bookkeeping itself is state-machine state and comes
        // back with the log / snapshot, re-arming the export pump.
        self.core.range_asm.clear();
        self.core.mig_acked.clear();
        self.core.mig_last_export.clear();
        self.core.mig_attempts.clear();
        // Unsynced durability writes are gone and their deferred acks
        // were never sent; `synced_seq` persists (it is the on-disk
        // state) so the rules' recovery below can truncate to it.
        self.core.dur.crash_reset();
        self.rules.on_crash(&mut self.core);
    }

    impl_actor_any!();
}
