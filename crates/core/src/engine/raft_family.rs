//! The Raft-family base: replication state and plumbing shared verbatim
//! by Raft and Raft*.
//!
//! Both protocols drive the same contiguous [`Log`] with the same
//! leader-side [`Replicator`], the same election/heartbeat shape, and
//! the same snapshot install/ack handling; they differ only in the
//! append acceptance rule (truncate vs no-shrink + ballot rewrite), the
//! vote rule (plain up-to-date check vs extras), and the commit rule
//! (§5.4.2 term check vs f-th largest match, optionally PQL-gated).
//! [`RaftBase`] holds the shared part so a fix to — say — the
//! snapshot-then-pipeline append path is written once.

use std::collections::VecDeque;

use paxraft_sim::sim::{ActorId, Ctx};
use paxraft_sim::trace::SpanKind;

use crate::kv::KvStore;
use crate::log::Log;
use crate::msg::{EngineMsg, Msg, RaftMsg};
use crate::replicate::Replicator;
use crate::snapshot::{Snapshot, SnapshotStats};
use crate::types::{NodeId, Slot, Term};

use super::{transfer, EngineCore};

/// Raft roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive replica.
    Follower,
    /// Campaigning for leadership.
    Candidate,
    /// Elected leader.
    Leader,
}

/// Replication state common to Raft and Raft*.
#[derive(Debug)]
pub struct RaftBase {
    /// Current term (ballot-encoded; see [`Term::encode`]).
    pub current_term: Term,
    /// Current role.
    pub role: Role,
    /// The replicated log.
    pub log: Log,
    /// Highest committed slot.
    pub commit_index: Slot,
    /// Highest applied slot.
    pub last_applied: Slot,
    /// Vote bitmap for the current candidacy.
    pub votes: u64,
    /// Leader-side per-follower progress.
    pub repl: Replicator,
    /// Highest log index covered by a *completed* fsync. Only this
    /// prefix survives a crash when durability is enabled; it also
    /// bounds how far this replica's own copy counts toward commitment
    /// (see [`RaftBase::durable_tail`]).
    pub synced_idx: Slot,
    /// Outstanding durability writes: `(write seq, last index covered)`
    /// in issue order, drained by [`RaftBase::absorb_synced`] as fsyncs
    /// complete.
    pub pending_sync: VecDeque<(u64, Slot)>,
    /// Highest slot a `Quorum` span was emitted for (span bookkeeping
    /// only — never consulted by protocol logic).
    pub quorum_mark: Slot,
}

impl RaftBase {
    /// Fresh follower state for an `n`-replica cluster.
    pub fn new(n: usize) -> Self {
        RaftBase {
            current_term: Term::ZERO,
            role: Role::Follower,
            log: Log::new(),
            commit_index: Slot::NONE,
            last_applied: Slot::NONE,
            votes: 0,
            repl: Replicator::new(n),
            synced_idx: Slot::NONE,
            pending_sync: VecDeque::new(),
            quorum_mark: Slot::NONE,
        }
    }

    /// Emits `Quorum` spans for slots newly covered by the **unclamped**
    /// replication tally (`upto` = the f-th largest match, before the
    /// durability clamp, after any protocol-specific term/holder check).
    /// From that instant only the durability clamp holds commit back,
    /// which is exactly the boundary that splits *replication* wait from
    /// *fsync* wait in the latency breakdown. Observation only: a single
    /// branch when spans are off, pure log reads when on.
    pub fn note_quorum(&mut self, ctx: &mut Ctx<Msg>, upto: Slot) {
        if !ctx.spans_enabled() {
            return;
        }
        while self.quorum_mark < upto {
            let s = if self.quorum_mark == Slot::NONE {
                self.log.first_index()
            } else {
                self.quorum_mark.next()
            };
            if let Some(e) = self.log.get(s) {
                if e.cmd.id.client != u32::MAX {
                    ctx.trace_span(SpanKind::Quorum, e.cmd.id.client, e.cmd.id.seq);
                }
            }
            self.quorum_mark = s;
        }
    }

    /// Records that the log through `upto` was written to the durable
    /// path: charges the disk model and remembers which fsync sequence
    /// will cover `upto`. No-op when durability is disabled.
    pub fn note_append_durable(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        bytes: usize,
        entries: usize,
        upto: Slot,
    ) {
        core.durable_write(ctx, bytes, entries);
        if core.dur.enabled() {
            self.pending_sync.push_back((core.dur.write_seq(), upto));
        }
    }

    /// A conflicting rewrite replaced the suffix from `from` on:
    /// durability claims above `from - 1` are void, both the completed
    /// watermark and any fsync still in flight (its completion must not
    /// claim indexes whose *content* it never covered). Call **before**
    /// recording the rewrite's own durable write.
    pub fn note_rewrite_from(&mut self, from: Slot) {
        let cap = if from == Slot::NONE {
            from
        } else {
            from.prev()
        };
        self.synced_idx = self.synced_idx.min(cap);
        // Rewritten slots carry new commands: their quorum is a fresh
        // observation (span bookkeeping only).
        self.quorum_mark = self.quorum_mark.min(cap);
        for p in &mut self.pending_sync {
            p.1 = p.1.min(cap);
        }
    }

    /// Advances `synced_idx` past every pending write the engine's
    /// durable watermark now covers. Called from the `on_durable` hook.
    pub fn absorb_synced(&mut self, core: &EngineCore) {
        while let Some(&(seq, upto)) = self.pending_sync.front() {
            if seq > core.dur.synced_seq() {
                break;
            }
            self.synced_idx = self.synced_idx.max(upto);
            self.pending_sync.pop_front();
        }
    }

    /// The highest log index this replica's own copy may vouch for in a
    /// commit tally: the fsynced prefix when durability is enabled (the
    /// compacted floor is snapshot-durable by construction), the whole
    /// log otherwise.
    ///
    /// This is the leader-side half of the ack-after-fsync invariant:
    /// without it, f durable followers plus the leader's volatile copy
    /// could commit an entry, the leader could crash, and the next
    /// election quorum (f+1 of the surviving 2f) need not include any
    /// holder of the entry — an acknowledged write would be lost.
    pub fn durable_tail(&self, core: &EngineCore) -> Slot {
        if core.dur.enabled() {
            self.synced_idx.max(self.log.last_included().0)
        } else {
            self.log.last_index()
        }
    }

    /// Arms the randomized election timer (bootstrap-fast while the
    /// replica has never seen a term).
    pub fn arm_election(&self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        core.arm_election(ctx, self.current_term == Term::ZERO);
    }

    /// Adopts a higher term and falls back to follower.
    pub fn step_down(&mut self, core: &mut EngineCore, term: Term, ctx: &mut Ctx<Msg>) {
        self.current_term = term;
        self.role = Role::Follower;
        self.arm_election(core, ctx);
    }

    /// Starts a campaign: fresh owned term, candidate role, self-vote,
    /// `RequestVote` broadcast, election retry timer. The caller then
    /// checks for the degenerate immediate win.
    pub fn begin_election(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.current_term = self.current_term.next_for(core.cfg.id, core.cfg.n);
        self.role = Role::Candidate;
        core.leader_hint = None;
        self.votes = core.me_bit();
        for peer in core.cfg.others() {
            ctx.send(
                core.cfg.peer(peer),
                Msg::Raft(RaftMsg::RequestVote {
                    term: self.current_term,
                    last_idx: self.log.last_index(),
                    last_term: self.log.last_term(),
                }),
            );
        }
        self.arm_election(core, ctx);
    }

    /// Sends each follower its tailored suffix.
    pub fn broadcast_append(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        let peers: Vec<NodeId> = core.cfg.others().collect();
        for peer in peers {
            self.send_append_to(core, ctx, peer);
        }
    }

    /// Sends `peer` the log suffix after its send cursor — one pipelined
    /// replication round. When the peer's window is full the round is
    /// withheld (the backlog ships from [`RaftBase::pump`] as acks free
    /// slots, or after the heartbeat rewinds a timed-out peer); empty
    /// (heartbeat) appends are never gated. When the follower's next
    /// entry was compacted away, ships a snapshot instead and pipelines
    /// the retained suffix behind it — FIFO links deliver the chunks
    /// first, so the Append matches once the snapshot installs.
    pub fn send_append_to(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, peer: NodeId) {
        let mut prev = self.repl.next_prev(peer);
        let has_entries = self.log.last_index() > prev;
        if has_entries && !core.pipe.has_room(peer) {
            return; // window full: new rounds wait for acks
        }
        if prev < self.log.last_included().0 {
            let point = self.snapshot_point();
            let Some(snap_slot) =
                transfer::ship_snapshot(core, ctx, peer, point, self.current_term)
            else {
                return; // a transfer is in flight; let it finish
            };
            prev = snap_slot;
        }
        let prev_term = self.log.term_at(prev).unwrap_or(Term::ZERO);
        let entries = self.log.suffix_from(prev);
        let tail = self.log.last_index();
        self.repl.mark_sent(peer, prev, tail, ctx.now());
        if !entries.is_empty() {
            core.pipe.on_sent(peer, tail, ctx.now());
        }
        // Piggyback our window occupancy so followers can cut forward
        // batches adaptively (empty heartbeat appends refresh the hint
        // even on an idle cluster).
        let window_room = core.pipe.quorum_has_room(core.cfg.id, core.cfg.n);
        ctx.send(
            core.cfg.peer(peer),
            Msg::Raft(RaftMsg::Append {
                term: self.current_term,
                prev,
                prev_term,
                entries,
                commit: self.commit_index,
                window_room,
            }),
        );
    }

    /// Ships `peer` any entries that accumulated while its pipeline
    /// window was full. Called after an acknowledgement frees a slot.
    pub fn pump(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, peer: NodeId) {
        if self.role == Role::Leader && self.log.last_index() > self.repl.next_prev(peer) {
            self.send_append_to(core, ctx, peer);
        }
    }

    /// Leader heartbeat: timed retransmission of unacknowledged
    /// suffixes to every follower, then re-arm. A rewound peer's
    /// in-flight rounds are presumed lost, so its pipeline window is
    /// regressed and the retransmission starts a fresh round.
    pub fn heartbeat(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if self.role != Role::Leader {
            return;
        }
        let peers: Vec<NodeId> = core.cfg.others().collect();
        for peer in peers {
            if self
                .repl
                .maybe_rewind(peer, ctx.now(), core.cfg.retry_interval)
            {
                core.pipe.on_regress(peer);
            }
            self.send_append_to(core, ctx, peer);
        }
        core.arm_heartbeat(ctx);
    }

    /// Applies the committed prefix in order; the leader answers
    /// clients at apply time. Migration commands run their engine hooks
    /// ([`super::apply_command`]) here like everywhere else.
    pub fn apply_loop(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        while self.last_applied < self.commit_index {
            let next = self.last_applied.next();
            let Some(entry) = self.log.get(next) else {
                break;
            };
            let cmd = entry.cmd.clone();
            ctx.charge(core.cfg.costs.apply_per_cmd);
            let reply = super::apply_command(core, ctx, &cmd, self.role == Role::Leader);
            self.last_applied = next;
            if self.role == Role::Leader && cmd.id.client != u32::MAX {
                core.respond(ctx, cmd.id, reply);
            }
        }
    }

    /// Compacts the applied log prefix once it crosses the configured
    /// threshold, snapshotting the state machine first (the snapshot is
    /// the durable replacement for the discarded entries).
    pub fn maybe_compact(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if let Some(bytes) = transfer::compact_applied_prefix(
            &core.cfg.snapshot,
            &mut self.log,
            &core.kv,
            self.last_applied,
            &mut core.stable_snap,
            &mut core.snap_stats,
        ) {
            ctx.charge(core.cfg.costs.snapshot_cost(bytes));
            // The snapshot file replaces the compacted entries as their
            // durable form; charge its write. It is modeled atomic
            // (write-temp + fsync + rename): recovering a *newer*
            // snapshot of committed state is always safe, so no ack
            // waits on this fsync.
            core.durable_write(ctx, bytes, 1);
        }
    }

    /// `(slot, term)` an outbound snapshot covers.
    pub fn snapshot_point(&self) -> (Slot, Term) {
        (
            self.last_applied,
            self.log.term_at(self.last_applied).unwrap_or(Term::ZERO),
        )
    }

    /// Gates an incoming snapshot chunk: reject stale senders, adopt
    /// the sender's term otherwise.
    pub fn accept_snapshot_chunk(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        seal: Term,
    ) -> bool {
        if seal < self.current_term {
            ctx.send(
                from,
                Msg::Raft(RaftMsg::AppendReject {
                    term: self.current_term,
                    last_idx: self.log.last_index(),
                }),
            );
            return false;
        }
        self.current_term = seal;
        self.role = Role::Follower;
        core.leader_hint = Some(seal.owner(core.cfg.n));
        self.arm_election(core, ctx);
        true
    }

    /// Installs a reassembled snapshot into the log/state machine;
    /// returns whether it was fresh (and charges its cost if so).
    pub fn install_snapshot(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        snap: Snapshot,
    ) -> bool {
        let bytes = snap.size_bytes();
        let fresh = transfer::install_into_raft_state(
            snap,
            &mut self.log,
            &mut core.kv,
            &mut self.last_applied,
            &mut self.commit_index,
            &mut core.stable_snap,
            &mut core.snap_stats,
        );
        if fresh {
            ctx.charge(core.cfg.costs.snapshot_cost(bytes));
            // An installed snapshot becomes this replica's recovery
            // floor, and the ack below attests to holding it — so its
            // write must be fsynced before the ack leaves (the ack is
            // routed through `ack_after_sync` by `ack_snapshot`). The
            // install supersedes the log prefix, including any pending
            // fsync claims below the new floor.
            core.durable_write(ctx, bytes, 1);
            if core.dur.enabled() {
                let floor = self.log.last_included().0;
                self.synced_idx = self.synced_idx.max(floor);
                self.pending_sync.push_back((core.dur.write_seq(), floor));
            }
        }
        fresh
    }

    /// Acknowledges a snapshot transfer — even a stale one: the applied
    /// prefix is committed state, so the leader may treat it as matched
    /// and resume normal appends from there. The ack attests to holding
    /// the snapshot, so it waits for the install's fsync.
    pub fn ack_snapshot(&self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, from: ActorId) {
        let msg = Msg::Engine(EngineMsg::SnapshotAck {
            group: core.cfg.group_id(),
            seal: self.current_term,
            upto: self.last_applied,
            header_bytes: core.snap_wire.1,
        });
        core.ack_after_sync(ctx, from, msg);
    }

    /// Handles a snapshot acknowledgement; returns whether the
    /// follower's match advanced at the current term (the caller then
    /// runs its commit rule).
    pub fn on_snapshot_ack(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        seal: Term,
        upto: Slot,
    ) -> bool {
        if seal > self.current_term {
            self.step_down(core, seal, ctx);
        } else if seal == self.current_term && self.role == Role::Leader {
            let peer = core.cfg.node_of(from);
            core.snap_send.finish(peer.0 as usize);
            core.pipe.on_ack(peer, upto);
            let advanced = self.repl.on_ack(peer, upto);
            self.pump(core, ctx, peer);
            return advanced;
        }
        false
    }

    /// Folds the log's retained-size peaks into the reported stats.
    pub fn decorate_stats(&self, stats: &mut SnapshotStats) {
        stats.note_log_size(self.log.peak_entries(), self.log.peak_bytes());
    }

    /// Crash-restart: terms, the *fsynced* log prefix and the durable
    /// snapshot persist; roles, votes, the state machine and any
    /// unsynced log suffix do not. With durability enabled the suffix
    /// above the durable watermark is truncated — those entries never
    /// reached the disk, and no ack attesting to them was ever sent
    /// (the ack-after-fsync invariant), so discarding them cannot lose
    /// acknowledged state. The state machine restarts from the snapshot
    /// (the compacted prefix is not replayable) and re-applies the
    /// retained log as the commit index re-advances.
    pub fn crash_reset(&mut self, core: &mut EngineCore) {
        if core.dur.enabled() {
            // Recover to the fsynced prefix. The compacted floor is
            // durable by construction (the snapshot file is fsynced at
            // compaction), so the watermark never truncates below it.
            let keep = self.synced_idx.max(self.log.last_included().0);
            if self.log.last_index() > keep {
                self.log.truncate_from(keep.next());
            }
            self.synced_idx = keep;
            self.pending_sync.clear();
        }
        self.role = Role::Follower;
        self.votes = 0;
        self.commit_index = Slot::NONE;
        self.last_applied = Slot::NONE;
        core.kv = KvStore::new();
        if let Some(snap) = &core.stable_snap {
            core.kv.restore(&snap.kv);
            self.last_applied = snap.last_slot;
            self.commit_index = snap.last_slot;
        }
        // Span bookkeeping restarts at the recovered floor.
        self.quorum_mark = self.commit_index;
    }
}
