//! Cross-protocol conformance suite: one parameterized harness run over
//! all four [`ProtocolRules`] implementations.
//!
//! These scenarios used to exist as four near-identical test clusters,
//! one per protocol file; the engine refactor makes them a single
//! generic suite. Each scenario runs against Raft, Raft*, MultiPaxos and
//! Mencius and asserts engine-level guarantees: elect-and-commit, leader
//! crash failover, partition heal via snapshot transfer,
//! duplicate-request dedup, batch-timer discipline, pipelined
//! replication under loss and leader crash, forwarding discipline, and
//! seed-for-seed determinism of the full measurement harness.

use paxraft_sim::sim::{Actor, ActorId, Simulation};
use paxraft_sim::time::{SimDuration, SimTime};

use crate::config::{DurabilityConfig, ReplicaConfig};
use crate::engine::{PipelineConfig, ProtocolRules, ReplicaEngine};
use crate::harness::{Cluster, ProtocolKind};
use crate::mencius::MenciusReplica;
use crate::msg::{ClientMsg, EngineMsg, Msg};
use crate::multipaxos::MultiPaxosReplica;
use crate::raft::RaftReplica;
use crate::raftstar::RaftStarReplica;
use crate::snapshot::SnapshotConfig;
use crate::telemetry::TelemetryConfig;
use crate::testutil::{cluster_with, drive_until, with_trace_dump, TestClient};
use crate::types::NodeId;

/// Builds an `n`-replica cluster of one protocol plus a scripted client
/// targeting replica 0. Mencius ignores `initial_leader`; the shortened
/// revocation timeout keeps its failover scenarios inside the deadlines.
fn conformance_cluster<P: ProtocolRules>(
    n: usize,
    snapshot: Option<SnapshotConfig>,
    make: impl Fn(ReplicaConfig) -> ReplicaEngine<P>,
) -> (Simulation<Msg>, Vec<ActorId>, ActorId) {
    cluster_with(n, |mut cfg| {
        cfg.initial_leader = Some(NodeId(0));
        cfg.mencius.revoke_timeout = SimDuration::from_secs(2);
        if let Some(s) = &snapshot {
            cfg.snapshot = s.clone();
        }
        Box::new(make(cfg))
    })
}

/// Runs `scenario` once per protocol, labeled for failure messages.
macro_rules! for_all_protocols {
    ($scenario:ident) => {
        $scenario("Raft", RaftReplica::new);
        $scenario("Raft*", RaftStarReplica::new);
        $scenario("MultiPaxos", MultiPaxosReplica::new);
        $scenario("Mencius", MenciusReplica::new);
    };
}

#[test]
fn every_protocol_elects_commits_and_reads_back() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, client) = conformance_cluster(3, None, make);
        sim.actor_mut::<TestClient>(client).enqueue_put(42);
        sim.actor_mut::<TestClient>(client).enqueue_get(42);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 2
            }),
            "{name}: both ops answered"
        );
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[1].1.value_id().is_some(),
            "{name}: read observes the write"
        );
        assert!(
            replicas
                .iter()
                .any(|&r| sim.actor::<ReplicaEngine<P>>(r).is_leader()),
            "{name}: some replica leads"
        );
    }
    for_all_protocols!(scenario);
}

#[test]
fn every_protocol_survives_crash_of_the_serving_replica() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, client) = conformance_cluster(3, None, make);
        sim.actor_mut::<TestClient>(client).enqueue_put(1);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 1
            }),
            "{name}: first write committed"
        );
        // Crash the replica serving the client (the leader where there is
        // one); the client fails over to a survivor, which must finish
        // the remaining work — by re-election or, for Mencius, by
        // revoking the dead owner's slots.
        sim.crash_at(replicas[0], sim.now() + SimDuration::from_millis(1));
        sim.actor_mut::<TestClient>(client).target = replicas[1];
        sim.actor_mut::<TestClient>(client).enqueue_put(2);
        sim.actor_mut::<TestClient>(client).enqueue_get(2);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(60), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 3
            }),
            "{name}: survivor served the remaining ops"
        );
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[2].1.value_id().is_some(),
            "{name}: committed write survived the crash"
        );
    }
    for_all_protocols!(scenario);
}

#[test]
fn every_protocol_heals_a_partitioned_replica_via_snapshot() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, client) =
            conformance_cluster(3, Some(SnapshotConfig::every(16)), make);
        // Cut replica 2 off, then commit far more than the compaction
        // threshold so the survivors discard the prefix it still needs.
        sim.partition_at(vec![0, 0, 1, 0], SimTime::from_millis(1));
        for k in 0..45 {
            sim.actor_mut::<TestClient>(client).enqueue_put(k);
        }
        assert!(
            drive_until(&mut sim, SimTime::from_secs(280), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 45
            }),
            "{name}: majority side kept committing under the partition"
        );
        let survivor_applied = sim.actor::<ReplicaEngine<P>>(replicas[0]).applied_index();
        assert!(
            sim.actor::<ReplicaEngine<P>>(replicas[0])
                .snap_stats()
                .compactions
                >= 1,
            "{name}: survivors compacted past the lagger"
        );
        sim.heal_at(sim.now() + SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_secs(20));
        let lagger = sim.actor::<ReplicaEngine<P>>(replicas[2]);
        assert!(
            lagger.snap_stats().snapshots_installed >= 1,
            "{name}: rejoined replica installed a snapshot ({:?})",
            lagger.snap_stats()
        );
        assert!(
            lagger.applied_index().0 + 64 >= survivor_applied.0,
            "{name}: rejoined replica converged ({} vs {})",
            lagger.applied_index(),
            survivor_applied
        );
    }
    for_all_protocols!(scenario);
}

#[test]
fn requests_sent_to_a_follower_are_forwarded_and_answered() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, _client) = conformance_cluster(3, None, make);
        // Let replica 0 take leadership, then drive a fresh client at a
        // *follower*: the engine's forward path (or Mencius's local
        // proposal) must still answer it.
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<ReplicaEngine<P>>(replicas[0]).is_leader()
            }),
            "{name}: replica 0 leads"
        );
        let mut follower_client = TestClient::new(1, replicas[1]);
        follower_client.enqueue_put(9);
        follower_client.enqueue_get(9);
        let fc = sim.add_actor(paxraft_sim::net::Region::Ohio, Box::new(follower_client));
        assert!(
            drive_until(&mut sim, SimTime::from_secs(10), |sim| {
                sim.actor::<TestClient>(fc).replies.len() == 2
            }),
            "{name}: follower-targeted ops were forwarded and answered"
        );
        assert!(
            sim.actor::<TestClient>(fc).replies[1]
                .1
                .value_id()
                .is_some(),
            "{name}: read through the follower observes the write"
        );
    }
    for_all_protocols!(scenario);
}

#[test]
fn every_protocol_dedups_duplicate_requests() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, client) = conformance_cluster(3, None, make);
        sim.actor_mut::<TestClient>(client).enqueue_put(5);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 1
            }),
            "{name}: write committed"
        );
        sim.run_for(SimDuration::from_secs(1)); // let the apply settle
        let before = sim
            .actor::<ReplicaEngine<P>>(replicas[0])
            .kv()
            .applied_ops();
        // Resend the same command; the session table must return the
        // cached reply rather than double-apply.
        let cmd = sim.actor::<TestClient>(client).sent[0].clone();
        let target = sim.actor::<TestClient>(client).target;
        sim.send_external(
            target,
            Msg::Client(ClientMsg::Request { cmd }),
            SimDuration::ZERO,
        );
        sim.run_for(SimDuration::from_secs(2));
        let after = sim
            .actor::<ReplicaEngine<P>>(replicas[0])
            .kv()
            .applied_ops();
        assert_eq!(
            before, after,
            "{name}: duplicate request did not re-apply (was {before}, now {after})"
        );
    }
    for_all_protocols!(scenario);
}

#[test]
fn burst_of_requests_arms_one_batch_timer_and_one_flush() {
    // Pins the legacy (pipeline-disabled) batching discipline: with no
    // eager cutting, a burst under `batch_max` arms exactly one timer
    // and produces exactly one flush.
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, _client) = conformance_cluster(3, None, move |mut cfg| {
            cfg.pipeline = PipelineConfig::disabled();
            make(cfg)
        });
        // Let the cluster elect and go quiet.
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<ReplicaEngine<P>>(replicas[0]).is_leader()
            }),
            "{name}: replica 0 leads"
        );
        sim.run_for(SimDuration::from_secs(1));
        let (armed0, flushed0) = sim.actor::<ReplicaEngine<P>>(replicas[0]).batching_stats();
        // A burst of N requests lands within one batch window (N well
        // under batch_max, so only the timer can flush it).
        let n_burst = 8u64;
        for seq in 1..=n_burst {
            let cmd = crate::kv::Command::put(crate::kv::CmdId { client: 0, seq }, seq, vec![0; 8]);
            sim.send_external(
                replicas[0],
                Msg::Client(ClientMsg::Request { cmd }),
                SimDuration::ZERO,
            );
        }
        sim.run_for(SimDuration::from_secs(1));
        let (armed1, flushed1) = sim.actor::<ReplicaEngine<P>>(replicas[0]).batching_stats();
        assert_eq!(
            armed1 - armed0,
            1,
            "{name}: a burst of {n_burst} requests arms exactly one batch timer"
        );
        assert_eq!(
            flushed1 - flushed0,
            1,
            "{name}: and produces exactly one flush"
        );
    }
    for_all_protocols!(scenario);
}

/// Seed-for-seed determinism of the full measurement harness: two runs
/// with identical seeds must produce identical [`RunReport`]s (committed
/// ops, latency percentiles, compaction counters, peak log size) for
/// every protocol.
///
/// [`RunReport`]: crate::harness::RunReport
#[test]
fn fixed_seed_runs_are_deterministic_for_every_protocol() {
    fn fingerprint(p: ProtocolKind, seed: u64) -> String {
        let mut cluster = Cluster::builder(p)
            .clients_per_region(1)
            .seed(seed)
            .snapshot_config(SnapshotConfig::every(64))
            .build();
        cluster.elect_leader();
        let r = cluster.run_measurement(
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
        format!(
            "thr={} lr={:?} fr={:?} lw={:?} fw={:?} snaps={:?} pipe={:?} end={}",
            r.throughput_ops,
            r.leader_reads,
            r.follower_reads,
            r.leader_writes,
            r.follower_writes,
            r.snapshots,
            r.pipeline,
            cluster.sim.now()
        )
    }
    for p in [
        ProtocolKind::Raft,
        ProtocolKind::RaftStar,
        ProtocolKind::MultiPaxos,
        ProtocolKind::RaftStarMencius,
    ] {
        let a = fingerprint(p, 9);
        let b = fingerprint(p, 9);
        assert_eq!(a, b, "{}: same seed, same RunReport", p.name());
    }
}

/// Telemetry is observation-only: a run with the flight recorder AND
/// the virtual-time sampler enabled must produce a bit-for-bit
/// identical [`RunReport`] (same throughput, same latency percentiles,
/// same counters, same final clock) as the default telemetry-off run —
/// the recorder never draws from the RNG and the sampler only reads
/// state between simulation steps. This is what keeps the pinned
/// `PARITY_pr5.txt` fingerprints valid regardless of observability
/// settings.
///
/// [`RunReport`]: crate::harness::RunReport
#[test]
fn telemetry_enabled_runs_are_bit_for_bit_identical_to_disabled() {
    fn fingerprint(p: ProtocolKind, telemetry: TelemetryConfig) -> (String, usize, u64) {
        let mut cluster = Cluster::builder(p)
            .clients_per_region(1)
            .seed(9)
            .snapshot_config(SnapshotConfig::every(64))
            .telemetry_config(telemetry)
            .build();
        cluster.elect_leader();
        let r = cluster.run_measurement(
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
        let fp = format!(
            "thr={} lr={:?} fr={:?} lw={:?} fw={:?} snaps={:?} pipe={:?} end={}",
            r.throughput_ops,
            r.leader_reads,
            r.follower_reads,
            r.leader_writes,
            r.follower_writes,
            r.snapshots,
            r.pipeline,
            cluster.sim.now()
        );
        (fp, r.telemetry.len(), cluster.sim.trace().recorded())
    }
    for p in [
        ProtocolKind::Raft,
        ProtocolKind::RaftStar,
        ProtocolKind::MultiPaxos,
        ProtocolKind::RaftStarMencius,
    ] {
        let (off, series_off, traced_off) = fingerprint(p, TelemetryConfig::default());
        let (on, series_on, traced_on) = fingerprint(p, TelemetryConfig::sampled());
        assert_eq!(off, on, "{}: telemetry never perturbs the run", p.name());
        assert_eq!(series_off, 0, "{}: off-run collects nothing", p.name());
        assert!(
            series_on > 0,
            "{}: enabled run collected time-series",
            p.name()
        );
        assert_eq!(traced_off, 0, "{}: off-run records no events", p.name());
        assert!(
            traced_on > 0,
            "{}: enabled run recorded trace events",
            p.name()
        );
    }
}

/// Span tracing is observation-only, protocol by protocol: a run with
/// per-command span recording enabled must produce a bit-for-bit
/// identical [`RunReport`] (throughput, percentiles, counters, final
/// clock) as the default spans-off run for all four rule sets. The
/// instrumentation sits on the hot path of every send/enqueue/commit,
/// so this is the test that pins "one branch when disabled, no RNG
/// draws" — and what keeps `PARITY_pr5.txt` valid at the default
/// configuration.
///
/// [`RunReport`]: crate::harness::RunReport
#[test]
fn span_tracing_on_and_off_runs_are_bit_for_bit_identical() {
    fn fingerprint(p: ProtocolKind, telemetry: TelemetryConfig) -> (String, Option<usize>) {
        let mut cluster = Cluster::builder(p)
            .clients_per_region(1)
            .seed(9)
            .snapshot_config(SnapshotConfig::every(64))
            .telemetry_config(telemetry)
            .build();
        cluster.elect_leader();
        let r = cluster.run_measurement(
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
        let fp = format!(
            "thr={} lr={:?} fr={:?} lw={:?} fw={:?} snaps={:?} pipe={:?} end={}",
            r.throughput_ops,
            r.leader_reads,
            r.follower_reads,
            r.leader_writes,
            r.follower_writes,
            r.snapshots,
            r.pipeline,
            cluster.sim.now()
        );
        (fp, r.spans.map(|s| s.commands.len()))
    }
    for p in [
        ProtocolKind::Raft,
        ProtocolKind::RaftStar,
        ProtocolKind::MultiPaxos,
        ProtocolKind::RaftStarMencius,
    ] {
        let (off, spans_off) = fingerprint(p, TelemetryConfig::default());
        let (on, spans_on) = fingerprint(p, TelemetryConfig::default().with_spans());
        assert_eq!(off, on, "{}: span tracing never perturbs the run", p.name());
        assert_eq!(spans_off, None, "{}: off-run assembles nothing", p.name());
        assert!(
            spans_on.is_some_and(|n| n > 0),
            "{}: enabled run assembled command breakdowns",
            p.name()
        );
    }
}

/// The accounting identity under adversity: in a run with 10% message
/// loss and a replica crash/restart racing the measurement window, every
/// traced command's stage components must sum *exactly* to its observed
/// end-to-end latency — retries, duplicate deliveries and re-sends
/// included. Runs over all four rule sets.
#[test]
fn span_breakdowns_sum_exactly_under_loss_and_crash() {
    use crate::telemetry::Stage;
    for p in [
        ProtocolKind::Raft,
        ProtocolKind::RaftStar,
        ProtocolKind::MultiPaxos,
        ProtocolKind::RaftStarMencius,
    ] {
        let mut cluster = Cluster::builder(p)
            .clients_per_region(1)
            .seed(13)
            .telemetry_config(TelemetryConfig::default().with_spans())
            .build();
        cluster.elect_leader();
        // Lossy network for the whole run, plus a non-serving replica
        // bouncing inside the measurement window.
        let now = cluster.sim.now();
        cluster.sim.set_drop_rate_at(0.10, now);
        let n = cluster.replicas().len();
        let victim = cluster.replicas()[(cluster.leader().0 as usize + 1) % n];
        cluster
            .sim
            .crash_at(victim, now + SimDuration::from_millis(1500));
        cluster
            .sim
            .restart_at(victim, now + SimDuration::from_millis(2200));
        let r = cluster.run_measurement(
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
        let spans = r.spans.expect("spans enabled");
        assert!(
            !spans.commands.is_empty(),
            "{}: traced commands under loss+crash",
            p.name()
        );
        for b in &spans.commands {
            let sum = Stage::ALL
                .iter()
                .fold(SimDuration::ZERO, |acc, &s| acc + b.stage(s));
            assert_eq!(
                sum,
                b.total(),
                "{}: accounting identity for client {} seq {} ({:?})",
                p.name(),
                b.client,
                b.seq,
                b.stages
            );
        }
    }
}

/// A burst injected at a proposer overlaps replication rounds: the
/// adaptive cutter flushes eagerly while the window has room, so several
/// rounds are in flight at once — and for the window-gated protocols the
/// per-peer depth bound is respected.
#[test]
fn pipelined_burst_overlaps_rounds_within_the_depth_bound() {
    fn scenario<P: ProtocolRules>(
        name: &str,
        gated: bool,
        make: fn(ReplicaConfig) -> ReplicaEngine<P>,
    ) {
        let depth = 4usize;
        let (mut sim, replicas, _client) = conformance_cluster(3, None, move |mut cfg| {
            cfg.pipeline = PipelineConfig::depth(depth);
            make(cfg)
        });
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<ReplicaEngine<P>>(replicas[0]).is_leader()
            }),
            "{name}: replica 0 leads"
        );
        sim.run_for(SimDuration::from_secs(1));
        let before = sim
            .actor::<ReplicaEngine<P>>(replicas[0])
            .kv()
            .applied_ops();
        let n_burst = 10u64;
        for seq in 1..=n_burst {
            let cmd = crate::kv::Command::put(crate::kv::CmdId { client: 0, seq }, seq, vec![0; 8]);
            sim.send_external(
                replicas[0],
                Msg::Client(ClientMsg::Request { cmd }),
                SimDuration::ZERO,
            );
        }
        sim.run_for(SimDuration::from_secs(3));
        let rep = sim.actor::<ReplicaEngine<P>>(replicas[0]);
        assert_eq!(
            rep.kv().applied_ops() - before,
            n_burst,
            "{name}: every burst command committed and applied"
        );
        let stats = rep.pipeline_stats();
        assert!(
            stats.peak_in_flight >= 2,
            "{name}: rounds overlapped in flight ({stats:?})"
        );
        assert!(
            stats.eager_flushes >= 1,
            "{name}: the cutter flushed eagerly ({stats:?})"
        );
        if gated {
            assert!(
                stats.peak_in_flight <= depth as u64,
                "{name}: per-peer window bound respected ({stats:?})"
            );
        }
    }
    scenario("Raft", true, RaftReplica::new);
    scenario("Raft*", true, RaftStarReplica::new);
    scenario("MultiPaxos", true, MultiPaxosReplica::new);
    // Mencius suggestions always reach every peer (watermark safety), so
    // its window paces the cutter but does not gate sends.
    scenario("Mencius", false, MenciusReplica::new);
}

/// Pipelined replication under message loss: rounds are dropped and
/// acknowledged out of order, retransmission regresses the window, and
/// every protocol still commits every command exactly once — with the
/// same final replicated state across all four protocols.
#[test]
fn every_protocol_converges_under_loss_with_pipelining() {
    fn scenario<P: ProtocolRules>(
        name: &str,
        make: fn(ReplicaConfig) -> ReplicaEngine<P>,
    ) -> Vec<(u64, Option<u64>)> {
        let (mut sim, replicas, client) = conformance_cluster(3, None, move |mut cfg| {
            cfg.pipeline = PipelineConfig::depth(4);
            make(cfg)
        });
        sim.set_drop_rate_at(0.10, SimTime::from_millis(1));
        for k in 0..20 {
            sim.actor_mut::<TestClient>(client).enqueue_put(k);
        }
        assert!(
            drive_until(&mut sim, SimTime::from_secs(120), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 20
            }),
            "{name}: all writes committed despite 10% loss"
        );
        sim.set_drop_rate_at(0.0, sim.now() + SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_secs(5));
        // Every replica converges to the same state machine. A
        // divergence here dumps the flight-recorder tail (who sent,
        // dropped, applied what, when) alongside the assertion.
        with_trace_dump(&mut sim, |sim| {
            let digest: Vec<(u64, Option<u64>)> = (0..20)
                .map(|k| {
                    (
                        k,
                        sim.actor::<ReplicaEngine<P>>(replicas[0])
                            .kv()
                            .read_local(k)
                            .value_id(),
                    )
                })
                .collect();
            for &r in &replicas {
                let rep = sim.actor::<ReplicaEngine<P>>(r);
                assert_eq!(
                    rep.kv().applied_ops(),
                    sim.actor::<ReplicaEngine<P>>(replicas[0])
                        .kv()
                        .applied_ops(),
                    "{name}: duplicate retransmissions were deduplicated everywhere"
                );
                for &(k, v) in &digest {
                    assert_eq!(
                        rep.kv().read_local(k).value_id(),
                        v,
                        "{name}: replica {r:?} agrees at key {k}"
                    );
                }
            }
            digest
        })
    }
    let raft = scenario("Raft", RaftReplica::new);
    let raftstar = scenario("Raft*", RaftStarReplica::new);
    let paxos = scenario("MultiPaxos", MultiPaxosReplica::new);
    let mencius = scenario("Mencius", MenciusReplica::new);
    // Same client script, same committed state — in all four protocols.
    assert_eq!(raft, raftstar, "Raft vs Raft* final state");
    assert_eq!(raft, paxos, "Raft vs MultiPaxos final state");
    assert_eq!(raft, mencius, "Raft vs Mencius final state");
}

/// Leader crash with a full pipeline in flight: the client's pending
/// burst survives the failover (commands are retried, deduplicated and
/// committed exactly once by the successor).
#[test]
fn every_protocol_survives_leader_crash_mid_pipeline() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, client) = conformance_cluster(3, None, move |mut cfg| {
            cfg.pipeline = PipelineConfig::depth(4);
            make(cfg)
        });
        sim.actor_mut::<TestClient>(client).enqueue_put(1);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 1
            }),
            "{name}: first write committed"
        );
        // Fill the serving replica's pipeline with a burst (from a second
        // client actor, so its responses have somewhere to go), then
        // crash the replica before the rounds can be acknowledged.
        let sink = sim.add_actor(
            paxraft_sim::net::Region::Oregon,
            Box::new(TestClient::new(1, replicas[0])),
        );
        let sink_client = (sink.0 - replicas.len()) as u32;
        for seq in 100..110u64 {
            let cmd = crate::kv::Command::put(
                crate::kv::CmdId {
                    client: sink_client,
                    seq,
                },
                seq,
                vec![0; 8],
            );
            sim.send_external(
                replicas[0],
                Msg::Client(ClientMsg::Request { cmd }),
                SimDuration::ZERO,
            );
        }
        sim.crash_at(replicas[0], sim.now() + SimDuration::from_millis(2));
        sim.actor_mut::<TestClient>(client).target = replicas[1];
        sim.actor_mut::<TestClient>(client).enqueue_put(2);
        sim.actor_mut::<TestClient>(client).enqueue_get(2);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(60), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 3
            }),
            "{name}: survivor served the remaining ops"
        );
        assert!(
            sim.actor::<TestClient>(client).replies[2]
                .1
                .value_id()
                .is_some(),
            "{name}: committed write survived the mid-pipeline crash"
        );
    }
    for_all_protocols!(scenario);
}

/// PR 2 drift regression: a full forwarded batch arriving at a
/// *non-leader* replica must be forwarded onward immediately, not parked
/// until the batch timer.
#[test]
fn full_forwarded_batch_is_flushed_immediately_regardless_of_leadership() {
    fn scenario<P: ProtocolRules>(
        name: &str,
        proposes_locally: bool,
        make: fn(ReplicaConfig) -> ReplicaEngine<P>,
    ) {
        let (mut sim, replicas, _client) = conformance_cluster(3, None, make);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<ReplicaEngine<P>>(replicas[0]).is_leader()
            }),
            "{name}: replica 0 leads"
        );
        // Let heartbeats teach replica 1 who leads.
        sim.run_for(SimDuration::from_secs(1));
        let sink = sim.add_actor(
            paxraft_sim::net::Region::Ohio,
            Box::new(TestClient::new(1, replicas[1])),
        );
        let sink_client = (sink.0 - replicas.len()) as u32;
        let batch_max = sim
            .actor::<ReplicaEngine<P>>(replicas[1])
            .core
            .cfg
            .batch_max;
        let cmds: Vec<crate::kv::Command> = (1..=batch_max as u64)
            .map(|seq| {
                crate::kv::Command::put(
                    crate::kv::CmdId {
                        client: sink_client,
                        seq,
                    },
                    seq,
                    vec![0; 8],
                )
            })
            .collect();
        sim.send_external(
            replicas[1],
            Msg::Engine(EngineMsg::Forward {
                group: 0,
                header_bytes: 8,
                cmds,
            }),
            SimDuration::ZERO,
        );
        // Well under batch_delay (2 ms): only an immediate flush can have
        // emptied the buffer.
        sim.run_for(SimDuration::from_millis(1));
        let rep = sim.actor::<ReplicaEngine<P>>(replicas[1]);
        assert!(
            rep.core.pending.is_empty(),
            "{name}: full batch did not wait for the batch timer"
        );
        if !proposes_locally {
            assert_eq!(
                rep.forwarded_cmds(),
                batch_max as u64,
                "{name}: non-leader forwarded the full batch at once"
            );
        }
    }
    scenario("Raft", false, RaftReplica::new);
    scenario("Raft*", false, RaftStarReplica::new);
    scenario("MultiPaxos", false, MultiPaxosReplica::new);
    // Mencius proposes into its own slots instead of forwarding, but the
    // batch-full flush must be just as immediate.
    scenario("Mencius", true, MenciusReplica::new);
}

/// Follower-side adaptive forwarding: with `follower_hints` on, a
/// command arriving at a follower while the leader's piggybacked
/// occupancy hint shows window room is forwarded immediately — it never
/// waits for the batch timer. (With hints off, the non-full-batch
/// follower path always waits; `burst_of_requests_arms_one_batch_timer`
/// pins that discipline.)
#[test]
fn follower_hints_cut_forward_batches_before_the_timer() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, _client) = conformance_cluster(3, None, move |mut cfg| {
            cfg.pipeline = PipelineConfig::default().with_follower_hints();
            make(cfg)
        });
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<ReplicaEngine<P>>(replicas[0]).is_leader()
            }),
            "{name}: replica 0 leads"
        );
        // Let a heartbeat round deliver the occupancy hint to followers.
        sim.run_for(SimDuration::from_secs(1));
        let sink = sim.add_actor(
            paxraft_sim::net::Region::Ohio,
            Box::new(TestClient::new(1, replicas[1])),
        );
        let sink_client = (sink.0 - replicas.len()) as u32;
        let cmd = crate::kv::Command::put(
            crate::kv::CmdId {
                client: sink_client,
                seq: 1,
            },
            3,
            vec![0; 8],
        );
        sim.send_external(
            replicas[1],
            Msg::Client(ClientMsg::Request { cmd }),
            SimDuration::ZERO,
        );
        // Well under batch_delay (2 ms): only the hint path can have
        // forwarded it already.
        sim.run_for(SimDuration::from_millis(1));
        let rep = sim.actor::<ReplicaEngine<P>>(replicas[1]);
        assert!(
            rep.core.pending.is_empty(),
            "{name}: single command did not wait for the batch timer"
        );
        assert_eq!(
            rep.forwarded_cmds(),
            1,
            "{name}: command forwarded immediately on the hint"
        );
        assert!(
            rep.pipeline_stats().hint_flushes >= 1,
            "{name}: the hint path was what cut the batch ({:?})",
            rep.pipeline_stats()
        );
        // End to end: the forwarded command still commits and applies.
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<ReplicaEngine<P>>(replicas[0])
                    .kv()
                    .read_local(3)
                    .value_id()
                    .is_some()
            }),
            "{name}: hint-forwarded command committed"
        );
    }
    // Mencius proposes locally (never forwards), so the hint path is
    // exercised by the two forwarding families only.
    scenario("Raft", RaftReplica::new);
    scenario("Raft*", RaftStarReplica::new);
    scenario("MultiPaxos", MultiPaxosReplica::new);
}

/// PR 2 drift regression: `forward_pending` with no known leader keeps
/// retrying on the batch timer, terminates once a leader appears, and
/// the buffered command is forwarded exactly once — neither dropped nor
/// duplicated across the transition.
#[test]
fn forward_pending_retries_until_a_leader_appears_without_loss_or_duplication() {
    fn scenario<P: ProtocolRules>(
        name: &str,
        expected_forwards: u64,
        make: fn(ReplicaConfig) -> ReplicaEngine<P>,
    ) {
        let (mut sim, replicas, _client) = conformance_cluster(3, None, make);
        // Inject at a follower at t=0, before any replica has ever led:
        // the engine must buffer and retry until the election finishes
        // and the leader hint propagates.
        let cmd = crate::kv::Command::put(crate::kv::CmdId { client: 0, seq: 1 }, 5, vec![0; 8]);
        sim.send_external(
            replicas[1],
            Msg::Client(ClientMsg::Request { cmd }),
            SimDuration::ZERO,
        );
        sim.run_for(SimDuration::from_millis(1));
        {
            let rep = sim.actor::<ReplicaEngine<P>>(replicas[1]);
            if expected_forwards > 0 {
                assert_eq!(
                    rep.core.pending.len(),
                    1,
                    "{name}: command buffered while no leader is known"
                );
                assert_eq!(rep.forwarded_cmds(), 0, "{name}: nothing forwarded yet");
            }
        }
        sim.run_for(SimDuration::from_secs(3));
        let rep = sim.actor::<ReplicaEngine<P>>(replicas[1]);
        assert!(
            rep.core.pending.is_empty(),
            "{name}: retry loop terminated once a leader appeared"
        );
        assert_eq!(
            rep.forwarded_cmds(),
            expected_forwards,
            "{name}: buffered command forwarded exactly once"
        );
        // The command took effect.
        assert_eq!(
            sim.actor::<ReplicaEngine<P>>(replicas[0])
                .kv()
                .read_local(5)
                .value_id(),
            Some(crate::kv::CmdId { client: 0, seq: 1 }.as_value_id()),
            "{name}: buffered write committed after the transition"
        );
    }
    scenario("Raft", 1, RaftReplica::new);
    scenario("Raft*", 1, RaftStarReplica::new);
    scenario("MultiPaxos", 1, MultiPaxosReplica::new);
    // Mencius owns its slots: it proposes locally and never forwards.
    scenario("Mencius", 0, MenciusReplica::new);
}

/// PR 2 drift regression: a crash retires *every* engine timer
/// generation, so no pre-crash in-flight timer token can match
/// post-restart state even if the runtime redelivers it.
#[test]
fn crash_bumps_every_engine_timer_generation() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let mut cfg = ReplicaConfig::wan_default(NodeId(0), 3);
        cfg.peers = (0..3).map(ActorId).collect();
        let mut rep = make(cfg);
        // Simulate armed timers whose tokens are still in flight.
        rep.core.batch_armed = true;
        rep.core.batch_gen = 5;
        rep.core.election_gen = 7;
        rep.core.heartbeat_gen = 9;
        Actor::on_crash(&mut rep);
        assert!(!rep.core.batch_armed, "{name}: batch timer disarmed");
        assert!(
            rep.core.batch_gen > 5,
            "{name}: pre-crash batch token retired"
        );
        assert!(
            rep.core.election_gen > 7,
            "{name}: pre-crash election token retired"
        );
        assert!(
            rep.core.heartbeat_gen > 9,
            "{name}: pre-crash heartbeat token retired"
        );
    }
    for_all_protocols!(scenario);
}

/// Behavioral face of the same drift: crash a replica while its batch
/// timer is armed with a buffered command; after restart the replica
/// serves new work with a clean batching state.
#[test]
fn crash_while_batch_timer_armed_recovers_cleanly() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, client) = conformance_cluster(3, None, make);
        sim.actor_mut::<TestClient>(client).enqueue_put(1);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 1
            }),
            "{name}: warm-up write committed"
        );
        // Arm replica 1's batch timer with a buffered command (from a
        // second client actor so its response has somewhere to go), then
        // crash before the 2 ms timer can fire.
        let sink = sim.add_actor(
            paxraft_sim::net::Region::Ohio,
            Box::new(TestClient::new(1, replicas[1])),
        );
        let sink_client = (sink.0 - replicas.len()) as u32;
        let cmd = crate::kv::Command::put(
            crate::kv::CmdId {
                client: sink_client,
                seq: 1,
            },
            9,
            vec![0; 8],
        );
        sim.send_external(
            replicas[1],
            Msg::Client(ClientMsg::Request { cmd }),
            SimDuration::ZERO,
        );
        sim.run_for(SimDuration::from_micros(100));
        sim.crash_at(replicas[1], sim.now() + SimDuration::from_micros(100));
        sim.restart_at(replicas[1], sim.now() + SimDuration::from_millis(50));
        sim.run_for(SimDuration::from_millis(200));
        // Post-restart the replica accepts and completes new work.
        sim.actor_mut::<TestClient>(client).target = replicas[1];
        sim.actor_mut::<TestClient>(client).enqueue_put(2);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(30), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 2
            }),
            "{name}: restarted replica serves new requests"
        );
        let rep = sim.actor::<ReplicaEngine<P>>(replicas[1]);
        assert!(
            rep.core.pending.is_empty(),
            "{name}: no resurrected pre-crash batch state"
        );
    }
    for_all_protocols!(scenario);
}

/// Group-commit durability for the conformance scenarios: a 1 ms fsync
/// device with batched flushes, slow enough that a crash injected right
/// after an append reliably lands inside the fsync window.
fn conformance_durability() -> DurabilityConfig {
    DurabilityConfig::group_commit(SimDuration::from_millis(1), 8, SimDuration::from_millis(2))
}

/// The new failure mode durability introduces: crash a replica holding
/// an appended-but-unsynced suffix, restart it, and require that (a) it
/// recovered to the last fsynced prefix — the unsynced entries simply
/// never happened on that replica, (b) no *acknowledged* write is lost
/// (under group commit an ack only ever follows the batched fsync that
/// covers it, so an acked entry is durable on the quorum that committed
/// it), (c) dedup is still exactly-once through the crash, and (d) the
/// cluster reconverges to a single state. Runs against all four rule
/// sets — the truncate-and-recover path is engine code, but each
/// protocol's recovery differs (Raft re-replicates from the leader,
/// Mencius self-revokes its lost slots).
#[test]
fn crash_with_unsynced_suffix_recovers_to_fsynced_prefix() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, client) = conformance_cluster(3, None, move |mut cfg| {
            cfg.durability = conformance_durability();
            make(cfg)
        });
        // Warm-up write; its reply is an end-to-end ack, which under
        // group commit implies the entry is fsynced on a quorum.
        sim.actor_mut::<TestClient>(client).enqueue_put(1);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 1
            }),
            "{name}: acked warm-up write"
        );
        // Inject a full batch at the serving replica — batch-full cuts
        // flush immediately, so the entries are appended and their
        // durability write issued right away — then crash it well inside
        // the 1 ms fsync window, while the suffix is still unsynced.
        let sink = sim.add_actor(
            paxraft_sim::net::Region::Oregon,
            Box::new(TestClient::new(1, replicas[0])),
        );
        let sink_client = (sink.0 - replicas.len()) as u32;
        let batch_max = sim
            .actor::<ReplicaEngine<P>>(replicas[0])
            .core
            .cfg
            .batch_max;
        for seq in 1..=batch_max as u64 {
            let cmd = crate::kv::Command::put(
                crate::kv::CmdId {
                    client: sink_client,
                    seq,
                },
                100 + seq,
                vec![0; 8],
            );
            sim.send_external(
                replicas[0],
                Msg::Client(ClientMsg::Request { cmd }),
                SimDuration::ZERO,
            );
        }
        sim.run_for(SimDuration::from_micros(100));
        {
            let dur = &sim.actor::<ReplicaEngine<P>>(replicas[0]).core.dur;
            assert!(
                dur.write_seq() > dur.synced_seq(),
                "{name}: crash is aimed at a genuinely unsynced suffix \
                 (write_seq {} vs synced_seq {})",
                dur.write_seq(),
                dur.synced_seq()
            );
        }
        sim.crash_at(replicas[0], sim.now() + SimDuration::from_micros(10));
        sim.restart_at(replicas[0], sim.now() + SimDuration::from_millis(50));
        sim.run_for(SimDuration::from_millis(100));
        {
            let dur = &sim.actor::<ReplicaEngine<P>>(replicas[0]).core.dur;
            assert_eq!(
                dur.write_seq(),
                dur.synced_seq(),
                "{name}: restart rewound the write sequence to the fsynced prefix"
            );
        }
        // Fail over and finish: new work commits, and the acked warm-up
        // write is still readable.
        sim.actor_mut::<TestClient>(client).target = replicas[1];
        sim.actor_mut::<TestClient>(client).enqueue_put(2);
        sim.actor_mut::<TestClient>(client).enqueue_get(2);
        sim.actor_mut::<TestClient>(client).enqueue_get(1);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(60), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 4
            }),
            "{name}: survivor served the remaining ops"
        );
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[2].1.value_id().is_some(),
            "{name}: post-crash write committed"
        );
        assert!(
            c.replies[3].1.value_id().is_some(),
            "{name}: acked pre-crash write survived the unsynced-suffix crash"
        );
        // Dedup across the crash: resend the warm-up command; the
        // session table must answer from cache, not re-apply.
        sim.run_for(SimDuration::from_secs(1));
        let before = sim
            .actor::<ReplicaEngine<P>>(replicas[1])
            .kv()
            .applied_ops();
        let cmd = sim.actor::<TestClient>(client).sent[0].clone();
        sim.send_external(
            replicas[1],
            Msg::Client(ClientMsg::Request { cmd }),
            SimDuration::ZERO,
        );
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(
            sim.actor::<ReplicaEngine<P>>(replicas[1])
                .kv()
                .applied_ops(),
            before,
            "{name}: duplicate of an acked pre-crash write did not re-apply"
        );
        // Reconvergence: the restarted replica catches back up and every
        // replica agrees on the acked keys.
        let converge_by = sim.now() + SimDuration::from_secs(60);
        assert!(
            drive_until(&mut sim, converge_by, |sim| {
                let lead = sim
                    .actor::<ReplicaEngine<P>>(replicas[1])
                    .kv()
                    .applied_ops();
                replicas
                    .iter()
                    .all(|&r| sim.actor::<ReplicaEngine<P>>(r).kv().applied_ops() == lead)
            }),
            "{name}: restarted replica reconverged"
        );
        with_trace_dump(&mut sim, |sim| {
            for &r in &replicas {
                let rep = sim.actor::<ReplicaEngine<P>>(r);
                for k in [1u64, 2] {
                    assert_eq!(
                        rep.kv().read_local(k).value_id(),
                        sim.actor::<ReplicaEngine<P>>(replicas[1])
                            .kv()
                            .read_local(k)
                            .value_id(),
                        "{name}: replica {r:?} agrees at key {k}"
                    );
                }
            }
        });
        // The scenario actually exercised the disk: survivors fsynced
        // and deferred acks behind those fsyncs.
        let stats = sim
            .actor::<ReplicaEngine<P>>(replicas[1])
            .durability_stats();
        assert!(stats.fsyncs > 0, "{name}: survivor fsynced ({stats:?})");
        assert!(
            stats.deferred_acks > 0,
            "{name}: acks were deferred behind fsyncs ({stats:?})"
        );
    }
    for_all_protocols!(scenario);
}

/// Durability is deterministic like everything else in the sim: two
/// same-seed measurement runs with group commit enabled produce
/// identical reports — including the fsync counters — for every
/// protocol.
#[test]
fn durability_enabled_fixed_seed_runs_are_deterministic() {
    fn fingerprint(p: ProtocolKind, seed: u64) -> String {
        let mut cluster = Cluster::builder(p)
            .clients_per_region(1)
            .seed(seed)
            .durability_config(conformance_durability())
            .build();
        cluster.elect_leader();
        let r = cluster.run_measurement(
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
        assert!(
            r.durability.fsyncs > 0,
            "{}: durability-enabled run fsynced",
            p.name()
        );
        format!(
            "thr={} lw={:?} fw={:?} dur={:?} end={}",
            r.throughput_ops,
            r.leader_writes,
            r.follower_writes,
            r.durability,
            cluster.sim.now()
        )
    }
    for p in [
        ProtocolKind::Raft,
        ProtocolKind::RaftStar,
        ProtocolKind::MultiPaxos,
        ProtocolKind::RaftStarMencius,
    ] {
        let a = fingerprint(p, 11);
        let b = fingerprint(p, 11);
        assert_eq!(a, b, "{}: same seed, same durable RunReport", p.name());
    }
}

/// The snapshot wire model stays per-protocol through the shared
/// engine envelope: Raft's InstallSnapshot spelling is costlier than
/// MultiPaxos's Checkpoint, which is costlier than Mencius's
/// ballot-free Checkpoint.
#[test]
fn snapshot_wire_overhead_is_distinct_per_protocol_family() {
    let mk_cfg = || {
        let mut cfg = ReplicaConfig::wan_default(NodeId(0), 3);
        cfg.peers = (0..3).map(ActorId).collect();
        cfg
    };
    let raft = RaftReplica::new(mk_cfg());
    let raftstar = RaftStarReplica::new(mk_cfg());
    let paxos = MultiPaxosReplica::new(mk_cfg());
    let mencius = MenciusReplica::new(mk_cfg());
    assert_eq!(raft.core.snap_wire, (48, 16), "Raft InstallSnapshot");
    assert_eq!(raftstar.core.snap_wire, (48, 16), "Raft* InstallSnapshot");
    assert_eq!(paxos.core.snap_wire, (40, 16), "MultiPaxos Checkpoint");
    assert_eq!(mencius.core.snap_wire, (32, 8), "Mencius Checkpoint");
}
