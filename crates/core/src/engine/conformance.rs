//! Cross-protocol conformance suite: one parameterized harness run over
//! all four [`ProtocolRules`] implementations.
//!
//! These scenarios used to exist as four near-identical test clusters,
//! one per protocol file; the engine refactor makes them a single
//! generic suite. Each scenario runs against Raft, Raft*, MultiPaxos and
//! Mencius and asserts engine-level guarantees: elect-and-commit, leader
//! crash failover, partition heal via snapshot transfer,
//! duplicate-request dedup, batch-timer discipline, and seed-for-seed
//! determinism of the full measurement harness.

use paxraft_sim::sim::{ActorId, Simulation};
use paxraft_sim::time::{SimDuration, SimTime};

use crate::config::ReplicaConfig;
use crate::engine::{ProtocolRules, ReplicaEngine};
use crate::harness::{Cluster, ProtocolKind};
use crate::mencius::MenciusReplica;
use crate::msg::{ClientMsg, Msg};
use crate::multipaxos::MultiPaxosReplica;
use crate::raft::RaftReplica;
use crate::raftstar::RaftStarReplica;
use crate::snapshot::SnapshotConfig;
use crate::testutil::{cluster_with, drive_until, TestClient};
use crate::types::NodeId;

/// Builds an `n`-replica cluster of one protocol plus a scripted client
/// targeting replica 0. Mencius ignores `initial_leader`; the shortened
/// revocation timeout keeps its failover scenarios inside the deadlines.
fn conformance_cluster<P: ProtocolRules>(
    n: usize,
    snapshot: Option<SnapshotConfig>,
    make: impl Fn(ReplicaConfig) -> ReplicaEngine<P>,
) -> (Simulation<Msg>, Vec<ActorId>, ActorId) {
    cluster_with(n, |mut cfg| {
        cfg.initial_leader = Some(NodeId(0));
        cfg.mencius.revoke_timeout = SimDuration::from_secs(2);
        if let Some(s) = &snapshot {
            cfg.snapshot = s.clone();
        }
        Box::new(make(cfg))
    })
}

/// Runs `scenario` once per protocol, labeled for failure messages.
macro_rules! for_all_protocols {
    ($scenario:ident) => {
        $scenario("Raft", RaftReplica::new);
        $scenario("Raft*", RaftStarReplica::new);
        $scenario("MultiPaxos", MultiPaxosReplica::new);
        $scenario("Mencius", MenciusReplica::new);
    };
}

#[test]
fn every_protocol_elects_commits_and_reads_back() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, client) = conformance_cluster(3, None, make);
        sim.actor_mut::<TestClient>(client).enqueue_put(42);
        sim.actor_mut::<TestClient>(client).enqueue_get(42);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 2
            }),
            "{name}: both ops answered"
        );
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[1].1.value_id().is_some(),
            "{name}: read observes the write"
        );
        assert!(
            replicas
                .iter()
                .any(|&r| sim.actor::<ReplicaEngine<P>>(r).is_leader()),
            "{name}: some replica leads"
        );
    }
    for_all_protocols!(scenario);
}

#[test]
fn every_protocol_survives_crash_of_the_serving_replica() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, client) = conformance_cluster(3, None, make);
        sim.actor_mut::<TestClient>(client).enqueue_put(1);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 1
            }),
            "{name}: first write committed"
        );
        // Crash the replica serving the client (the leader where there is
        // one); the client fails over to a survivor, which must finish
        // the remaining work — by re-election or, for Mencius, by
        // revoking the dead owner's slots.
        sim.crash_at(replicas[0], sim.now() + SimDuration::from_millis(1));
        sim.actor_mut::<TestClient>(client).target = replicas[1];
        sim.actor_mut::<TestClient>(client).enqueue_put(2);
        sim.actor_mut::<TestClient>(client).enqueue_get(2);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(60), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 3
            }),
            "{name}: survivor served the remaining ops"
        );
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[2].1.value_id().is_some(),
            "{name}: committed write survived the crash"
        );
    }
    for_all_protocols!(scenario);
}

#[test]
fn every_protocol_heals_a_partitioned_replica_via_snapshot() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, client) =
            conformance_cluster(3, Some(SnapshotConfig::every(16)), make);
        // Cut replica 2 off, then commit far more than the compaction
        // threshold so the survivors discard the prefix it still needs.
        sim.partition_at(vec![0, 0, 1, 0], SimTime::from_millis(1));
        for k in 0..45 {
            sim.actor_mut::<TestClient>(client).enqueue_put(k);
        }
        assert!(
            drive_until(&mut sim, SimTime::from_secs(280), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 45
            }),
            "{name}: majority side kept committing under the partition"
        );
        let survivor_applied = sim.actor::<ReplicaEngine<P>>(replicas[0]).applied_index();
        assert!(
            sim.actor::<ReplicaEngine<P>>(replicas[0])
                .snap_stats()
                .compactions
                >= 1,
            "{name}: survivors compacted past the lagger"
        );
        sim.heal_at(sim.now() + SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_secs(20));
        let lagger = sim.actor::<ReplicaEngine<P>>(replicas[2]);
        assert!(
            lagger.snap_stats().snapshots_installed >= 1,
            "{name}: rejoined replica installed a snapshot ({:?})",
            lagger.snap_stats()
        );
        assert!(
            lagger.applied_index().0 + 64 >= survivor_applied.0,
            "{name}: rejoined replica converged ({} vs {})",
            lagger.applied_index(),
            survivor_applied
        );
    }
    for_all_protocols!(scenario);
}

#[test]
fn requests_sent_to_a_follower_are_forwarded_and_answered() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, _client) = conformance_cluster(3, None, make);
        // Let replica 0 take leadership, then drive a fresh client at a
        // *follower*: the engine's forward path (or Mencius's local
        // proposal) must still answer it.
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<ReplicaEngine<P>>(replicas[0]).is_leader()
            }),
            "{name}: replica 0 leads"
        );
        let mut follower_client = TestClient::new(1, replicas[1]);
        follower_client.enqueue_put(9);
        follower_client.enqueue_get(9);
        let fc = sim.add_actor(paxraft_sim::net::Region::Ohio, Box::new(follower_client));
        assert!(
            drive_until(&mut sim, SimTime::from_secs(10), |sim| {
                sim.actor::<TestClient>(fc).replies.len() == 2
            }),
            "{name}: follower-targeted ops were forwarded and answered"
        );
        assert!(
            sim.actor::<TestClient>(fc).replies[1]
                .1
                .value_id()
                .is_some(),
            "{name}: read through the follower observes the write"
        );
    }
    for_all_protocols!(scenario);
}

#[test]
fn every_protocol_dedups_duplicate_requests() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, client) = conformance_cluster(3, None, make);
        sim.actor_mut::<TestClient>(client).enqueue_put(5);
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<TestClient>(client).replies.len() == 1
            }),
            "{name}: write committed"
        );
        sim.run_for(SimDuration::from_secs(1)); // let the apply settle
        let before = sim
            .actor::<ReplicaEngine<P>>(replicas[0])
            .kv()
            .applied_ops();
        // Resend the same command; the session table must return the
        // cached reply rather than double-apply.
        let cmd = sim.actor::<TestClient>(client).sent[0].clone();
        let target = sim.actor::<TestClient>(client).target;
        sim.send_external(
            target,
            Msg::Client(ClientMsg::Request { cmd }),
            SimDuration::ZERO,
        );
        sim.run_for(SimDuration::from_secs(2));
        let after = sim
            .actor::<ReplicaEngine<P>>(replicas[0])
            .kv()
            .applied_ops();
        assert_eq!(
            before, after,
            "{name}: duplicate request did not re-apply (was {before}, now {after})"
        );
    }
    for_all_protocols!(scenario);
}

#[test]
fn burst_of_requests_arms_one_batch_timer_and_one_flush() {
    fn scenario<P: ProtocolRules>(name: &str, make: fn(ReplicaConfig) -> ReplicaEngine<P>) {
        let (mut sim, replicas, _client) = conformance_cluster(3, None, make);
        // Let the cluster elect and go quiet.
        assert!(
            drive_until(&mut sim, SimTime::from_secs(5), |sim| {
                sim.actor::<ReplicaEngine<P>>(replicas[0]).is_leader()
            }),
            "{name}: replica 0 leads"
        );
        sim.run_for(SimDuration::from_secs(1));
        let (armed0, flushed0) = sim.actor::<ReplicaEngine<P>>(replicas[0]).batching_stats();
        // A burst of N requests lands within one batch window (N well
        // under batch_max, so only the timer can flush it).
        let n_burst = 8u64;
        for seq in 1..=n_burst {
            let cmd = crate::kv::Command::put(crate::kv::CmdId { client: 0, seq }, seq, vec![0; 8]);
            sim.send_external(
                replicas[0],
                Msg::Client(ClientMsg::Request { cmd }),
                SimDuration::ZERO,
            );
        }
        sim.run_for(SimDuration::from_secs(1));
        let (armed1, flushed1) = sim.actor::<ReplicaEngine<P>>(replicas[0]).batching_stats();
        assert_eq!(
            armed1 - armed0,
            1,
            "{name}: a burst of {n_burst} requests arms exactly one batch timer"
        );
        assert_eq!(
            flushed1 - flushed0,
            1,
            "{name}: and produces exactly one flush"
        );
    }
    for_all_protocols!(scenario);
}

/// Seed-for-seed determinism of the full measurement harness: two runs
/// with identical seeds must produce identical [`RunReport`]s (committed
/// ops, latency percentiles, compaction counters, peak log size) for
/// every protocol.
///
/// [`RunReport`]: crate::harness::RunReport
#[test]
fn fixed_seed_runs_are_deterministic_for_every_protocol() {
    fn fingerprint(p: ProtocolKind, seed: u64) -> String {
        let mut cluster = Cluster::builder(p)
            .clients_per_region(1)
            .seed(seed)
            .snapshot_config(SnapshotConfig::every(64))
            .build();
        cluster.elect_leader();
        let r = cluster.run_measurement(
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
        format!(
            "thr={} lr={:?} fr={:?} lw={:?} fw={:?} snaps={:?} end={}",
            r.throughput_ops,
            r.leader_reads,
            r.follower_reads,
            r.leader_writes,
            r.follower_writes,
            r.snapshots,
            cluster.sim.now()
        )
    }
    for p in [
        ProtocolKind::Raft,
        ProtocolKind::RaftStar,
        ProtocolKind::MultiPaxos,
        ProtocolKind::RaftStarMencius,
    ] {
        let a = fingerprint(p, 9);
        let b = fingerprint(p, 9);
        assert_eq!(a, b, "{}: same seed, same RunReport", p.name());
    }
}
