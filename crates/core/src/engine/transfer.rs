//! The single snapshot-transfer implementation shared by every
//! protocol: outbound chunked shipping (rate-limited per peer), and the
//! Raft-family compaction/installation helpers.
//!
//! Inbound reassembly and installation dispatch live in the engine's
//! message loop ([`super::ReplicaEngine`]); the encoding, chunking and
//! per-sender reassembly primitives live in [`crate::snapshot`].

use paxraft_sim::sim::Ctx;

use crate::kv::KvStore;
use crate::log::Log;
use crate::msg::{EngineMsg, Msg};
use crate::snapshot::{Snapshot, SnapshotConfig, SnapshotStats};
use crate::types::{NodeId, Slot, Term};

use super::EngineCore;

/// Ships the current state-machine snapshot to `peer` in chunks,
/// rate-limited to one transfer per retry interval. `point` is the
/// `(slot, term)` the snapshot covers (the applied prefix; the Paxos
/// family passes [`Term::ZERO`] for the term) and `seal` the sender's
/// term/ballot stamped on each chunk. Returns the snapshot point, or
/// `None` when a transfer to that peer is already in flight.
pub fn ship_snapshot(
    core: &mut EngineCore,
    ctx: &mut Ctx<Msg>,
    peer: NodeId,
    point: (Slot, Term),
    seal: Term,
) -> Option<Slot> {
    if !core
        .snap_send
        .try_begin(peer.0 as usize, ctx.now(), core.cfg.retry_interval)
    {
        return None;
    }
    let (last_slot, last_term) = point;
    let snap = Snapshot {
        last_slot,
        last_term,
        kv: core.kv.snapshot(),
    };
    ctx.charge(core.cfg.costs.snapshot_cost(snap.size_bytes()));
    core.snap_stats.note_sent(snap.size_bytes());
    for (offset, total, data) in snap.chunks(core.cfg.snapshot.chunk_bytes) {
        ctx.send(
            core.cfg.peer(peer),
            Msg::Engine(EngineMsg::SnapshotChunk {
                group: core.cfg.group_id(),
                seal,
                last_slot,
                last_term,
                offset,
                total,
                header_bytes: core.snap_wire.0,
                data,
            }),
        );
    }
    Some(last_slot)
}

/// Raft-family compaction, shared by Raft and Raft*: when the applied
/// retained prefix crosses the thresholds, snapshot the state machine
/// at `last_applied` and discard the covered log prefix. Returns the
/// encoded size to charge snapshot CPU cost for, or `None` when below
/// threshold (or disabled).
pub fn compact_applied_prefix(
    cfg: &SnapshotConfig,
    log: &mut Log,
    kv: &KvStore,
    last_applied: Slot,
    stable: &mut Option<Snapshot>,
    stats: &mut SnapshotStats,
) -> Option<usize> {
    if !cfg.enabled() {
        return None;
    }
    let floor = log.last_included().0;
    let applied_retained = (last_applied.0 - floor.0) as usize;
    if !cfg.should_compact(applied_retained, log.bytes()) {
        return None;
    }
    let last_term = log.term_at(last_applied).unwrap_or(Term::ZERO);
    let snap = Snapshot {
        last_slot: last_applied,
        last_term,
        kv: kv.snapshot(),
    };
    let bytes = snap.size_bytes();
    let discarded = log.compact_to(last_applied);
    *stable = Some(snap);
    stats.compactions += 1;
    stats.entries_discarded += discarded as u64;
    Some(bytes)
}

/// Raft-family snapshot installation, shared by Raft and Raft*:
/// restores the state machine, advances the applied/commit indices, and
/// reconciles the log — keeping a consistent retained suffix, else
/// replacing the log with the snapshot's history. Returns whether the
/// snapshot was fresh (stale transfers change nothing).
pub fn install_into_raft_state(
    snap: Snapshot,
    log: &mut Log,
    kv: &mut KvStore,
    last_applied: &mut Slot,
    commit_index: &mut Slot,
    stable: &mut Option<Snapshot>,
    stats: &mut SnapshotStats,
) -> bool {
    if snap.last_slot <= *last_applied {
        return false;
    }
    kv.restore(&snap.kv);
    *last_applied = snap.last_slot;
    *commit_index = (*commit_index).max(snap.last_slot);
    if log.term_at(snap.last_slot) == Some(snap.last_term) {
        // The log extends consistently past the snapshot: keep the
        // suffix, discard the covered prefix.
        log.compact_to(snap.last_slot);
    } else {
        // Short or conflicting log: the snapshot replaces it. (For
        // Raft*, the "no erasing" restriction is about live appends;
        // replacing a log with committed state it lags behind is the
        // same transition Paxos checkpoint recovery performs, and any
        // accepted-but-uncommitted value this discards is retained by
        // the up-to-date leader that shipped the snapshot.)
        log.reset_to(snap.last_slot, snap.last_term);
    }
    *stable = Some(snap);
    stats.snapshots_installed += 1;
    true
}
