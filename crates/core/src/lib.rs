//! # paxraft-core
//!
//! Runnable implementations of every protocol the paper touches, all
//! built on one shared replica engine:
//!
//! - [`engine`] — [`engine::ReplicaEngine`]`<P:`
//!   [`engine::ProtocolRules`]`>`: the protocol-agnostic machinery
//!   (state machine + session dedup, batching and forwarding, timers,
//!   chunked snapshot transfer, actor plumbing) written once; each
//!   protocol below is a thin `ProtocolRules` impl.
//! - [`multipaxos`] — MultiPaxos (Figure 1), the refinement target.
//! - [`raft`] — standard Raft (the baseline; truncates conflicting
//!   follower suffixes and keeps original entry terms).
//! - [`raftstar`] — Raft* (Section 3): vote replies carry extra entries,
//!   the leader merges safe values, followers never truncate, and every
//!   entry carries a ballot rewritten on append. Raft* refines MultiPaxos.
//! - [`pql`] — Paxos Quorum Lease ported to Raft* (Raft*-PQL, Figure 8)
//!   plus the Leader-Lease (LL) baseline of Section 5.1.
//! - [`mencius`] — Mencius / Coordinated Paxos ported to Raft*
//!   (Raft*-Mencius, Appendix A.4): round-robin slot ownership, skips,
//!   and revocation.
//!
//! All replicas are [`paxraft_sim::sim::Actor`]s over a shared [`msg::Msg`]
//! type, driven by the deterministic simulator. The [`harness`] module
//! assembles geo-replicated clusters with closed-loop clients and collects
//! the paper's metrics; [`shard`] scales past one leader's CPU by running
//! many engine groups per node with key-range routing.

pub mod client;
pub mod config;
pub mod costs;
pub mod engine;
pub mod harness;
pub mod kv;
pub mod log;
pub mod mencius;
pub mod msg;
pub mod multipaxos;
pub mod pql;
pub mod probe;
pub mod raft;
pub mod raftstar;
pub mod replicate;
pub mod shard;
pub mod snapshot;
pub mod telemetry;
pub mod types;

#[cfg(test)]
pub(crate) mod testutil;
