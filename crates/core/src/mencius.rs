//! Raft*-Mencius (Appendix A.3–A.4): coordinated Raft* with round-robin
//! slot ownership, expressed as [`ProtocolRules`] over the shared
//! [`ReplicaEngine`].
//!
//! Every replica is the *default leader* of the slots `s` with
//! `(s - 1) mod n == id`. A client sends requests to its nearest replica,
//! which proposes them in its own slots (`Suggest`, the `isDefault`
//! append) — under the engine, Mencius is simply the protocol whose
//! `can_propose` is always true, so client batches are never forwarded.
//! Replicas that fall behind *skip* their unused slots — a watermark
//! piggybacked on every `SuggestOk` and broadcast as `SkipNotice` ("each
//! replica keeps committing skip to keep the system moving forward"). A
//! skipped slot is a no-op from the default leader, so by the
//! coordinated-Paxos property it is executable without waiting for a
//! commit round.
//!
//! Watermark safety relies on FIFO links (the simulator models TCP): all
//! of an owner's suggestions reach a peer before any watermark that
//! passes them, so "no suggestion seen below the watermark" really means
//! "skipped".
//!
//! Responses follow the paper's two regimes (Section 5.2):
//! - **commutative (low conflict)**: a write is acknowledged once its
//!   slot commits and every other owner's slots below it are *known*
//!   (suggested or skipped) — nothing earlier can conflict;
//! - **conflicting**: the write additionally waits until every earlier
//!   entry on the same key has applied, which requires learning the
//!   other servers' commit decisions on previous entries — the extra
//!   latency Figure 10c/d shows for Mencius-100%.
//!
//! Crashed owners are handled by *revocation*: after a silence timeout a
//! peer raises a ballot above the owner's, collects accepted values for
//! the owner's undecided range (phase-1), re-proposes what was accepted
//! and no-ops the rest (Appendix A.3's recovery leader).
//!
//! # Durability (group commit)
//!
//! Same invariant as the other three protocols: a `SuggestOk` is an
//! acceptor's promise that the accepted values survive a crash, so it
//! is routed through [`EngineCore::ack_after_sync`]; the owner's *own*
//! implicit ack is likewise gated on its local fsync (the engine's
//! `on_durable` hook adds the bit, [`MenciusRules::pending_self`]).
//! Crash-restart drops accepted values whose write never synced. A
//! multi-leader wrinkle: peers cannot revoke a slot whose owner is
//! alive, so an owner that loses its *own* unsynced suggestions would
//! stall the cluster (peers hold the value and wait forever for a
//! commit only the owner can produce). Worse, the skip inference
//! ("own slot below my watermark with no value was skipped") would
//! silently read the dropped slot as a decided no-op — while a
//! revocation during the downtime may have *decided the original
//! value* from the peers' copies, without the owner's vote. Dropped
//! own slots therefore go to [`MenciusRules::lost_own`], which (a)
//! suppresses the skip inference so execution blocks instead of
//! diverging, and (b) makes the restart hook run the ordinary
//! revocation phase-1 against the owner's *own* range: collect
//! accepted values from a quorum at a bumped ballot, re-decide what
//! anyone accepted and no-op the rest. That is exactly the crashed-
//! owner recovery path, reused for self-recovery — safe by the same
//! ballot argument, and live because the affected clients were never
//! answered and retry through the dedup sessions.
//! `RevokeOk` stays immediate: it reports promises (ballot raises),
//! and ballots — like terms — are modeled as free always-durable
//! metadata that survives [`ProtocolRules::on_crash`]; over-persisting
//! a promise only ever *restricts* what the acceptor may later accept,
//! so it can never manufacture a quorum for lost state.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use paxraft_sim::sim::{ActorId, Ctx};
use paxraft_sim::time::{SimDuration, SimTime};

use crate::config::ReplicaConfig;
use crate::costs::CostModel;
use crate::engine::{self, EngineCore, ProtocolRules, ReplicaEngine, T_COORD};
use crate::kv::{Command, Key, Op};
use crate::msg::{EngineMsg, MenciusMsg, Msg};
use crate::snapshot::Snapshot;
use crate::types::{max_failures, NodeId, Slot, Term};

/// Per-slot state.
#[derive(Debug, Clone, Default)]
struct MSlot {
    /// Accepted value, if any.
    cmd: Option<Command>,
    /// Ballot of the accepted value / promised revocation ballot.
    bal: Term,
    /// Decided (majority-acked, or revocation-decided).
    committed: bool,
    /// Skipped no-op (own slots only; remote skips derive from
    /// watermarks).
    skipped: bool,
    /// Owner-side acknowledgement bitmap.
    acks: u64,
    /// Whether the owner already answered the client.
    responded: bool,
    /// When the owner last (re)suggested this slot (own slots only;
    /// paces the uncommitted-suggestion retransmission).
    suggested_at: SimTime,
    /// Durability: engine write sequence of the last value write (0
    /// when durability is disabled). A crash drops values whose write
    /// never fsynced.
    wseq: u64,
}

/// An in-flight revocation of a crashed owner's slots.
#[derive(Debug)]
struct RevokeOp {
    term: Term,
    owner: NodeId,
    from: Slot,
    through: Slot,
    acks: u64,
    /// Highest-ballot accepted values reported for the range.
    accepted: BTreeMap<u64, (Term, Command)>,
}

/// A Raft*-Mencius replica: the shared engine running [`MenciusRules`].
pub type MenciusReplica = ReplicaEngine<MenciusRules>;

/// What Mencius adds on top of the engine: round-robin slot ownership,
/// skip watermarks, the two-regime respond rule, and revocation.
pub struct MenciusRules {
    current_term: Term,
    slots: BTreeMap<u64, MSlot>,
    /// My next unused owned slot; doubles as my skip watermark.
    next_own: Slot,
    /// Exclusive bound of *known* slots per peer owner: every slot of
    /// theirs below this is suggested-or-skipped.
    known_upto: Vec<Slot>,
    /// Applied prefix.
    exec_index: Slot,
    /// Slots (of any owner) decided but whose value never arrived
    /// (reordered revocation); re-checked as values land.
    committed_no_value: BTreeSet<u64>,
    /// Put slots per key, for the conflicting-response rule.
    key_slots: HashMap<Key, BTreeSet<u64>>,
    /// Own committed slots waiting for the respond condition.
    await_respond: Vec<Slot>,
    commit_buf: Vec<Slot>,
    last_heard: Vec<SimTime>,
    /// Executed prefix each peer last reported via `SkipNotice` — the
    /// Mencius spelling of MultiPaxos's piggybacked `exec` report.
    peer_exec: Vec<Slot>,
    /// `peer_exec` as of the previous coordination tick: a report that
    /// did not move between ticks marks a *stalled* peer (a lost
    /// suggestion left it a committed-without-value gap), as opposed to
    /// one merely trailing by a WAN round-trip.
    peer_exec_prev: Vec<Slot>,
    revoke: Option<RevokeOp>,
    last_revoke_attempt: SimTime,
    /// Checkpoint floor: slots at or below it were discarded after
    /// execution (their effects live in the state machine and in
    /// `stable_snap`).
    compacted_through: Slot,
    /// Retained slot payload bytes (compaction byte trigger).
    slot_bytes: usize,
    /// Slots this replica skipped (stats).
    skips_issued: u64,
    /// Durability: own suggestions whose implicit ack awaits the local
    /// fsync, as (write seq, term, slots). Drained by `on_durable`.
    pending_self: Vec<(u64, Term, Vec<Slot>)>,
    /// Durability: own slots whose unsynced value a crash dropped.
    /// Membership suppresses the skip inference in `decided_at` (the
    /// empty slot must not read as a decided no-op — a revocation
    /// during our downtime may have decided the original value from
    /// the peers' copies), and `on_start` re-decides the range with a
    /// phase-1 self-revocation. Entries leave the set as values land.
    lost_own: BTreeSet<u64>,
}

impl MenciusReplica {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ReplicaConfig) -> Self {
        cfg.validate().expect("invalid replica config");
        let n = cfg.n;
        let me = cfg.id;
        ReplicaEngine::from_parts(
            EngineCore::new(cfg),
            MenciusRules {
                current_term: Term::encode(1, me, n),
                next_own: Slot(me.0 as u64 + 1),
                known_upto: vec![Slot(1); n],
                slots: BTreeMap::new(),
                exec_index: Slot::NONE,
                committed_no_value: BTreeSet::new(),
                key_slots: HashMap::new(),
                await_respond: Vec::new(),
                commit_buf: Vec::new(),
                last_heard: vec![SimTime::ZERO; n],
                peer_exec: vec![Slot::NONE; n],
                peer_exec_prev: vec![Slot::NONE; n],
                revoke: None,
                last_revoke_attempt: SimTime::ZERO,
                compacted_through: Slot::NONE,
                slot_bytes: 0,
                skips_issued: 0,
                pending_self: Vec::new(),
                lost_own: BTreeSet::new(),
            },
        )
    }

    /// The default leader of a slot: `(s - 1) mod n`.
    pub fn owner_of(slot: Slot, n: usize) -> NodeId {
        NodeId(((slot.0 - 1) % n as u64) as u32)
    }

    /// Applied prefix (tests).
    pub fn exec_index(&self) -> Slot {
        self.rules.exec_index
    }

    /// Retained (uncompacted) slots.
    pub fn retained_slots(&self) -> usize {
        self.rules.slots.len()
    }

    /// Slots this replica skipped (stats).
    pub fn skips_issued(&self) -> u64 {
        self.rules.skips_issued
    }

    /// Decided command at `slot` (`None` when undecided; `Some(None)`
    /// would be unrepresentable — skipped slots report the no-op).
    pub fn decided_at(&self, slot: Slot) -> Option<Command> {
        self.rules.decided_at(&self.core, slot)
    }
}

impl MenciusRules {
    fn decided_at(&self, core: &EngineCore, slot: Slot) -> Option<Command> {
        let owner = MenciusReplica::owner_of(slot, core.cfg.n);
        if let Some(s) = self.slots.get(&slot.0) {
            if s.committed {
                return s.cmd.clone();
            }
            if s.skipped {
                return Some(Command::noop());
            }
        }
        if owner == core.cfg.id {
            // The skip inference does not apply to crash-dropped own
            // slots: empty there means "value lost", not "skipped", and
            // peers may still decide the original value (module docs).
            if slot < self.next_own
                && !self.lost_own.contains(&slot.0)
                && self
                    .slots
                    .get(&slot.0)
                    .map(|s| s.cmd.is_none())
                    .unwrap_or(true)
            {
                return Some(Command::noop());
            }
        } else if slot < self.known_upto[owner.0 as usize]
            && self
                .slots
                .get(&slot.0)
                .map(|s| s.cmd.is_none())
                .unwrap_or(true)
        {
            return Some(Command::noop());
        }
        None
    }

    fn broadcast(&self, core: &EngineCore, ctx: &mut Ctx<Msg>, msg: MenciusMsg) {
        for peer in core.cfg.others() {
            ctx.send(core.cfg.peer(peer), Msg::Mencius(msg.clone()));
        }
    }

    /// My next owned slot at or after `x`.
    fn own_slot_at_or_after(&self, core: &EngineCore, x: Slot) -> Slot {
        let n = core.cfg.n as u64;
        let me = core.cfg.id.0 as u64;
        let x = x.0.max(1);
        // Smallest s >= x with (s - 1) % n == me.
        let rem = (x - 1) % n;
        let delta = (me + n - rem) % n;
        Slot(x + delta)
    }

    /// Stores an accepted value and indexes its key. Returns `false`
    /// (and stores nothing) for slots at or below the checkpoint floor
    /// — they are decided and executed; re-creating them would corrupt
    /// the compacted prefix. A slot already committed with a value keeps
    /// it (agreement: the decided value is unique, so an arriving
    /// suggestion for it is at worst a duplicate and must never rewrite
    /// — e.g. a partitioned owner's stale retransmission racing a
    /// revocation that already decided the slot as a no-op).
    fn accept_value(&mut self, core: &mut EngineCore, s: Slot, term: Term, cmd: Command) -> bool {
        if s <= self.compacted_through {
            return false;
        }
        if self
            .slots
            .get(&s.0)
            .is_some_and(|x| x.committed && x.cmd.is_some())
        {
            return true;
        }
        if let Op::Put { key, .. } = &cmd.op {
            self.key_slots.entry(*key).or_default().insert(s.0);
        }
        let slot = self.slots.entry(s.0).or_default();
        self.slot_bytes += cmd.size_bytes();
        self.slot_bytes -= slot.cmd.replace(cmd).map_or(0, |c| c.size_bytes());
        if term > slot.bal {
            slot.bal = term;
        }
        if self.committed_no_value.remove(&s.0) {
            slot.committed = true;
        }
        // A value landing in a crash-dropped own slot (our own recovery
        // decision, or a revocation's) supersedes the loss marker.
        self.lost_own.remove(&s.0);
        core.snap_stats
            .note_log_size(self.slots.len(), self.slot_bytes);
        true
    }

    /// Durability: charges the disk write for freshly accepted values
    /// and tags their slots with the write sequence, so a crash before
    /// the covering fsync drops exactly them. No-op (beyond the no-op
    /// [`EngineCore::durable_write`]) when durability is disabled.
    fn note_values_durable(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        written: &[Slot],
        bytes: usize,
    ) {
        if written.is_empty() {
            return;
        }
        core.durable_write(ctx, bytes, written.len());
        if !core.dur.enabled() {
            return;
        }
        let seq = core.dur.write_seq();
        for s in written {
            if let Some(slot) = self.slots.get_mut(&s.0) {
                slot.wseq = seq;
            }
        }
    }

    /// Commit tally for own slots that just gained an ack bit (a
    /// follower's `SuggestOk`, or this owner's own post-fsync vote):
    /// the `SuggestOk` handler's counting rule factored out.
    fn tally_own(&mut self, core: &mut EngineCore, slots: &[Slot], term: Term, bit: u64) {
        let quorum_extra = max_failures(core.cfg.n); // f followers + me
        for s in slots {
            let Some(slot) = self.slots.get_mut(&s.0) else {
                continue;
            };
            if slot.bal != term || slot.committed {
                continue;
            }
            slot.acks |= bit;
            if slot.acks.count_ones() as usize >= quorum_extra + 1 {
                slot.committed = true;
                self.commit_buf.push(*s);
                self.await_respond.push(*s);
            }
        }
    }

    /// Advances my own watermark to cover everything below `target`
    /// (skipping unused own slots), broadcasting the skip if it moved.
    fn maybe_skip_to(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, target: Slot) {
        if target <= self.next_own {
            return;
        }
        let new_own = self.own_slot_at_or_after(core, target);
        let mut s = self.next_own;
        while s < new_own {
            let slot = self.slots.entry(s.0).or_default();
            if slot.cmd.is_none() {
                slot.skipped = true;
                self.skips_issued += 1;
            }
            s = Slot(s.0 + core.cfg.n as u64);
        }
        self.next_own = new_own;
        self.broadcast(
            core,
            ctx,
            MenciusMsg::SkipNotice {
                watermark: self.next_own,
                exec: self.exec_index,
            },
        );
    }

    fn note_known(&mut self, core: &EngineCore, owner: NodeId, upto_exclusive: Slot) {
        if owner == core.cfg.id {
            return;
        }
        let k = &mut self.known_upto[owner.0 as usize];
        if upto_exclusive > *k {
            *k = upto_exclusive;
        }
    }

    /// The respond condition's coverage part: every other owner's slots
    /// below `s` are known (suggested or skipped).
    fn covered(&self, core: &EngineCore, s: Slot) -> bool {
        core.cfg
            .others()
            .all(|o| self.known_upto[o.0 as usize] >= s)
    }

    /// The respond condition's conflict part: every earlier write to the
    /// same key has applied.
    fn conflicts_applied(&self, s: Slot, cmd: &Command) -> bool {
        let Some(key) = cmd.op.key() else { return true };
        let Some(slots) = self.key_slots.get(&key) else {
            return true;
        };
        match slots.range(..s.0).next_back() {
            Some(&c) => self.exec_index.0 >= c,
            None => true,
        }
    }

    /// Answers clients for own slots whose respond condition now holds.
    fn try_respond(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        let mut still = Vec::new();
        let await_list = std::mem::take(&mut self.await_respond);
        for s in await_list {
            let Some(slot) = self.slots.get(&s.0) else {
                continue;
            };
            if slot.responded || slot.cmd.is_none() {
                continue;
            }
            let cmd = slot.cmd.clone().expect("checked");
            let is_get = matches!(cmd.op, Op::Get { .. });
            let ready = slot.committed
                && self.covered(core, s)
                && if is_get {
                    // Reads need the value: wait for in-order apply.
                    self.exec_index >= s
                } else {
                    self.conflicts_applied(s, &cmd)
                };
            if ready {
                let reply = if is_get {
                    let Op::Get { key } = cmd.op else {
                        unreachable!()
                    };
                    core.kv.read_local(key)
                } else {
                    crate::kv::Reply::Done
                };
                core.respond(ctx, cmd.id, reply);
                self.slots.get_mut(&s.0).expect("exists").responded = true;
            } else {
                still.push(s);
            }
        }
        self.await_respond = still;
    }

    /// Applies the decided prefix in slot order.
    fn try_execute(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        loop {
            let next = self.exec_index.next();
            let Some(cmd) = self.decided_at(core, next) else {
                break;
            };
            if !matches!(cmd.op, Op::Noop) {
                ctx.charge(core.cfg.costs.apply_per_cmd);
                // The slot owner plays the proposer role for the
                // migration hooks (it proposed this command).
                let mine = MenciusReplica::owner_of(next, core.cfg.n) == core.cfg.id;
                engine::apply_command(core, ctx, &cmd, mine);
            }
            self.exec_index = next;
        }
        self.try_respond(core, ctx);
        self.maybe_compact(core, ctx);
    }

    /// Discards the executed slot prefix once it crosses the configured
    /// threshold, checkpointing the state machine first. Own slots still
    /// awaiting a client response are never discarded.
    fn maybe_compact(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if !core.cfg.snapshot.enabled() {
            return;
        }
        let mut upto = self.exec_index;
        for &s in &self.await_respond {
            if s <= upto {
                upto = s.prev();
            }
        }
        if upto <= self.compacted_through {
            return;
        }
        let executed_retained = (upto.0 - self.compacted_through.0) as usize;
        if !core
            .cfg
            .snapshot
            .should_compact(executed_retained, self.slot_bytes)
        {
            return;
        }
        // The durable checkpoint captures the state at `exec_index`
        // (which may run ahead of the discard point `upto`); restores
        // and transfers always use the full executed prefix.
        let snap = Snapshot {
            last_slot: self.exec_index,
            last_term: Term::ZERO,
            kv: core.kv.snapshot(),
        };
        ctx.charge(core.cfg.costs.snapshot_cost(snap.size_bytes()));
        // The checkpoint file replaces the discarded slots as their
        // durable form; charge its write (modeled atomic, no ack waits
        // on it — see `raft_family::RaftBase::maybe_compact`).
        core.durable_write(ctx, snap.size_bytes(), 1);
        self.discard_through(core, upto);
        self.compacted_through = upto;
        core.stable_snap = Some(snap);
        core.snap_stats.compactions += 1;
    }

    /// Drops slot state at or below `upto`, unindexing keys and bytes.
    fn discard_through(&mut self, core: &mut EngineCore, upto: Slot) {
        let retained = self.slots.split_off(&(upto.0 + 1));
        core.snap_stats.entries_discarded += self.slots.len() as u64;
        for (s, slot) in std::mem::replace(&mut self.slots, retained) {
            if let Some(cmd) = slot.cmd {
                self.slot_bytes -= cmd.size_bytes();
                if let Some(key) = cmd.op.key() {
                    if let Some(set) = self.key_slots.get_mut(&key) {
                        set.remove(&s);
                        if set.is_empty() {
                            self.key_slots.remove(&key);
                        }
                    }
                }
            }
        }
        self.committed_no_value = self.committed_no_value.split_off(&(upto.0 + 1));
        self.lost_own = self.lost_own.split_off(&(upto.0 + 1));
    }

    fn flush_commits(&mut self, core: &EngineCore, ctx: &mut Ctx<Msg>) {
        if !self.commit_buf.is_empty() {
            let slots = std::mem::take(&mut self.commit_buf);
            self.broadcast(core, ctx, MenciusMsg::Commit { slots });
        }
    }

    /// Retransmits my own suggested-but-unexecuted slots after
    /// `retry_interval` of silence — the MultiPaxos heartbeat's
    /// uncommitted-instance retransmission in the Mencius spelling. A
    /// `Suggest` or `SuggestOk` lost on the wire otherwise stalls the
    /// slot until the client gives up and retries; committed slots are
    /// included because a peer that missed the original suggestion can
    /// neither advance its watermark past the slot nor execute it, which
    /// blocks the respond condition's coverage check cluster-wide.
    ///
    /// Each slot is re-sent at its *original* accepted term (`bal`), not
    /// `current_term`: ack counting matches acks against the slot's
    /// ballot, and a term that advanced in between (a revocation attempt
    /// on some third owner, a `SuggestReject`) would both orphan the
    /// acks and let a stale value ride over a revocation-raised ballot.
    /// Slots suggested at different terms therefore go out in separate
    /// per-term rounds.
    fn retransmit_own_unexecuted(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        let now = ctx.now();
        let retry = core.cfg.retry_interval;
        let me = core.cfg.id;
        let n = core.cfg.n;
        let mut by_term: BTreeMap<Term, Vec<(Slot, Command)>> = BTreeMap::new();
        let mut committed = Vec::new();
        let mut taken = 0usize;
        for (&s, slot) in self.slots.range_mut(self.exec_index.next().0..) {
            if taken >= 64 {
                break;
            }
            if MenciusReplica::owner_of(Slot(s), n) != me || slot.skipped {
                continue;
            }
            let Some(cmd) = slot.cmd.clone() else {
                continue;
            };
            if now.since(slot.suggested_at.min(now)) <= retry {
                continue;
            }
            slot.suggested_at = now;
            if slot.committed {
                committed.push(Slot(s));
            }
            by_term.entry(slot.bal).or_default().push((Slot(s), cmd));
            taken += 1;
        }
        for (term, items) in by_term {
            self.broadcast(
                core,
                ctx,
                MenciusMsg::Suggest {
                    term,
                    items,
                    watermark: self.next_own,
                },
            );
        }
        if !committed.is_empty() {
            self.broadcast(core, ctx, MenciusMsg::Commit { slots: committed });
        }
    }

    /// Per-peer catch-up: the MultiPaxos stall-gated replay ported to the
    /// Mencius spelling. A suggestion lost on the wire leaves the peer a
    /// committed-without-value gap it can never fill itself (unlike a
    /// crashed owner's slots, a live owner's slots are never revoked), so
    /// each owner re-suggests its *own* decided slots to peers whose
    /// executed prefix stalled between two coordination ticks — 64 slots
    /// per round to bound the burst, by state transfer once the gap is
    /// below the checkpoint floor (handled on `SkipNotice` receipt).
    fn replay_to_stalled_peers(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        let peers: Vec<NodeId> = core.cfg.others().collect();
        for peer in peers {
            let i = peer.0 as usize;
            let fexec = self.peer_exec[i];
            let stalled = fexec == self.peer_exec_prev[i];
            self.peer_exec_prev[i] = fexec;
            if fexec >= self.exec_index || !stalled || fexec < self.compacted_through {
                continue;
            }
            // Replay each slot at the term it was accepted at (see
            // `retransmit_own_unexecuted` for why `current_term` would
            // be wrong), grouped into per-term rounds.
            let mut by_term: BTreeMap<Term, Vec<(Slot, Command)>> = BTreeMap::new();
            let mut slots = Vec::new();
            for (&s, slot) in self.slots.range(fexec.next().0..) {
                if slots.len() >= 64 {
                    break;
                }
                if MenciusReplica::owner_of(Slot(s), core.cfg.n) != core.cfg.id || !slot.committed {
                    continue;
                }
                let Some(cmd) = slot.cmd.clone() else {
                    continue;
                };
                by_term.entry(slot.bal).or_default().push((Slot(s), cmd));
                slots.push(Slot(s));
            }
            if slots.is_empty() {
                continue;
            }
            for (term, items) in by_term {
                ctx.send(
                    core.cfg.peer(peer),
                    Msg::Mencius(MenciusMsg::Suggest {
                        term,
                        items,
                        watermark: self.next_own,
                    }),
                );
            }
            ctx.send(
                core.cfg.peer(peer),
                Msg::Mencius(MenciusMsg::Commit { slots }),
            );
        }
    }

    /// The highest slot any owner is known to have reached (sizing the
    /// revocation range).
    fn horizon(&self) -> Slot {
        let max_slot = self.slots.keys().next_back().copied().unwrap_or(0);
        let max_known = self.known_upto.iter().map(|s| s.0).max().unwrap_or(0);
        Slot(max_slot.max(max_known).max(self.next_own.0))
    }

    /// Starts revocation of `owner`'s undecided slots when they block
    /// execution and the owner has been silent. With durability on,
    /// also covers *self*-recovery: a crash-dropped own slot
    /// (`lost_own`) blocks execution just like a crashed peer's, and is
    /// re-decided by the same phase-1 — immediately, no silence
    /// required, since we know first-hand the write is gone.
    fn maybe_revoke(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        let now = ctx.now();
        if self.revoke.is_some() {
            // A revocation whose `RevokeOk`s never arrive (e.g. our
            // ballot was stale and peers silently ignored it) would
            // otherwise pin recovery shut forever; retry with a fresh
            // ballot. Only reachable with durability on — the default
            // configuration keeps the original fire-once behavior.
            if !core.dur.enabled()
                || now.since(self.last_revoke_attempt.min(now)) < core.cfg.mencius.revoke_timeout
            {
                return;
            }
            self.revoke = None;
        }
        let next = self.exec_index.next();
        if self.decided_at(core, next).is_some() {
            return; // not blocked
        }
        let owner = MenciusReplica::owner_of(next, core.cfg.n);
        let through = if owner == core.cfg.id {
            // Our own slot: flush/batch handles it — unless its value
            // was crash-dropped, which only a self-revocation can
            // re-decide (peers never revoke a live owner). The range
            // stops at the last dropped slot: anything above it
            // (including post-restart suggestions) is live and stays
            // on the normal quorum path.
            if !self.lost_own.contains(&next.0)
                || now.since(self.last_revoke_attempt.min(now)) < core.cfg.mencius.revoke_timeout
            {
                return;
            }
            Slot(*self.lost_own.iter().next_back().expect("checked non-empty"))
        } else {
            let silent = now.since(self.last_heard[owner.0 as usize].min(now));
            if silent < core.cfg.mencius.revoke_timeout
                || now.since(self.last_revoke_attempt.min(now)) < core.cfg.mencius.revoke_timeout
            {
                return;
            }
            Slot(self.horizon().0 + core.cfg.n as u64)
        };
        self.start_revocation(core, ctx, owner, next, through, now);
    }

    /// Phase-1 of revocation: bump the ballot, collect accepted values
    /// for `owner`'s slots in the range, promise locally, broadcast.
    fn start_revocation(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        owner: NodeId,
        from: Slot,
        through: Slot,
        now: SimTime,
    ) {
        self.last_revoke_attempt = now;
        self.current_term = self.current_term.next_for(core.cfg.id, core.cfg.n);
        let op = RevokeOp {
            term: self.current_term,
            owner,
            from,
            through,
            acks: core.me_bit(),
            accepted: self.accepted_in_range(core, owner, from, through),
        };
        self.broadcast(
            core,
            ctx,
            MenciusMsg::Revoke {
                term: op.term,
                owner,
                from,
                through,
            },
        );
        // Promise locally.
        self.promise_range(core, owner, from, through, op.term);
        self.revoke = Some(op);
    }

    fn accepted_in_range(
        &self,
        core: &EngineCore,
        owner: NodeId,
        from: Slot,
        through: Slot,
    ) -> BTreeMap<u64, (Term, Command)> {
        let mut out = BTreeMap::new();
        for (&s, slot) in self.slots.range(from.0..=through.0) {
            if MenciusReplica::owner_of(Slot(s), core.cfg.n) == owner {
                if let Some(cmd) = &slot.cmd {
                    out.insert(s, (slot.bal, cmd.clone()));
                }
            }
        }
        out
    }

    /// Raises the ballot on `owner`'s undecided slots in the range so the
    /// (possibly alive) owner can no longer commit there.
    fn promise_range(
        &mut self,
        core: &EngineCore,
        owner: NodeId,
        from: Slot,
        through: Slot,
        term: Term,
    ) {
        let n = core.cfg.n as u64;
        let mut s = {
            // First slot of `owner` at or after `from`.
            let rem = (from.0.max(1) - 1) % n;
            let delta = (owner.0 as u64 + n - rem) % n;
            Slot(from.0.max(1) + delta)
        };
        while s <= through {
            let slot = self.slots.entry(s.0).or_default();
            if term > slot.bal {
                slot.bal = term;
            }
            s = Slot(s.0 + n);
        }
    }

    fn on_mencius(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        msg: MenciusMsg,
    ) {
        let peer = core.cfg.node_of(from);
        self.last_heard[peer.0 as usize] = ctx.now();
        match msg {
            MenciusMsg::Suggest {
                term,
                items,
                watermark,
            } => {
                let bytes: usize = items.iter().map(|(_, c)| c.size_bytes()).sum();
                ctx.charge(
                    core.cfg.costs.append_fixed
                        + (core.cfg.costs.append_per_cmd + core.cfg.costs.coord_per_cmd)
                            * items.len().max(1) as u64
                        + core.cfg.costs.size_cost(bytes),
                );
                let mut acked = Vec::new();
                let mut rejected = Vec::new();
                let mut reject_term = Term::ZERO;
                let mut max_slot = Slot::NONE;
                let mut written = Vec::new();
                let mut written_bytes = 0usize;
                for (s, cmd) in items {
                    if s <= self.compacted_through {
                        // Decided and checkpointed away; the lagging
                        // owner converges via Checkpoint, not re-accept.
                        continue;
                    }
                    let bal = self.slots.get(&s.0).map(|x| x.bal).unwrap_or(Term::ZERO);
                    if term >= bal {
                        // Already committed with a value: a duplicate,
                        // nothing new reaches the disk.
                        let already = self
                            .slots
                            .get(&s.0)
                            .is_some_and(|x| x.committed && x.cmd.is_some());
                        let sz = cmd.size_bytes();
                        self.accept_value(core, s, term, cmd);
                        if !already {
                            written.push(s);
                            written_bytes += sz;
                        }
                        acked.push(s);
                        if s > max_slot {
                            max_slot = s;
                        }
                    } else {
                        rejected.push(s);
                        reject_term = reject_term.max(bal);
                    }
                }
                self.note_values_durable(core, ctx, &written, written_bytes);
                self.note_known(core, peer, watermark.max(max_slot.next()));
                // Skip my own unused slots below the suggestion (the
                // piggybacked skip of Appendix A.3).
                self.maybe_skip_to(core, ctx, max_slot);
                if !acked.is_empty() {
                    // The acceptor's promise that these values survive a
                    // crash: sent only after the covering fsync (group
                    // commit batches it; see the module docs).
                    let ok = Msg::Mencius(MenciusMsg::SuggestOk {
                        term,
                        slots: acked,
                        watermark: self.next_own,
                    });
                    core.ack_after_sync(ctx, from, ok);
                }
                if !rejected.is_empty() {
                    ctx.send(
                        from,
                        Msg::Mencius(MenciusMsg::SuggestReject {
                            slots: rejected,
                            term: reject_term,
                        }),
                    );
                }
                self.try_execute(core, ctx);
            }
            MenciusMsg::SuggestOk {
                term,
                slots,
                watermark,
            } => {
                ctx.charge(core.cfg.costs.ack_process);
                self.note_known(core, peer, watermark);
                if let Some(&upto) = slots.iter().max() {
                    core.pipe.on_ack(peer, upto);
                }
                let bit = 1u64 << peer.0;
                self.tally_own(core, &slots, term, bit);
                self.flush_commits(core, ctx);
                self.try_execute(core, ctx);
            }
            MenciusMsg::SuggestReject { slots, term } => {
                // Our slots were revoked: re-propose the commands in
                // fresh slots above the revoked range. In-flight rounds
                // toward the rejecting peer are dead.
                core.pipe.on_regress(peer);
                if term > self.current_term {
                    self.current_term = self.current_term.next_for(core.cfg.id, core.cfg.n);
                    while self.current_term < term {
                        self.current_term = self.current_term.next_for(core.cfg.id, core.cfg.n);
                    }
                }
                for s in slots {
                    let Some(slot) = self.slots.get_mut(&s.0) else {
                        continue;
                    };
                    if slot.committed || slot.responded {
                        continue;
                    }
                    if let Some(cmd) = slot.cmd.take() {
                        slot.skipped = true; // treat as noop locally
                        core.pending.push(cmd);
                    }
                }
                if !core.pending.is_empty() {
                    core.arm_batch(ctx);
                }
            }
            MenciusMsg::SkipNotice { watermark, exec } => {
                ctx.charge(core.cfg.costs.coord_msg);
                self.note_known(core, peer, watermark);
                if exec > self.peer_exec[peer.0 as usize] {
                    self.peer_exec[peer.0 as usize] = exec;
                }
                // A peer whose executed prefix fell below our checkpoint
                // floor can never learn the dropped commit decisions
                // from us: ship it the state instead.
                if exec < self.compacted_through {
                    crate::engine::ship_snapshot(
                        core,
                        ctx,
                        peer,
                        (self.exec_index, Term::ZERO),
                        Term::ZERO,
                    );
                }
                self.try_execute(core, ctx);
            }
            MenciusMsg::Commit { slots } => {
                ctx.charge(core.cfg.costs.coord_msg);
                for s in slots {
                    if s <= self.compacted_through {
                        continue; // already executed and checkpointed
                    }
                    match self.slots.get_mut(&s.0) {
                        Some(slot) if slot.cmd.is_some() => slot.committed = true,
                        _ => {
                            self.committed_no_value.insert(s.0);
                        }
                    }
                    self.note_known(core, peer, Slot(s.0 + 1));
                }
                self.try_execute(core, ctx);
            }
            MenciusMsg::Revoke {
                term,
                owner,
                from: rfrom,
                through,
            } => {
                if term > self.current_term {
                    // Promise: raise ballots on the revoked range.
                    let accepted: Vec<(Slot, Term, Command)> = self
                        .accepted_in_range(core, owner, rfrom, through)
                        .into_iter()
                        .map(|(s, (b, c))| (Slot(s), b, c))
                        .collect();
                    self.promise_range(core, owner, rfrom, through, term);
                    ctx.send(
                        from,
                        Msg::Mencius(MenciusMsg::RevokeOk {
                            term,
                            owner,
                            accepted,
                        }),
                    );
                }
            }
            MenciusMsg::RevokeOk {
                term,
                owner,
                accepted,
            } => {
                let finished = {
                    let Some(op) = self.revoke.as_mut() else {
                        return;
                    };
                    if op.term != term || op.owner != owner {
                        return;
                    }
                    op.acks |= 1 << peer.0;
                    for (s, b, c) in accepted {
                        match op.accepted.get(&s.0) {
                            Some((ob, _)) if *ob >= b => {}
                            _ => {
                                op.accepted.insert(s.0, (b, c));
                            }
                        }
                    }
                    op.acks.count_ones() as usize >= max_failures(core.cfg.n) + 1
                };
                if finished {
                    let op = self.revoke.take().expect("checked");
                    let n = core.cfg.n as u64;
                    let mut items = Vec::new();
                    let mut s = {
                        let rem = (op.from.0.max(1) - 1) % n;
                        let delta = (op.owner.0 as u64 + n - rem) % n;
                        Slot(op.from.0.max(1) + delta)
                    };
                    while s <= op.through {
                        let cmd = op
                            .accepted
                            .get(&s.0)
                            .map(|(_, c)| c.clone())
                            .unwrap_or_else(Command::noop);
                        items.push((s, cmd));
                        s = Slot(s.0 + n);
                    }
                    // Decide locally and broadcast. The decided values
                    // are a local disk write too; if a crash drops them
                    // before the fsync, the slots degrade to
                    // committed-without-value and a fresh revocation
                    // re-decides them.
                    let mut written = Vec::new();
                    let mut written_bytes = 0usize;
                    for (s, cmd) in &items {
                        let sz = cmd.size_bytes();
                        if self.accept_value(core, *s, op.term, cmd.clone()) {
                            let slot = self.slots.get_mut(&s.0).expect("accepted");
                            slot.committed = true;
                            written.push(*s);
                            written_bytes += sz;
                        }
                    }
                    self.note_values_durable(core, ctx, &written, written_bytes);
                    self.note_known(core, op.owner, Slot(op.through.0 + 1));
                    self.broadcast(
                        core,
                        ctx,
                        MenciusMsg::RevokeCommit {
                            term: op.term,
                            items,
                        },
                    );
                    self.try_execute(core, ctx);
                }
            }
            MenciusMsg::RevokeCommit { term, items } => {
                let mut reproposed = false;
                let mut written = Vec::new();
                let mut written_bytes = 0usize;
                for (s, cmd) in items {
                    if s <= self.compacted_through {
                        continue; // already executed and checkpointed
                    }
                    let owner = MenciusReplica::owner_of(s, core.cfg.n);
                    // If our own in-flight command was no-oped, re-propose.
                    if owner == core.cfg.id {
                        if let Some(slot) = self.slots.get(&s.0) {
                            if !slot.responded {
                                if let Some(mine) = &slot.cmd {
                                    if *mine != cmd {
                                        core.pending.push(mine.clone());
                                        reproposed = true;
                                    }
                                }
                            }
                        }
                        // Our future proposals must clear the range.
                        let above = self.own_slot_at_or_after(core, s.next());
                        if above > self.next_own {
                            self.next_own = above;
                        }
                    }
                    let sz = cmd.size_bytes();
                    if self.accept_value(core, s, term, cmd) {
                        let slot = self.slots.get_mut(&s.0).expect("accepted");
                        if term >= slot.bal {
                            slot.committed = true;
                        }
                        written.push(s);
                        written_bytes += sz;
                    }
                    self.note_known(core, owner, s.next());
                }
                self.note_values_durable(core, ctx, &written, written_bytes);
                if reproposed {
                    core.arm_batch(ctx);
                }
                self.try_execute(core, ctx);
            }
        }
    }
}

impl ProtocolRules for MenciusRules {
    /// Every replica is the default leader of its own slots: client
    /// batches are always proposed locally, never forwarded.
    fn can_propose(&self, _core: &EngineCore) -> bool {
        true
    }

    fn applied_index(&self, _core: &EngineCore) -> Slot {
        self.exec_index
    }

    fn extra_propose_cost(&self, costs: &CostModel) -> SimDuration {
        costs.coord_per_cmd
    }

    /// Proposes the batch into my own slots (`Suggest`) — one pipelined
    /// round over this owner's slot range. The suggestion always reaches
    /// every peer (watermark safety and commit learning require it), so
    /// unlike the single-leader protocols the send is not gated; the
    /// per-peer window still tracks in-flight rounds so the engine's
    /// batch cutter can pace this owner's range.
    fn propose(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, cmds: Vec<Command>) {
        let mut items = Vec::with_capacity(cmds.len());
        // With durability on, the owner's implicit ack waits for its own
        // fsync (`on_durable` adds the bit); otherwise it is immediate.
        let self_ack = if core.dur.enabled() { 0 } else { core.me_bit() };
        let mut bytes = 0usize;
        for cmd in cmds {
            let s = self.next_own;
            self.next_own = Slot(self.next_own.0 + core.cfg.n as u64);
            bytes += cmd.size_bytes();
            self.accept_value(core, s, self.current_term, cmd.clone());
            let slot = self.slots.get_mut(&s.0).expect("just accepted");
            slot.acks = self_ack;
            slot.suggested_at = ctx.now();
            items.push((s, cmd));
        }
        let slots: Vec<Slot> = items.iter().map(|(s, _)| *s).collect();
        self.note_values_durable(core, ctx, &slots, bytes);
        if core.dur.enabled() && !slots.is_empty() {
            self.pending_self
                .push((core.dur.write_seq(), self.current_term, slots));
        }
        if let Some(upto) = items.iter().map(|(s, _)| *s).max() {
            let peers: Vec<NodeId> = core.cfg.others().collect();
            for peer in peers {
                core.pipe.on_sent(peer, upto, ctx.now());
            }
        }
        self.broadcast(
            core,
            ctx,
            MenciusMsg::Suggest {
                term: self.current_term,
                items,
                watermark: self.next_own,
            },
        );
        self.try_execute(core, ctx);
    }

    fn on_start(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        ctx.set_timer(core.cfg.mencius.skip_heartbeat, T_COORD);
        // Crash recovery: re-decide own slots whose unsynced values the
        // crash dropped, via the ordinary revocation phase-1 run against
        // our *own* range (module docs). Kicked here rather than waiting
        // for the revoke timeout — we know first-hand the writes are
        // gone. `maybe_revoke` retries if this round stalls.
        if !self.lost_own.is_empty() && self.revoke.is_none() {
            let from = Slot(*self.lost_own.iter().next().expect("non-empty"));
            let through = Slot(*self.lost_own.iter().next_back().expect("non-empty"));
            self.start_revocation(core, ctx, core.cfg.id, from, through, ctx.now());
        }
    }

    fn on_timer(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, kind: u64, _token: u64) {
        if kind != T_COORD {
            return;
        }
        // Rounds whose acks never came are presumed lost (the commit
        // broadcast and watermarks re-cover them); don't let them pin
        // the window shut.
        core.pipe.expire_stale(ctx.now(), core.cfg.retry_interval);
        // Keepalive watermark, commit flush, revocation check.
        self.broadcast(
            core,
            ctx,
            MenciusMsg::SkipNotice {
                watermark: self.next_own,
                exec: self.exec_index,
            },
        );
        self.flush_commits(core, ctx);
        self.retransmit_own_unexecuted(core, ctx);
        self.replay_to_stalled_peers(core, ctx);
        self.maybe_revoke(core, ctx);
        self.try_execute(core, ctx);
        ctx.set_timer(core.cfg.mencius.skip_heartbeat, T_COORD);
    }

    fn on_msg(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, from: ActorId, msg: Msg) {
        if let Msg::Mencius(m) = msg {
            self.on_mencius(core, ctx, from, m);
        }
    }

    /// A local fsync completed: add this owner's own (previously
    /// withheld) ack bit to the suggestions the sync covered. Batches
    /// whose slots were since re-balloted (a `SuggestReject`, a
    /// revocation) simply fail the per-slot term check in `tally_own`.
    fn on_durable(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if self.pending_self.is_empty() {
            return;
        }
        let synced = core.dur.synced_seq();
        let me = core.me_bit();
        let mut ready: Vec<(Term, Vec<Slot>)> = Vec::new();
        self.pending_self.retain(|(seq, term, slots)| {
            if *seq > synced {
                return true;
            }
            ready.push((*term, slots.clone()));
            false
        });
        if ready.is_empty() {
            return;
        }
        for (term, slots) in ready {
            self.tally_own(core, &slots, term, me);
        }
        self.flush_commits(core, ctx);
        self.try_execute(core, ctx);
    }

    fn snapshot_chunk_fixed_cost(&self, costs: &CostModel) -> SimDuration {
        costs.coord_msg
    }

    /// Mencius's multi-leader `Checkpoint` spelling is ballot-free: its
    /// headers drop the 8-byte seal the MultiPaxos spelling carries.
    fn snapshot_wire_overhead(&self, costs: &CostModel) -> (usize, usize) {
        (
            costs.checkpoint_chunk_header.saturating_sub(8),
            costs.checkpoint_ack_header.saturating_sub(8),
        )
    }

    fn accept_snapshot_chunk(
        &mut self,
        _core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        _seal: Term,
    ) -> bool {
        // Multi-leader transfers are ballot-free; any peer may ship us
        // its state. The chunk doubles as a liveness signal.
        self.last_heard[_core.cfg.node_of(from).0 as usize] = ctx.now();
        true
    }

    /// Installs a fully reassembled checkpoint from a peer.
    fn install_snapshot(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        snap: Snapshot,
    ) {
        if snap.last_slot > self.exec_index {
            ctx.charge(core.cfg.costs.snapshot_cost(snap.size_bytes()));
            // The installed checkpoint is this replica's new recovery
            // floor; the ack below attests to holding it, so the write
            // is charged and the ack deferred behind its fsync.
            core.durable_write(ctx, snap.size_bytes(), 1);
            core.kv.restore(&snap.kv);
            self.exec_index = snap.last_slot;
            self.discard_through(core, snap.last_slot);
            self.compacted_through = self.compacted_through.max(snap.last_slot);
            // Everything covered is decided at every owner.
            for o in 0..core.cfg.n as u32 {
                let k = &mut self.known_upto[o as usize];
                if snap.last_slot.next() > *k {
                    *k = snap.last_slot.next();
                }
            }
            let above = self.own_slot_at_or_after(core, snap.last_slot.next());
            if above > self.next_own {
                self.next_own = above;
            }
            // Own in-flight slots inside the covered range were decided
            // without us (revoked to no-ops); their clients re-submit
            // and the restored sessions deduplicate.
            self.await_respond.retain(|&s| s > snap.last_slot);
            core.stable_snap = Some(snap.clone());
            core.snap_stats.snapshots_installed += 1;
            self.try_execute(core, ctx);
        }
        let ack = Msg::Engine(EngineMsg::SnapshotAck {
            group: core.cfg.group_id(),
            seal: Term::ZERO,
            upto: self.exec_index,
            header_bytes: core.snap_wire.1,
        });
        core.ack_after_sync(ctx, from, ack);
    }

    fn on_snapshot_ack(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        _seal: Term,
        upto: Slot,
    ) {
        let peer = core.cfg.node_of(from);
        self.last_heard[peer.0 as usize] = ctx.now();
        core.snap_send.finish(peer.0 as usize);
        self.note_known(core, peer, upto.next());
    }

    fn on_crash(&mut self, core: &mut EngineCore) {
        // Stable storage: slots (accepted values, ballots, commits),
        // current_term, and the durable checkpoint. Volatile: pending
        // work and respond queues. The state machine restarts from the
        // checkpoint — the discarded slot prefix cannot be replayed —
        // and re-executes the retained decided suffix.
        //
        // Durability: accepted values whose write never fsynced are
        // gone. Their `SuggestOk` (or this owner's own pending
        // self-vote) was withheld by the ack-after-fsync invariant, so
        // they contributed to no quorum and dropping them cannot lose
        // chosen state. A committed slot losing its value degrades to
        // committed-without-value (re-fetched from the owner's replay);
        // an *own* uncommitted slot goes to `lost_own` for phase-1
        // self-recovery (module docs). The ballot in `bal` is free
        // always-durable metadata — promises survive; only value
        // payloads rode the modeled disk.
        if core.dur.enabled() {
            let synced = core.dur.synced_seq();
            let from = self.compacted_through.0 + 1;
            for (&s, slot) in self.slots.range_mut(from..) {
                if slot.wseq > synced && slot.cmd.is_some() {
                    let cmd = slot.cmd.take().expect("checked");
                    self.slot_bytes -= cmd.size_bytes();
                    if let Some(key) = cmd.op.key() {
                        if let Some(set) = self.key_slots.get_mut(&key) {
                            set.remove(&s);
                            if set.is_empty() {
                                self.key_slots.remove(&key);
                            }
                        }
                    }
                    slot.acks = 0;
                    slot.wseq = 0;
                    if slot.committed {
                        slot.committed = false;
                        self.committed_no_value.insert(s);
                    } else if MenciusReplica::owner_of(Slot(s), core.cfg.n) == core.cfg.id
                        && !slot.skipped
                    {
                        self.lost_own.insert(s);
                    }
                }
            }
            self.pending_self.clear();
        }
        self.await_respond.clear();
        self.commit_buf.clear();
        self.revoke = None;
        for e in &mut self.peer_exec {
            *e = Slot::NONE;
        }
        for e in &mut self.peer_exec_prev {
            *e = Slot::NONE;
        }
        core.kv = crate::kv::KvStore::new();
        self.exec_index = Slot::NONE;
        if let Some(snap) = &core.stable_snap {
            core.kv.restore(&snap.kv);
            self.exec_index = snap.last_slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{drive_until, region_of, TestClient};
    use paxraft_sim::net::NetConfig;
    use paxraft_sim::sim::Simulation;
    use paxraft_sim::time::SimTime;

    /// n replicas plus one TestClient per replica (client i → replica i).
    fn mencius_cluster(n: usize) -> (Simulation<Msg>, Vec<ActorId>, Vec<ActorId>) {
        let mut sim = Simulation::new(NetConfig::default(), 11);
        let peers: Vec<ActorId> = (0..n).map(ActorId).collect();
        let mut replicas = Vec::new();
        for i in 0..n {
            let mut cfg = ReplicaConfig::wan_default(NodeId(i as u32), n);
            cfg.peers = peers.clone();
            cfg.client_base = n;
            cfg.mencius.revoke_timeout = SimDuration::from_secs(2);
            replicas.push(sim.add_actor(region_of(i), Box::new(MenciusReplica::new(cfg))));
        }
        let mut clients = Vec::new();
        for i in 0..n {
            let c = TestClient::new(i as u32, replicas[i]);
            clients.push(sim.add_actor(region_of(i), Box::new(c)));
        }
        (sim, replicas, clients)
    }

    #[test]
    fn owner_assignment_round_robin() {
        assert_eq!(MenciusReplica::owner_of(Slot(1), 3), NodeId(0));
        assert_eq!(MenciusReplica::owner_of(Slot(2), 3), NodeId(1));
        assert_eq!(MenciusReplica::owner_of(Slot(3), 3), NodeId(2));
        assert_eq!(MenciusReplica::owner_of(Slot(4), 3), NodeId(0));
    }

    #[test]
    fn single_client_commits_with_skips() {
        let (mut sim, replicas, clients) = mencius_cluster(3);
        sim.actor_mut::<TestClient>(clients[0]).enqueue_put(10);
        sim.actor_mut::<TestClient>(clients[0]).enqueue_put(11);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(clients[0]).replies.len() == 2
        }));
        // Replica 0 owns slots 1, 4, ...; others must have skipped 2, 3.
        sim.run_for(SimDuration::from_millis(500));
        let r1 = sim.actor::<MenciusReplica>(replicas[1]);
        assert!(r1.skips_issued() >= 1, "replica 1 skipped its unused slots");
        let r0 = sim.actor::<MenciusReplica>(replicas[0]);
        assert!(
            r0.exec_index().0 >= 4,
            "prefix executed through both writes"
        );
    }

    #[test]
    fn all_replicas_serve_their_own_clients() {
        let (mut sim, replicas, clients) = mencius_cluster(3);
        for &c in &clients {
            sim.actor_mut::<TestClient>(c).enqueue_put(c.0 as u64 * 100);
        }
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            clients
                .iter()
                .all(|&c| sim.actor::<TestClient>(c).replies.len() == 1)
        }));
        // Load balance: each replica proposed in its own slots.
        sim.run_for(SimDuration::from_secs(1));
        for (i, &r) in replicas.iter().enumerate() {
            let rep = sim.actor::<MenciusReplica>(r);
            assert!(rep.responses_sent() >= 1, "replica {i} answered its client");
        }
    }

    #[test]
    fn states_converge_across_replicas() {
        let (mut sim, replicas, clients) = mencius_cluster(3);
        for round in 0..5 {
            for &c in &clients {
                sim.actor_mut::<TestClient>(c)
                    .enqueue_put(round * 10 + c.0 as u64);
            }
        }
        assert!(drive_until(&mut sim, SimTime::from_secs(20), |sim| {
            clients
                .iter()
                .all(|&c| sim.actor::<TestClient>(c).replies.len() == 5)
        }));
        sim.run_for(SimDuration::from_secs(1));
        let e0 = sim.actor::<MenciusReplica>(replicas[0]).exec_index();
        assert!(e0.0 >= 15);
        // Every decided slot agrees across replicas.
        for s in 1..=e0.0 {
            let d0 = sim.actor::<MenciusReplica>(replicas[0]).decided_at(Slot(s));
            for &r in &replicas[1..] {
                let dr = sim.actor::<MenciusReplica>(r).decided_at(Slot(s));
                if let (Some(a), Some(b)) = (&d0, &dr) {
                    assert_eq!(a.id, b.id, "agreement at slot {s}");
                }
            }
        }
    }

    #[test]
    fn conflicting_writes_apply_in_slot_order_everywhere() {
        let (mut sim, replicas, clients) = mencius_cluster(3);
        // All clients hammer the same key.
        for _ in 0..4 {
            for &c in &clients {
                sim.actor_mut::<TestClient>(c)
                    .enqueue_put(crate::kv::Key::from(0u64));
            }
        }
        assert!(drive_until(&mut sim, SimTime::from_secs(30), |sim| {
            clients
                .iter()
                .all(|&c| sim.actor::<TestClient>(c).replies.len() == 4)
        }));
        sim.run_for(SimDuration::from_secs(1));
        // Convergence: all replicas end with the same final value.
        let v0 = sim.actor::<MenciusReplica>(replicas[0]).kv().read_local(0);
        for &r in &replicas[1..] {
            let vr = sim.actor::<MenciusReplica>(r).kv().read_local(0);
            assert_eq!(vr.value_id(), v0.value_id(), "same final value everywhere");
        }
    }

    #[test]
    fn revocation_unblocks_after_owner_crash() {
        let (mut sim, replicas, clients) = mencius_cluster(3);
        // Prime: one committed round so everyone is warm.
        sim.actor_mut::<TestClient>(clients[0]).enqueue_put(1);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(clients[0]).replies.len() == 1
        }));
        // Crash replica 2, then keep writing from replica 0's client.
        sim.crash_at(replicas[2], sim.now() + SimDuration::from_millis(1));
        let t0 = sim.now();
        sim.actor_mut::<TestClient>(clients[0]).enqueue_put(2);
        sim.actor_mut::<TestClient>(clients[0]).enqueue_put(3);
        assert!(drive_until(&mut sim, SimTime::from_secs(30), |sim| {
            sim.actor::<TestClient>(clients[0]).replies.len() == 3
        }));
        let done = sim.actor::<TestClient>(clients[0]).replies[2].2;
        // Progress resumed after the 2s revoke timeout (plus slack).
        assert!(
            done.since(t0) < SimDuration::from_secs(10),
            "revocation unblocked writes in {}",
            done.since(t0)
        );
        // And the dead owner's slots are decided (no-ops) at survivors.
        let r0 = sim.actor::<MenciusReplica>(replicas[0]);
        assert!(r0.exec_index().0 >= 4);
    }

    #[test]
    fn commutative_writes_respond_before_full_prefix_applies() {
        // With distinct keys, replica 0's write responds once covered and
        // committed, without waiting for other owners' commits.
        let (mut sim, _replicas, clients) = mencius_cluster(3);
        sim.actor_mut::<TestClient>(clients[0]).enqueue_put(100);
        sim.actor_mut::<TestClient>(clients[1]).enqueue_put(200);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(clients[0]).replies.len() == 1
                && sim.actor::<TestClient>(clients[1]).replies.len() == 1
        }));
    }
}
