//! State-machine snapshots and log compaction, ported uniformly across
//! both protocol families.
//!
//! The paper's method is that an optimization expressed once against
//! MultiPaxos can be carried to Raft* (and back) mechanically through the
//! refinement mapping. Log compaction via state-machine snapshots is the
//! canonical production optimization in that class:
//!
//! - **Raft spelling** (`InstallSnapshot` / `SnapshotAck` in
//!   [`crate::msg::RaftMsg`]): a leader whose compacted log no longer
//!   contains a lagging follower's next index ships its state-machine
//!   snapshot instead of log entries; the follower installs it, discards
//!   its covered log prefix and resumes normal AppendEntries from the
//!   snapshot point.
//! - **Paxos spelling** (`Checkpoint` / `CheckpointOk` in
//!   [`crate::msg::PaxosMsg`] and [`crate::msg::MenciusMsg`]): the
//!   proposer (or, under Mencius, any peer) observing an acceptor whose
//!   executed prefix lies below its own checkpoint floor ships the
//!   checkpointed state; the acceptor installs it and discards the
//!   covered instances.
//!
//! Under the Figure-3 vocabulary map the two are the same action —
//! `entry.index ↔ instance.id`, `snapshot.lastIncludedIndex ↔
//! checkpoint.executedThrough` — which is why one [`Snapshot`] type, one
//! wire encoding, one chunking scheme and one stats block serve all four
//! runnable protocols.
//!
//! Snapshots are shipped as **chunks** of [`SnapshotConfig::chunk_bytes`]
//! over the simulated network, so a multi-MB transfer occupies the
//! sender's NIC for a realistic stretch of virtual time and interleaves
//! with protocol traffic instead of arriving as one atomic monster
//! message. FIFO links reassemble in order ([`SnapshotAssembler`]).

use std::collections::HashMap;

use paxraft_sim::time::{SimDuration, SimTime};

use crate::kv::{KvSnapshot, Reply};
use crate::types::{Slot, Term};

/// When and how replicas compact their logs and ship snapshots.
///
/// The default is **disabled** (both thresholds `usize::MAX`): logs grow
/// unboundedly, matching the pre-snapshot behaviour, so existing
/// workloads and tests are unaffected unless they opt in.
#[derive(Debug, Clone)]
pub struct SnapshotConfig {
    /// Compact once this many applied entries are retained in the log.
    pub threshold_entries: usize,
    /// ... or once the retained applied prefix exceeds this many bytes.
    pub threshold_bytes: usize,
    /// Wire chunk size for snapshot transfer.
    pub chunk_bytes: usize,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            threshold_entries: usize::MAX,
            threshold_bytes: usize::MAX,
            chunk_bytes: 256 * 1024,
        }
    }
}

impl SnapshotConfig {
    /// Compaction disabled (the default).
    pub fn disabled() -> Self {
        SnapshotConfig::default()
    }

    /// Compact every `entries` applied entries (byte threshold unset).
    pub fn every(entries: usize) -> Self {
        SnapshotConfig {
            threshold_entries: entries,
            ..SnapshotConfig::default()
        }
    }

    /// Whether any compaction trigger is set.
    pub fn enabled(&self) -> bool {
        self.threshold_entries != usize::MAX || self.threshold_bytes != usize::MAX
    }

    /// Whether an applied prefix of `entries` entries / `bytes` bytes
    /// should be compacted now.
    pub fn should_compact(&self, entries: usize, bytes: usize) -> bool {
        entries >= self.threshold_entries || bytes >= self.threshold_bytes
    }
}

/// A self-contained state transfer: everything a replica needs to serve
/// from slot `last_slot + 1` onward without any earlier log entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Last log slot / Paxos instance covered by the state.
    pub last_slot: Slot,
    /// Term of the entry at `last_slot` (Raft family; the Paxos family
    /// ships [`Term::ZERO`] — instances carry no term once executed).
    pub last_term: Term,
    /// The state machine at `last_slot`, sessions included.
    pub kv: KvSnapshot,
}

impl Snapshot {
    /// Exact wire size of [`Snapshot::encode`]'s output.
    pub fn size_bytes(&self) -> usize {
        16 + self.kv.size_bytes()
    }

    /// Serializes to the deterministic little-endian format below.
    /// `decode` inverts this exactly; `size_bytes` predicts the length.
    ///
    /// ```text
    /// last_slot u64 | last_term u64 | applied_ops u64
    /// | record_count u64 | (key u64, len u32, bytes)*
    /// | session_count u64 | (client u32, seq u64, tag u8 [, len u32, bytes])*
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes());
        out.extend_from_slice(&self.last_slot.0.to_le_bytes());
        out.extend_from_slice(&self.last_term.0.to_le_bytes());
        out.extend_from_slice(&self.kv.applied_ops.to_le_bytes());
        out.extend_from_slice(&(self.kv.table.len() as u64).to_le_bytes());
        for (k, v) in &self.kv.table {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        out.extend_from_slice(&(self.kv.sessions.len() as u64).to_le_bytes());
        for (c, (seq, reply)) in &self.kv.sessions {
            out.extend_from_slice(&c.to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
            match reply {
                Reply::Done => out.push(0),
                Reply::Value(None) => out.push(1),
                Reply::Value(Some(v)) => {
                    out.push(2);
                    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    out.extend_from_slice(v);
                }
                // Redirects never enter a session table (the frozen-range
                // apply guard bypasses the session insert), so they
                // cannot appear in a snapshot.
                Reply::WrongGroup { .. } => unreachable!("redirects are never session replies"),
            }
        }
        // The shard-migration section is appended only once a migration
        // touched this group; snapshots of non-migrating runs stay
        // byte-identical to the pre-migration format.
        if !self.kv.shard.is_empty() {
            self.kv.shard.encode_into(&mut out);
        }
        debug_assert_eq!(out.len(), self.size_bytes(), "size model matches encoding");
        out
    }

    /// Parses an encoded snapshot; `None` on any malformed input.
    pub fn decode(bytes: &[u8]) -> Option<Snapshot> {
        let mut r = Reader::new(bytes);
        let last_slot = Slot(r.u64()?);
        let last_term = Term(r.u64()?);
        let applied_ops = r.u64()?;
        let mut kv = KvSnapshot {
            applied_ops,
            ..KvSnapshot::default()
        };
        let records = r.u64()?;
        for _ in 0..records {
            let k = r.u64()?;
            let len = r.u32()? as usize;
            kv.table.insert(k, r.take(len)?.to_vec());
        }
        let sessions = r.u64()?;
        for _ in 0..sessions {
            let c = r.u32()?;
            let seq = r.u64()?;
            let reply = match r.u8()? {
                0 => Reply::Done,
                1 => Reply::Value(None),
                2 => {
                    let len = r.u32()? as usize;
                    Reply::Value(Some(r.take(len)?.to_vec()))
                }
                _ => return None,
            };
            kv.sessions.insert(c, (seq, reply));
        }
        if !r.done() {
            // Bytes remain: the optional shard-migration section.
            kv.shard = crate::shard::migration::ShardState::decode(&mut r)?;
        }
        if !r.done() {
            return None; // trailing garbage
        }
        Some(Snapshot {
            last_slot,
            last_term,
            kv,
        })
    }

    /// Splits the encoding into `(offset, total, chunk)` triples of at
    /// most `chunk_bytes` each, in transmission order.
    pub fn chunks(&self, chunk_bytes: usize) -> Vec<(usize, usize, Vec<u8>)> {
        let encoded = self.encode();
        let total = encoded.len();
        let chunk = chunk_bytes.max(1);
        let mut out = Vec::with_capacity(total.div_ceil(chunk));
        let mut offset = 0;
        while offset < total {
            let end = (offset + chunk).min(total);
            out.push((offset, total, encoded[offset..end].to_vec()));
            offset = end;
        }
        if out.is_empty() {
            // An empty store still ships one (empty) chunk so the
            // receiver observes a complete transfer.
            out.push((0, 0, Vec::new()));
        }
        out
    }
}

/// Little-endian byte reader shared by the snapshot and range-export
/// decoders.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }
    pub(crate) fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }
    pub(crate) fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    pub(crate) fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

/// Receiver-side chunk reassembly, **keyed by sender**. Under the
/// multi-leader spellings several peers may ship a laggard overlapping
/// checkpoints concurrently; their chunk streams interleave at the
/// receiver, so each sender gets its own buffer — whichever transfer
/// completes first installs, and stale ones are discarded by the
/// installer's freshness check.
///
/// Per sender, chunks arrive in send order (the simulated network is
/// FIFO per link): a chunk at offset 0 starts that sender's transfer
/// over, and a chunk that does not extend its buffer drops it (a lost
/// chunk simply makes the transfer restart on the sender's retry).
#[derive(Debug, Default)]
pub struct SnapshotAssembler {
    chunks: ChunkAssembler,
}

impl SnapshotAssembler {
    /// Feeds one chunk from `sender`; returns the snapshot when that
    /// sender's transfer completes.
    pub fn offer(
        &mut self,
        sender: u64,
        last_slot: Slot,
        offset: usize,
        total: usize,
        data: &[u8],
    ) -> Option<Snapshot> {
        self.chunks
            .offer(sender, last_slot, offset, total, data)
            .and_then(|bytes| Snapshot::decode(&bytes))
    }

    /// Abandons every in-flight transfer.
    pub fn clear(&mut self) {
        self.chunks.clear();
    }
}

/// The payload-agnostic per-sender chunk reassembler behind
/// [`SnapshotAssembler`], reused verbatim by the range-migration
/// transfer (which decodes a
/// [`crate::shard::migration::RangeExport`] instead of a [`Snapshot`]).
/// The `tag` slot discriminates transfers: a chunk whose tag differs
/// from the in-progress transfer's restarts it.
#[derive(Debug, Default)]
pub struct ChunkAssembler {
    cur: HashMap<u64, (Slot, usize, Vec<u8>)>,
}

impl ChunkAssembler {
    /// Feeds one chunk from `sender`; returns the reassembled bytes
    /// when that sender's transfer completes.
    pub fn offer(
        &mut self,
        sender: u64,
        tag: Slot,
        offset: usize,
        total: usize,
        data: &[u8],
    ) -> Option<Vec<u8>> {
        if offset == 0 {
            self.cur
                .insert(sender, (tag, total, Vec::with_capacity(total)));
        }
        let (slot, want_total, buf) = self.cur.get_mut(&sender)?;
        if *slot != tag || *want_total != total || buf.len() != offset {
            // Mid-transfer mismatch (lost chunk, superseded transfer):
            // drop and wait for this sender's retry from offset 0.
            self.cur.remove(&sender);
            return None;
        }
        buf.extend_from_slice(data);
        if buf.len() >= total {
            let (_, _, bytes) = self.cur.remove(&sender).expect("checked");
            return Some(bytes);
        }
        None
    }

    /// Abandons every in-flight transfer.
    pub fn clear(&mut self) {
        self.cur.clear();
    }
}

/// Sender-side transfer bookkeeping shared by every protocol: at most
/// one in-flight transfer per peer, retried no faster than the
/// configured interval.
#[derive(Debug)]
pub struct SnapshotSender {
    sent_at: Vec<Option<SimTime>>,
}

impl SnapshotSender {
    /// Tracker for `n` peers with nothing in flight.
    pub fn new(n: usize) -> Self {
        SnapshotSender {
            sent_at: vec![None; n],
        }
    }

    /// Whether a new transfer to `peer` may start now (records the
    /// start time when it may).
    pub fn try_begin(&mut self, peer: usize, now: SimTime, retry: SimDuration) -> bool {
        if let Some(at) = self.sent_at[peer] {
            if now.since(at.min(now)) < retry {
                return false;
            }
        }
        self.sent_at[peer] = Some(now);
        true
    }

    /// Marks `peer`'s transfer acknowledged, allowing the next one to
    /// start immediately if needed.
    pub fn finish(&mut self, peer: usize) {
        self.sent_at[peer] = None;
    }

    /// Forgets every in-flight transfer (crash-restart).
    pub fn reset(&mut self) {
        for s in &mut self.sent_at {
            *s = None;
        }
    }
}

/// Compaction and snapshot-transfer counters, kept per replica and
/// aggregated by the harness into
/// [`crate::harness::RunReport::snapshots`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Times this replica compacted its log / instance store.
    pub compactions: u64,
    /// Log entries (or Paxos instances) discarded by compaction.
    pub entries_discarded: u64,
    /// Full snapshots shipped to lagging peers.
    pub snapshots_sent: u64,
    /// Encoded snapshot bytes shipped (sum over sends).
    pub snapshot_bytes_sent: u64,
    /// Snapshots received and installed.
    pub snapshots_installed: u64,
    /// High-water mark of retained log entries / instances.
    pub peak_log_entries: u64,
    /// High-water mark of retained log bytes (Raft family only; the
    /// Paxos family reports entries).
    pub peak_log_bytes: u64,
}

impl SnapshotStats {
    /// Accumulates another replica's counters (peaks take the max).
    pub fn absorb(&mut self, other: &SnapshotStats) {
        self.compactions += other.compactions;
        self.entries_discarded += other.entries_discarded;
        self.snapshots_sent += other.snapshots_sent;
        self.snapshot_bytes_sent += other.snapshot_bytes_sent;
        self.snapshots_installed += other.snapshots_installed;
        self.peak_log_entries = self.peak_log_entries.max(other.peak_log_entries);
        self.peak_log_bytes = self.peak_log_bytes.max(other.peak_log_bytes);
    }

    /// Records an observed retained-log size.
    pub fn note_log_size(&mut self, entries: usize, bytes: usize) {
        self.peak_log_entries = self.peak_log_entries.max(entries as u64);
        self.peak_log_bytes = self.peak_log_bytes.max(bytes as u64);
    }

    /// Records one outbound snapshot transfer of `bytes` encoded bytes.
    pub fn note_sent(&mut self, bytes: usize) {
        self.snapshots_sent += 1;
        self.snapshot_bytes_sent += bytes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{CmdId, Command, KvStore};

    fn sample_snapshot(records: u64, value_len: usize) -> Snapshot {
        let mut kv = KvStore::new();
        for k in 0..records {
            kv.apply(&Command::put(
                CmdId {
                    client: (k % 3) as u32 + 1,
                    seq: k + 1,
                },
                k,
                vec![k as u8; value_len],
            ));
        }
        kv.apply(&Command::get(
            CmdId {
                client: 1,
                seq: records + 1,
            },
            0,
        ));
        Snapshot {
            last_slot: Slot(records + 1),
            last_term: Term(7),
            kv: kv.snapshot(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample_snapshot(20, 32);
        let bytes = snap.encode();
        assert_eq!(bytes.len(), snap.size_bytes(), "size model is exact");
        let back = Snapshot::decode(&bytes).expect("decodes");
        assert_eq!(back, snap);
    }

    #[test]
    fn decode_rejects_malformed_input() {
        let snap = sample_snapshot(3, 8);
        let bytes = snap.encode();
        assert!(
            Snapshot::decode(&bytes[..bytes.len() - 1]).is_none(),
            "truncated"
        );
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(Snapshot::decode(&longer).is_none(), "trailing garbage");
        assert!(Snapshot::decode(&[]).is_none(), "empty");
    }

    #[test]
    fn chunking_covers_encoding_exactly() {
        let snap = sample_snapshot(10, 100);
        let encoded = snap.encode();
        for chunk_bytes in [1usize, 7, 64, 1 << 20] {
            let chunks = snap.chunks(chunk_bytes);
            let mut glued = Vec::new();
            for (offset, total, data) in &chunks {
                assert_eq!(*total, encoded.len());
                assert_eq!(*offset, glued.len(), "offsets are contiguous");
                assert!(data.len() <= chunk_bytes);
                glued.extend_from_slice(data);
            }
            assert_eq!(glued, encoded);
        }
    }

    #[test]
    fn assembler_reassembles_in_order() {
        let snap = sample_snapshot(8, 64);
        let mut asm = SnapshotAssembler::default();
        let chunks = snap.chunks(50);
        assert!(chunks.len() > 2, "multi-chunk transfer");
        let mut got = None;
        for (offset, total, data) in &chunks {
            got = asm.offer(1, snap.last_slot, *offset, *total, data);
        }
        assert_eq!(got, Some(snap));
    }

    #[test]
    fn assembler_recovers_from_lost_chunk_via_restart() {
        let snap = sample_snapshot(8, 64);
        let mut asm = SnapshotAssembler::default();
        let chunks = snap.chunks(50);
        // First chunk arrives, second is lost, third hits a gap.
        let (o0, t0, d0) = &chunks[0];
        assert!(asm.offer(1, snap.last_slot, *o0, *t0, d0).is_none());
        let (o2, t2, d2) = &chunks[2];
        assert!(
            asm.offer(1, snap.last_slot, *o2, *t2, d2).is_none(),
            "gap resets"
        );
        // A full retry from offset 0 then completes.
        let mut got = None;
        for (offset, total, data) in &chunks {
            got = asm.offer(1, snap.last_slot, *offset, *total, data);
        }
        assert_eq!(got.as_ref(), Some(&snap));
    }

    #[test]
    fn empty_state_ships_one_chunk() {
        let snap = Snapshot {
            last_slot: Slot(5),
            last_term: Term(2),
            kv: KvStore::new().snapshot(),
        };
        let chunks = snap.chunks(1024);
        assert_eq!(chunks.len(), 1);
        let mut asm = SnapshotAssembler::default();
        let (o, t, d) = &chunks[0];
        let got = asm.offer(1, snap.last_slot, *o, *t, d);
        assert_eq!(got, Some(snap));
    }

    #[test]
    fn config_thresholds() {
        assert!(!SnapshotConfig::disabled().enabled());
        let c = SnapshotConfig::every(64);
        assert!(c.enabled());
        assert!(!c.should_compact(63, 0));
        assert!(c.should_compact(64, 0));
        let b = SnapshotConfig {
            threshold_bytes: 1024,
            threshold_entries: usize::MAX,
            ..SnapshotConfig::default()
        };
        assert!(b.enabled());
        assert!(b.should_compact(1, 2048));
        assert!(!b.should_compact(1, 512));
    }

    #[test]
    fn stats_absorb_sums_and_maxes() {
        let mut a = SnapshotStats {
            compactions: 2,
            peak_log_entries: 10,
            ..Default::default()
        };
        let b = SnapshotStats {
            compactions: 3,
            peak_log_entries: 7,
            snapshots_installed: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.compactions, 5);
        assert_eq!(a.peak_log_entries, 10, "peaks take the max");
        assert_eq!(a.snapshots_installed, 1);
    }
}
