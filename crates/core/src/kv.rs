//! The replicated key-value state machine and client command types.
//!
//! The paper's workload is a key-value store initialized with 100K records
//! (Section 5). Commands carry a unique `(client, seq)` id so replicas can
//! deduplicate retried requests (exactly-once apply) and so the
//! linearizability checker can match writes to reads: every written value
//! embeds its command id in the first 8 bytes.

use std::collections::{BTreeMap, HashMap};

/// A record key.
pub type Key = u64;

/// Unique command identifier: issuing client and per-client sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdId {
    /// The logical client number (not a sim actor id).
    pub client: u32,
    /// Monotonic per-client sequence number, starting at 1.
    pub seq: u64,
}

impl CmdId {
    /// Packs the id into a 64-bit value-id used as the written value's
    /// prefix, making every written value unique.
    pub fn as_value_id(self) -> u64 {
        ((self.client as u64) << 32) | (self.seq & 0xFFFF_FFFF)
    }
}

/// The operation a command performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Consensus no-op (leader change fill, Mencius skip).
    Noop,
    /// Write `value` to `key`.
    Put {
        /// Target record.
        key: Key,
        /// Value bytes; first 8 bytes hold [`CmdId::as_value_id`].
        value: Vec<u8>,
    },
    /// Read `key`.
    Get {
        /// Target record.
        key: Key,
    },
}

impl Op {
    /// The key this operation touches, if any.
    pub fn key(&self) -> Option<Key> {
        match self {
            Op::Noop => None,
            Op::Put { key, .. } | Op::Get { key } => Some(*key),
        }
    }

    /// Whether this operation modifies state.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Put { .. })
    }

    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            Op::Noop => 1,
            Op::Put { value, .. } => 8 + value.len(),
            Op::Get { .. } => 8,
        }
    }
}

/// A client command: a unique id plus an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Unique id for dedup and reply routing.
    pub id: CmdId,
    /// The operation.
    pub op: Op,
}

impl Command {
    /// Convenience constructor for a `Put`; embeds the command id in the
    /// value prefix and pads to `value` length.
    pub fn put(id: CmdId, key: Key, mut value: Vec<u8>) -> Command {
        if value.len() < 8 {
            value.resize(8, 0);
        }
        value[..8].copy_from_slice(&id.as_value_id().to_le_bytes());
        Command {
            id,
            op: Op::Put { key, value },
        }
    }

    /// Convenience constructor for a `Get`.
    pub fn get(id: CmdId, key: Key) -> Command {
        Command {
            id,
            op: Op::Get { key },
        }
    }

    /// A consensus no-op with a reserved id.
    pub fn noop() -> Command {
        Command {
            id: CmdId {
                client: u32::MAX,
                seq: 0,
            },
            op: Op::Noop,
        }
    }

    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        12 + self.op.size_bytes()
    }
}

/// The result of applying a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A `Put` or `Noop` completed.
    Done,
    /// A `Get` returned the stored value (or `None` if unset).
    Value(Option<Vec<u8>>),
    /// The command's key is owned by another replica group (sharded
    /// clusters only): the client should retry against the named group.
    /// Sent *before* replication, so it never enters a session table.
    WrongGroup {
        /// The group that owns the command's key under the replier's
        /// partition map.
        group: u32,
    },
}

impl Reply {
    /// Extracts the unique value-id prefix of a read value, for the
    /// linearizability checker.
    pub fn value_id(&self) -> Option<u64> {
        match self {
            Reply::Value(Some(v)) if v.len() >= 8 => {
                Some(u64::from_le_bytes(v[..8].try_into().expect("8 bytes")))
            }
            _ => None,
        }
    }

    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            Reply::Done => 1,
            Reply::Value(v) => 1 + v.as_ref().map_or(0, |b| b.len()),
            Reply::WrongGroup { .. } => 5,
        }
    }
}

/// The key-value store with client sessions for exactly-once apply.
#[derive(Debug, Default)]
pub struct KvStore {
    table: HashMap<Key, Vec<u8>>,
    /// Per-client `(last applied seq, last reply)` for dedup on retry.
    sessions: HashMap<u32, (u64, Reply)>,
    applied_ops: u64,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Applies a command with exactly-once semantics.
    ///
    /// A command whose `(client, seq)` was already applied returns the
    /// cached reply and does not mutate state; this is what makes client
    /// retries safe.
    pub fn apply(&mut self, cmd: &Command) -> Reply {
        if cmd.id.client != u32::MAX {
            if let Some((last_seq, last_reply)) = self.sessions.get(&cmd.id.client) {
                if cmd.id.seq <= *last_seq {
                    return last_reply.clone();
                }
            }
        }
        self.applied_ops += 1;
        let reply = match &cmd.op {
            Op::Noop => Reply::Done,
            Op::Put { key, value } => {
                self.table.insert(*key, value.clone());
                Reply::Done
            }
            Op::Get { key } => Reply::Value(self.table.get(key).cloned()),
        };
        if cmd.id.client != u32::MAX {
            self.sessions
                .insert(cmd.id.client, (cmd.id.seq, reply.clone()));
        }
        reply
    }

    /// Direct read of a key without logging (the lease-holder local-read
    /// path). Does not touch sessions.
    pub fn read_local(&self, key: Key) -> Reply {
        Reply::Value(self.table.get(&key).cloned())
    }

    /// Number of state-mutating or reading applies (excluding dedup hits).
    pub fn applied_ops(&self) -> u64 {
        self.applied_ops
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Captures the full state-machine state — records **and** client
    /// sessions. Sessions must travel with snapshots, or a restored
    /// replica would re-apply (or double-answer) retried commands and
    /// break exactly-once semantics.
    ///
    /// The capture is ordered (`BTreeMap`) so equality, iteration and
    /// the wire encoding are deterministic regardless of `HashMap`
    /// insertion history.
    pub fn snapshot(&self) -> KvSnapshot {
        KvSnapshot {
            table: self.table.iter().map(|(k, v)| (*k, v.clone())).collect(),
            sessions: self.sessions.iter().map(|(c, s)| (*c, s.clone())).collect(),
            applied_ops: self.applied_ops,
        }
    }

    /// Replaces this store's state with a snapshot's.
    pub fn restore(&mut self, snap: &KvSnapshot) {
        self.table = snap.table.iter().map(|(k, v)| (*k, v.clone())).collect();
        self.sessions = snap.sessions.iter().map(|(c, s)| (*c, s.clone())).collect();
        self.applied_ops = snap.applied_ops;
    }
}

/// A point-in-time copy of a [`KvStore`]'s state, with a deterministic
/// size model so the simulator can charge realistic NIC transfer cost
/// for multi-MB snapshot payloads.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KvSnapshot {
    /// Stored records, ordered by key.
    pub table: BTreeMap<Key, Vec<u8>>,
    /// Per-client `(last applied seq, cached reply)` sessions.
    pub sessions: BTreeMap<u32, (u64, Reply)>,
    /// Apply counter carried across restore.
    pub applied_ops: u64,
}

impl KvSnapshot {
    /// Exact serialized size in bytes — matches the length of
    /// [`crate::snapshot::Snapshot::encode`]'s kv section byte for byte,
    /// so CPU/NIC charges agree with what is actually shipped.
    pub fn size_bytes(&self) -> usize {
        let mut n = 8 + 8; // applied_ops + record count
        for v in self.table.values() {
            n += 8 + 4 + v.len(); // key + length prefix + payload
        }
        n += 8; // session count
        for (_, reply) in self.sessions.values() {
            n += 4 + 8 + 1; // client + seq + reply tag
            if let Reply::Value(Some(v)) = reply {
                n += 4 + v.len();
            }
        }
        n
    }

    /// Number of records captured.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(c: u32, s: u64) -> CmdId {
        CmdId { client: c, seq: s }
    }

    #[test]
    fn put_then_get() {
        let mut kv = KvStore::new();
        assert_eq!(
            kv.apply(&Command::put(id(1, 1), 7, vec![0; 16])),
            Reply::Done
        );
        let r = kv.apply(&Command::get(id(1, 2), 7));
        assert_eq!(r.value_id(), Some(id(1, 1).as_value_id()));
    }

    #[test]
    fn get_missing_returns_none() {
        let mut kv = KvStore::new();
        assert_eq!(kv.apply(&Command::get(id(1, 1), 99)), Reply::Value(None));
        assert_eq!(Reply::Value(None).value_id(), None);
    }

    #[test]
    fn duplicate_seq_is_deduplicated() {
        let mut kv = KvStore::new();
        let put1 = Command::put(id(1, 1), 5, vec![0; 8]);
        kv.apply(&put1);
        let ops = kv.applied_ops();
        // Retry of seq 1 must not re-apply.
        assert_eq!(kv.apply(&put1), Reply::Done);
        assert_eq!(kv.applied_ops(), ops);
    }

    #[test]
    fn dedup_returns_cached_reply() {
        let mut kv = KvStore::new();
        kv.apply(&Command::put(id(2, 1), 5, vec![0; 8]));
        let get = Command::get(id(1, 1), 5);
        let first = kv.apply(&get);
        // Another client's write in between.
        kv.apply(&Command::put(id(2, 2), 5, vec![0; 8]));
        // Retry of the same get returns the *original* cached reply.
        assert_eq!(kv.apply(&get), first);
    }

    #[test]
    fn stale_seq_does_not_overwrite() {
        let mut kv = KvStore::new();
        kv.apply(&Command::put(id(1, 2), 5, vec![0; 8]));
        // A delayed older command from the same client must be ignored.
        kv.apply(&Command::put(id(1, 1), 5, vec![0xFF; 8]));
        let r = kv.read_local(5);
        assert_eq!(r.value_id(), Some(id(1, 2).as_value_id()));
    }

    #[test]
    fn noop_applies_without_session() {
        let mut kv = KvStore::new();
        assert_eq!(kv.apply(&Command::noop()), Reply::Done);
        assert_eq!(kv.apply(&Command::noop()), Reply::Done);
        assert_eq!(kv.applied_ops(), 2, "noops never dedup");
    }

    #[test]
    fn value_id_embedding() {
        let c = Command::put(id(3, 9), 1, vec![0; 64]);
        if let Op::Put { value, .. } = &c.op {
            assert_eq!(value.len(), 64);
            let vid = u64::from_le_bytes(value[..8].try_into().unwrap());
            assert_eq!(vid, id(3, 9).as_value_id());
        } else {
            panic!("expected put");
        }
    }

    #[test]
    fn short_value_padded_to_id_width() {
        let c = Command::put(id(1, 1), 1, vec![1, 2, 3]);
        if let Op::Put { value, .. } = &c.op {
            assert_eq!(value.len(), 8);
        } else {
            panic!("expected put");
        }
    }

    #[test]
    fn sizes_reflect_payload() {
        let small = Command::put(id(1, 1), 1, vec![0; 8]);
        let large = Command::put(id(1, 2), 1, vec![0; 4096]);
        assert!(large.size_bytes() > small.size_bytes());
        assert_eq!(Command::get(id(1, 3), 1).size_bytes(), 12 + 8);
        assert_eq!(Command::noop().size_bytes(), 13);
    }

    #[test]
    fn snapshot_restore_round_trips_state_and_sessions() {
        let mut kv = KvStore::new();
        kv.apply(&Command::put(id(1, 1), 5, vec![0; 32]));
        kv.apply(&Command::put(id(2, 1), 6, vec![0; 32]));
        kv.apply(&Command::get(id(1, 2), 5));
        let snap = kv.snapshot();
        let mut restored = KvStore::new();
        restored.restore(&snap);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.applied_ops(), kv.applied_ops());
        assert_eq!(restored.read_local(5), kv.read_local(5));
        // Session dedup survives: retrying an already-applied command on
        // the restored store must not re-apply.
        let ops = restored.applied_ops();
        restored.apply(&Command::put(id(1, 1), 5, vec![0xFF; 32]));
        assert_eq!(restored.applied_ops(), ops, "dedup survived restore");
        assert_eq!(
            restored.read_local(5).value_id(),
            Some(id(1, 1).as_value_id())
        );
    }

    #[test]
    fn snapshot_size_scales_with_payload() {
        let mut kv = KvStore::new();
        kv.apply(&Command::put(id(1, 1), 1, vec![0; 64]));
        let small = kv.snapshot().size_bytes();
        kv.apply(&Command::put(id(1, 2), 2, vec![0; 4096]));
        let large = kv.snapshot().size_bytes();
        assert!(large >= small + 4096, "{small} -> {large}");
        // Deterministic: same state, same size.
        assert_eq!(kv.snapshot().size_bytes(), large);
    }

    #[test]
    fn read_local_bypasses_sessions() {
        let mut kv = KvStore::new();
        kv.apply(&Command::put(id(1, 1), 5, vec![0; 8]));
        let ops = kv.applied_ops();
        let _ = kv.read_local(5);
        assert_eq!(kv.applied_ops(), ops);
    }
}
