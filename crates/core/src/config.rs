//! Replica configuration shared by every protocol.

use crate::costs::CostModel;
use crate::engine::PipelineConfig;
use crate::shard::ShardMembership;
use crate::snapshot::SnapshotConfig;
use crate::types::NodeId;
use paxraft_sim::sim::ActorId;
use paxraft_sim::time::SimDuration;

/// How reads are served (Section 5.1's three configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Reads are replicated through the log like writes (Raft, Raft*,
    /// MultiPaxos baseline: "a strongly consistent read operation is
    /// performed by persisting the operation into the log").
    LogRead,
    /// Leader Lease: only the leader serves reads from its local copy.
    LeaderLease,
    /// Paxos Quorum Lease ported to Raft*: any replica holding leases
    /// from a quorum serves reads locally.
    QuorumLease,
}

/// Lease parameters (Section 5.1: duration 2 s, renewed every 0.5 s).
#[derive(Debug, Clone)]
pub struct LeaseConfig {
    /// How long a grant is valid.
    pub duration: SimDuration,
    /// Grant/renewal period.
    pub renew_every: SimDuration,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            duration: SimDuration::from_secs(2),
            renew_every: SimDuration::from_millis(500),
        }
    }
}

/// Mencius coordination parameters.
#[derive(Debug, Clone)]
pub struct MenciusConfig {
    /// Idle watermark broadcast period (keeps lagging owners from
    /// delaying everyone and doubles as a failure-detector keepalive).
    pub skip_heartbeat: SimDuration,
    /// Silence threshold after which a peer's slots are revoked.
    pub revoke_timeout: SimDuration,
}

impl Default for MenciusConfig {
    fn default() -> Self {
        MenciusConfig {
            skip_heartbeat: SimDuration::from_millis(50),
            revoke_timeout: SimDuration::from_secs(3),
        }
    }
}

/// When an fsync is forced on the durability path.
#[derive(Debug, Clone, PartialEq)]
pub enum FsyncPolicy {
    /// One fsync per appended entry, in order: every entry waits out its
    /// own flush barrier before anything that attests to it is sent.
    /// The faithful-but-slow baseline.
    FsyncPerEntry,
    /// Group commit: entries accumulate unsynced and one batched fsync
    /// covers all of them. At most one fsync is in flight; the next is
    /// issued when `max_batch` entries are waiting, or `max_delay` after
    /// the first unsynced entry, whichever comes first.
    GroupCommit {
        /// Issue the next fsync immediately once this many entries wait.
        max_batch: usize,
        /// Longest an unsynced entry waits before an fsync is forced.
        max_delay: SimDuration,
    },
}

/// Durability model for one replica: whether acknowledgements wait for
/// fsync, and how the simulated disk is provisioned.
///
/// The default (`policy: None`) is the pre-durability model — appends
/// are instantly durable, nothing touches the disk model, and the event
/// schedule is bit-for-bit identical to builds that predate it (pinned
/// by `PARITY_pr5.txt`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DurabilityConfig {
    /// Fsync scheduling policy; `None` disables the durability model.
    pub policy: Option<FsyncPolicy>,
    /// Device latency of one fsync.
    pub fsync_latency: SimDuration,
    /// Disk write bandwidth in bytes/sec; `0.0` = infinite.
    pub write_bandwidth_bps: f64,
}

impl DurabilityConfig {
    /// Fsync-per-entry on a disk with the given fsync latency.
    pub fn per_entry(fsync_latency: SimDuration) -> Self {
        DurabilityConfig {
            policy: Some(FsyncPolicy::FsyncPerEntry),
            fsync_latency,
            write_bandwidth_bps: 0.0,
        }
    }

    /// Group commit on a disk with the given fsync latency.
    pub fn group_commit(
        fsync_latency: SimDuration,
        max_batch: usize,
        max_delay: SimDuration,
    ) -> Self {
        DurabilityConfig {
            policy: Some(FsyncPolicy::GroupCommit {
                max_batch,
                max_delay,
            }),
            fsync_latency,
            write_bandwidth_bps: 0.0,
        }
    }

    /// This config with the given write bandwidth (bytes/sec).
    pub fn with_bandwidth(mut self, bps: f64) -> Self {
        self.write_bandwidth_bps = bps;
        self
    }

    /// Whether acks wait for fsync.
    pub fn enabled(&self) -> bool {
        self.policy.is_some()
    }

    /// The sim-level disk parameters this config provisions.
    pub fn disk_config(&self) -> paxraft_sim::disk::DiskConfig {
        paxraft_sim::disk::DiskConfig {
            write_bandwidth_bps: self.write_bandwidth_bps,
            fsync_latency: self.fsync_latency,
        }
    }
}

/// Configuration for one replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// This replica's id.
    pub id: NodeId,
    /// Cluster size (`2f + 1`).
    pub n: usize,
    /// Actor ids of all replicas, indexed by [`NodeId`].
    pub peers: Vec<ActorId>,
    /// Actor id of logical client `c` is `ActorId(client_base + c)`.
    pub client_base: usize,
    /// CPU cost model.
    pub costs: CostModel,
    /// Max delay before a pending batch is flushed.
    pub batch_delay: SimDuration,
    /// Flush immediately once this many commands are pending.
    pub batch_max: usize,
    /// Leader heartbeat period (also drives commit-index propagation).
    pub heartbeat: SimDuration,
    /// Election timeout lower bound (randomized up to `election_max`).
    pub election_min: SimDuration,
    /// Election timeout upper bound.
    pub election_max: SimDuration,
    /// If set, this node uses a tiny first election timeout so it becomes
    /// the initial leader (the harness's deterministic bootstrap).
    pub initial_leader: Option<NodeId>,
    /// Leader retry period for re-sending un-acknowledged suffixes.
    pub retry_interval: SimDuration,
    /// Read path.
    pub read_mode: ReadMode,
    /// Lease parameters (used by `LeaderLease`/`QuorumLease` modes).
    pub lease: LeaseConfig,
    /// Mencius parameters.
    pub mencius: MenciusConfig,
    /// Snapshot / log-compaction parameters (disabled by default).
    pub snapshot: SnapshotConfig,
    /// Replication pipelining / adaptive-batching parameters.
    pub pipeline: PipelineConfig,
    /// Shard membership when this replica serves one group of a
    /// multi-group cluster (`None` = unsharded, the default). Carries
    /// the partition map so misrouted commands get a
    /// [`crate::kv::Reply::WrongGroup`] redirect instead of executing
    /// against the wrong group's state.
    pub shard: Option<ShardMembership>,
    /// Durable-storage model: fsync policy + disk provisioning
    /// (disabled by default — appends are instantly durable).
    pub durability: DurabilityConfig,
}

impl ReplicaConfig {
    /// A WAN-appropriate default for `n` replicas; `peers` must be filled
    /// by the harness once actor ids exist.
    pub fn wan_default(id: NodeId, n: usize) -> Self {
        ReplicaConfig {
            id,
            n,
            peers: Vec::new(),
            client_base: n,
            costs: CostModel::default(),
            batch_delay: SimDuration::from_millis(2),
            batch_max: 64,
            heartbeat: SimDuration::from_millis(150),
            election_min: SimDuration::from_millis(1_500),
            election_max: SimDuration::from_millis(3_000),
            initial_leader: None,
            retry_interval: SimDuration::from_millis(600),
            read_mode: ReadMode::LogRead,
            lease: LeaseConfig::default(),
            mencius: MenciusConfig::default(),
            snapshot: SnapshotConfig::default(),
            pipeline: PipelineConfig::default(),
            shard: None,
            durability: DurabilityConfig::default(),
        }
    }

    /// Actor id of a replica.
    pub fn peer(&self, node: NodeId) -> ActorId {
        self.peers[node.0 as usize]
    }

    /// The node id behind a peer's actor id. Replica groups occupy
    /// contiguous actor-id ranges (`peers[0] + i == peers[i]`), so the
    /// mapping is a subtraction; in the unsharded layout `peers[0]` is
    /// actor 0 and this degenerates to the identity.
    pub fn node_of(&self, from: ActorId) -> NodeId {
        let node = NodeId((from.0 - self.peers[0].0) as u32);
        debug_assert_eq!(self.peers[node.0 as usize], from, "contiguous peer ids");
        node
    }

    /// This replica's group id (`0` when unsharded).
    pub fn group_id(&self) -> u32 {
        self.shard.as_ref().map_or(0, |s| s.group)
    }

    /// Actor id of `node`'s replica in another `group` of the same
    /// sharded cluster. Groups occupy contiguous actor-id blocks of `n`
    /// in group order (`ShardedCluster`'s layout: group `g`'s node `i`
    /// is actor `g * n + i`), so the hop is block arithmetic from this
    /// replica's own peer table. Used by the range-migration transfer,
    /// the only cross-group sender.
    pub fn group_actor(&self, group: u32, node: NodeId) -> ActorId {
        let offset = group as i64 - self.group_id() as i64;
        let me = self.peers[node.0 as usize].0 as i64;
        ActorId((me + offset * self.n as i64) as usize)
    }

    /// Wire-header bytes of one engine `Forward` in this cluster's
    /// spelling: the base 8, plus the group header once the cluster is
    /// sharded and the group id must travel.
    pub fn forward_header_bytes(&self) -> usize {
        8 + if self.shard.is_some() {
            self.costs.shard_group_header
        } else {
            0
        }
    }

    /// Actor id of a logical client.
    pub fn client_actor(&self, client: u32) -> ActorId {
        ActorId(self.client_base + client as usize)
    }

    /// All replica node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n as u32).map(NodeId)
    }

    /// All node ids except this replica.
    pub fn others(&self) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.id;
        self.nodes().filter(move |&x| x != me)
    }

    /// Validates internal consistency (peer table filled, id in range).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 || self.n % 2 == 0 {
            return Err(format!("n={} must be odd and positive", self.n));
        }
        if self.id.0 as usize >= self.n {
            return Err(format!("id {} out of range for n={}", self.id, self.n));
        }
        if self.peers.len() != self.n {
            return Err(format!(
                "peers table has {} entries, need {}",
                self.peers.len(),
                self.n
            ));
        }
        if self.peers.windows(2).any(|w| w[1].0 != w[0].0 + 1) {
            return Err("peer actor ids must be contiguous".into());
        }
        if let Some(shard) = &self.shard {
            if shard.group as usize >= shard.router.groups() {
                return Err(format!(
                    "shard group {} out of range for {} groups",
                    shard.group,
                    shard.router.groups()
                ));
            }
        }
        if self.election_min > self.election_max {
            return Err("election_min exceeds election_max".into());
        }
        if self.batch_max == 0 {
            return Err("batch_max must be positive".into());
        }
        if self.snapshot.enabled() && self.snapshot.chunk_bytes == 0 {
            return Err("snapshot chunk_bytes must be positive".into());
        }
        if let Some(FsyncPolicy::GroupCommit { max_batch, .. }) = &self.durability.policy {
            if *max_batch == 0 {
                return Err("group-commit max_batch must be positive".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ReplicaConfig {
        let mut c = ReplicaConfig::wan_default(NodeId(1), 5);
        c.peers = (0..5).map(ActorId).collect();
        c
    }

    #[test]
    fn validate_accepts_good_config() {
        assert_eq!(cfg().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_even_n() {
        let mut c = cfg();
        c.n = 4;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_id_and_peers() {
        let mut c = cfg();
        c.id = NodeId(9);
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.peers.pop();
        assert!(c.validate().is_err());
    }

    #[test]
    fn others_excludes_self() {
        let c = cfg();
        let others: Vec<NodeId> = c.others().collect();
        assert_eq!(others.len(), 4);
        assert!(!others.contains(&NodeId(1)));
    }

    #[test]
    fn client_actor_offsets() {
        let c = cfg();
        assert_eq!(c.client_actor(0), ActorId(5));
        assert_eq!(c.client_actor(3), ActorId(8));
    }

    #[test]
    fn node_of_inverts_peer_for_offset_groups() {
        // Group 1 of a 2-group, 5-node cluster occupies actors 5..10.
        let mut c = ReplicaConfig::wan_default(NodeId(2), 5);
        c.peers = (5..10).map(ActorId).collect();
        for node in 0..5u32 {
            assert_eq!(c.node_of(c.peer(NodeId(node))), NodeId(node));
        }
    }

    #[test]
    fn validate_rejects_gapped_peer_ids() {
        let mut c = cfg();
        c.peers[3] = ActorId(9);
        assert!(c.validate().is_err());
    }

    #[test]
    fn forward_header_pays_group_bytes_only_when_sharded() {
        use crate::shard::{ShardMembership, ShardRouter};
        let mut c = cfg();
        assert_eq!(c.forward_header_bytes(), 8);
        assert_eq!(c.group_id(), 0);
        c.shard = Some(ShardMembership {
            group: 1,
            router: ShardRouter::new(1_000, 2),
        });
        assert_eq!(c.forward_header_bytes(), 8 + c.costs.shard_group_header);
        assert_eq!(c.group_id(), 1);
        assert_eq!(c.validate(), Ok(()));
        c.shard = Some(ShardMembership {
            group: 7,
            router: ShardRouter::new(1_000, 2),
        });
        assert!(c.validate().is_err(), "group beyond router range");
    }
}
