//! CPU cost model for replica message handling.
//!
//! The paper's throughput experiments saturate the leader's CPU (Figures
//! 9c, 10a: "the leader's CPU is the bottleneck"). We reproduce that by
//! charging each handler a service time drawn from this model; the
//! simulator's per-node serial CPU queue then produces the saturation
//! behaviour. Constants are calibrated so a 5-replica single-leader
//! cluster saturates at roughly the paper's 41K ops/s for 8-byte
//! requests (Figure 10a); see EXPERIMENTS.md for the calibration run.

use paxraft_sim::time::SimDuration;

/// Per-message-kind CPU service costs.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Handling one client request at the receiving replica.
    pub client_req: SimDuration,
    /// Per-command cost of processing a forwarded batch at the leader.
    pub forward_per_cmd: SimDuration,
    /// Fixed cost of assembling one replication message (leader side).
    pub propose_fixed: SimDuration,
    /// Per-command cost of appending to the leader log and marshalling.
    pub propose_per_cmd: SimDuration,
    /// Fixed cost of processing one Append/Accept at a follower.
    pub append_fixed: SimDuration,
    /// Per-command cost of a follower append.
    pub append_per_cmd: SimDuration,
    /// Leader-side cost of processing one acknowledgement.
    pub ack_process: SimDuration,
    /// Applying one committed command to the state machine.
    pub apply_per_cmd: SimDuration,
    /// Building and sending one client response.
    pub reply_fixed: SimDuration,
    /// Serving one local (lease) read.
    pub read_local: SimDuration,
    /// Processing one lease grant/renewal message.
    pub lease_msg: SimDuration,
    /// Processing one Mencius skip/commit bookkeeping message.
    pub coord_msg: SimDuration,
    /// Extra per-command coordination overhead on *every* replica under
    /// Mencius (skip tracking, commit tracking, ordering checks).
    pub coord_per_cmd: SimDuration,
    /// Additional cost per KiB of payload handled (serialization /
    /// checksumming); applied on proposes and appends.
    pub per_kib: SimDuration,
    /// Per-KiB cost of encoding or installing a state-machine snapshot
    /// (charged on top of the NIC transfer the simulator models).
    pub snapshot_per_kib: SimDuration,
    /// Wire-header bytes of one Raft-spelling `InstallSnapshot` chunk
    /// (term, leaderId, lastIncludedIndex, lastIncludedTerm, offset,
    /// done). The Paxos family's `Checkpoint` spelling is leaner; see
    /// [`CostModel::checkpoint_chunk_header`].
    pub snapshot_chunk_header: usize,
    /// Wire-header bytes of one Raft-spelling `SnapshotAck`.
    pub snapshot_ack_header: usize,
    /// Wire-header bytes of one Paxos-spelling `Checkpoint` chunk
    /// (ballot, executedThrough, offset — no per-entry term, no done
    /// flag; Mencius drops the ballot too, see
    /// [`crate::engine::ProtocolRules::snapshot_wire_overhead`]).
    pub checkpoint_chunk_header: usize,
    /// Wire-header bytes of one Paxos-spelling `CheckpointOk`.
    pub checkpoint_ack_header: usize,
    /// Wire-header bytes a sharded cluster adds to every engine-level
    /// message (forwarding, snapshot transfer) to carry the replica-group
    /// id. A single-group (unsharded) cluster needs no routing header
    /// and pays nothing.
    pub shard_group_header: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            client_req: SimDuration::from_micros(3),
            forward_per_cmd: SimDuration::from_micros(1),
            propose_fixed: SimDuration::from_micros(2),
            propose_per_cmd: SimDuration::from_micros(6),
            append_fixed: SimDuration::from_micros(2),
            append_per_cmd: SimDuration::from_micros(3),
            ack_process: SimDuration::from_micros(2),
            apply_per_cmd: SimDuration::from_micros(2),
            reply_fixed: SimDuration::from_micros(4),
            read_local: SimDuration::from_micros(4),
            lease_msg: SimDuration::from_micros(1),
            coord_msg: SimDuration::from_micros(1),
            coord_per_cmd: SimDuration::from_micros(3),
            per_kib: SimDuration::from_micros(1),
            snapshot_per_kib: SimDuration::from_micros(2),
            snapshot_chunk_header: 48,
            snapshot_ack_header: 16,
            checkpoint_chunk_header: 40,
            checkpoint_ack_header: 16,
            shard_group_header: 4,
        }
    }
}

impl CostModel {
    /// Payload-size surcharge for `bytes` of command data.
    pub fn size_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(self.per_kib.as_nanos() * bytes as u64 / 1024)
    }

    /// CPU cost of encoding / installing a snapshot of `bytes` bytes.
    pub fn snapshot_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(self.snapshot_per_kib.as_nanos() * bytes as u64 / 1024)
    }

    /// A model with all costs zero, for latency-only tests where CPU
    /// queueing would add noise.
    pub fn free() -> Self {
        CostModel {
            client_req: SimDuration::ZERO,
            forward_per_cmd: SimDuration::ZERO,
            propose_fixed: SimDuration::ZERO,
            propose_per_cmd: SimDuration::ZERO,
            append_fixed: SimDuration::ZERO,
            append_per_cmd: SimDuration::ZERO,
            ack_process: SimDuration::ZERO,
            apply_per_cmd: SimDuration::ZERO,
            reply_fixed: SimDuration::ZERO,
            read_local: SimDuration::ZERO,
            lease_msg: SimDuration::ZERO,
            coord_msg: SimDuration::ZERO,
            coord_per_cmd: SimDuration::ZERO,
            per_kib: SimDuration::ZERO,
            snapshot_per_kib: SimDuration::ZERO,
            // Wire sizes are not CPU costs; the free model keeps them.
            snapshot_chunk_header: 48,
            snapshot_ack_header: 16,
            checkpoint_chunk_header: 40,
            checkpoint_ack_header: 16,
            shard_group_header: 4,
        }
    }

    /// The same model with every CPU service time multiplied by `mult`
    /// (wire-header sizes are unchanged — they are not CPU costs).
    ///
    /// The sharding benches use this to model a slower core: with the
    /// default constants a single leader saturates near the paper's 41K
    /// ops/s, which a deterministic simulation can only reach with
    /// thousands of client actors. Scaling the costs moves the CPU
    /// ceiling into the reach of a small closed-loop client fleet so the
    /// "throughput scales past one leader's CPU" effect is visible in a
    /// seconds-long virtual run.
    pub fn scaled_cpu(mut self, mult: u64) -> Self {
        self.client_req = self.client_req * mult;
        self.forward_per_cmd = self.forward_per_cmd * mult;
        self.propose_fixed = self.propose_fixed * mult;
        self.propose_per_cmd = self.propose_per_cmd * mult;
        self.append_fixed = self.append_fixed * mult;
        self.append_per_cmd = self.append_per_cmd * mult;
        self.ack_process = self.ack_process * mult;
        self.apply_per_cmd = self.apply_per_cmd * mult;
        self.reply_fixed = self.reply_fixed * mult;
        self.read_local = self.read_local * mult;
        self.lease_msg = self.lease_msg * mult;
        self.coord_msg = self.coord_msg * mult;
        self.coord_per_cmd = self.coord_per_cmd * mult;
        self.per_kib = self.per_kib * mult;
        self.snapshot_per_kib = self.snapshot_per_kib * mult;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_leader_cost_near_paper_saturation() {
        // Leader per-op cost with 4 followers should be in the low tens of
        // microseconds, putting single-leader saturation near the paper's
        // ~41K ops/s.
        let c = CostModel::default();
        let per_op = c.forward_per_cmd.as_nanos()
            + c.propose_per_cmd.as_nanos()
            + 4 * c.ack_process.as_nanos()
            + c.apply_per_cmd.as_nanos()
            + c.reply_fixed.as_nanos();
        let ops_per_sec = 1e9 / per_op as f64;
        assert!(
            (30_000.0..60_000.0).contains(&ops_per_sec),
            "leader saturation estimate {ops_per_sec:.0} ops/s"
        );
    }

    #[test]
    fn size_cost_linear() {
        let c = CostModel::default();
        assert_eq!(c.size_cost(1024).as_nanos(), c.per_kib.as_nanos());
        assert_eq!(c.size_cost(4096).as_nanos(), 4 * c.per_kib.as_nanos());
        assert_eq!(c.size_cost(0), SimDuration::ZERO);
    }

    #[test]
    fn free_model_is_all_zero() {
        let c = CostModel::free();
        assert_eq!(c.client_req, SimDuration::ZERO);
        assert_eq!(c.size_cost(1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn scaled_cpu_multiplies_service_times_but_not_wire_headers() {
        let base = CostModel::default();
        let c = base.clone().scaled_cpu(100);
        assert_eq!(c.client_req, base.client_req * 100);
        assert_eq!(c.apply_per_cmd, base.apply_per_cmd * 100);
        assert_eq!(c.size_cost(1024), base.size_cost(1024) * 100);
        assert_eq!(c.snapshot_chunk_header, base.snapshot_chunk_header);
        assert_eq!(c.shard_group_header, base.shard_group_header);
    }
}
