//! Multi-group sharding: many replica groups per node, key-range
//! routing, and the sharded cluster harness.
//!
//! One consensus group is bounded by its leader's CPU (Figures 9c/10a:
//! "the leader's CPU is the bottleneck"). The standard production
//! scale-out — partitioning state across many Multi-Paxos groups, as in
//! "The Performance of Paxos in the Cloud" — is protocol-agnostic under
//! the paper's vocabulary map, so it lives here once and all four
//! protocols inherit it through the shared [`crate::engine`]:
//!
//! - [`ShardRouter`] — a contiguous key-range partition map over
//!   `groups`, mirroring the workload generator's
//!   `partition_range` arithmetic so the key space splits the same way
//!   everywhere.
//! - [`ShardMembership`] — what one replica knows about the partition
//!   map: its own group plus the router, used to answer misrouted
//!   commands with [`crate::kv::Reply::WrongGroup`].
//! - [`ShardedCluster`] — `groups` independent `ReplicaEngine` groups
//!   over the same simulated nodes (distinct actor per `(node, group)`,
//!   shared network/clock/fault injection), with per-group leader
//!   placement ([`LeaderPlacement`]) and clients that resolve each key
//!   to its group ([`crate::client::ClientRouting`]).
//! - [`migration`] + [`RebalanceCoordinator`] — **live rebalancing**:
//!   the partition map is versioned, and a coordinator moves key
//!   ranges between groups through the groups' own logs (freeze →
//!   chunked export → replicated install → publish → release), so
//!   splits, merges and hot-range moves run under load with
//!   exactly-once hand-off in every protocol.
//! - [`autobalance`] — **closed-loop placement**: a policy engine that
//!   watches live per-group telemetry and the apply-path load sketch,
//!   and drives the coordinator itself (concurrent disjoint-range
//!   migrations, hysteresis + cooldown so it provably never
//!   ping-pongs) instead of replaying a script.
//!
//! Leader placement is the axis where the Paxos/Raft leader-flexibility
//! difference shows up ("Paxos vs Raft: Have we reached consensus on
//! distributed consensus?"): `AllOnOne` concentrates every group's
//! leader in one region, `RoundRobin` spreads them — same total CPU,
//! different client latency geometry.

pub mod autobalance;
mod cluster;
pub mod migration;
mod rebalance;
mod router;

pub use autobalance::{AutoBalanceConfig, AutoBalancePolicy, BalanceDecision};
pub use cluster::{GroupStats, LeaderPlacement, ShardConfig, ShardedCluster};
pub use migration::{MigrationSpec, RouterVersion};
pub use rebalance::{RebalanceConfig, RebalanceCoordinator};
pub use router::{ShardMembership, ShardRouter};
