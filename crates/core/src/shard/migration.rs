//! Replicated key-range migration between groups: the state-machine side.
//!
//! A migration moves a contiguous key range `[lo, hi)` from a *source*
//! group to a *destination* group through the groups' **own logs**, so
//! every replica of both groups observes the hand-off at a deterministic
//! point in its apply order and crash recovery falls out of the existing
//! log/snapshot machinery:
//!
//! 1. The coordinator commits [`crate::kv::Op::FreezeRange`] in the
//!    source group. From the freeze's apply point on, every operation on
//!    the range bounces with [`crate::kv::Reply::WrongGroup`] stamped
//!    with the migration's *new* [`RouterVersion`] — the freeze entry is
//!    the linearization cutover.
//! 2. The source leader exports the frozen range (records **and** client
//!    sessions, so exactly-once survives the move) as a [`RangeExport`]
//!    and ships it to the destination group as a snapshot-style chunked
//!    transfer, reusing the chunk/reassembly machinery of
//!    [`crate::snapshot`].
//! 3. The destination commits [`crate::kv::Op::InstallRange`] carrying
//!    the export in its own log; applying it absorbs the records and
//!    starts serving the range at the new version.
//! 4. The coordinator publishes the bumped partition map to clients and
//!    commits [`crate::kv::Op::ReleaseRange`] in the source group, which
//!    drops the moved records (the redirect tombstone stays).
//!
//! [`ShardState`] is the replicated bookkeeping all of this leaves in the
//! state machine; it travels inside snapshots, so a replica healed by
//! state transfer learns the current ownership overrides with it.

use std::collections::BTreeMap;

use paxraft_sim::time::SimDuration;

use crate::kv::{CmdId, Key, Reply};
use crate::snapshot::Reader;

/// A partition-map version. Every migration bumps it by one; `0` is the
/// build-time map. Stamped on [`crate::kv::Reply::WrongGroup`] redirects
/// and on router updates so clients can tell a *newer* map teaching them
/// a move from a *stale* replica that has not caught up yet.
pub type RouterVersion = u64;

/// A range this group froze and handed to another group. Kept forever
/// (it is the redirect tombstone); `released` records whether the moved
/// records were already dropped from the local table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenRange {
    /// First key of the moved range.
    pub lo: Key,
    /// One past the last key of the moved range.
    pub hi: Key,
    /// The group that owns the range from `version` on.
    pub to_group: u32,
    /// The migration's version (the map version after the move).
    pub version: RouterVersion,
    /// Logical client id of the coordinator driving the migration
    /// (responses to the migration commands route there).
    pub coord: u32,
    /// Whether [`crate::kv::Op::ReleaseRange`] already dropped the moved
    /// records locally.
    pub released: bool,
}

/// A range this group absorbed from another group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsorbedRange {
    /// First key of the absorbed range.
    pub lo: Key,
    /// One past the last key.
    pub hi: Key,
    /// The group that previously owned the range.
    pub from_group: u32,
    /// The migration's version.
    pub version: RouterVersion,
}

/// What the replicated overrides say about one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyOwnership {
    /// A frozen range moved the key away: redirect to the group, at the
    /// migration's version.
    Redirect(u32, RouterVersion),
    /// An absorbed range moved the key here: accept it even though the
    /// build-time map says otherwise.
    Accept(RouterVersion),
}

/// The replicated shard bookkeeping inside a [`crate::kv::KvStore`]:
/// every override the group's log has applied to the build-time
/// partition map. Mutated only by applying migration commands, so it is
/// deterministic across a group's replicas and snapshots carry it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardState {
    /// Highest migration version applied (build-time map = 0).
    pub version: RouterVersion,
    /// Ranges moved away from this group, newest last.
    pub frozen: Vec<FrozenRange>,
    /// Ranges moved into this group, newest last.
    pub absorbed: Vec<AbsorbedRange>,
}

impl ShardState {
    /// True when no migration has ever touched this group (the state a
    /// non-migrating run keeps, bit-for-bit).
    pub fn is_empty(&self) -> bool {
        self.version == 0 && self.frozen.is_empty() && self.absorbed.is_empty()
    }

    /// The highest-version override covering `key`, if any. A range can
    /// move A→B→C; the later override wins.
    pub fn override_for(&self, key: Key) -> Option<KeyOwnership> {
        let mut best: Option<KeyOwnership> = None;
        let ver = |o: &KeyOwnership| match o {
            KeyOwnership::Redirect(_, v) | KeyOwnership::Accept(v) => *v,
        };
        for f in &self.frozen {
            if (f.lo..f.hi).contains(&key) {
                let cand = KeyOwnership::Redirect(f.to_group, f.version);
                if best.is_none_or(|b| ver(&b) < f.version) {
                    best = Some(cand);
                }
            }
        }
        for a in &self.absorbed {
            if (a.lo..a.hi).contains(&key) {
                let cand = KeyOwnership::Accept(a.version);
                if best.is_none_or(|b| ver(&b) < a.version) {
                    best = Some(cand);
                }
            }
        }
        best
    }

    /// Whether a frozen range with this version exists (freeze
    /// idempotency).
    pub fn has_frozen(&self, version: RouterVersion) -> bool {
        self.frozen.iter().any(|f| f.version == version)
    }

    /// Whether an absorbed range with this version exists (install
    /// idempotency / exactly-once).
    pub fn has_absorbed(&self, version: RouterVersion) -> bool {
        self.absorbed.iter().any(|a| a.version == version)
    }

    /// Frozen ranges whose hand-off is not yet released — the ranges a
    /// source leader must keep (re-)exporting.
    pub fn pending_exports(&self) -> impl Iterator<Item = &FrozenRange> {
        self.frozen.iter().filter(|f| !f.released)
    }

    /// Serializes the override state (deterministic little-endian).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.frozen.len() as u64).to_le_bytes());
        for f in &self.frozen {
            out.extend_from_slice(&f.lo.to_le_bytes());
            out.extend_from_slice(&f.hi.to_le_bytes());
            out.extend_from_slice(&f.to_group.to_le_bytes());
            out.extend_from_slice(&f.version.to_le_bytes());
            out.extend_from_slice(&f.coord.to_le_bytes());
            out.push(f.released as u8);
        }
        out.extend_from_slice(&(self.absorbed.len() as u64).to_le_bytes());
        for a in &self.absorbed {
            out.extend_from_slice(&a.lo.to_le_bytes());
            out.extend_from_slice(&a.hi.to_le_bytes());
            out.extend_from_slice(&a.from_group.to_le_bytes());
            out.extend_from_slice(&a.version.to_le_bytes());
        }
    }

    /// Exact length [`ShardState::encode_into`] appends.
    pub fn encoded_len(&self) -> usize {
        8 + 8 + self.frozen.len() * 33 + 8 + self.absorbed.len() * 28
    }

    /// Parses the override state from a reader positioned at its start.
    pub(crate) fn decode(r: &mut Reader<'_>) -> Option<ShardState> {
        let version = r.u64()?;
        let mut state = ShardState {
            version,
            ..ShardState::default()
        };
        let frozen = r.u64()?;
        for _ in 0..frozen {
            state.frozen.push(FrozenRange {
                lo: r.u64()?,
                hi: r.u64()?,
                to_group: r.u32()?,
                version: r.u64()?,
                coord: r.u32()?,
                released: r.u8()? != 0,
            });
        }
        let absorbed = r.u64()?;
        for _ in 0..absorbed {
            state.absorbed.push(AbsorbedRange {
                lo: r.u64()?,
                hi: r.u64()?,
                from_group: r.u32()?,
                version: r.u64()?,
            });
        }
        Some(state)
    }
}

/// The payload a source leader exports for one frozen range: the records
/// in `[lo, hi)` plus the full client-session table. Sessions must
/// travel with the range — a client whose write committed at the source
/// just before the freeze may retry it at the destination after the
/// move, and only the carried session makes that retry a no-op instead
/// of a double apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeExport {
    /// The migration's version.
    pub version: RouterVersion,
    /// First key of the moved range.
    pub lo: Key,
    /// One past the last key.
    pub hi: Key,
    /// The exporting (source) group.
    pub from_group: u32,
    /// The absorbing (destination) group.
    pub to_group: u32,
    /// Logical client id of the coordinator (install responses route
    /// there).
    pub coord: u32,
    /// The records of the range, ordered by key.
    pub records: Vec<(Key, Vec<u8>)>,
    /// Source client sessions `(client, last seq, cached reply)`,
    /// ordered by client; merged max-seq-wins at the destination.
    pub sessions: Vec<(u32, u64, Reply)>,
}

impl RangeExport {
    /// Exact length of [`RangeExport::encode`]'s output.
    pub fn size_bytes(&self) -> usize {
        let mut n = 8 + 8 + 8 + 4 + 4 + 4; // version, lo, hi, groups, coord
        n += 8; // record count
        for (_, v) in &self.records {
            n += 8 + 4 + v.len();
        }
        n += 8; // session count
        for (_, _, reply) in &self.sessions {
            n += 4 + 8 + 1;
            if let Reply::Value(Some(v)) = reply {
                n += 4 + v.len();
            }
        }
        n
    }

    /// Serializes for chunked transfer (deterministic little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.lo.to_le_bytes());
        out.extend_from_slice(&self.hi.to_le_bytes());
        out.extend_from_slice(&self.from_group.to_le_bytes());
        out.extend_from_slice(&self.to_group.to_le_bytes());
        out.extend_from_slice(&self.coord.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for (k, v) in &self.records {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        out.extend_from_slice(&(self.sessions.len() as u64).to_le_bytes());
        for (c, seq, reply) in &self.sessions {
            out.extend_from_slice(&c.to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
            match reply {
                Reply::Done => out.push(0),
                Reply::Value(None) => out.push(1),
                Reply::Value(Some(v)) => {
                    out.push(2);
                    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    out.extend_from_slice(v);
                }
                // Redirects never enter a session table.
                Reply::WrongGroup { .. } => unreachable!("redirects are never session replies"),
            }
        }
        debug_assert_eq!(out.len(), self.size_bytes(), "size model matches encoding");
        out
    }

    /// Parses an encoded export; `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<RangeExport> {
        let mut r = Reader::new(bytes);
        let version = r.u64()?;
        let lo = r.u64()?;
        let hi = r.u64()?;
        let from_group = r.u32()?;
        let to_group = r.u32()?;
        let coord = r.u32()?;
        let nrec = r.u64()?;
        let mut records = Vec::new();
        for _ in 0..nrec {
            let k = r.u64()?;
            let len = r.u32()? as usize;
            records.push((k, r.take(len)?.to_vec()));
        }
        let nsess = r.u64()?;
        let mut sessions = Vec::new();
        for _ in 0..nsess {
            let c = r.u32()?;
            let seq = r.u64()?;
            let reply = match r.u8()? {
                0 => Reply::Done,
                1 => Reply::Value(None),
                2 => {
                    let len = r.u32()? as usize;
                    Reply::Value(Some(r.take(len)?.to_vec()))
                }
                _ => return None,
            };
            sessions.push((c, seq, reply));
        }
        if !r.done() {
            return None;
        }
        Some(RangeExport {
            version,
            lo,
            hi,
            from_group,
            to_group,
            coord,
            records,
            sessions,
        })
    }
}

/// Merges exported sessions into a destination session table: per
/// client, the higher sequence number (with its cached reply) wins.
pub fn merge_sessions(into: &mut BTreeMap<u32, (u64, Reply)>, from: &[(u32, u64, Reply)]) {
    for (c, seq, reply) in from {
        match into.get(c) {
            Some((have, _)) if have >= seq => {}
            _ => {
                into.insert(*c, (*seq, reply.clone()));
            }
        }
    }
}

/// One scripted migration: at virtual time `at`, move `[lo, hi)` to
/// `to_group` (the source group is whatever the map says owns `lo` at
/// trigger time).
#[derive(Debug, Clone)]
pub struct MigrationSpec {
    /// Virtual time the coordinator starts the migration.
    pub at: SimDuration,
    /// First key of the moved range.
    pub lo: Key,
    /// One past the last key.
    pub hi: Key,
    /// The destination group.
    pub to_group: u32,
}

/// Command-id scheme for migration commands. The coordinator is an
/// ordinary logical client so replies route normally, but migration
/// commands are *not* session-deduplicated: with concurrent disjoint
/// migrations they can commit out of sequence order at a shared source
/// or destination group, so exactly-once apply comes from the
/// per-version idempotency guards in the state machine (`has_frozen`,
/// `has_absorbed`, the frozen range's `released` flag) instead. The
/// `version * 4 + phase` encoding remains so the coordinator can
/// recover `(version, phase)` from a reply id and dispatch it to the
/// right in-flight migration.
pub fn freeze_cmd_id(coord: u32, version: RouterVersion) -> CmdId {
    CmdId {
        client: coord,
        seq: version * 4,
    }
}

/// Id of the `InstallRange` command for a migration (constructed at the
/// destination's chunk receiver; deterministic so retries dedup).
pub fn install_cmd_id(coord: u32, version: RouterVersion) -> CmdId {
    CmdId {
        client: coord,
        seq: version * 4 + 1,
    }
}

/// Id of the `ReleaseRange` command for a migration.
pub fn release_cmd_id(coord: u32, version: RouterVersion) -> CmdId {
    CmdId {
        client: coord,
        seq: version * 4 + 2,
    }
}

/// Recovers the migration version a coordinator command id encodes
/// (the inverse of the `version * 4 + phase` scheme above).
pub fn version_of_cmd(id: CmdId) -> RouterVersion {
    id.seq / 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn export() -> RangeExport {
        RangeExport {
            version: 3,
            lo: 100,
            hi: 200,
            from_group: 0,
            to_group: 1,
            coord: 9,
            records: vec![(100, vec![1; 16]), (150, vec![2; 32])],
            sessions: vec![
                (1, 5, Reply::Done),
                (2, 7, Reply::Value(Some(vec![3; 8]))),
                (3, 1, Reply::Value(None)),
            ],
        }
    }

    #[test]
    fn range_export_round_trips() {
        let e = export();
        let bytes = e.encode();
        assert_eq!(bytes.len(), e.size_bytes(), "size model is exact");
        assert_eq!(RangeExport::decode(&bytes), Some(e));
    }

    #[test]
    fn range_export_rejects_malformed() {
        let bytes = export().encode();
        assert!(RangeExport::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(RangeExport::decode(&longer).is_none());
        assert!(RangeExport::decode(&[]).is_none());
    }

    #[test]
    fn shard_state_round_trips_through_bytes() {
        let state = ShardState {
            version: 2,
            frozen: vec![FrozenRange {
                lo: 10,
                hi: 20,
                to_group: 1,
                version: 1,
                coord: 4,
                released: true,
            }],
            absorbed: vec![AbsorbedRange {
                lo: 50,
                hi: 60,
                from_group: 1,
                version: 2,
            }],
        };
        let mut bytes = Vec::new();
        state.encode_into(&mut bytes);
        assert_eq!(bytes.len(), state.encoded_len());
        let mut r = Reader::new(&bytes);
        assert_eq!(ShardState::decode(&mut r), Some(state));
        assert!(r.done());
    }

    #[test]
    fn override_latest_version_wins() {
        // Range moved away at v1, a sub-range moved back at v2.
        let state = ShardState {
            version: 2,
            frozen: vec![FrozenRange {
                lo: 10,
                hi: 30,
                to_group: 1,
                version: 1,
                coord: 0,
                released: false,
            }],
            absorbed: vec![AbsorbedRange {
                lo: 10,
                hi: 20,
                from_group: 1,
                version: 2,
            }],
        };
        assert_eq!(state.override_for(15), Some(KeyOwnership::Accept(2)));
        assert_eq!(state.override_for(25), Some(KeyOwnership::Redirect(1, 1)));
        assert_eq!(state.override_for(5), None);
    }

    #[test]
    fn session_merge_keeps_higher_seq() {
        let mut into = BTreeMap::new();
        into.insert(1, (5u64, Reply::Done));
        merge_sessions(
            &mut into,
            &[
                (1, 3, Reply::Value(None)), // older: ignored
                (2, 9, Reply::Done),        // new client: adopted
            ],
        );
        assert_eq!(into.get(&1), Some(&(5, Reply::Done)));
        assert_eq!(into.get(&2), Some(&(9, Reply::Done)));
    }

    #[test]
    fn cmd_id_scheme_is_monotone_per_phase_order() {
        let v = 2;
        assert!(freeze_cmd_id(1, v).seq < install_cmd_id(1, v).seq);
        assert!(install_cmd_id(1, v).seq < release_cmd_id(1, v).seq);
        assert!(release_cmd_id(1, v).seq < freeze_cmd_id(1, v + 1).seq);
    }
}
