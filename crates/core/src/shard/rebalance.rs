//! The rebalance coordinator: drives range migrations through the
//! groups' logs and publishes the bumped partition map.
//!
//! The coordinator is deliberately an ordinary **client** of both
//! groups: every step it takes is a replicated command ([`Op::FreezeRange`]
//! at the source, the destination's `InstallRange` response, and
//! [`Op::ReleaseRange`] back at the source), so a crashed leader in
//! either group is survived by plain client-style retransmission to
//! another replica. Exactly-once apply of its commands comes from the
//! state machine's per-version idempotency guards (see
//! [`crate::shard::migration`]), not from session dedup — which is what
//! lets the coordinator run **disjoint-range migrations concurrently**:
//! each in-flight migration is an independent [`Flight`] state machine,
//! and only three orderings are enforced globally:
//!
//! 1. a migration starts only when its range is disjoint from every
//!    in-flight range (same-range moves still serialize),
//! 2. versions are assigned in start order against the `planned` map,
//!    so the freeze's source group is always well-defined, and
//! 3. router *publishes* happen strictly in version order
//!    ([`ShardRouter::apply_move`] drops out-of-order versions
//!    forever) — an install that finishes early waits in
//!    `pending_moves` until the gap below it fills.
//!
//! The only non-client machinery is in the replicas themselves — the
//! source leader's export pump and the destination's chunk absorption
//! (see [`crate::shard::migration`] and the engine hooks).

use std::collections::BTreeMap;

use paxraft_sim::impl_actor_any;
use paxraft_sim::sim::{Actor, ActorId, Ctx};
use paxraft_sim::time::{SimDuration, SimTime};

use crate::kv::{CmdId, Command, Key, Op, Reply};
use crate::msg::{ClientMsg, Msg};
use crate::shard::migration::{
    freeze_cmd_id, install_cmd_id, release_cmd_id, version_of_cmd, MigrationSpec, RouterVersion,
};
use crate::shard::ShardRouter;

/// Scripted rebalancing for a sharded cluster
/// ([`crate::harness::ClusterBuilder::rebalance_config`]). Empty by
/// default: no coordinator actor is created and the cluster is
/// bit-for-bit the non-rebalancing cluster.
#[derive(Debug, Clone, Default)]
pub struct RebalanceConfig {
    /// Migrations to run. Entries whose ranges overlap run serialized
    /// in plan order; disjoint due entries run concurrently up to
    /// [`RebalanceConfig::concurrency`].
    pub migrations: Vec<MigrationSpec>,
    /// Maximum simultaneously in-flight migrations; `0` means the
    /// default of 4.
    pub max_concurrent: usize,
}

impl RebalanceConfig {
    /// Whether any migration is scripted.
    pub fn enabled(&self) -> bool {
        !self.migrations.is_empty()
    }

    /// This configuration plus one scripted migration.
    pub fn migrate(mut self, spec: MigrationSpec) -> Self {
        self.migrations.push(spec);
        self
    }

    /// The resolved in-flight cap.
    pub fn concurrency(&self) -> usize {
        if self.max_concurrent == 0 {
            4
        } else {
            self.max_concurrent
        }
    }
}

/// Which step a migration flight is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// `FreezeRange` sent to the source group, awaiting its response.
    Freeze,
    /// Freeze committed; awaiting the destination's `InstallRange`
    /// response (the transfer itself is replica-driven).
    Install,
    /// `ReleaseRange` sent to the source group, awaiting its response.
    Release,
}

/// The command a flight is currently retrying.
#[derive(Debug, Clone)]
struct Outstanding {
    cmd: Command,
    /// The group the command addresses.
    group: u32,
    /// Rotation index into the group's replicas (a crashed or
    /// partitioned replica is routed around on retry).
    rotation: usize,
    sent: SimTime,
}

/// One in-flight migration's state machine.
#[derive(Debug, Clone)]
struct Flight {
    version: RouterVersion,
    lo: Key,
    hi: Key,
    to_group: u32,
    phase: Phase,
    outstanding: Outstanding,
}

/// The coordinator actor. One per sharded cluster with a non-empty
/// [`RebalanceConfig`] or an enabled
/// [`crate::shard::AutoBalanceConfig`]; lives at a client actor id so
/// replica responses route to it like to any client.
pub struct RebalanceCoordinator {
    client_id: u32,
    /// Published ownership: moves applied strictly in version order as
    /// installs complete; this is what `RouterUpdate` ships to clients.
    router: ShardRouter,
    /// Planned ownership: every *started* migration's move applied at
    /// start time. Source-group resolution and the auto-balance policy
    /// read this map — it already accounts for in-flight hand-offs.
    planned: ShardRouter,
    plan: Vec<MigrationSpec>,
    /// Parallel to `plan`: whether the entry has been started.
    started: Vec<bool>,
    /// Next version to assign (migrations are versioned in start order).
    next_version: RouterVersion,
    /// `targets[g]` are group `g`'s replica actors (node order).
    targets: Vec<Vec<ActorId>>,
    /// Workload clients to publish router updates to.
    clients: Vec<ActorId>,
    flights: Vec<Flight>,
    /// Installs whose publish waits for a lower version to install
    /// first: `version → (lo, hi, to_group)`.
    pending_moves: BTreeMap<RouterVersion, (Key, Key, u32)>,
    max_concurrent: usize,
    /// Versions of completed (released) migrations, in completion order.
    pub completed: Vec<RouterVersion>,
    /// Versions whose install committed, in commit order (out-of-order
    /// under concurrency); superset of `completed`.
    pub installed: Vec<RouterVersion>,
    /// Versions in publish order — strictly increasing by construction;
    /// the router-version monotonicity pin.
    pub published: Vec<RouterVersion>,
    /// High-water mark of simultaneously in-flight migrations.
    pub peak_inflight: usize,
}

impl RebalanceCoordinator {
    /// A coordinator for the given plan over a built cluster's actors.
    pub fn new(
        client_id: u32,
        router: ShardRouter,
        plan: Vec<MigrationSpec>,
        targets: Vec<Vec<ActorId>>,
        clients: Vec<ActorId>,
        max_concurrent: usize,
    ) -> Self {
        let started = vec![false; plan.len()];
        RebalanceCoordinator {
            client_id,
            planned: router.clone(),
            router,
            plan,
            started,
            next_version: 1,
            targets,
            clients,
            flights: Vec::new(),
            pending_moves: BTreeMap::new(),
            max_concurrent: max_concurrent.max(1),
            completed: Vec::new(),
            installed: Vec::new(),
            published: Vec::new(),
            peak_inflight: 0,
        }
    }

    /// The coordinator's current **published** partition map.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The planned map: published moves plus every in-flight move,
    /// applied at start time.
    pub fn planned_router(&self) -> &ShardRouter {
        &self.planned
    }

    /// Whether every planned migration has completed.
    pub fn done(&self) -> bool {
        self.completed.len() == self.plan.len()
    }

    /// Number of migrations currently in flight.
    pub fn inflight(&self) -> usize {
        self.flights.len()
    }

    /// The key ranges currently migrating.
    pub fn inflight_ranges(&self) -> Vec<(Key, Key)> {
        self.flights.iter().map(|f| (f.lo, f.hi)).collect()
    }

    /// Number of migrations started so far (the auto-balance livelock
    /// bound counts these, not completions).
    pub fn migrations_started(&self) -> usize {
        self.started.iter().filter(|s| **s).count()
    }

    /// Appends a migration decided at runtime (the auto-balance
    /// policy). It starts at the coordinator's next tick, subject to
    /// the same disjointness and concurrency gates as scripted entries.
    pub fn enqueue(&mut self, spec: MigrationSpec) {
        self.plan.push(spec);
        self.started.push(false);
    }

    fn send_flight(&mut self, ctx: &mut Ctx<Msg>, i: usize) {
        let f = &mut self.flights[i];
        let replicas = &self.targets[f.outstanding.group as usize];
        let target = replicas[f.outstanding.rotation % replicas.len()];
        f.outstanding.sent = ctx.now();
        let cmd = f.outstanding.cmd.clone();
        ctx.send(target, Msg::Client(ClientMsg::Request { cmd }));
    }

    /// Starts every due plan entry whose range is disjoint from all
    /// in-flight ranges, up to the concurrency cap. Entries overlapping
    /// an in-flight range wait for it to finish — same-range moves
    /// (merge then split back) serialize exactly as before.
    fn start_due(&mut self, ctx: &mut Ctx<Msg>, now: SimTime) {
        for idx in 0..self.plan.len() {
            if self.flights.len() >= self.max_concurrent {
                break;
            }
            if self.started[idx] {
                continue;
            }
            let spec = self.plan[idx].clone();
            if now.as_nanos() < spec.at.as_nanos() {
                continue;
            }
            let overlaps = self
                .flights
                .iter()
                .any(|f| f.lo < spec.hi && spec.lo < f.hi);
            if overlaps {
                continue;
            }
            assert!(
                (spec.to_group as usize) < self.targets.len(),
                "unknown destination group"
            );
            let from_group = self.planned.group_of(spec.lo);
            debug_assert_eq!(
                from_group,
                self.planned.group_of(spec.hi - 1),
                "a migration's range must have a single planned owner"
            );
            assert_ne!(from_group, spec.to_group, "range already at destination");
            self.started[idx] = true;
            let version = self.next_version;
            self.next_version += 1;
            // Record the move in the planned map immediately: versions
            // are assigned in start order, so this apply never hits the
            // stale-version guard.
            self.planned
                .apply_move(spec.lo, spec.hi, spec.to_group, version);
            let cmd = Command {
                id: freeze_cmd_id(self.client_id, version),
                op: Op::FreezeRange {
                    lo: spec.lo,
                    hi: spec.hi,
                    to_group: spec.to_group,
                    version,
                    coord: self.client_id,
                },
            };
            self.flights.push(Flight {
                version,
                lo: spec.lo,
                hi: spec.hi,
                to_group: spec.to_group,
                phase: Phase::Freeze,
                outstanding: Outstanding {
                    cmd,
                    group: from_group,
                    rotation: 0,
                    sent: now,
                },
            });
            self.peak_inflight = self.peak_inflight.max(self.flights.len());
            self.send_flight(ctx, self.flights.len() - 1);
        }
    }

    /// Applies and broadcasts every pending move whose version is next
    /// in line. Publishing in version order is what keeps every
    /// client's `apply_move` applicable — a skipped version would be
    /// dropped by the stale-version guard and lost forever.
    fn publish_ready(&mut self, ctx: &mut Ctx<Msg>) {
        while let Some((&version, &(lo, hi, to_group))) = self.pending_moves.first_key_value() {
            if version != self.router.version() + 1 {
                break;
            }
            self.pending_moves.remove(&version);
            self.router.apply_move(lo, hi, to_group, version);
            self.published.push(version);
            for &c in &self.clients.clone() {
                ctx.send(
                    c,
                    Msg::Client(ClientMsg::RouterUpdate {
                        router: self.router.clone(),
                    }),
                );
            }
        }
    }

    fn on_response(&mut self, ctx: &mut Ctx<Msg>, id: CmdId, reply: Reply) {
        if id.client != self.client_id {
            return;
        }
        debug_assert!(
            !matches!(reply, Reply::WrongGroup { .. }),
            "migration commands are keyless and never misrouted"
        );
        let version = version_of_cmd(id);
        let Some(i) = self.flights.iter().position(|f| f.version == version) else {
            return; // late duplicate of a finished migration
        };
        let flight = self.flights[i].clone();
        match flight.phase {
            Phase::Freeze if id == freeze_cmd_id(self.client_id, version) => {
                // The cutover is committed; the source leader's export
                // pump takes it from here. Keep the freeze command as
                // the retried probe: re-freezing is a version-dedup
                // no-op that forces a fresh export, which makes the
                // destination re-announce a lost install response.
                self.flights[i].phase = Phase::Install;
                self.flights[i].outstanding.sent = ctx.now();
            }
            Phase::Install if id == install_cmd_id(self.client_id, version) => {
                // The destination group committed the range: queue the
                // map publish (in version order), then release the
                // source's copy.
                self.installed.push(version);
                self.pending_moves
                    .insert(version, (flight.lo, flight.hi, flight.to_group));
                self.publish_ready(ctx);
                let src = flight.outstanding.group;
                self.flights[i].phase = Phase::Release;
                self.flights[i].outstanding = Outstanding {
                    cmd: Command {
                        id: release_cmd_id(self.client_id, version),
                        op: Op::ReleaseRange { version },
                    },
                    group: src,
                    rotation: 0,
                    sent: ctx.now(),
                };
                self.send_flight(ctx, i);
            }
            Phase::Release if id == release_cmd_id(self.client_id, version) => {
                self.completed.push(version);
                self.flights.remove(i);
            }
            _ => {}
        }
    }
}

impl Actor<Msg> for RebalanceCoordinator {
    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        ctx.set_timer(SimDuration::from_millis(50), 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, _from: ActorId, msg: Msg) {
        if let Msg::Client(ClientMsg::Response { id, reply }) = msg {
            self.on_response(ctx, id, reply);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, _token: u64) {
        let now = ctx.now();
        self.start_due(ctx, now);
        // Client-style retransmission per flight: rotate to another
        // replica of the addressed group (the previous one may have
        // crashed; forwarding finds the leader from any of them). The
        // install wait retries the freeze probe on a longer fuse — the
        // transfer legitimately takes a while.
        for i in 0..self.flights.len() {
            let fuse = match self.flights[i].phase {
                Phase::Install => SimDuration::from_millis(2_500),
                _ => SimDuration::from_millis(1_000),
            };
            let sent = self.flights[i].outstanding.sent;
            if now.since(sent.min(now)) >= fuse {
                self.flights[i].outstanding.rotation += 1;
                self.send_flight(ctx, i);
            }
        }
        ctx.set_timer(SimDuration::from_millis(50), 1);
    }

    impl_actor_any!();
}

#[cfg(test)]
mod tests {
    use paxraft_sim::time::SimDuration;
    use paxraft_workload::generator::WorkloadConfig;
    use paxraft_workload::linearize::check_history;

    use crate::harness::{replica_kv, Cluster, ProtocolKind};
    use crate::kv::{Key, Op, Reply};
    use crate::msg::{ClientMsg, Msg};
    use crate::shard::{MigrationSpec, RebalanceConfig, ShardConfig, ShardedCluster};
    use crate::types::NodeId;

    /// The six protocols the migration safety suite must cover — the
    /// two lease modes exercise the freeze-vs-local-read window (a
    /// lease holder must not serve a range that is already migrating).
    const PROTOCOLS: [ProtocolKind; 6] = [
        ProtocolKind::Raft,
        ProtocolKind::RaftStar,
        ProtocolKind::MultiPaxos,
        ProtocolKind::RaftStarMencius,
        ProtocolKind::RaftStarPql,
        ProtocolKind::LeaderLease,
    ];

    /// Two groups, one scripted migration of the upper half of group
    /// 0's range to group 1 at `at`. The tiny chunk size forces the
    /// export through a genuinely multi-chunk transfer.
    fn build(p: ProtocolKind, seed: u64, at: SimDuration) -> (ShardedCluster, Key, Key) {
        let router = crate::shard::ShardRouter::new(WorkloadConfig::default().records, 2);
        let (lo0, hi0) = router.range(0);
        let mid = (lo0 + hi0) / 2;
        let cluster = Cluster::builder(p)
            .shard_config(ShardConfig::groups(2))
            .snapshot_config(crate::snapshot::SnapshotConfig {
                chunk_bytes: 128,
                ..crate::snapshot::SnapshotConfig::default()
            })
            .rebalance_config(RebalanceConfig::default().migrate(MigrationSpec {
                at,
                lo: mid,
                hi: hi0,
                to_group: 1,
            }))
            .seed(seed)
            .build_sharded();
        (cluster, mid, hi0)
    }

    /// Writes one marker key on each side of the future split boundary
    /// and returns them.
    fn seed_keys(cluster: &mut ShardedCluster, mid: Key) -> (Key, Key) {
        let staying = mid - 1;
        let moving = mid + 1;
        for key in [staying, moving] {
            let r = cluster
                .submit_and_wait(Op::Put {
                    key,
                    value: vec![7; 16],
                })
                .expect("pre-migration put");
            assert_eq!(r, Reply::Done);
        }
        (staying, moving)
    }

    /// The post-migration invariant: the moved key is served (with its
    /// value) by the new owner, writes to it commit, and **no group's
    /// replicas hold a key the map says belongs elsewhere** — nothing
    /// lost, nothing duplicated, nothing applied in two groups.
    fn assert_migrated(
        cluster: &mut ShardedCluster,
        p: ProtocolKind,
        staying: Key,
        moving: Key,
        _mid: Key,
        _hi: Key,
    ) {
        let name = p.name();
        let router = cluster.current_router();
        assert_eq!(router.version(), 1, "{name}: map version bumped");
        assert_eq!(router.group_of(moving), 1, "{name}: moved key rerouted");
        assert_eq!(router.group_of(staying), 0, "{name}: boundary untouched");
        // Values survived the move and both sides still serve.
        for key in [staying, moving] {
            let r = cluster
                .submit_and_wait(Op::Get { key })
                .unwrap_or_else(|e| panic!("{name}: post-migration get({key}): {e}"));
            assert!(
                matches!(r, Reply::Value(Some(_))),
                "{name}: key {key} kept its value across the migration ({r:?})"
            );
        }
        let r = cluster
            .submit_and_wait(Op::Put {
                key: moving,
                value: vec![9; 16],
            })
            .expect("post-migration put to the moved range");
        assert_eq!(r, Reply::Done, "{name}: moved range accepts writes");
        // Let the final apply spread to every replica.
        cluster.sim.run_for(SimDuration::from_secs(2));
        // Exclusivity: live group-0 replicas dropped the moved range,
        // live group-1 replicas hold it.
        for node in 0..5u32 {
            for g in 0..2usize {
                let actor = cluster.replica(g, NodeId(node));
                if cluster.sim.is_crashed(actor) {
                    continue;
                }
                let kv = replica_kv(&cluster.sim, p, actor);
                let snap = kv.snapshot();
                for (k, _) in snap.table.iter() {
                    let owner = router.group_of(*k);
                    assert_eq!(
                        owner, g as u32,
                        "{name}: key {k} present in group {g} but owned by {owner} \
                         (applied in two groups or not released)"
                    );
                }
                if g == 1 {
                    assert!(
                        snap.table.contains_key(&moving),
                        "{name}: group 1 node {node} holds the moved key"
                    );
                }
            }
        }
    }

    #[test]
    fn scripted_range_move_is_exactly_once_for_every_protocol() {
        for p in PROTOCOLS {
            let (mut cluster, mid, hi) = build(p, 13, SimDuration::from_secs(4));
            cluster.elect_leaders();
            let (staying, moving) = seed_keys(&mut cluster, mid);
            cluster.run_until_rebalanced(SimDuration::from_secs(60));
            assert_eq!(cluster.migrations_completed(), vec![1]);
            assert_migrated(&mut cluster, p, staying, moving, mid, hi);
            // The transfer actually went over the chunked path.
            let stats = cluster.per_group_stats();
            assert!(
                stats[0].range_exports >= 1,
                "{}: source exported ({:?})",
                p.name(),
                stats[0].range_exports
            );
            assert!(
                stats[1].range_installs >= 1,
                "{}: destination installed on every live replica",
                p.name()
            );
        }
    }

    /// The model checker's retry-across-the-move schedule
    /// (`specs::shardkv` in `paxraft-spec`: apply at the source, freeze,
    /// export, install, then the client retries the same session
    /// sequence number against the new owner), replayed against the
    /// engine. The retransmitted command carries its original `CmdId`,
    /// so the migrated session table must answer it from cache — the
    /// destination replicas' applied-op counts must not move.
    #[test]
    fn model_checked_retry_across_the_move_is_deduplicated() {
        for p in PROTOCOLS {
            let name = p.name();
            let (mut cluster, mid, hi) = build(p, 29, SimDuration::from_secs(4));
            cluster.elect_leaders();
            let (staying, moving) = seed_keys(&mut cluster, mid);
            // The moving-key put is the probe's last pre-migration
            // command; keep it for retransmission after the move.
            let dup = cluster
                .last_probe_command()
                .expect("seed_keys submitted probes");
            cluster.run_until_rebalanced(SimDuration::from_secs(60));
            assert_eq!(cluster.migrations_completed(), vec![1], "{name}");
            // Let every group-1 replica finish installing the range.
            cluster.sim.run_for(SimDuration::from_secs(2));
            let applied_on_dest = |cluster: &ShardedCluster| -> Vec<(u32, u64)> {
                (0..5u32)
                    .filter_map(|node| {
                        let actor = cluster.replica(1, NodeId(node));
                        if cluster.sim.is_crashed(actor) {
                            None
                        } else {
                            Some((node, replica_kv(&cluster.sim, p, actor).applied_ops()))
                        }
                    })
                    .collect()
            };
            let before = applied_on_dest(&cluster);
            // Re-inject the identical command at the new owner's
            // leader: a client retransmission that crossed the move.
            let target = cluster.replica(1, cluster.leaders()[1]);
            cluster.sim.send_external(
                target,
                Msg::Client(ClientMsg::Request { cmd: dup }),
                SimDuration::ZERO,
            );
            cluster.sim.run_for(SimDuration::from_secs(2));
            let after = applied_on_dest(&cluster);
            assert_eq!(
                before, after,
                "{name}: retransmitted command was re-applied after the move \
                 (session table did not migrate with the range)"
            );
            assert_migrated(&mut cluster, p, staying, moving, mid, hi);
        }
    }

    #[test]
    fn source_leader_crash_mid_export_does_not_lose_the_range() {
        for p in PROTOCOLS {
            let (mut cluster, mid, hi) = build(p, 17, SimDuration::from_secs(4));
            cluster.elect_leaders();
            let (staying, moving) = seed_keys(&mut cluster, mid);
            // Crash the source group's leader right around the freeze
            // commit / first export; a successor must pick the transfer
            // up from the replicated frozen state.
            let victim = cluster.replica(0, cluster.leaders()[0]);
            cluster
                .sim
                .crash_at(victim, paxraft_sim::time::SimTime::from_millis(4_150));
            cluster.run_until_rebalanced(SimDuration::from_secs(120));
            assert_migrated(&mut cluster, p, staying, moving, mid, hi);
        }
    }

    #[test]
    fn dest_leader_crash_before_install_recovers() {
        for p in PROTOCOLS {
            let (mut cluster, mid, hi) = build(p, 19, SimDuration::from_secs(4));
            cluster.elect_leaders();
            let (staying, moving) = seed_keys(&mut cluster, mid);
            // Crash the destination group's leader before the install
            // can commit; the export retries into the re-elected group.
            let victim = cluster.replica(1, cluster.leaders()[1]);
            cluster
                .sim
                .crash_at(victim, paxraft_sim::time::SimTime::from_millis(4_000));
            cluster.run_until_rebalanced(SimDuration::from_secs(120));
            assert_migrated(&mut cluster, p, staying, moving, mid, hi);
        }
    }

    #[test]
    fn chunk_loss_during_transfer_is_retried_to_completion() {
        for p in PROTOCOLS {
            let (mut cluster, mid, hi) = build(p, 23, SimDuration::from_secs(4));
            cluster.elect_leaders();
            let (staying, moving) = seed_keys(&mut cluster, mid);
            // 15% uniform loss across the whole migration window: the
            // reassembler drops gapped transfers and the export pump's
            // retry interval re-ships until the install is confirmed.
            cluster
                .sim
                .set_drop_rate_at(0.15, paxraft_sim::time::SimTime::from_millis(3_900));
            cluster.sim.run_for(SimDuration::from_secs(8));
            cluster
                .sim
                .set_drop_rate_at(0.0, cluster.sim.now() + SimDuration::from_millis(1));
            cluster.run_until_rebalanced(SimDuration::from_secs(180));
            assert_migrated(&mut cluster, p, staying, moving, mid, hi);
        }
    }

    /// A client fleet hammering the hot key while it migrates between
    /// groups: every operation completes, the per-key history stays
    /// linearizable across the hand-off, and the key ends up applied in
    /// exactly one group.
    #[test]
    fn clients_racing_a_version_bump_stay_linearizable() {
        for p in [ProtocolKind::Raft, ProtocolKind::MultiPaxos] {
            let workload = WorkloadConfig {
                read_fraction: 0.6,
                conflict_rate: 0.5,
                ..Default::default()
            };
            let mut cluster = Cluster::builder(p)
                .shard_config(ShardConfig::groups(2))
                .rebalance_config(RebalanceConfig::default().migrate(MigrationSpec {
                    // The hot-range move: key 0 changes groups mid-run.
                    at: SimDuration::from_secs(5),
                    lo: 0,
                    hi: 1,
                    to_group: 1,
                }))
                .clients_per_region(2)
                .workload(workload)
                .record_history_for(0)
                .seed(29)
                .build_sharded();
            cluster.elect_leaders();
            let report = cluster.run_measurement(
                SimDuration::from_secs(2),
                SimDuration::from_secs(6),
                SimDuration::from_secs(1),
            );
            cluster.run_until_rebalanced(SimDuration::from_secs(60));
            assert!(
                report.throughput_ops > 1.0,
                "{}: clients kept completing through the migration",
                p.name()
            );
            assert!(
                report.histories.len() > 20,
                "{}: enough contended hot-key ops recorded ({})",
                p.name(),
                report.histories.len()
            );
            check_history(&report.histories, 1 << 22).unwrap_or_else(|e| {
                panic!(
                    "{}: hot-key history linearizable across the migration: {e:?}",
                    p.name()
                )
            });
            // The hot key lives in exactly one group afterwards.
            cluster.sim.run_for(SimDuration::from_secs(2));
            for node in 0..5u32 {
                let g0 = replica_kv(&cluster.sim, p, cluster.replica(0, NodeId(node)));
                let g1 = replica_kv(&cluster.sim, p, cluster.replica(1, NodeId(node)));
                assert!(
                    !g0.snapshot().table.contains_key(&0),
                    "{}: group 0 node {node} released the hot key",
                    p.name()
                );
                assert!(
                    g1.snapshot().table.contains_key(&0),
                    "{}: group 1 node {node} serves the hot key",
                    p.name()
                );
            }
            // Some client observed a redirect or router update — the
            // race actually happened.
            let mut redirects = 0;
            let mut updates = 0;
            for &c in cluster.clients() {
                let wc = cluster.sim.actor::<crate::client::WorkloadClient>(c);
                redirects += wc.redirects + wc.stale_redirects;
                updates += wc.router_updates;
            }
            assert!(
                updates > 0,
                "{}: coordinator published the bumped map to clients",
                p.name()
            );
            let _ = redirects;
        }
    }

    /// The lease-read-vs-migration window: a lease holder must not
    /// serve a key from its local copy while an in-log `FreezeRange`
    /// covering it is unapplied — from the freeze on, writes to the
    /// range commit in the destination group without consulting this
    /// replica's lease, so the local copy goes stale the moment the
    /// freeze is proposed. Hammers the hot key through the hand-off
    /// under both ported lease modes and checks the full per-key
    /// history for linearizability.
    #[test]
    fn lease_local_reads_stay_linearizable_across_a_migration() {
        for p in [ProtocolKind::RaftStarPql, ProtocolKind::LeaderLease] {
            let workload = WorkloadConfig {
                read_fraction: 0.6,
                conflict_rate: 0.5,
                ..Default::default()
            };
            let mut cluster = Cluster::builder(p)
                .shard_config(ShardConfig::groups(2))
                .rebalance_config(RebalanceConfig::default().migrate(MigrationSpec {
                    at: SimDuration::from_secs(5),
                    lo: 0,
                    hi: 1,
                    to_group: 1,
                }))
                .clients_per_region(2)
                .workload(workload)
                .record_history_for(0)
                .seed(29)
                .build_sharded();
            cluster.elect_leaders();
            let report = cluster.run_measurement(
                SimDuration::from_secs(2),
                SimDuration::from_secs(6),
                SimDuration::from_secs(1),
            );
            cluster.run_until_rebalanced(SimDuration::from_secs(60));
            assert!(
                report.histories.len() > 20,
                "{}: enough contended hot-key ops recorded ({})",
                p.name(),
                report.histories.len()
            );
            check_history(&report.histories, 1 << 22).unwrap_or_else(|e| {
                panic!(
                    "{}: lease-local reads linearizable across the migration: {e:?}",
                    p.name()
                )
            });
            // The lease read path was actually exercised: some replica
            // served reads locally during the run.
            let local_reads: u64 = (0..2)
                .flat_map(|g| cluster.group_replicas(g).to_vec())
                .map(|r| {
                    cluster
                        .sim
                        .actor::<crate::raftstar::RaftStarReplica>(r)
                        .local_reads_served()
                })
                .sum();
            assert!(
                local_reads > 0,
                "{}: lease-local reads were served during the run",
                p.name()
            );
        }
    }

    /// Satellite conformance row: **two disjoint-range migrations race
    /// a source-leader crash** on all four base rule sets. Pins
    /// exactly-once apply (values survive, nothing served by two
    /// groups) and router-version monotonicity (publishes strictly
    /// increasing even when installs complete out of order), plus that
    /// the two flights genuinely overlapped in time.
    #[test]
    fn concurrent_disjoint_migrations_survive_source_leader_crash() {
        for p in [
            ProtocolKind::Raft,
            ProtocolKind::RaftStar,
            ProtocolKind::MultiPaxos,
            ProtocolKind::RaftStarMencius,
        ] {
            let name = p.name();
            let router = crate::shard::ShardRouter::new(WorkloadConfig::default().records, 2);
            let (lo0, hi0) = router.range(0);
            let quarter = lo0 + (hi0 - lo0) / 4;
            let mid = (lo0 + hi0) / 2;
            let at = SimDuration::from_secs(4);
            let mut cluster = Cluster::builder(p)
                .shard_config(ShardConfig::groups(2))
                .snapshot_config(crate::snapshot::SnapshotConfig {
                    chunk_bytes: 128,
                    ..crate::snapshot::SnapshotConfig::default()
                })
                .rebalance_config(
                    RebalanceConfig::default()
                        .migrate(MigrationSpec {
                            at,
                            lo: quarter,
                            hi: mid,
                            to_group: 1,
                        })
                        .migrate(MigrationSpec {
                            at,
                            lo: mid,
                            hi: hi0,
                            to_group: 1,
                        }),
                )
                .seed(37)
                .build_sharded();
            cluster.elect_leaders();
            // One marker key in each moving range and one that stays.
            let keys = [quarter - 1, quarter + 1, mid + 1];
            for key in keys {
                let r = cluster
                    .submit_and_wait(Op::Put {
                        key,
                        value: vec![7; 16],
                    })
                    .expect("pre-migration put");
                assert_eq!(r, Reply::Done, "{name}");
            }
            // Crash the shared source group's leader while both
            // transfers are in flight.
            let victim = cluster.replica(0, cluster.leaders()[0]);
            cluster
                .sim
                .crash_at(victim, paxraft_sim::time::SimTime::from_millis(4_150));
            cluster.run_until_rebalanced(SimDuration::from_secs(120));
            let coord = cluster.coordinator().expect("coordinator exists");
            let c = cluster
                .sim
                .actor::<crate::shard::RebalanceCoordinator>(coord);
            let mut completed = c.completed.clone();
            completed.sort_unstable();
            assert_eq!(completed, vec![1, 2], "{name}: both migrations completed");
            assert!(
                c.published.windows(2).all(|w| w[0] < w[1]),
                "{name}: publishes are version-monotone ({:?})",
                c.published
            );
            assert_eq!(c.published, vec![1, 2], "{name}: every version published");
            assert_eq!(
                c.peak_inflight, 2,
                "{name}: the disjoint migrations actually overlapped"
            );
            let router = cluster.current_router();
            assert_eq!(router.version(), 2, "{name}: map at final version");
            assert_eq!(router.group_of(quarter - 1), 0, "{name}");
            assert_eq!(router.group_of(quarter + 1), 1, "{name}");
            assert_eq!(router.group_of(mid + 1), 1, "{name}");
            // Values survived both moves; exclusivity holds everywhere.
            for key in keys {
                let r = cluster
                    .submit_and_wait(Op::Get { key })
                    .unwrap_or_else(|e| panic!("{name}: get({key}): {e}"));
                assert!(
                    matches!(r, Reply::Value(Some(_))),
                    "{name}: key {key} kept its value ({r:?})"
                );
            }
            cluster.sim.run_for(SimDuration::from_secs(2));
            for node in 0..5u32 {
                for g in 0..2usize {
                    let actor = cluster.replica(g, NodeId(node));
                    if cluster.sim.is_crashed(actor) {
                        continue;
                    }
                    let kv = replica_kv(&cluster.sim, p, actor);
                    for (k, _) in kv.snapshot().table.iter() {
                        let owner = router.group_of(*k);
                        assert_eq!(
                            owner, g as u32,
                            "{name}: key {k} in group {g} but owned by {owner}"
                        );
                    }
                }
            }
        }
    }

    /// Two concurrent migrations **into the same destination group**
    /// from different sources: the installs carry non-monotone
    /// coordinator sequence numbers, so this pins the version-keyed
    /// dedup (a session max-seq gate would swallow whichever install
    /// commits second).
    #[test]
    fn concurrent_migrations_into_one_destination_commit_exactly_once() {
        let p = ProtocolKind::Raft;
        let mut cluster = Cluster::builder(p)
            .shard_config(ShardConfig::groups(3))
            .rebalance_config(
                RebalanceConfig::default()
                    .migrate(MigrationSpec {
                        at: SimDuration::from_secs(4),
                        lo: 20_000,
                        hi: 30_000,
                        to_group: 2,
                    })
                    .migrate(MigrationSpec {
                        at: SimDuration::from_secs(4),
                        lo: 40_000,
                        hi: 50_000,
                        to_group: 2,
                    }),
            )
            .seed(41)
            .build_sharded();
        cluster.elect_leaders();
        for key in [25_000u64, 45_000] {
            let r = cluster
                .submit_and_wait(Op::Put {
                    key,
                    value: vec![3; 16],
                })
                .expect("pre-migration put");
            assert_eq!(r, Reply::Done);
        }
        cluster.run_until_rebalanced(SimDuration::from_secs(120));
        let coord = cluster.coordinator().expect("coordinator exists");
        let c = cluster
            .sim
            .actor::<crate::shard::RebalanceCoordinator>(coord);
        let mut completed = c.completed.clone();
        completed.sort_unstable();
        assert_eq!(completed, vec![1, 2]);
        assert_eq!(c.published, vec![1, 2], "publishes in version order");
        assert_eq!(c.peak_inflight, 2, "flights overlapped");
        let router = cluster.current_router();
        assert_eq!(router.group_of(25_000), 2);
        assert_eq!(router.group_of(45_000), 2);
        for key in [25_000u64, 45_000] {
            let r = cluster
                .submit_and_wait(Op::Get { key })
                .expect("post-migration get");
            assert!(matches!(r, Reply::Value(Some(_))), "key {key}: {r:?}");
        }
        cluster.sim.run_for(SimDuration::from_secs(2));
        for node in 0..5u32 {
            for g in 0..3usize {
                let actor = cluster.replica(g, NodeId(node));
                if cluster.sim.is_crashed(actor) {
                    continue;
                }
                let kv = replica_kv(&cluster.sim, p, actor);
                for (k, _) in kv.snapshot().table.iter() {
                    let owner = router.group_of(*k);
                    assert_eq!(owner, g as u32, "key {k} in group {g}, owner {owner}");
                }
            }
        }
    }

    /// A sharded run with an *empty* rebalance plan creates no
    /// coordinator actor and is bit-for-bit the plain sharded cluster —
    /// the "no migration, no behavior change" guarantee.
    #[test]
    fn empty_rebalance_plan_is_bit_for_bit_the_plain_sharded_cluster() {
        let fingerprint = |with_empty_config: bool| {
            let mut b = Cluster::builder(ProtocolKind::Raft)
                .shard_config(ShardConfig::groups(2))
                .clients_per_region(2)
                .seed(31);
            if with_empty_config {
                b = b.rebalance_config(RebalanceConfig::default());
            }
            let mut cluster = b.build_sharded();
            assert_eq!(cluster.coordinator(), None, "no coordinator actor");
            cluster.elect_leaders();
            let r = cluster.run_measurement(
                SimDuration::from_secs(2),
                SimDuration::from_secs(4),
                SimDuration::from_secs(1),
            );
            format!(
                "thr={:.6} lw={:?} fw={:?} pipe={:?} now={}",
                r.throughput_ops,
                r.leader_writes,
                r.follower_writes,
                r.pipeline,
                cluster.sim.now()
            )
        };
        assert_eq!(fingerprint(false), fingerprint(true));
    }
}
