//! Load-driven auto-rebalancing: the closed-loop placement policy.
//!
//! ROADMAP item 1's control plane. The policy turns the scripted
//! [`crate::shard::RebalanceCoordinator`] into a closed-loop controller:
//! it watches the live per-group telemetry the harness samples between
//! sim steps, estimates per-range load from the apply-path **load
//! sketch** (below), and enqueues migrations on the coordinator —
//! including concurrent migrations of disjoint ranges.
//!
//! ## The load sketch
//!
//! Per-range load cannot be exported as a `(range, count)` top-K list:
//! [`crate::telemetry::MetricSample`] names are `&'static str` and group
//! samples merge by summation across replicas, which would corrupt
//! positional top-K entries. Instead every sharded replica counts
//! proposer-side applies into [`SKETCH_BUCKETS`] **fixed key-space
//! buckets** (`load_b00`..`load_b31`), pure bookkeeping on the apply
//! path (no sends, no timers, no RNG — schedule-invariant). Summing the
//! cumulative counters across all groups counts each operation once, at
//! the group that served it; the policy differences consecutive samples
//! into per-bucket rates itself and reads the hot ranges straight off
//! the sketch. Splits and merges fall out of bucket-granular moves: a
//! sub-range move splits a segment, and [`ShardRouter::apply_move`]
//! coalesces adjacent same-owner segments back together.
//!
//! ## Why it cannot ping-pong
//!
//! Three guards make oscillation impossible rather than just unlikely:
//!
//! 1. **Band preservation** — a bucket moves from hottest group `s` to
//!    coolest group `d` only when its rate
//!    `x ≤ (r·load(s) − load(d)) / (1 + r)` for the hysteresis ratio
//!    `r`, i.e. exactly when `load(d) + x ≤ r · (load(s) − x)`: after
//!    the move the receiver exceeds the donor by at most the hysteresis
//!    band, so the reverse trigger cannot fire from the move itself. A
//!    single range carrying more than that is *correctly immovable* —
//!    swapping it would just relabel the hot group. A candidate must
//!    also carry at least [`MIN_WORTH_FRACTION`] of the load gap, so the
//!    policy never spends a migration window on noise-level ranges.
//! 2. **Hysteresis** — the imbalance must exceed
//!    [`AutoBalanceConfig::imbalance_ratio`] for
//!    [`AutoBalanceConfig::persist_ticks`] consecutive evaluations
//!    before the policy acts, so a transient spike (or the migration
//!    window's own throughput dip) does not trigger moves.
//! 3. **Cooldown and dwell** — after issuing moves the policy is quiet
//!    for [`AutoBalanceConfig::cooldown`], and a just-moved bucket is
//!    banned from moving again for [`AutoBalanceConfig::dwell`], so even
//!    an adversarial hotspot that jumps between groups faster than the
//!    control loop converges produces a bounded migration count.

use paxraft_sim::time::{SimDuration, SimTime};

use crate::kv::Key;
use crate::shard::ShardRouter;

/// Number of fixed key-space buckets in the apply-path load sketch.
pub const SKETCH_BUCKETS: usize = 32;

/// Fraction of the hottest-to-coolest load gap a candidate range must
/// carry for a migration to be worth its window — below this the move
/// barely dents the imbalance and the policy holds the range in place.
pub const MIN_WORTH_FRACTION: f64 = 0.1;

/// Static metric-sample names for the sketch buckets
/// (`&'static str` is required by [`crate::telemetry::MetricSample`]).
pub const SKETCH_NAMES: [&str; SKETCH_BUCKETS] = [
    "load_b00", "load_b01", "load_b02", "load_b03", "load_b04", "load_b05", "load_b06", "load_b07",
    "load_b08", "load_b09", "load_b10", "load_b11", "load_b12", "load_b13", "load_b14", "load_b15",
    "load_b16", "load_b17", "load_b18", "load_b19", "load_b20", "load_b21", "load_b22", "load_b23",
    "load_b24", "load_b25", "load_b26", "load_b27", "load_b28", "load_b29", "load_b30", "load_b31",
];

/// Key width of one sketch bucket for a `records`-key space.
pub fn bucket_width(records: u64) -> u64 {
    records.div_ceil(SKETCH_BUCKETS as u64).max(1)
}

/// The bucket a key counts into. Total sketch coverage is exact: every
/// key in `[0, records)` lands in exactly one bucket.
pub fn bucket_of(records: u64, key: Key) -> usize {
    ((key / bucket_width(records)) as usize).min(SKETCH_BUCKETS - 1)
}

/// The key range `[lo, hi)` bucket `b` covers (clamped to `records`;
/// empty for trailing buckets of a small key space).
pub fn bucket_range(records: u64, b: usize) -> (Key, Key) {
    let w = bucket_width(records);
    let lo = (b as u64) * w;
    let hi = ((b as u64 + 1) * w).min(records);
    (lo.min(records), hi)
}

/// Closed-loop auto-rebalancing for a sharded cluster
/// ([`crate::harness::ClusterBuilder::autobalance_config`]). Disabled by
/// default (`check_every == 0`): no controller runs, no coordinator
/// actor is created for it, and the cluster is bit-for-bit the plain
/// sharded cluster.
#[derive(Debug, Clone)]
pub struct AutoBalanceConfig {
    /// Decision cadence; [`SimDuration::ZERO`] disables the policy.
    /// Samples still feed the rate estimator between decisions.
    pub check_every: SimDuration,
    /// Hysteresis high-water: act only when the hottest group's load
    /// exceeds `imbalance_ratio ×` the coolest group's.
    pub imbalance_ratio: f64,
    /// Aggregate ops/s below which the policy holds off (an idle
    /// cluster has nothing worth moving).
    pub min_total_rate: f64,
    /// Consecutive over-threshold evaluations required before acting.
    pub persist_ticks: u32,
    /// Quiet period after issuing migrations.
    pub cooldown: SimDuration,
    /// Per-bucket re-move ban after a move.
    pub dwell: SimDuration,
    /// In-flight migration cap the policy respects (disjoint ranges run
    /// concurrently up to this).
    pub max_concurrent: usize,
    /// Maximum migrations issued per decision.
    pub max_per_tick: usize,
    /// EWMA smoothing factor for bucket rates (weight of the newest
    /// sample, in `(0, 1]`).
    pub ewma_alpha: f64,
}

impl Default for AutoBalanceConfig {
    fn default() -> Self {
        AutoBalanceConfig {
            check_every: SimDuration::ZERO,
            imbalance_ratio: 0.0,
            min_total_rate: 0.0,
            persist_ticks: 0,
            cooldown: SimDuration::ZERO,
            dwell: SimDuration::ZERO,
            max_concurrent: 0,
            max_per_tick: 0,
            ewma_alpha: 0.0,
        }
    }
}

impl AutoBalanceConfig {
    /// Whether the policy runs at all.
    pub fn enabled(&self) -> bool {
        self.check_every > SimDuration::ZERO
    }

    /// The tuned defaults: evaluate every 500 ms, act on a sustained
    /// 1.5× imbalance, at most two concurrent moves per decision, 2 s
    /// cooldown, 5 s per-bucket dwell. The smoothing (`ewma_alpha` 0.2
    /// at the 100 ms sampling cadence, three consecutive over-threshold
    /// evaluations) is sized for closed-loop traffic of ~100 ops/s,
    /// where a bucket sees ~1 op per sample and raw rates are nearly
    /// all Poisson noise — twitchier settings chase that noise into
    /// spurious reverse moves.
    pub fn standard() -> Self {
        AutoBalanceConfig {
            check_every: SimDuration::from_millis(500),
            imbalance_ratio: 1.5,
            min_total_rate: 50.0,
            persist_ticks: 3,
            cooldown: SimDuration::from_secs(2),
            dwell: SimDuration::from_secs(5),
            max_concurrent: 2,
            max_per_tick: 2,
            ewma_alpha: 0.2,
        }
    }
}

/// One migration the policy decided on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalanceDecision {
    /// First key of the range to move.
    pub lo: Key,
    /// One past the last key.
    pub hi: Key,
    /// The donating (hottest) group.
    pub from_group: u32,
    /// The receiving (coolest) group.
    pub to_group: u32,
}

/// The policy state machine. Lives harness-side (like the telemetry
/// sampler): the sharded cluster feeds it one [`observe`] call per
/// sampling tick, strictly between sim steps, and forwards its
/// decisions to the coordinator — deterministic by construction.
///
/// [`observe`]: AutoBalancePolicy::observe
#[derive(Debug)]
pub struct AutoBalancePolicy {
    cfg: AutoBalanceConfig,
    /// Last cumulative per-bucket counts (for differencing).
    last_counts: Vec<f64>,
    last_at: SimTime,
    /// Smoothed per-bucket rates (ops/s).
    ewma: Vec<f64>,
    next_eval: SimTime,
    hot_streak: u32,
    cooldown_until: SimTime,
    dwell_until: Vec<SimTime>,
    /// Every decision made, with its decision time — the fixed-seed
    /// determinism pin compares these across runs.
    pub decisions: Vec<(SimTime, BalanceDecision)>,
}

impl AutoBalancePolicy {
    /// A fresh policy.
    pub fn new(cfg: AutoBalanceConfig) -> Self {
        let next_eval = SimTime::ZERO + cfg.check_every;
        AutoBalancePolicy {
            cfg,
            last_counts: vec![0.0; SKETCH_BUCKETS],
            last_at: SimTime::ZERO,
            ewma: vec![0.0; SKETCH_BUCKETS],
            next_eval,
            hot_streak: 0,
            cooldown_until: SimTime::ZERO,
            dwell_until: vec![SimTime::ZERO; SKETCH_BUCKETS],
            decisions: Vec::new(),
        }
    }

    /// The configuration.
    pub fn cfg(&self) -> &AutoBalanceConfig {
        &self.cfg
    }

    /// Feeds one sampling tick and returns any migrations to issue.
    ///
    /// `bucket_counts` are the cluster-wide cumulative sketch counters
    /// (summed over every group's sample, so each op is counted once at
    /// the group that served it). `planned` is the coordinator's
    /// planned map — in-flight moves included, so load attribution and
    /// decisions never double-move a range that is already on its way.
    /// `inflight`/`inflight_ranges` describe migrations currently
    /// running.
    pub fn observe(
        &mut self,
        now: SimTime,
        bucket_counts: &[f64],
        planned: &ShardRouter,
        inflight: usize,
        inflight_ranges: &[(Key, Key)],
    ) -> Vec<BalanceDecision> {
        // Difference the cumulative counters into smoothed rates. A
        // negative delta (the counting proposer crashed) clamps to 0,
        // mirroring the registry's counter_rate.
        let dt = now.since(self.last_at.min(now)).as_secs_f64();
        if dt <= 0.0 {
            return Vec::new();
        }
        for b in 0..SKETCH_BUCKETS {
            let count = bucket_counts.get(b).copied().unwrap_or(0.0);
            let rate = ((count - self.last_counts[b]) / dt).max(0.0);
            self.ewma[b] = self.cfg.ewma_alpha * rate + (1.0 - self.cfg.ewma_alpha) * self.ewma[b];
            self.last_counts[b] = count;
        }
        self.last_at = now;
        if now < self.next_eval {
            return Vec::new();
        }
        while self.next_eval <= now {
            self.next_eval += self.cfg.check_every;
        }
        if now < self.cooldown_until {
            return Vec::new();
        }
        let mut loads = self.group_loads(planned);
        let total: f64 = loads.iter().sum();
        let (s, d) = hottest_coolest(&loads);
        if total < self.cfg.min_total_rate
            || loads[s] <= self.cfg.imbalance_ratio * loads[d] + f64::EPSILON
        {
            self.hot_streak = 0;
            return Vec::new();
        }
        self.hot_streak += 1;
        if self.hot_streak < self.cfg.persist_ticks {
            return Vec::new();
        }
        // Act: move the hottest movable buckets from the hottest to the
        // coolest group, re-deriving both after every pick so a single
        // decision cannot overshoot.
        let records = planned.records();
        let mut picked: Vec<BalanceDecision> = Vec::new();
        let budget = self
            .cfg
            .max_per_tick
            .min(self.cfg.max_concurrent.saturating_sub(inflight));
        for _ in 0..budget {
            let (s, d) = hottest_coolest(&loads);
            if loads[s] <= self.cfg.imbalance_ratio * loads[d] + f64::EPSILON {
                break;
            }
            // Band preservation (module docs): after moving rate `x`,
            // `loads[d] + x ≤ r·(loads[s] − x)` must still hold, so the
            // reverse trigger cannot fire. And the move must carry a
            // meaningful share of the gap to be worth its window.
            let r = self.cfg.imbalance_ratio.max(1.0);
            let headroom = (r * loads[s] - loads[d]) / (1.0 + r);
            let worth = MIN_WORTH_FRACTION * (loads[s] - loads[d]);
            let mut best: Option<(f64, usize, Key, Key)> = None;
            for (seg_lo, seg_hi, owner) in planned.segments() {
                if owner as usize != s {
                    continue;
                }
                for b in 0..SKETCH_BUCKETS {
                    let (b_lo, b_hi) = bucket_range(records, b);
                    let lo = b_lo.max(seg_lo);
                    let hi = b_hi.min(seg_hi);
                    if lo >= hi || now < self.dwell_until[b] {
                        continue;
                    }
                    // The candidate's rate, pro-rated when the segment
                    // clips the bucket.
                    let frac = (hi - lo) as f64 / (b_hi - b_lo).max(1) as f64;
                    let rate = self.ewma[b] * frac;
                    if rate <= 0.0 || rate < worth || rate > headroom {
                        continue;
                    }
                    let clashes = |ranges: &[(Key, Key)]| {
                        ranges.iter().any(|&(rlo, rhi)| rlo < hi && lo < rhi)
                    };
                    if clashes(inflight_ranges) || picked.iter().any(|p| p.lo < hi && lo < p.hi) {
                        continue;
                    }
                    if best.as_ref().is_none_or(|(r, ..)| rate > *r) {
                        best = Some((rate, b, lo, hi));
                    }
                }
            }
            let Some((rate, b, lo, hi)) = best else {
                break;
            };
            picked.push(BalanceDecision {
                lo,
                hi,
                from_group: s as u32,
                to_group: d as u32,
            });
            self.dwell_until[b] = now + self.cfg.dwell;
            loads[s] -= rate;
            loads[d] += rate;
        }
        if picked.is_empty() {
            return picked;
        }
        self.cooldown_until = now + self.cfg.cooldown;
        self.hot_streak = 0;
        for p in &picked {
            self.decisions.push((now, *p));
        }
        picked
    }

    /// Per-group load under `planned` ownership: each bucket's smoothed
    /// rate is attributed to the owning group(s), pro-rated where a
    /// segment boundary splits a bucket.
    fn group_loads(&self, planned: &ShardRouter) -> Vec<f64> {
        let records = planned.records();
        let mut loads = vec![0.0; planned.groups()];
        for (seg_lo, seg_hi, owner) in planned.segments() {
            for b in 0..SKETCH_BUCKETS {
                let (b_lo, b_hi) = bucket_range(records, b);
                let lo = b_lo.max(seg_lo);
                let hi = b_hi.min(seg_hi);
                if lo >= hi {
                    continue;
                }
                let frac = (hi - lo) as f64 / (b_hi - b_lo).max(1) as f64;
                loads[owner as usize] += self.ewma[b] * frac;
            }
        }
        loads
    }
}

/// Indices of the most- and least-loaded groups (ties break low).
fn hottest_coolest(loads: &[f64]) -> (usize, usize) {
    let mut s = 0;
    let mut d = 0;
    for (g, &l) in loads.iter().enumerate() {
        if l > loads[s] {
            s = g;
        }
        if l < loads[d] {
            d = g;
        }
    }
    (s, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORDS: u64 = 100_000;

    fn tick(
        policy: &mut AutoBalancePolicy,
        at_ms: u64,
        counts: &[f64],
        planned: &ShardRouter,
    ) -> Vec<BalanceDecision> {
        policy.observe(SimTime::from_millis(at_ms), counts, planned, 0, &[])
    }

    /// Cumulative counts growing at `rates[b]` ops/s, sampled at `t`.
    fn counts_at(rates: &[f64; SKETCH_BUCKETS], t_secs: f64) -> Vec<f64> {
        rates.iter().map(|r| r * t_secs).collect()
    }

    #[test]
    fn buckets_tile_the_keyspace_exactly() {
        for records in [100_000u64, 1_000, 97, 33] {
            let mut covered = 0u64;
            for b in 0..SKETCH_BUCKETS {
                let (lo, hi) = bucket_range(records, b);
                assert_eq!(lo, covered.min(records), "records={records} bucket {b}");
                assert!(hi >= lo);
                covered = hi;
                for k in [lo, hi.saturating_sub(1)] {
                    if k >= lo && k < hi {
                        assert_eq!(bucket_of(records, k), b, "records={records} key {k}");
                    }
                }
            }
            assert_eq!(covered, records, "records={records}: full coverage");
        }
    }

    #[test]
    fn default_config_is_disabled_standard_is_not() {
        assert!(!AutoBalanceConfig::default().enabled());
        assert!(AutoBalanceConfig::standard().enabled());
    }

    /// A sustained hot range on group 0 produces moves of the hottest
    /// buckets to group 1 — after the hysteresis streak, not before.
    #[test]
    fn sustained_imbalance_moves_hot_buckets_to_the_cool_group() {
        let planned = ShardRouter::new(RECORDS, 2);
        let mut policy = AutoBalancePolicy::new(AutoBalanceConfig::standard());
        // Buckets 2..6 hot (group 0 owns 0..16), background elsewhere.
        let mut rates = [10.0f64; SKETCH_BUCKETS];
        for b in 2..6 {
            rates[b] = 500.0;
        }
        let mut all = Vec::new();
        // 100 ms sampling; decisions every 500 ms; persist_ticks 2.
        for i in 1..=15u64 {
            let t = i * 100;
            let d = tick(&mut policy, t, &counts_at(&rates, t as f64 / 1e3), &planned);
            if !d.is_empty() {
                assert!(t >= 1_000, "hysteresis: no move before two evaluations");
            }
            all.extend(d);
        }
        assert!(!all.is_empty(), "policy acted on the sustained imbalance");
        for d in &all {
            assert_eq!(d.from_group, 0, "hot group donates");
            assert_eq!(d.to_group, 1, "cool group receives");
            assert_eq!(
                bucket_of(RECORDS, d.lo),
                bucket_of(RECORDS, d.hi - 1),
                "moves are bucket-granular"
            );
            let b = bucket_of(RECORDS, d.lo);
            assert!((2..6).contains(&b), "a hot bucket moved, got {b}");
        }
        assert!(all.len() <= 2, "at most max_per_tick moves per decision");
    }

    /// The band-preservation rule: a single bucket carrying more load
    /// than the headroom is never moved — swapping it would just
    /// relabel the hot group and ping-pong forever. And the noise-level
    /// background buckets stay put too (below [`MIN_WORTH_FRACTION`]).
    #[test]
    fn indivisible_hotspot_is_never_moved() {
        let planned = ShardRouter::new(RECORDS, 2);
        let mut policy = AutoBalancePolicy::new(AutoBalanceConfig::standard());
        let mut rates = [5.0f64; SKETCH_BUCKETS];
        rates[3] = 2_000.0; // one ultra-hot bucket on group 0
        for i in 1..=40u64 {
            let t = i * 100;
            let d = tick(&mut policy, t, &counts_at(&rates, t as f64 / 1e3), &planned);
            assert!(
                d.is_empty(),
                "an indivisible hotspot must not move (tick {i}: {d:?})"
            );
        }
    }

    /// After the policy balances the load, the reverse trigger never
    /// fires: re-observing the post-move world yields no decisions.
    #[test]
    fn balanced_state_is_a_fixed_point() {
        let mut planned = ShardRouter::new(RECORDS, 2);
        let mut policy = AutoBalancePolicy::new(AutoBalanceConfig::standard());
        let mut rates = [10.0f64; SKETCH_BUCKETS];
        for b in 2..6 {
            rates[b] = 500.0;
        }
        let mut version = 0;
        let mut moves = 0usize;
        for i in 1..=200u64 {
            let t = i * 100;
            let ds = tick(&mut policy, t, &counts_at(&rates, t as f64 / 1e3), &planned);
            for d in ds {
                moves += 1;
                version += 1;
                planned.apply_move(d.lo, d.hi, d.to_group, version);
            }
        }
        assert!(moves >= 2, "the imbalance was acted on ({moves} moves)");
        assert!(
            moves <= 4,
            "converged instead of ping-ponging ({moves} moves)"
        );
        // The final map must be (near) balanced and stable: a long
        // quiet tail with no further decisions.
        let loads = policy.group_loads(&planned);
        let (s, d) = hottest_coolest(&loads);
        assert!(
            loads[s] <= policy.cfg().imbalance_ratio * loads[d] + 1.0,
            "converged loads within the hysteresis band: {loads:?}"
        );
    }

    /// Cooldown: two eligible decision points inside one cooldown
    /// window produce only one batch of moves.
    #[test]
    fn cooldown_spaces_out_batches() {
        let planned = ShardRouter::new(RECORDS, 2);
        let mut policy = AutoBalancePolicy::new(AutoBalanceConfig::standard());
        let mut rates = [10.0f64; SKETCH_BUCKETS];
        for b in 2..10 {
            rates[b] = 400.0;
        }
        let mut batch_times = Vec::new();
        for i in 1..=100u64 {
            let t = i * 100;
            let d = tick(&mut policy, t, &counts_at(&rates, t as f64 / 1e3), &planned);
            if !d.is_empty() {
                batch_times.push(t);
            }
        }
        assert!(batch_times.len() >= 2, "several batches over 10 s");
        for w in batch_times.windows(2) {
            assert!(
                w[1] - w[0] >= 2_000,
                "cooldown of 2 s respected: {batch_times:?}"
            );
        }
    }

    /// In-flight ranges are never double-moved.
    #[test]
    fn inflight_ranges_are_excluded() {
        let planned = ShardRouter::new(RECORDS, 2);
        let mut policy = AutoBalancePolicy::new(AutoBalanceConfig::standard());
        let mut rates = [10.0f64; SKETCH_BUCKETS];
        rates[2] = 300.0;
        rates[3] = 290.0;
        let hot2 = bucket_range(RECORDS, 2);
        for i in 1..=20u64 {
            let t = i * 100;
            let ds = policy.observe(
                SimTime::from_millis(t),
                &counts_at(&rates, t as f64 / 1e3),
                &planned,
                1,
                &[hot2],
            );
            for d in &ds {
                assert!(
                    d.hi <= hot2.0 || d.lo >= hot2.1,
                    "decision {d:?} overlaps the in-flight range {hot2:?}"
                );
            }
        }
    }
}
