//! The key-range partition map shared by clients and replicas.

use crate::kv::{Key, Op};
use paxraft_workload::generator::{contiguous_split, WorkloadConfig};

/// A contiguous key-range partition of the record space over `groups`
/// replica groups.
///
/// The split mirrors [`WorkloadConfig::partition_range`]: key `0` (the
/// hot record) belongs to group `0`, keys `1..records` are divided into
/// `groups` contiguous ranges with the last group absorbing the
/// remainder. Routers are cheap to clone and compare, so every client
/// and every replica can carry one; two routers built from the same
/// `(records, groups)` agree everywhere, and a *stale* router (built for
/// a different group count) is exactly what the
/// [`crate::kv::Reply::WrongGroup`] redirect handles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    records: u64,
    /// `starts[g]` is the first key of group `g`'s range (group 0 also
    /// owns the hot key below `starts[0]`).
    starts: Vec<u64>,
}

impl ShardRouter {
    /// A router splitting `records` keys over `groups` groups.
    ///
    /// # Panics
    ///
    /// Panics when `groups` is zero or exceeds the non-hot key count.
    pub fn new(records: u64, groups: usize) -> Self {
        assert!(groups > 0, "at least one group");
        assert!(
            records > groups as u64,
            "records {records} must exceed groups {groups}"
        );
        // The generator's split arithmetic, so routing and key
        // generation can never drift apart.
        let starts = (0..groups)
            .map(|g| contiguous_split(records, groups, g).0)
            .collect();
        ShardRouter { records, starts }
    }

    /// A router matching a workload's key space.
    pub fn from_workload(w: &WorkloadConfig, groups: usize) -> Self {
        ShardRouter::new(w.records, groups)
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.starts.len()
    }

    /// The group owning `key`.
    pub fn group_of(&self, key: Key) -> u32 {
        // Hot key 0 lives in group 0; otherwise the last range whose
        // start is at or below the key.
        match self.starts.partition_point(|&s| s <= key) {
            0 => 0,
            g => (g - 1) as u32,
        }
    }

    /// Inclusive-exclusive key range of group `g` (the hot key rides in
    /// group 0 but is not part of any range).
    pub fn range(&self, g: usize) -> (u64, u64) {
        assert!(g < self.groups(), "group out of range");
        let end = self.starts.get(g + 1).copied().unwrap_or(self.records);
        (self.starts[g], end)
    }
}

/// One replica's view of the partition map: which group it serves and
/// how keys map to groups, used to answer misrouted commands.
#[derive(Debug, Clone)]
pub struct ShardMembership {
    /// The group this replica belongs to.
    pub group: u32,
    /// The partition map.
    pub router: ShardRouter,
}

impl ShardMembership {
    /// When `op`'s key belongs to another group, the owning group (the
    /// redirect target). Key-less operations (no-ops) are never
    /// misrouted.
    pub fn misrouted(&self, op: &Op) -> Option<u32> {
        let key = op.key()?;
        let owner = self.router.group_of(key);
        (owner != self.group).then_some(owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_group_owns_everything() {
        let r = ShardRouter::new(100_000, 1);
        assert_eq!(r.group_of(0), 0);
        assert_eq!(r.group_of(1), 0);
        assert_eq!(r.group_of(99_999), 0);
        assert_eq!(r.range(0), (1, 100_000));
    }

    #[test]
    fn ranges_are_contiguous_and_cover_the_keyspace() {
        for groups in [1usize, 2, 3, 4, 7] {
            let r = ShardRouter::new(100_000, groups);
            let mut expect = 1;
            for g in 0..groups {
                let (lo, hi) = r.range(g);
                assert_eq!(lo, expect, "{groups} groups: group {g} contiguous");
                assert!(hi > lo);
                expect = hi;
            }
            assert_eq!(expect, 100_000, "{groups} groups cover all keys");
        }
    }

    #[test]
    fn group_of_agrees_with_ranges() {
        let r = ShardRouter::new(1_000, 4);
        for g in 0..4 {
            let (lo, hi) = r.range(g);
            assert_eq!(r.group_of(lo), g as u32);
            assert_eq!(r.group_of(hi - 1), g as u32);
        }
        assert_eq!(r.group_of(0), 0, "hot key rides in group 0");
    }

    #[test]
    fn mirrors_workload_partition_arithmetic() {
        // With groups == partitions the router must reproduce the
        // generator's per-region split exactly.
        let w = WorkloadConfig::default();
        let r = ShardRouter::from_workload(&w, w.partitions);
        for p in 0..w.partitions {
            assert_eq!(r.range(p), w.partition_range(p), "partition {p}");
        }
    }

    #[test]
    fn membership_flags_only_foreign_keys() {
        let router = ShardRouter::new(1_000, 2);
        let m = ShardMembership { group: 0, router };
        let (lo1, _) = m.router.range(1);
        assert_eq!(m.misrouted(&Op::Get { key: 1 }), None);
        assert_eq!(m.misrouted(&Op::Get { key: lo1 }), Some(1));
        assert_eq!(m.misrouted(&Op::Noop), None);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_rejected() {
        let _ = ShardRouter::new(100, 0);
    }
}
