//! The key-range partition map shared by clients and replicas.

use crate::kv::Key;
use crate::shard::migration::RouterVersion;
use paxraft_workload::generator::{contiguous_split, WorkloadConfig};

/// A **versioned** key-range partition of the record space over `groups`
/// replica groups.
///
/// The build-time split (version `0`) mirrors
/// [`WorkloadConfig::partition_range`]: key `0` (the hot record) belongs
/// to group `0`, keys `1..records` are divided into `groups` contiguous
/// ranges with the last group absorbing the remainder. Live rebalancing
/// then edits the map: each applied migration overwrites one segment's
/// owner ([`ShardRouter::apply_move`]) and bumps the version, so after a
/// split a group may own several disjoint segments.
///
/// Routers are cheap to clone and compare, so every client and every
/// replica can carry one; two routers that applied the same moves agree
/// everywhere, and a *stale* router (an old version, or one built for a
/// different group count) is exactly what the versioned
/// [`crate::kv::Reply::WrongGroup`] redirect reconciles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    records: u64,
    /// `starts[g]` is the first key of group `g`'s build-time range
    /// (group 0 also owns the hot key below `starts[0]`). Immutable;
    /// [`ShardRouter::range`] reports this layout.
    starts: Vec<u64>,
    /// Current ownership: `(start, group)` segments sorted by start,
    /// first start `0`, each covering up to the next start (the last up
    /// to `records`). Migrations rewrite this.
    segs: Vec<(u64, u32)>,
    /// Map version: `0` at build time, bumped by every applied move.
    version: RouterVersion,
}

impl ShardRouter {
    /// A router splitting `records` keys over `groups` groups.
    ///
    /// # Panics
    ///
    /// Panics when `groups` is zero or exceeds the non-hot key count.
    pub fn new(records: u64, groups: usize) -> Self {
        assert!(groups > 0, "at least one group");
        assert!(
            records > groups as u64,
            "records {records} must exceed groups {groups}"
        );
        // The generator's split arithmetic, so routing and key
        // generation can never drift apart.
        let starts: Vec<u64> = (0..groups)
            .map(|g| contiguous_split(records, groups, g).0)
            .collect();
        // Segment 0 starts at key 0 so the hot key rides with group 0's
        // build-time range.
        let mut segs = vec![(0u64, 0u32)];
        segs.extend(
            starts
                .iter()
                .enumerate()
                .skip(1)
                .map(|(g, &s)| (s, g as u32)),
        );
        ShardRouter {
            records,
            starts,
            segs,
            version: 0,
        }
    }

    /// A router matching a workload's key space.
    pub fn from_workload(w: &WorkloadConfig, groups: usize) -> Self {
        ShardRouter::new(w.records, groups)
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.starts.len()
    }

    /// Size of the key space this router partitions.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The map version (`0` = the build-time split).
    pub fn version(&self) -> RouterVersion {
        self.version
    }

    /// The group owning `key` under the current (possibly migrated) map.
    pub fn group_of(&self, key: Key) -> u32 {
        match self.segs.partition_point(|&(s, _)| s <= key) {
            0 => self.segs[0].1,
            i => self.segs[i - 1].1,
        }
    }

    /// Inclusive-exclusive **build-time** key range of group `g` (the
    /// hot key rides in group 0 but is not part of any range). Current
    /// ownership after migrations is [`ShardRouter::group_of`] /
    /// [`ShardRouter::segments`].
    pub fn range(&self, g: usize) -> (u64, u64) {
        assert!(g < self.groups(), "group out of range");
        let end = self.starts.get(g + 1).copied().unwrap_or(self.records);
        (self.starts[g], end)
    }

    /// Current ownership segments `(start, end, group)`, in key order.
    pub fn segments(&self) -> Vec<(u64, u64, u32)> {
        self.segs
            .iter()
            .enumerate()
            .map(|(i, &(s, g))| {
                let end = self.segs.get(i + 1).map_or(self.records, |&(e, _)| e);
                (s, end, g)
            })
            .collect()
    }

    /// Applies one migration: `[lo, hi)` now belongs to `to_group`, and
    /// the map version becomes `version`. Idempotent for repeated
    /// applications of the same (or an older) version.
    ///
    /// # Panics
    ///
    /// Panics on an empty or out-of-bounds range or an unknown group.
    pub fn apply_move(&mut self, lo: Key, hi: Key, to_group: u32, version: RouterVersion) {
        assert!(lo < hi && hi <= self.records, "range [{lo}, {hi}) invalid");
        assert!((to_group as usize) < self.groups(), "unknown group");
        if version <= self.version {
            return; // already applied (or superseded)
        }
        // Rewrite the segment list: everything outside [lo, hi) keeps
        // its owner, the range becomes to_group's, adjacent same-owner
        // segments coalesce.
        let old = self.segments();
        let mut pieces: Vec<(u64, u64, u32)> = Vec::with_capacity(old.len() + 2);
        for (s, e, g) in old {
            if e <= lo || s >= hi {
                pieces.push((s, e, g));
                continue;
            }
            if s < lo {
                pieces.push((s, lo, g));
            }
            if e > hi {
                pieces.push((hi, e, g));
            }
        }
        pieces.push((lo, hi, to_group));
        pieces.sort_by_key(|&(s, _, _)| s);
        let mut segs: Vec<(u64, u32)> = Vec::with_capacity(pieces.len());
        for (s, _, g) in pieces {
            match segs.last() {
                Some(&(_, lg)) if lg == g => {} // coalesce
                _ => segs.push((s, g)),
            }
        }
        self.segs = segs;
        self.version = version;
    }
}

/// One replica's view of the partition map: which group it serves and
/// how keys map to groups. The redirect decision itself lives in
/// `EngineCore::misroute`, which combines this build-time view with the
/// replicated migration overrides — keep it the single implementation
/// so versioned redirects can never drift.
#[derive(Debug, Clone)]
pub struct ShardMembership {
    /// The group this replica belongs to.
    pub group: u32,
    /// The partition map.
    pub router: ShardRouter,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_group_owns_everything() {
        let r = ShardRouter::new(100_000, 1);
        assert_eq!(r.group_of(0), 0);
        assert_eq!(r.group_of(1), 0);
        assert_eq!(r.group_of(99_999), 0);
        assert_eq!(r.range(0), (1, 100_000));
    }

    #[test]
    fn ranges_are_contiguous_and_cover_the_keyspace() {
        for groups in [1usize, 2, 3, 4, 7] {
            let r = ShardRouter::new(100_000, groups);
            let mut expect = 1;
            for g in 0..groups {
                let (lo, hi) = r.range(g);
                assert_eq!(lo, expect, "{groups} groups: group {g} contiguous");
                assert!(hi > lo);
                expect = hi;
            }
            assert_eq!(expect, 100_000, "{groups} groups cover all keys");
        }
    }

    #[test]
    fn group_of_agrees_with_ranges() {
        let r = ShardRouter::new(1_000, 4);
        for g in 0..4 {
            let (lo, hi) = r.range(g);
            assert_eq!(r.group_of(lo), g as u32);
            assert_eq!(r.group_of(hi - 1), g as u32);
        }
        assert_eq!(r.group_of(0), 0, "hot key rides in group 0");
    }

    #[test]
    fn mirrors_workload_partition_arithmetic() {
        // With groups == partitions the router must reproduce the
        // generator's per-region split exactly.
        let w = WorkloadConfig::default();
        let r = ShardRouter::from_workload(&w, w.partitions);
        for p in 0..w.partitions {
            assert_eq!(r.range(p), w.partition_range(p), "partition {p}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_rejected() {
        let _ = ShardRouter::new(100, 0);
    }

    #[test]
    fn apply_move_rewrites_ownership_and_bumps_version() {
        let mut r = ShardRouter::new(1_000, 2);
        let (lo1, _) = r.range(1);
        let (lo0, hi0) = r.range(0);
        assert_eq!(r.version(), 0);
        // Move the upper half of group 0's range to group 1.
        let mid = (lo0 + hi0) / 2;
        r.apply_move(mid, hi0, 1, 1);
        assert_eq!(r.version(), 1);
        assert_eq!(r.group_of(mid - 1), 0);
        assert_eq!(r.group_of(mid), 1);
        assert_eq!(r.group_of(hi0 - 1), 1);
        assert_eq!(r.group_of(lo1), 1, "group 1 keeps its own range");
        assert_eq!(r.group_of(0), 0, "hot key unmoved");
        // The moved range and group 1's build-time range coalesce.
        assert_eq!(r.segments(), vec![(0, mid, 0), (mid, 1_000, 1)]);
    }

    #[test]
    fn apply_move_is_idempotent_and_ignores_stale_versions() {
        let mut r = ShardRouter::new(1_000, 2);
        r.apply_move(100, 200, 1, 1);
        let snap = r.clone();
        r.apply_move(100, 200, 1, 1); // duplicate
        assert_eq!(r, snap);
        r.apply_move(100, 200, 0, 1); // stale version: ignored
        assert_eq!(r, snap);
    }

    #[test]
    fn hot_key_can_be_moved_explicitly() {
        let mut r = ShardRouter::new(1_000, 2);
        r.apply_move(0, 1, 1, 1);
        assert_eq!(r.group_of(0), 1, "hot-range move relocates key 0");
        assert_eq!(r.group_of(1), 0, "the rest of group 0 stays");
    }

    #[test]
    fn moved_routers_compare_by_applied_moves() {
        let mut a = ShardRouter::new(1_000, 2);
        let mut b = ShardRouter::new(1_000, 2);
        assert_eq!(a, b);
        a.apply_move(100, 200, 1, 1);
        assert_ne!(a, b);
        b.apply_move(100, 200, 1, 1);
        assert_eq!(a, b, "same moves, same map");
    }
}
