//! The sharded cluster harness: `groups` independent replica groups
//! over the same simulated nodes.

use paxraft_sim::net::Region;
use paxraft_sim::sim::{ActorId, Simulation};
use paxraft_sim::time::{SimDuration, SimTime};
use paxraft_workload::generator::{Generator, OpKind};
use paxraft_workload::metrics::LatencyRecorder;

use crate::client::{ClientRouting, WorkloadClient};
use crate::engine::DurabilityStats;
use crate::engine::PipelineStats;
use crate::harness::{
    group_sample_now, make_replica, record_group_sample, record_replica_samples,
    replica_durability_stats, replica_is_leader, replica_metrics, replica_pipeline_stats,
    replica_snap_stats, Cluster, ClusterBuilder, ProtocolKind, RunReport,
};
use crate::kv::{CmdId, Command, Op, Reply};
use crate::msg::{ClientMsg, Msg};
use crate::snapshot::SnapshotStats;
use crate::telemetry::{LatencyHistogram, MetricRegistry, MetricSample, TimeSeries};
use crate::types::NodeId;

use super::autobalance::SKETCH_NAMES;
use super::{
    AutoBalancePolicy, BalanceDecision, MigrationSpec, RebalanceCoordinator, ShardMembership,
    ShardRouter,
};

/// Where each group's leader bootstraps — the knob the Paxos/Raft
/// leader-flexibility comparison turns on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderPlacement {
    /// Every group's leader starts on the builder's configured leader
    /// node: one region absorbs all proposer traffic (each group is
    /// still its own actor with its own CPU — the concentration is
    /// geographic, not computational).
    AllOnOne,
    /// Group `g`'s leader starts on node `(leader + g) mod n`, spreading
    /// proposers across regions so no single region is every client's
    /// far endpoint.
    RoundRobin,
}

impl LeaderPlacement {
    /// The bootstrap leader of group `g` given the builder's base leader.
    pub fn leader_of(self, base: NodeId, g: usize, n: usize) -> NodeId {
        match self {
            LeaderPlacement::AllOnOne => base,
            LeaderPlacement::RoundRobin => NodeId((base.0 + g as u32) % n as u32),
        }
    }

    /// Name used in benchmark row keys.
    pub fn name(self) -> &'static str {
        match self {
            LeaderPlacement::AllOnOne => "allonone",
            LeaderPlacement::RoundRobin => "roundrobin",
        }
    }
}

/// Sharding parameters for [`ClusterBuilder::shard_config`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of replica groups (1 = unsharded behavior).
    pub groups: usize,
    /// Per-group leader bootstrap placement.
    pub placement: LeaderPlacement,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            groups: 1,
            placement: LeaderPlacement::AllOnOne,
        }
    }
}

impl ShardConfig {
    /// `groups` groups with the default placement.
    pub fn groups(groups: usize) -> Self {
        ShardConfig {
            groups,
            ..ShardConfig::default()
        }
    }

    /// This configuration with the given leader placement.
    pub fn placement(mut self, placement: LeaderPlacement) -> Self {
        self.placement = placement;
        self
    }
}

/// Per-group counters from one sharded run.
#[derive(Debug, Clone)]
pub struct GroupStats {
    /// Group id.
    pub group: u32,
    /// The group's bootstrap leader node.
    pub leader: NodeId,
    /// Client responses the group's replicas sent (commit-visible work;
    /// a crashed group shows up as a flat count here).
    pub responses: u64,
    /// Snapshot/compaction counters summed over the group's replicas.
    pub snapshots: SnapshotStats,
    /// Pipeline counters summed over the group's replicas.
    pub pipeline: PipelineStats,
    /// Fsync / deferred-ack counters summed over the group's replicas.
    pub durability: DurabilityStats,
    /// Range exports shipped by the group's replicas (live rebalancing).
    pub range_exports: u64,
    /// Range installs absorbed by the group's replicas.
    pub range_installs: u64,
}

/// A built sharded cluster: `groups × n` replica actors over `n`
/// simulated nodes, plus per-region clients that route by key.
pub struct ShardedCluster {
    /// The underlying simulation (exposed for fault injection).
    pub sim: Simulation<Msg>,
    protocol: ProtocolKind,
    /// `group_actors[g][i]` is node `i`'s actor in group `g`.
    group_actors: Vec<Vec<ActorId>>,
    clients: Vec<ActorId>,
    regions: Vec<Region>,
    leaders: Vec<NodeId>,
    router: ShardRouter,
    coordinator: Option<ActorId>,
    /// The closed-loop auto-balance policy (None unless enabled). Lives
    /// harness-side like the telemetry sampler: it observes between sim
    /// steps and injects its decisions into the coordinator, so runs
    /// stay deterministic per seed.
    policy: Option<AutoBalancePolicy>,
    probe: Option<ActorId>,
    probe_seq: u64,
    last_probe_cmd: Option<Command>,
    metrics: MetricRegistry,
    per_replica: bool,
}

impl ClusterBuilder {
    /// Constructs a sharded cluster: `shard.groups` independent replica
    /// groups over the same `n` simulated nodes (distinct actor per
    /// `(node, group)`, one shared network/clock/fault injector), with
    /// clients that resolve each key to its owning group.
    ///
    /// With `groups == 1` this reduces *exactly* to
    /// [`ClusterBuilder::build`]'s actor layout, wire format and RNG
    /// schedule, so a 1-group sharded run reproduces the unsharded
    /// fixed-seed fingerprints bit for bit (pinned by a conformance
    /// test).
    ///
    /// # Panics
    ///
    /// Panics if region placement does not match the replica count.
    pub fn build_sharded(self) -> ShardedCluster {
        assert_eq!(self.regions.len(), self.replicas, "one region per replica");
        let groups = self.shard.groups.max(1);
        let n = self.replicas;
        let mut sim = Simulation::new(self.net.clone(), self.seed);
        if self.telemetry.trace_capacity > 0 {
            sim.enable_trace(self.telemetry.trace_capacity);
        }
        if self.telemetry.trace_spans {
            sim.enable_spans();
        }
        // Provision the disks: one per *node*, shared by all of that
        // node's group replicas — co-located groups contend for the same
        // device the way co-located flows contend for one NIC.
        let disk = self.durability.disk_config();
        let provision_disks = !disk.is_zero_cost();
        if provision_disks {
            sim.set_disk_config(disk);
        }
        let router = ShardRouter::from_workload(&self.workload, groups);
        let client_base = groups * n;
        let mut group_actors = Vec::with_capacity(groups);
        let mut leaders = Vec::with_capacity(groups);
        for g in 0..groups {
            let peers: Vec<ActorId> = (g * n..(g + 1) * n).map(ActorId).collect();
            let leader = self.shard.placement.leader_of(self.leader, g, n);
            leaders.push(leader);
            // A single-group cluster *is* the unsharded cluster: no
            // membership means no routing header on the wire and no
            // redirect checks, preserving the unsharded fingerprints.
            let membership = (groups > 1).then(|| ShardMembership {
                group: g as u32,
                router: router.clone(),
            });
            let mut actors = Vec::with_capacity(n);
            for i in 0..n {
                let mut cfg = self.replica_config(
                    NodeId(i as u32),
                    peers.clone(),
                    client_base,
                    membership.clone(),
                );
                cfg.initial_leader = Some(leader);
                let actor = sim.add_actor(self.regions[i], make_replica(self.protocol, cfg));
                if provision_disks {
                    // Disk id = node index: every group's replica on
                    // node `i` shares node `i`'s device.
                    sim.map_disk(actor, i);
                }
                actors.push(actor);
            }
            group_actors.push(actors);
        }
        // One workload client fleet per region, identical to the
        // unsharded build (same RNG forks, same add order); each client
        // routes per key over its region's member of every group.
        let mut clients = Vec::new();
        let mut rng = paxraft_sim::rng::SimRng::new(self.seed ^ 0xC11E57);
        let mut workload = self.workload.clone();
        workload.partitions = self.regions.len();
        for (ri, &region) in self.regions.iter().enumerate() {
            for _ in 0..self.clients_per_region {
                let cid = clients.len() as u32;
                let gen = Generator::new(workload.clone(), ri, rng.fork(cid as u64));
                let mut wc = WorkloadClient::new(cid, group_actors[0][ri], gen);
                wc.history_key = self.record_history_key;
                if groups > 1 {
                    wc.shard = Some(ClientRouting {
                        router: router.clone(),
                        targets: group_actors.iter().map(|ga| ga[ri]).collect(),
                    });
                }
                let id = sim.add_actor(region, Box::new(wc));
                clients.push(id);
            }
        }
        // The rebalance coordinator rides at the next client id — but
        // only when migrations are scripted or the auto-balance policy
        // is on, so a non-rebalancing sharded cluster keeps the exact
        // actor set (and RNG schedule) it had before live rebalancing
        // existed.
        let autobalance_on = self.autobalance.enabled();
        if autobalance_on {
            assert!(
                self.telemetry.sampling_enabled(),
                "auto-rebalancing reads the sampled load sketch; enable telemetry sampling"
            );
            assert!(groups > 1, "auto-rebalancing needs more than one group");
        }
        let coordinator = (self.rebalance.enabled() || autobalance_on).then(|| {
            let coord_client = clients.len() as u32;
            let coord = RebalanceCoordinator::new(
                coord_client,
                router.clone(),
                self.rebalance.migrations.clone(),
                group_actors.clone(),
                clients.clone(),
                self.rebalance
                    .concurrency()
                    .max(self.autobalance.max_concurrent),
            );
            // Place the coordinator in the base leader's region (a real
            // deployment runs it near the config service).
            sim.add_actor(self.regions[self.leader.0 as usize], Box::new(coord))
        });
        let policy = autobalance_on.then(|| AutoBalancePolicy::new(self.autobalance.clone()));
        ShardedCluster {
            sim,
            protocol: self.protocol,
            group_actors,
            clients,
            regions: self.regions,
            leaders,
            router,
            coordinator,
            policy,
            probe: None,
            probe_seq: 0,
            last_probe_cmd: None,
            metrics: MetricRegistry::new(&self.telemetry),
            per_replica: self.telemetry.per_replica,
        }
    }
}

impl ShardedCluster {
    /// Starts a builder (alias for [`Cluster::builder`]; finish with
    /// [`ClusterBuilder::build_sharded`]).
    pub fn builder(protocol: ProtocolKind) -> ClusterBuilder {
        Cluster::builder(protocol)
    }

    /// The protocol under test.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Number of replica groups.
    pub fn num_groups(&self) -> usize {
        self.group_actors.len()
    }

    /// The build-time key-range partition map (version 0). Live
    /// rebalancing does not edit this copy; see
    /// [`ShardedCluster::current_router`].
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The current authoritative partition map: the rebalance
    /// coordinator's copy when one exists (it applies every completed
    /// migration), the build-time map otherwise.
    pub fn current_router(&self) -> ShardRouter {
        match self.coordinator {
            Some(c) => self.sim.actor::<RebalanceCoordinator>(c).router().clone(),
            None => self.router.clone(),
        }
    }

    /// The rebalance coordinator actor, when migrations are scripted.
    pub fn coordinator(&self) -> Option<ActorId> {
        self.coordinator
    }

    /// The auto-balance policy (None unless enabled at build time).
    pub fn policy(&self) -> Option<&AutoBalancePolicy> {
        self.policy.as_ref()
    }

    /// Every migration the auto-balance policy decided on, in decision
    /// order with virtual timestamps — the determinism pin: two runs of
    /// the same seed must produce identical logs.
    pub fn policy_decisions(&self) -> Vec<(SimTime, BalanceDecision)> {
        self.policy
            .as_ref()
            .map_or_else(Vec::new, |p| p.decisions.clone())
    }

    /// Total migrations the coordinator has started (scripted plus
    /// policy-enqueued); 0 without a coordinator.
    pub fn migrations_started(&self) -> usize {
        self.coordinator.map_or(0, |c| {
            self.sim
                .actor::<RebalanceCoordinator>(c)
                .migrations_started()
        })
    }

    /// High-water mark of concurrently in-flight migrations.
    pub fn peak_inflight_migrations(&self) -> usize {
        self.coordinator.map_or(0, |c| {
            self.sim.actor::<RebalanceCoordinator>(c).peak_inflight
        })
    }

    /// Versions of migrations whose release completed (empty without a
    /// coordinator).
    pub fn migrations_completed(&self) -> Vec<u64> {
        match self.coordinator {
            Some(c) => self.sim.actor::<RebalanceCoordinator>(c).completed.clone(),
            None => Vec::new(),
        }
    }

    /// Runs the simulation until every scripted migration has completed
    /// (released), or panics after `limit`.
    pub fn run_until_rebalanced(&mut self, limit: SimDuration) {
        let deadline = self.sim.now() + limit;
        loop {
            let done = match self.coordinator {
                Some(c) => self.sim.actor::<RebalanceCoordinator>(c).done(),
                None => true,
            };
            if done {
                return;
            }
            assert!(
                self.sim.now() < deadline,
                "migrations did not complete within {limit}"
            );
            self.sim.run_for(SimDuration::from_millis(100));
        }
    }

    /// Group `g`'s replica actors, indexed by node.
    pub fn group_replicas(&self, g: usize) -> &[ActorId] {
        &self.group_actors[g]
    }

    /// The actor serving group `g` on node `node`.
    pub fn replica(&self, g: usize, node: NodeId) -> ActorId {
        self.group_actors[g][node.0 as usize]
    }

    /// Client actor ids.
    pub fn clients(&self) -> &[ActorId] {
        &self.clients
    }

    /// Each group's bootstrap leader node.
    pub fn leaders(&self) -> &[NodeId] {
        &self.leaders
    }

    /// Whether some replica of group `g` currently claims leadership.
    pub fn group_has_leader(&self, g: usize) -> bool {
        self.group_actors[g]
            .iter()
            .any(|&r| replica_is_leader(&self.sim, self.protocol, r))
    }

    /// Whether every group has a leader.
    pub fn has_all_leaders(&self) -> bool {
        (0..self.num_groups()).all(|g| self.group_has_leader(g))
    }

    /// Runs until every group has elected (and leases, if any, are live).
    pub fn elect_leaders(&mut self) {
        let deadline = self.sim.now() + SimDuration::from_secs(30);
        while !self.has_all_leaders() && self.sim.now() < deadline {
            self.sim.run_for(SimDuration::from_millis(50));
        }
        assert!(self.has_all_leaders(), "every group elects within 30s");
        if matches!(
            self.protocol,
            ProtocolKind::RaftStarPql | ProtocolKind::LeaderLease
        ) {
            self.sim.run_for(SimDuration::from_millis(700));
        }
    }

    /// Per-group commit/snapshot/pipeline counters, read from the same
    /// named [`MetricSample`]s the virtual-time sampler folds into
    /// time-series (one source of truth for aggregates and series).
    pub fn per_group_stats(&self) -> Vec<GroupStats> {
        self.group_actors
            .iter()
            .enumerate()
            .map(|(g, actors)| {
                let mut snapshots = SnapshotStats::default();
                let mut pipeline = PipelineStats::default();
                let mut durability = DurabilityStats::default();
                let mut sample = MetricSample::default();
                for &r in actors {
                    snapshots.absorb(&replica_snap_stats(&self.sim, self.protocol, r));
                    pipeline.absorb(&replica_pipeline_stats(&self.sim, self.protocol, r));
                    durability.absorb(&replica_durability_stats(&self.sim, self.protocol, r));
                    sample.merge_sum(&replica_metrics(&self.sim, self.protocol, r));
                }
                GroupStats {
                    group: g as u32,
                    leader: self.leaders[g],
                    responses: sample.get("responses") as u64,
                    snapshots,
                    pipeline,
                    durability,
                    range_exports: sample.get("range_exports") as u64,
                    range_installs: sample.get("range_installs") as u64,
                }
            })
            .collect()
    }

    /// Submits one operation through an internal probe client, routed to
    /// the leader of the group owning the operation's key, and waits for
    /// its reply.
    ///
    /// # Errors
    ///
    /// Returns `Err` if no reply arrives within 30 virtual seconds.
    pub fn submit_and_wait(&mut self, op: Op) -> Result<Reply, String> {
        use crate::probe::ProbeClient;
        self.sim.start();
        let pid = match self.probe {
            Some(pid) => pid,
            None => {
                let region = self.regions[self.leaders[0].0 as usize];
                let pid = self.sim.add_actor(region, Box::new(ProbeClient::default()));
                self.probe = Some(pid);
                pid
            }
        };
        let replica_count = self.num_groups() * self.regions.len();
        let client_index = (pid.0 - replica_count) as u32;
        self.probe_seq += 1;
        let id = CmdId {
            client: client_index,
            seq: self.probe_seq,
        };
        let cmd = Command { id, op };
        self.last_probe_cmd = Some(cmd.clone());
        // Route by the *current* map (migrations move ranges while
        // probes run); a raced move is reconciled by the probe's
        // WrongGroup handling.
        let router = self.current_router();
        let g = cmd.op.key().map_or(0, |k| router.group_of(k)) as usize;
        // Target the owning group's configured leader unless it is
        // crashed; fall back to the group's first live replica (its
        // forwarding finds the actual leader).
        let mut target = self.replica(g, self.leaders[g]);
        if self.sim.is_crashed(target) {
            target = *self.group_actors[g]
                .iter()
                .find(|&&r| !self.sim.is_crashed(r))
                .expect("at least one live replica in the group");
        }
        // Give the probe one live replica per group so it can follow
        // versioned redirects.
        let group_targets: Vec<ActorId> = (0..self.num_groups())
            .map(|g| {
                let preferred = self.replica(g, self.leaders[g]);
                if self.sim.is_crashed(preferred) {
                    *self.group_actors[g]
                        .iter()
                        .find(|&&r| !self.sim.is_crashed(r))
                        .expect("at least one live replica in the group")
                } else {
                    preferred
                }
            })
            .collect();
        {
            let p = self.sim.actor_mut::<ProbeClient>(pid);
            p.waiting = Some(id);
            p.reply = None;
            p.group_targets = group_targets;
            p.outbox = Some((target, Msg::Client(ClientMsg::Request { cmd })));
        }
        let deadline = self.sim.now() + SimDuration::from_secs(30);
        while self.sim.now() < deadline {
            self.sim.run_for(SimDuration::from_millis(20));
            if let Some(r) = self.sim.actor::<ProbeClient>(pid).reply.clone() {
                return Ok(r);
            }
        }
        Err("probe timed out".into())
    }

    /// The last command [`ShardedCluster::submit_and_wait`] sent —
    /// tests re-inject it verbatim to model a client retransmission
    /// (same `CmdId`), e.g. a retry that crosses a range migration.
    pub fn last_probe_command(&self) -> Option<Command> {
        self.last_probe_cmd.clone()
    }

    /// Runs `warmup + measure + cooldown`, aggregating completions from
    /// every client exactly like [`Cluster::run_measurement`] — the
    /// "leader region" latency split is anchored at group 0's leader —
    /// and summing snapshot/pipeline counters over *all* groups.
    pub fn run_measurement(
        &mut self,
        warmup: SimDuration,
        measure: SimDuration,
        cooldown: SimDuration,
    ) -> RunReport {
        self.advance(warmup);
        let w_start = self.sim.now().as_nanos();
        self.advance(measure);
        let w_end = self.sim.now().as_nanos();
        self.advance(cooldown);

        let leader_region = self.regions[self.leaders[0].0 as usize];
        let mut leader_reads = LatencyRecorder::new();
        let mut follower_reads = LatencyRecorder::new();
        let mut leader_writes = LatencyRecorder::new();
        let mut follower_writes = LatencyRecorder::new();
        let mut completed: u64 = 0;
        let mut histories = Vec::new();
        for &c in &self.clients {
            let region = self.sim.region_of(c);
            let is_leader_group = region == leader_region;
            let client = self.sim.actor::<WorkloadClient>(c);
            for comp in &client.completions {
                if !(w_start..w_end).contains(&comp.at_ns) {
                    continue;
                }
                completed += 1;
                match (comp.kind, is_leader_group) {
                    (OpKind::Read, true) => leader_reads.record_ns(comp.latency_ns),
                    (OpKind::Read, false) => follower_reads.record_ns(comp.latency_ns),
                    (OpKind::Write, true) => leader_writes.record_ns(comp.latency_ns),
                    (OpKind::Write, false) => follower_writes.record_ns(comp.latency_ns),
                }
            }
            histories.extend(client.history_records());
        }
        let per_group = self.per_group_stats();
        let mut snapshots = SnapshotStats::default();
        let mut pipeline = PipelineStats::default();
        let mut durability = DurabilityStats::default();
        for gs in &per_group {
            snapshots.absorb(&gs.snapshots);
            pipeline.absorb(&gs.pipeline);
            durability.absorb(&gs.durability);
        }
        RunReport {
            throughput_ops: completed as f64 / measure.as_secs_f64(),
            leader_reads: leader_reads.paper_triple_ms(),
            follower_reads: follower_reads.paper_triple_ms(),
            leader_writes: leader_writes.paper_triple_ms(),
            follower_writes: follower_writes.paper_triple_ms(),
            histories,
            snapshots,
            pipeline,
            durability,
            telemetry: self.metrics.snapshot(),
            latency_hists: self.metrics.hist_snapshot(),
            spans: self.span_report(),
        }
    }

    /// Assembles the span log recorded so far into per-command latency
    /// breakdowns (`None` unless span tracing is enabled). The
    /// migration story reads directly off the per-command fields:
    /// redirect cost is the `redirects` bounces' network share,
    /// freeze-bounce cost is `stalls` × the stall queueing time, and
    /// destination queueing is the queueing/batching booked at the
    /// group that finally served the command
    /// ([`CommandBreakdown::served_by`] → [`ShardedCluster::group_of_replica`]).
    pub fn span_report(&self) -> Option<crate::telemetry::SpanReport> {
        self.sim
            .trace()
            .spans_enabled()
            .then(|| crate::telemetry::SpanAssembler::assemble(self.sim.trace().spans()))
    }

    /// The group a replica actor belongs to (`None` for client actors).
    pub fn group_of_replica(&self, a: ActorId) -> Option<u32> {
        let n = self.group_actors.first().map_or(0, Vec::len);
        let groups = self.group_actors.len();
        (n > 0 && a.0 < n * groups).then(|| (a.0 / n) as u32)
    }

    /// Advances virtual time by `d`, pausing at each due sampling
    /// instant to fold every group's replica state into the metric
    /// registry (`group{g}/…` series). Sampling is read-only between
    /// simulation steps, so enabling it never changes the event
    /// schedule or the RNG stream.
    pub fn advance(&mut self, d: SimDuration) {
        let target = self.sim.now() + d;
        if !self.metrics.enabled() {
            self.sim.run_until(target);
            return;
        }
        self.metrics.fast_forward(self.sim.now());
        while self.metrics.next_due() <= target {
            self.sim.run_until(self.metrics.next_due());
            let now = self.sim.now();
            let mut cluster_sample = MetricSample::default();
            for (g, actors) in self.group_actors.iter().enumerate() {
                let (sample, nic, disk) = group_sample_now(&self.sim, self.protocol, actors);
                record_group_sample(&mut self.metrics, now, g as u32, &sample, nic, disk);
                if self.per_replica {
                    record_replica_samples(
                        &mut self.metrics,
                        &self.sim,
                        self.protocol,
                        now,
                        actors,
                    );
                }
                cluster_sample.merge_sum(&sample);
            }
            self.sample_latency_histograms(now);
            self.tick_policy(now, &cluster_sample);
            self.metrics.advance();
        }
        self.sim.run_until(target);
    }

    /// Folds every client's per-group completion-latency histogram into
    /// one `group{g}/latency` snapshot per group. Cumulative snapshots:
    /// [`HistogramSeries::window`] recovers any phase by subtraction.
    fn sample_latency_histograms(&mut self, now: SimTime) {
        let groups = self.group_actors.len();
        let mut hists = vec![LatencyHistogram::default(); groups];
        for &c in &self.clients {
            let client = self.sim.actor::<WorkloadClient>(c);
            for (g, h) in client.group_latency.iter().enumerate() {
                if g < groups {
                    hists[g].merge(h);
                }
            }
        }
        for (g, h) in hists.into_iter().enumerate() {
            self.metrics.histogram(now, &format!("group{g}/latency"), h);
        }
    }

    /// One closed-loop control step: hand the policy the cluster-wide
    /// load sketch plus the coordinator's in-flight picture, and enqueue
    /// whatever migrations it decides. Runs between sim steps at the
    /// sampling cadence, so decisions are a pure function of the run so
    /// far — two identical seeds produce identical decision logs.
    fn tick_policy(&mut self, now: SimTime, cluster_sample: &MetricSample) {
        let (Some(policy), Some(coord)) = (self.policy.as_mut(), self.coordinator) else {
            return;
        };
        let counts: Vec<f64> = SKETCH_NAMES.iter().map(|n| cluster_sample.get(n)).collect();
        let (planned, inflight, ranges) = {
            let c = self.sim.actor::<RebalanceCoordinator>(coord);
            (
                c.planned_router().clone(),
                c.inflight(),
                c.inflight_ranges(),
            )
        };
        let decisions = policy.observe(now, &counts, &planned, inflight, &ranges);
        if decisions.is_empty() {
            return;
        }
        let c = self.sim.actor_mut::<RebalanceCoordinator>(coord);
        for d in decisions {
            c.enqueue(MigrationSpec {
                at: SimDuration::from_nanos(now.as_nanos()),
                lo: d.lo,
                hi: d.hi,
                to_group: d.to_group,
            });
        }
    }

    /// The sampled per-group metric time-series collected so far (empty
    /// unless telemetry sampling is enabled).
    pub fn telemetry_series(&self) -> Vec<TimeSeries> {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotConfig;
    use paxraft_sim::time::SimTime;
    use paxraft_workload::generator::WorkloadConfig;

    fn parity_workload() -> WorkloadConfig {
        WorkloadConfig {
            read_fraction: 0.5,
            conflict_rate: 0.2,
            ..Default::default()
        }
    }

    fn report_fingerprint(r: &RunReport, now: SimTime) -> String {
        format!(
            "thr={:.6} lr={:?} fr={:?} lw={:?} fw={:?} snaps={:?} pipe={:?} now={}",
            r.throughput_ops,
            r.leader_reads,
            r.follower_reads,
            r.leader_writes,
            r.follower_writes,
            r.snapshots,
            r.pipeline,
            now
        )
    }

    /// The acceptance gate for the sharding subsystem: a 1-group sharded
    /// cluster must reproduce the unsharded fixed-seed fingerprints
    /// bit for bit — same actor layout, same wire sizes, same RNG
    /// schedule (the pinned PARITY file is the same configuration; the
    /// parity example diff in CI covers unsharded-vs-pin, this test
    /// covers sharded-vs-unsharded).
    #[test]
    fn one_group_sharded_run_matches_unsharded_bit_for_bit() {
        for p in [
            ProtocolKind::Raft,
            ProtocolKind::MultiPaxos,
            ProtocolKind::RaftStarMencius,
        ] {
            let build = || {
                Cluster::builder(p)
                    .clients_per_region(2)
                    .workload(parity_workload())
                    .seed(7)
            };
            let mut unsharded = build().build();
            unsharded.elect_leader();
            let ur = unsharded.run_measurement(
                SimDuration::from_secs(2),
                SimDuration::from_secs(5),
                SimDuration::from_secs(1),
            );
            let mut sharded = build().shard_config(ShardConfig::groups(1)).build_sharded();
            sharded.elect_leaders();
            let sr = sharded.run_measurement(
                SimDuration::from_secs(2),
                SimDuration::from_secs(5),
                SimDuration::from_secs(1),
            );
            assert_eq!(
                report_fingerprint(&ur, unsharded.sim.now()),
                report_fingerprint(&sr, sharded.sim.now()),
                "{}: shards=1 is the unsharded cluster",
                p.name()
            );
        }
    }

    /// Telemetry parity in the sharded harness: enabling the sampler
    /// and the flight recorder on a 2-group run *with a scripted
    /// migration racing the measurement window* changes nothing in the
    /// [`RunReport`] — and the enabled run collects one series set per
    /// group.
    #[test]
    fn sharded_telemetry_on_and_off_runs_are_bit_for_bit() {
        use crate::shard::{MigrationSpec, RebalanceConfig};
        use crate::telemetry::TelemetryConfig;
        let run = |telemetry: TelemetryConfig| {
            let mut cluster = Cluster::builder(ProtocolKind::Raft)
                .shard_config(ShardConfig::groups(2))
                .clients_per_region(2)
                .rebalance_config(RebalanceConfig::default().migrate(MigrationSpec {
                    at: SimDuration::from_secs(3),
                    lo: 0,
                    hi: 1,
                    to_group: 1,
                }))
                .workload(parity_workload())
                .telemetry_config(telemetry)
                .seed(31)
                .build_sharded();
            cluster.elect_leaders();
            let r = cluster.run_measurement(
                SimDuration::from_secs(2),
                SimDuration::from_secs(4),
                SimDuration::from_secs(1),
            );
            let fp = report_fingerprint(&r, cluster.sim.now());
            (fp, r.telemetry)
        };
        let (off, series_off) = run(TelemetryConfig::default());
        let (on, series_on) = run(TelemetryConfig::sampled());
        assert_eq!(off, on, "telemetry never perturbs the sharded run");
        assert!(series_off.is_empty(), "off-run collects nothing");
        for g in 0..2 {
            for metric in ["throughput_ops", "pending_depth", "range_exports"] {
                let name = format!("group{g}/{metric}");
                let s = series_on
                    .iter()
                    .find(|s| s.name == name)
                    .unwrap_or_else(|| panic!("series {name} collected"));
                assert!(!s.is_empty(), "{name} has samples");
            }
        }
    }

    /// Span tracing plus per-replica series in the sharded harness:
    /// enabling both on a 2-group run with a scripted migration racing
    /// the measurement window is bit-for-bit invisible in the
    /// [`RunReport`] — and the enabled run yields per-command
    /// breakdowns that (a) obey the accounting identity, (b) include
    /// migration-path traffic (`WrongGroup` redirect bounces show up as
    /// redirect/stall counts on the affected commands), and (c) come
    /// with one metric-series set per *replica*, not just per group.
    #[test]
    fn sharded_span_tracing_and_per_replica_series_are_bit_for_bit() {
        use crate::shard::{MigrationSpec, RebalanceConfig};
        use crate::telemetry::{Stage, TelemetryConfig};
        let run = |telemetry: TelemetryConfig| {
            let mut cluster = Cluster::builder(ProtocolKind::Raft)
                .shard_config(ShardConfig::groups(2))
                .clients_per_region(2)
                .rebalance_config(RebalanceConfig::default().migrate(MigrationSpec {
                    at: SimDuration::from_secs(3),
                    lo: 0,
                    hi: 1,
                    to_group: 1,
                }))
                .workload(parity_workload())
                .telemetry_config(telemetry)
                .seed(31)
                .build_sharded();
            cluster.elect_leaders();
            let r = cluster.run_measurement(
                SimDuration::from_secs(2),
                SimDuration::from_secs(4),
                SimDuration::from_secs(1),
            );
            let fp = report_fingerprint(&r, cluster.sim.now());
            let replicas: Vec<_> = (0..2)
                .flat_map(|g| cluster.group_replicas(g).to_vec())
                .collect();
            (fp, r.spans, r.telemetry, replicas)
        };
        let (off, spans_off, series_off, _) = run(TelemetryConfig::default());
        let (on, spans_on, series_on, replicas) =
            run(TelemetryConfig::sampled().with_spans().with_per_replica());
        assert_eq!(off, on, "span tracing never perturbs the sharded run");
        assert!(spans_off.is_none(), "off-run assembles nothing");
        assert!(series_off.is_empty(), "off-run collects nothing");
        let spans = spans_on.expect("spans enabled");
        assert!(!spans.commands.is_empty(), "commands traced");
        for b in &spans.commands {
            let sum = Stage::ALL
                .iter()
                .fold(SimDuration::ZERO, |acc, &s| acc + b.stage(s));
            assert_eq!(
                sum,
                b.total(),
                "accounting identity for client {} seq {}",
                b.client,
                b.seq
            );
        }
        assert!(
            spans
                .commands
                .iter()
                .any(|b| b.redirects > 0 || b.stalls > 0),
            "the migration window produced redirect/stall spans"
        );
        for r in &replicas {
            let name = format!("replica{}/throughput_ops", r.0);
            let s = series_on
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("series {name} collected"));
            assert!(!s.is_empty(), "{name} has samples");
        }
    }

    /// Groups fail independently: crashing group 0's leader must not
    /// disturb group 1's commits, and group 0 itself recovers by
    /// re-election inside the group.
    #[test]
    fn leader_crash_in_one_group_does_not_disturb_the_other() {
        for p in [
            ProtocolKind::Raft,
            ProtocolKind::RaftStar,
            ProtocolKind::MultiPaxos,
            ProtocolKind::RaftStarMencius,
        ] {
            let mut cluster = Cluster::builder(p)
                .shard_config(ShardConfig::groups(2))
                .seed(11)
                .build_sharded();
            cluster.elect_leaders();
            let (g0_lo, _) = cluster.router().range(0);
            let (g1_lo, _) = cluster.router().range(1);
            // Both groups serve before the fault.
            for key in [g0_lo, g1_lo] {
                cluster
                    .submit_and_wait(Op::Put {
                        key,
                        value: vec![0; 8],
                    })
                    .unwrap_or_else(|e| panic!("{}: pre-crash put({key}): {e}", p.name()));
            }
            // Crash group 0's leader *actor*; the same node's group-1
            // actor keeps running (independent failure domains per
            // group even on one machine).
            let victim = cluster.replica(0, cluster.leaders()[0]);
            cluster
                .sim
                .crash_at(victim, cluster.sim.now() + SimDuration::from_millis(1));
            cluster.sim.run_for(SimDuration::from_millis(10));
            let before = cluster.sim.now();
            let r = cluster
                .submit_and_wait(Op::Get { key: g1_lo })
                .unwrap_or_else(|e| {
                    panic!("{}: group 1 read during group 0 outage: {e}", p.name())
                });
            assert!(
                matches!(r, Reply::Value(Some(_))),
                "{}: group 1 still serves its committed state",
                p.name()
            );
            let group1_latency = cluster.sim.now().since(before);
            assert!(
                group1_latency < SimDuration::from_secs(1),
                "{}: group 1 commit undisturbed by group 0's election ({group1_latency})",
                p.name()
            );
            // Group 0 recovers on its own (re-election or revocation).
            cluster
                .submit_and_wait(Op::Put {
                    key: g0_lo,
                    value: vec![1; 8],
                })
                .unwrap_or_else(|e| panic!("{}: group 0 post-crash put: {e}", p.name()));
        }
    }

    /// A client whose partition map is stale (it believes everything
    /// lives in group 0) is redirected by the replicas' map and still
    /// completes every operation.
    #[test]
    fn stale_client_router_is_corrected_by_wrong_group_redirects() {
        let mut cluster = Cluster::builder(ProtocolKind::Raft)
            .shard_config(ShardConfig::groups(2))
            .clients_per_region(1)
            .workload(WorkloadConfig {
                read_fraction: 0.0,
                conflict_rate: 0.0,
                ..Default::default()
            })
            .seed(3)
            .build_sharded();
        cluster.elect_leaders();
        // Swap every client's router for a stale single-group map:
        // all keys resolve to group 0, so half the traffic (group 1
        // keys) is misrouted and must be redirected.
        let stale = ShardRouter::new(WorkloadConfig::default().records, 1);
        for &c in &cluster.clients().to_vec() {
            let wc = cluster.sim.actor_mut::<WorkloadClient>(c);
            let routing = wc.shard.as_mut().expect("sharded client has routing");
            routing.router = stale.clone();
        }
        cluster.sim.run_for(SimDuration::from_secs(5));
        let mut redirects = 0;
        let mut completions = 0;
        for &c in cluster.clients() {
            let wc = cluster.sim.actor::<WorkloadClient>(c);
            redirects += wc.redirects;
            completions += wc.completions.len();
        }
        assert!(
            redirects > 0,
            "misrouted commands were redirected ({redirects})"
        );
        // Redirects are counted apart from commit-visible responses:
        // every group-0 replica answered misroutes without inflating its
        // response counter by them.
        let mut replica_redirects = 0;
        for node in 0..5u32 {
            let rep = cluster
                .sim
                .actor::<crate::raft::RaftReplica>(cluster.replica(0, NodeId(node)));
            replica_redirects += rep.core.redirects_sent;
        }
        assert_eq!(
            replica_redirects, redirects,
            "replica redirect counters match the clients' view"
        );
        assert!(
            completions > 10,
            "clients completed operations despite the stale map ({completions})"
        );
        // The redirect happened *before* replication: no group ever
        // applied a foreign key.
        for g in 0..2 {
            let (lo, hi) = cluster.router().range(g);
            for node in 0..5u32 {
                let rep = cluster
                    .sim
                    .actor::<crate::raft::RaftReplica>(cluster.replica(g, NodeId(node)));
                for (k, _) in rep.kv().snapshot().table.iter() {
                    assert!(
                        (lo..hi).contains(k),
                        "group {g} applied only its own keys (found {k})"
                    );
                }
            }
        }
    }

    /// Snapshot catch-up stays inside one group of a sharded cluster: a
    /// lagging replica of group 0 is healed by a group-0 snapshot while
    /// the co-located group-1 actor never sees a transfer.
    #[test]
    fn snapshot_catch_up_is_group_local() {
        let mut cluster = Cluster::builder(ProtocolKind::Raft)
            .replicas(3)
            .regions(vec![Region::Oregon, Region::Ohio, Region::Ireland])
            .shard_config(ShardConfig::groups(2))
            .snapshot_config(SnapshotConfig::every(16))
            .seed(5)
            .build_sharded();
        cluster.elect_leaders();
        let (g0_lo, _) = cluster.router().range(0);
        let (g1_lo, _) = cluster.router().range(1);
        // Warm-up commit (also materializes the probe actor, so the
        // partition vector below covers every actor in the sim).
        cluster
            .submit_and_wait(Op::Put {
                key: g0_lo,
                value: vec![0; 8],
            })
            .expect("warm-up put");
        // Cut off group 0's replica on node 2 only; node 2's group-1
        // actor, the other replicas and the probe stay connected
        // (partition groups are per *actor*).
        let victim = cluster.replica(0, NodeId(2));
        let mut partition = vec![0u32; cluster.sim.len()];
        partition[victim.0] = 1;
        cluster
            .sim
            .partition_at(partition, cluster.sim.now() + SimDuration::from_millis(1));
        // Commit far past the compaction threshold in BOTH groups.
        for i in 0..40 {
            for key in [g0_lo + i, g1_lo + i] {
                cluster
                    .submit_and_wait(Op::Put {
                        key,
                        value: vec![0; 8],
                    })
                    .expect("puts commit under the single-actor partition");
            }
        }
        cluster
            .sim
            .heal_at(cluster.sim.now() + SimDuration::from_millis(1));
        cluster.sim.run_for(SimDuration::from_secs(20));
        let stats = cluster.per_group_stats();
        assert!(
            stats[0].snapshots.compactions >= 1,
            "group 0 compacted ({:?})",
            stats[0].snapshots
        );
        assert!(
            stats[0].snapshots.snapshots_installed >= 1,
            "lagging group-0 replica caught up via snapshot ({:?})",
            stats[0].snapshots
        );
        assert_eq!(
            stats[1].snapshots.snapshots_installed, 0,
            "group 1 never needed (or saw) a transfer ({:?})",
            stats[1].snapshots
        );
        let lagger = cluster.sim.actor::<crate::raft::RaftReplica>(victim);
        assert!(
            lagger.applied_index().0 + 16 >= 40,
            "rejoined replica converged ({})",
            lagger.applied_index()
        );
    }

    /// The group id stamped on engine-level traffic is a hard isolation
    /// guard: a Forward carrying another group's id is dropped before it
    /// can enter the pending batch.
    #[test]
    fn cross_group_forward_is_dropped() {
        let mut cluster = Cluster::builder(ProtocolKind::Raft)
            .shard_config(ShardConfig::groups(2))
            .seed(9)
            .build_sharded();
        cluster.elect_leaders();
        let target = cluster.replica(0, cluster.leaders()[0]);
        let cmd = Command::put(CmdId { client: 0, seq: 1 }, 1, vec![0; 8]);
        cluster.sim.send_external(
            target,
            Msg::Engine(crate::msg::EngineMsg::Forward {
                group: 1,
                header_bytes: 12,
                cmds: vec![cmd],
            }),
            SimDuration::ZERO,
        );
        cluster.sim.run_for(SimDuration::from_millis(50));
        let rep = cluster.sim.actor::<crate::raft::RaftReplica>(target);
        assert_eq!(rep.core.cross_group_dropped, 1, "foreign Forward dropped");
        assert!(rep.core.pending.is_empty(), "nothing buffered from it");
    }

    /// Closed-loop end to end: a sustained hotspot inside group 0's
    /// range makes the policy migrate the hot buckets to group 1 — with
    /// disjoint ranges in flight *concurrently* — and the post-move
    /// ownership actually changed.
    #[test]
    fn autobalance_policy_moves_a_sustained_hotspot_off_the_loaded_group() {
        use crate::shard::AutoBalanceConfig;
        use crate::telemetry::TelemetryConfig;
        use paxraft_workload::scenario::{Drift, Hotspot, ScenarioConfig};
        let mut cluster = Cluster::builder(ProtocolKind::Raft)
            .shard_config(ShardConfig::groups(2))
            .clients_per_region(2)
            .workload(WorkloadConfig {
                read_fraction: 0.5,
                scenario: Some(ScenarioConfig {
                    hotspot: Some(Hotspot {
                        weight: 0.9,
                        center: 12_500,
                        width: 12_000,
                        drift: Drift::Fixed,
                    }),
                    ..ScenarioConfig::default()
                }),
                ..Default::default()
            })
            .telemetry_config(TelemetryConfig::sampled())
            .autobalance_config(AutoBalanceConfig::standard())
            .seed(23)
            .build_sharded();
        cluster.elect_leaders();
        cluster.run_measurement(
            SimDuration::from_secs(2),
            SimDuration::from_secs(10),
            SimDuration::from_secs(2),
        );
        let decisions = cluster.policy_decisions();
        assert!(
            decisions.len() >= 2,
            "policy split the hot range into several moves ({decisions:?})"
        );
        for (_, d) in &decisions {
            assert_eq!(d.from_group, 0, "the loaded group donates ({d:?})");
            assert_eq!(d.to_group, 1, "the idle group receives ({d:?})");
            assert!(
                d.lo >= 6_500 - 3_125 && d.hi <= 18_500 + 3_125,
                "moves target the hotspot window ({d:?})"
            );
        }
        assert!(
            cluster.peak_inflight_migrations() >= 2,
            "disjoint hot ranges migrated concurrently (peak {})",
            cluster.peak_inflight_migrations()
        );
        let current = cluster.current_router();
        assert!(
            current.version() > 0 && current.group_of(decisions[0].1.lo) == 1,
            "the published map reflects the moves"
        );
        // The cluster still serves the moved range after rebalancing.
        let r = cluster
            .submit_and_wait(Op::Get {
                key: decisions[0].1.lo,
            })
            .expect("read from the migrated range");
        assert!(matches!(r, Reply::Value(_)));
    }

    /// Anti-livelock regression: an adversarial hotspot oscillating
    /// between the two groups faster than the control loop converges
    /// must produce a *bounded* migration count (cooldown caps batches,
    /// dwell bans just-moved buckets) — and the decision log must be a
    /// pure function of the seed.
    #[test]
    fn oscillating_hotspot_yields_bounded_and_deterministic_migrations() {
        use crate::shard::AutoBalanceConfig;
        use crate::telemetry::TelemetryConfig;
        use paxraft_workload::scenario::ScenarioConfig;
        let run = || {
            let mut cluster = Cluster::builder(ProtocolKind::Raft)
                .shard_config(ShardConfig::groups(2))
                .clients_per_region(2)
                .workload(WorkloadConfig {
                    read_fraction: 0.5,
                    scenario: Some(ScenarioConfig::oscillating_hotspot(
                        0.8,
                        12_500,
                        62_500,
                        12_000,
                        SimDuration::from_secs(3),
                    )),
                    ..Default::default()
                })
                .telemetry_config(TelemetryConfig::sampled())
                .autobalance_config(AutoBalanceConfig::standard())
                .seed(29)
                .build_sharded();
            cluster.elect_leaders();
            cluster.run_measurement(
                SimDuration::from_secs(2),
                SimDuration::from_secs(12),
                SimDuration::from_secs(1),
            );
            (cluster.migrations_started(), cluster.policy_decisions())
        };
        let (started, decisions) = run();
        // Cooldown admits one batch of ≤ max_per_tick moves per 2 s of
        // the 15 s run: the count is bounded no matter how fast the
        // hotspot jumps.
        let cfg = AutoBalanceConfig::standard();
        let bound = cfg.max_per_tick * (15 / 2 + 1);
        assert!(
            started <= bound,
            "migration count bounded under oscillation ({started} <= {bound})"
        );
        assert!(
            !decisions.is_empty(),
            "the policy did chase the hotspot (it must act, just boundedly)"
        );
        let (started2, decisions2) = run();
        assert_eq!(started, started2, "fixed seed: identical migration count");
        assert_eq!(decisions, decisions2, "fixed seed: identical decision log");
    }

    /// The empty [`AutoBalanceConfig`] creates no controller: no
    /// coordinator actor, no policy, and the run is bit-for-bit the
    /// plain sharded cluster.
    #[test]
    fn empty_autobalance_config_is_bit_for_bit_the_plain_sharded_cluster() {
        use crate::shard::AutoBalanceConfig;
        use crate::telemetry::TelemetryConfig;
        let run = |autobalance: Option<AutoBalanceConfig>| {
            let mut b = Cluster::builder(ProtocolKind::Raft)
                .shard_config(ShardConfig::groups(2))
                .clients_per_region(2)
                .workload(parity_workload())
                .telemetry_config(TelemetryConfig::sampled())
                .seed(17);
            if let Some(cfg) = autobalance {
                b = b.autobalance_config(cfg);
            }
            let mut cluster = b.build_sharded();
            cluster.elect_leaders();
            let r = cluster.run_measurement(
                SimDuration::from_secs(2),
                SimDuration::from_secs(4),
                SimDuration::from_secs(1),
            );
            assert!(cluster.coordinator().is_none(), "no controller actor");
            assert!(cluster.policy().is_none(), "no policy state");
            report_fingerprint(&r, cluster.sim.now())
        };
        assert_eq!(
            run(None),
            run(Some(AutoBalanceConfig::default())),
            "disabled auto-balance changes nothing"
        );
    }
}
