//! Wire messages for all protocols.
//!
//! One top-level [`Msg`] enum lets every protocol share the simulator's
//! network. The Raft-family messages carry the optional fields the ported
//! optimizations add (Figure 8's lease `holders`, Appendix A.4's
//! `isDefault` flag), mirroring how the porting method only ever *adds*
//! message content.

use crate::kv::{CmdId, Command, Reply};
use crate::log::Entry;
use crate::types::{NodeId, Slot, Term};
use paxraft_sim::sim::Payload;

/// Top-level message type carried by the simulated network.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Client-replica traffic.
    Client(ClientMsg),
    /// Protocol-agnostic replica-engine traffic (request forwarding and
    /// chunked snapshot transfer) shared by every protocol; see
    /// [`EngineMsg`].
    Engine(EngineMsg),
    /// MultiPaxos traffic (Figure 1).
    Paxos(PaxosMsg),
    /// Raft / Raft* / Raft*-PQL traffic (Figure 2).
    Raft(RaftMsg),
    /// Quorum-lease maintenance (Paxos Quorum Lease / Leader Lease).
    Lease(LeaseMsg),
    /// Raft*-Mencius traffic (Appendix A.4).
    Mencius(MenciusMsg),
}

/// The shared envelope for the engine-level traffic every protocol
/// needs. Under the Figure-3 vocabulary map these used to exist in three
/// spellings (Raft `InstallSnapshot`/`SnapshotAck`, Paxos and Mencius
/// `Checkpoint`/`CheckpointOk`, plus two `Forward` copies); the
/// [`crate::engine`] refactor collapses them into one wire form with a
/// protocol-interpreted `seal` field (Raft term / Paxos ballot;
/// [`Term::ZERO`] for Mencius, whose multi-leader transfers are
/// ballot-free).
#[derive(Debug, Clone)]
pub enum EngineMsg {
    /// Follower-to-leader client-request forwarding (etcd-style batching;
    /// Section 5 "Implementation").
    Forward {
        /// Replica-group id this batch belongs to. In a sharded cluster
        /// every engine-level message carries its group so forwarding
        /// traffic stays group-isolated even if a routing table is
        /// stale; unsharded clusters always stamp group `0`.
        group: u32,
        /// Wire-header bytes of this Forward's spelling: `8` for the
        /// unsharded format, `8 +` the group-header surcharge
        /// ([`crate::costs::CostModel::shard_group_header`]) once a
        /// cluster runs more than one group and the id must travel.
        header_bytes: usize,
        /// The batched commands.
        cmds: Vec<Command>,
    },
    /// One chunk of a state snapshot, shipped when a peer's applied
    /// prefix fell behind the sender's compaction floor (see
    /// [`crate::snapshot`]).
    SnapshotChunk {
        /// Replica-group id of the transfer (group-isolation guard; see
        /// [`EngineMsg::Forward::group`]).
        group: u32,
        /// Sender's term/ballot; receivers gate stale transfers on it.
        seal: Term,
        /// Last log slot / instance covered by the snapshot.
        last_slot: Slot,
        /// Term of the entry at `last_slot` (Raft family; `Term::ZERO`
        /// for the Paxos family, whose instances carry no term once
        /// executed).
        last_term: Term,
        /// Byte offset of this chunk within the encoded snapshot.
        offset: usize,
        /// Total encoded size.
        total: usize,
        /// Wire-header bytes of the sender's protocol spelling (Raft
        /// `InstallSnapshot` carries a richer header than a Paxos or
        /// Mencius `Checkpoint`); stamped by the sender from its rules
        /// so the shared envelope keeps the per-protocol cost model.
        header_bytes: usize,
        /// The chunk payload.
        data: Vec<u8>,
    },
    /// Acknowledges a fully installed snapshot; senders treat it like an
    /// acknowledgement at `upto` and resume normal replication.
    SnapshotAck {
        /// Replica-group id of the transfer being acknowledged.
        group: u32,
        /// Echoed term/ballot.
        seal: Term,
        /// The applied prefix the responder's state now covers.
        upto: Slot,
        /// Wire-header bytes of the responder's protocol spelling
        /// (Raft `SnapshotAck` vs Paxos/Mencius `CheckpointOk`).
        header_bytes: usize,
    },
    /// One chunk of a key-range export (live rebalancing): a source
    /// leader ships a frozen range to the destination group with the
    /// same chunking/reassembly machinery snapshots use. The payload is
    /// an encoded [`crate::shard::migration::RangeExport`].
    RangeChunk {
        /// The **destination** group (receivers drop foreign-group
        /// chunks, like every engine-level message).
        group: u32,
        /// The migration's partition-map version (doubles as the
        /// reassembly discriminator: a receiver never interleaves two
        /// different migrations from one sender).
        version: u64,
        /// Byte offset of this chunk within the encoded export.
        offset: usize,
        /// Total encoded size.
        total: usize,
        /// Wire-header bytes (the sender's snapshot-chunk spelling plus
        /// the migration version word).
        header_bytes: usize,
        /// The chunk payload.
        data: Vec<u8>,
    },
    /// Destination-side confirmation that a migration's `InstallRange`
    /// has committed and applied; the source leader stops re-exporting.
    /// Broadcast to every source-group replica so a freshly elected
    /// source leader learns it too.
    RangeAck {
        /// The **source** group.
        group: u32,
        /// The migration's version.
        version: u64,
        /// Wire-header bytes.
        header_bytes: usize,
    },
}

/// Client-replica request/response pairs.
#[derive(Debug, Clone)]
pub enum ClientMsg {
    /// A client submits a command to a replica.
    Request {
        /// The command to replicate (or serve locally, for lease reads).
        cmd: Command,
    },
    /// A replica answers a completed command.
    Response {
        /// Which command this answers.
        id: CmdId,
        /// The result.
        reply: Reply,
    },
    /// The rebalance coordinator publishes a bumped partition map to a
    /// client after a migration completes. Clients adopt it if its
    /// version exceeds their current map's.
    RouterUpdate {
        /// The new partition map (version inside).
        router: crate::shard::ShardRouter,
    },
}

/// MultiPaxos messages (Figure 1). Phase-2 messages batch multiple
/// instances, matching the paper's note that MultiPaxos "optimizes
/// performance by batching".
#[derive(Debug, Clone)]
pub enum PaxosMsg {
    /// Phase1a: `<"prepare", ballot, unchosen>`.
    Prepare {
        /// Proposer's ballot.
        ballot: Term,
        /// Smallest unchosen instance id.
        from_slot: Slot,
    },
    /// Phase1b: `<"prepareOK", ballot, instances ≥ unchosen>`.
    PrepareOk {
        /// Echoed ballot.
        ballot: Term,
        /// Accepted `(slot, accepted-ballot, value)` triples at or after
        /// the requested slot — excluding anything checkpointed away.
        entries: Vec<(Slot, Term, Command)>,
        /// The acceptor's highest used slot.
        log_tail: Slot,
        /// The acceptor's checkpoint floor: instances at or below it are
        /// chosen and executed but no longer reportable. A proposer must
        /// never fill no-ops at or below any reported floor — it waits
        /// for the accompanying [`PaxosMsg::Checkpoint`] instead.
        floor: Slot,
    },
    /// Phase2a: `<"accept", instance, value, ballot>` (batched).
    Accept {
        /// Proposer's ballot.
        ballot: Term,
        /// `(instance, value)` pairs.
        items: Vec<(Slot, Command)>,
        /// Whether the proposer's replication pipeline has window room
        /// for a quorum (piggybacked occupancy hint; the Paxos spelling
        /// of [`RaftMsg::Append::window_room`]). Rides in a reserved
        /// header byte — no wire cost.
        window_room: bool,
    },
    /// Phase2b reply: `<"acceptOK", instance, ballot>` (batched).
    AcceptOk {
        /// Echoed ballot.
        ballot: Term,
        /// Instances accepted.
        slots: Vec<Slot>,
        /// The acceptor's executed prefix, piggybacked so the proposer
        /// can spot laggards and choose between instance retransmission
        /// and a [`PaxosMsg::Checkpoint`].
        exec: Slot,
    },
    /// Commit notification to learners (batched).
    Learn {
        /// Instances now chosen.
        slots: Vec<Slot>,
    },
}

/// Raft-family messages (Figure 2), shared by Raft, Raft* and Raft*-PQL.
#[derive(Debug, Clone)]
pub enum RaftMsg {
    /// `<"requestVote", term, lastIndex, lastTerm>`.
    RequestVote {
        /// Candidate's new term.
        term: Term,
        /// Candidate's last log index.
        last_idx: Slot,
        /// Term of the candidate's last entry.
        last_term: Term,
    },
    /// `<"requestVoteOK", term, extraEnts>`; `extra` is Raft*'s addition
    /// (entries the voter has beyond the candidate's log, Figure 2a
    /// lines 14-16). Standard Raft always sends an empty `extra`.
    Vote {
        /// Voter's term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
        /// First slot of `extra` (candidate's `last_idx + 1`).
        extra_start: Slot,
        /// The voter's entries from `extra_start` on (Raft* only).
        extra: Vec<Entry>,
    },
    /// `<"append", term, prev, prevTerm, ents, commitIndex[, isDefault]>`.
    Append {
        /// Leader's term.
        term: Term,
        /// Index preceding `entries`.
        prev: Slot,
        /// Term at `prev`.
        prev_term: Term,
        /// The replicated suffix.
        entries: Vec<Entry>,
        /// Leader's commit index.
        commit: Slot,
        /// Whether the leader's replication pipeline currently has window
        /// room for a quorum — piggybacked so followers can cut forward
        /// batches eagerly while the leader can absorb them (the
        /// follower-side face of the adaptive batch cutter). Rides in a
        /// reserved header byte, so it adds no wire cost.
        window_room: bool,
    },
    /// `<"appendOK", term, lastIndex[, holders]>`; `holders` is the
    /// Raft*-PQL addition (Figure 8: lease holders granted by the sender).
    AppendOk {
        /// Responder's term.
        term: Term,
        /// Responder's last index after the append.
        last_idx: Slot,
        /// Replicas currently holding leases granted by the responder
        /// (Raft*-PQL only; empty otherwise).
        holders: Vec<NodeId>,
    },
    /// Rejection with the responder's state for next-index backoff.
    AppendReject {
        /// Responder's term.
        term: Term,
        /// Responder's last index (backoff hint).
        last_idx: Slot,
    },
}

/// Quorum-lease maintenance (PQL Section A.1; Leader Lease variant).
#[derive(Debug, Clone)]
pub enum LeaseMsg {
    /// Grantor extends the holder's lease until `expires_ns` on the
    /// virtual clock. (The TLA+ spec models this with a global timer; the
    /// simulator's clock plays that role. A deployment would subtract a
    /// clock-skew guard band.)
    Grant {
        /// Lease expiry, nanoseconds of virtual time.
        expires_ns: u64,
        /// The grantor's last log index at grant time. A holder whose
        /// lease lapsed must catch up to the highest such index among
        /// its new grants before serving local reads again — writes
        /// committed during the lapse never waited for this holder.
        last_idx: Slot,
    },
    /// Holder acknowledges a grant. A grantor only treats a replica as a
    /// lease *holder* (whose acknowledgement writes must await) after the
    /// ack, so a crashed holder stops blocking writes once its last
    /// acked grant expires.
    GrantAck {
        /// Echoed expiry.
        expires_ns: u64,
    },
}

/// Raft*-Mencius messages (Appendix A.4). One replica is the *default
/// leader* of each slot (round-robin); `Suggest` is an Append for owned
/// slots with `isDefault = true`, and skips propagate watermarks.
#[derive(Debug, Clone)]
pub enum MenciusMsg {
    /// The slot owner proposes commands in its own slots.
    Suggest {
        /// Owner's current term.
        term: Term,
        /// `(slot, command)` pairs; slots are the owner's (spaced `n`).
        items: Vec<(Slot, Command)>,
        /// Owner's skip watermark: every owner slot `< watermark` without
        /// a suggestion is a no-op.
        watermark: Slot,
    },
    /// Acknowledgement of a `Suggest`.
    SuggestOk {
        /// Echoed term.
        term: Term,
        /// Slots accepted.
        slots: Vec<Slot>,
        /// Responder's own skip watermark (piggybacked skip, Appendix
        /// A.3: "it piggybacks a skip message in its reply").
        watermark: Slot,
    },
    /// Direct watermark broadcast ("keep committing skip to keep the
    /// system moving forward"). Only meaningful from the owner itself;
    /// FIFO links make the watermark safe.
    SkipNotice {
        /// Sender's own skip watermark.
        watermark: Slot,
        /// Sender's executed prefix, piggybacked so peers can spot a
        /// replica that fell behind their checkpoint floor and ship it
        /// a [`MenciusMsg::Checkpoint`].
        exec: Slot,
    },
    /// Commit decisions for the sender's owned slots.
    Commit {
        /// Slots now committed.
        slots: Vec<Slot>,
    },
    /// An acceptor refuses a `Suggest` whose term is below a slot's
    /// (revocation-raised) ballot; the owner re-proposes elsewhere.
    SuggestReject {
        /// The refused slots.
        slots: Vec<Slot>,
        /// The ballot the acceptor holds for them.
        term: Term,
    },
    /// Revocation phase-1: take over a crashed owner's slot range with a
    /// higher ballot.
    Revoke {
        /// Revoker's ballot (unique, > any seen).
        term: Term,
        /// The suspected-dead owner.
        owner: NodeId,
        /// Revoke owner-slots in `(from, through]`... inclusive range
        /// start (exclusive of already-decided slots).
        from: Slot,
        /// Last slot of the revoked range.
        through: Slot,
    },
    /// Revocation phase-1 reply: promise plus any accepted values in the
    /// range that must be re-proposed rather than no-oped.
    RevokeOk {
        /// Echoed revocation ballot.
        term: Term,
        /// The owner whose slots are revoked.
        owner: NodeId,
        /// Accepted `(slot, ballot, value)` triples in the range.
        accepted: Vec<(Slot, Term, Command)>,
    },
    /// Revocation phase-2: decide the revoked slots (no-ops or recovered
    /// values).
    RevokeCommit {
        /// Revocation ballot.
        term: Term,
        /// Decided `(slot, command)` pairs for the revoked range.
        items: Vec<(Slot, Command)>,
    },
}

fn entries_size(entries: &[Entry]) -> usize {
    entries.iter().map(Entry::size_bytes).sum()
}

impl Payload for Msg {
    fn size_bytes(&self) -> usize {
        match self {
            Msg::Client(m) => match m {
                ClientMsg::Request { cmd } => 8 + cmd.size_bytes(),
                ClientMsg::Response { reply, .. } => 20 + reply.size_bytes(),
                // Version + segment table, 12 bytes per segment.
                ClientMsg::RouterUpdate { router } => 16 + 12 * router.segments().len(),
            },
            Msg::Engine(m) => match m {
                EngineMsg::Forward {
                    header_bytes, cmds, ..
                } => header_bytes + cmds.iter().map(Command::size_bytes).sum::<usize>(),
                EngineMsg::SnapshotChunk {
                    header_bytes, data, ..
                } => header_bytes + data.len(),
                EngineMsg::SnapshotAck { header_bytes, .. } => *header_bytes,
                EngineMsg::RangeChunk {
                    header_bytes, data, ..
                } => header_bytes + data.len(),
                EngineMsg::RangeAck { header_bytes, .. } => *header_bytes,
            },
            Msg::Paxos(m) => match m {
                PaxosMsg::Prepare { .. } => 24,
                PaxosMsg::PrepareOk { entries, .. } => {
                    24 + entries
                        .iter()
                        .map(|(_, _, c)| 24 + c.size_bytes())
                        .sum::<usize>()
                }
                PaxosMsg::Accept { items, .. } => {
                    16 + items.iter().map(|(_, c)| 8 + c.size_bytes()).sum::<usize>()
                }
                PaxosMsg::AcceptOk { slots, .. } => 24 + 8 * slots.len(),
                PaxosMsg::Learn { slots } => 8 + 8 * slots.len(),
            },
            Msg::Raft(m) => match m {
                RaftMsg::RequestVote { .. } => 32,
                RaftMsg::Vote { extra, .. } => 24 + entries_size(extra),
                RaftMsg::Append { entries, .. } => 40 + entries_size(entries),
                RaftMsg::AppendOk { holders, .. } => 24 + 4 * holders.len(),
                RaftMsg::AppendReject { .. } => 24,
            },
            Msg::Lease(LeaseMsg::Grant { .. }) => 24,
            Msg::Lease(LeaseMsg::GrantAck { .. }) => 16,
            Msg::Mencius(m) => match m {
                MenciusMsg::Suggest { items, .. } => {
                    32 + items.iter().map(|(_, c)| 8 + c.size_bytes()).sum::<usize>()
                }
                MenciusMsg::SuggestOk { slots, .. } => 24 + 8 * slots.len(),
                MenciusMsg::SuggestReject { slots, .. } => 16 + 8 * slots.len(),
                MenciusMsg::SkipNotice { .. } => 24,
                MenciusMsg::Commit { slots } => 8 + 8 * slots.len(),
                MenciusMsg::Revoke { .. } => 40,
                MenciusMsg::RevokeOk { accepted, .. } => {
                    24 + accepted
                        .iter()
                        .map(|(_, _, c)| 16 + c.size_bytes())
                        .sum::<usize>()
                }
                MenciusMsg::RevokeCommit { items, .. } => {
                    16 + items.iter().map(|(_, c)| 8 + c.size_bytes()).sum::<usize>()
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::CmdId;

    fn cmd(bytes: usize) -> Command {
        Command::put(CmdId { client: 1, seq: 1 }, 1, vec![0; bytes])
    }

    #[test]
    fn append_size_dominated_by_entries() {
        let small = Msg::Raft(RaftMsg::Append {
            term: Term(1),
            prev: Slot(0),
            prev_term: Term(0),
            entries: vec![Entry {
                term: Term(1),
                bal: Term(1),
                cmd: cmd(8),
            }],
            commit: Slot(0),
            window_room: true,
        });
        let big = Msg::Raft(RaftMsg::Append {
            term: Term(1),
            prev: Slot(0),
            prev_term: Term(0),
            entries: vec![Entry {
                term: Term(1),
                bal: Term(1),
                cmd: cmd(4096),
            }],
            commit: Slot(0),
            window_room: true,
        });
        assert!(big.size_bytes() - small.size_bytes() >= 4096 - 8);
    }

    #[test]
    fn response_size_includes_read_value() {
        let done = Msg::Client(ClientMsg::Response {
            id: CmdId { client: 1, seq: 1 },
            reply: Reply::Done,
        });
        let val = Msg::Client(ClientMsg::Response {
            id: CmdId { client: 1, seq: 1 },
            reply: Reply::Value(Some(vec![0; 4096])),
        });
        assert!(val.size_bytes() > done.size_bytes() + 4000);
    }

    #[test]
    fn control_messages_are_small() {
        assert!(
            Msg::Lease(LeaseMsg::Grant {
                expires_ns: 0,
                last_idx: Slot(4)
            })
            .size_bytes()
                < 64
        );
        assert!(
            Msg::Mencius(MenciusMsg::SkipNotice {
                watermark: Slot(10),
                exec: Slot(3)
            })
            .size_bytes()
                < 64
        );
        assert!(
            Msg::Raft(RaftMsg::RequestVote {
                term: Term(1),
                last_idx: Slot(0),
                last_term: Term(0)
            })
            .size_bytes()
                < 64
        );
    }

    #[test]
    fn snapshot_chunk_sizes_dominated_by_payload() {
        let chunk = vec![0u8; 64 * 1024];
        let m = Msg::Engine(EngineMsg::SnapshotChunk {
            group: 0,
            seal: Term(3),
            last_slot: Slot(100),
            last_term: Term(3),
            offset: 0,
            total: chunk.len(),
            header_bytes: 48,
            data: chunk,
        });
        assert!(m.size_bytes() >= 64 * 1024);
        assert!(
            Msg::Engine(EngineMsg::SnapshotAck {
                group: 0,
                seal: Term(3),
                upto: Slot(100),
                header_bytes: 16,
            })
            .size_bytes()
                < 64
        );
    }

    #[test]
    fn snapshot_wire_overhead_is_per_protocol() {
        // The Raft InstallSnapshot spelling carries a richer header than
        // the Paxos/Mencius Checkpoint spelling; the shared envelope
        // preserves that distinction through `header_bytes`.
        let chunk = |header_bytes| {
            Msg::Engine(EngineMsg::SnapshotChunk {
                group: 0,
                seal: Term(3),
                last_slot: Slot(100),
                last_term: Term(3),
                offset: 0,
                total: 128,
                header_bytes,
                data: vec![0u8; 128],
            })
            .size_bytes()
        };
        assert_eq!(chunk(48) - chunk(40), 8, "InstallSnapshot vs Checkpoint");
        let ack = |header_bytes| {
            Msg::Engine(EngineMsg::SnapshotAck {
                group: 0,
                seal: Term(3),
                upto: Slot(100),
                header_bytes,
            })
            .size_bytes()
        };
        assert_eq!(ack(16), 16);
        assert_eq!(ack(8), 8, "ballot-free Mencius CheckpointOk");
    }

    #[test]
    fn batched_sizes_scale_with_items() {
        let one = Msg::Paxos(PaxosMsg::Accept {
            ballot: Term(1),
            items: vec![(Slot(1), cmd(8))],
            window_room: true,
        });
        let two = Msg::Paxos(PaxosMsg::Accept {
            ballot: Term(1),
            items: vec![(Slot(1), cmd(8)), (Slot(2), cmd(8))],
            window_room: true,
        });
        assert!(two.size_bytes() > one.size_bytes());
    }

    #[test]
    fn forward_wire_size_pays_group_header_only_when_stamped() {
        let fwd = |header_bytes| {
            Msg::Engine(EngineMsg::Forward {
                group: 1,
                header_bytes,
                cmds: vec![cmd(8)],
            })
            .size_bytes()
        };
        // Unsharded spelling (8) vs sharded spelling carrying the group
        // id (8 + 4): the surcharge is exactly the group header.
        assert_eq!(fwd(12) - fwd(8), 4);
    }
}
