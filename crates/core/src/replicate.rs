//! Leader-side replication progress tracking, shared by Raft and Raft*.
//!
//! Tracks, per follower: the acknowledged match index, the highest index
//! already shipped (`sent_through`, so back-to-back batch flushes do not
//! retransmit in-flight suffixes — the etcd pipelining the paper's
//! baseline relies on), the `prev` used by the last send (for rejection
//! backoff), and the time of the last send (for timed retransmission).

use paxraft_sim::time::{SimDuration, SimTime};

use crate::types::{NodeId, Slot};

/// Per-follower replication progress at a leader.
#[derive(Debug, Clone)]
pub struct Replicator {
    match_index: Vec<Slot>,
    sent_through: Vec<Slot>,
    prev_sent: Vec<Slot>,
    last_sent: Vec<SimTime>,
}

impl Replicator {
    /// Fresh tracker for `n` replicas.
    pub fn new(n: usize) -> Self {
        Replicator {
            match_index: vec![Slot::NONE; n],
            sent_through: vec![Slot::NONE; n],
            prev_sent: vec![Slot::NONE; n],
            last_sent: vec![SimTime::ZERO; n],
        }
    }

    /// Resets on leadership acquisition: optimistically assume followers
    /// hold our pre-existing log through `tail` (rejections back us off).
    pub fn reset_for_leadership(&mut self, tail: Slot) {
        for i in 0..self.match_index.len() {
            self.match_index[i] = Slot::NONE;
            self.sent_through[i] = tail;
            self.prev_sent[i] = tail;
            self.last_sent[i] = SimTime::ZERO;
        }
    }

    /// Acknowledged match index of `p`.
    pub fn match_index(&self, p: NodeId) -> Slot {
        self.match_index[p.0 as usize]
    }

    /// The `prev` the next Append to `p` should use: everything after it
    /// is shipped in that message.
    pub fn next_prev(&self, p: NodeId) -> Slot {
        self.sent_through[p.0 as usize].max(self.match_index[p.0 as usize])
    }

    /// Records that entries `(prev, tail]` were shipped to `p` at `now`.
    pub fn mark_sent(&mut self, p: NodeId, prev: Slot, tail: Slot, now: SimTime) {
        let i = p.0 as usize;
        self.prev_sent[i] = prev;
        if tail > self.sent_through[i] {
            self.sent_through[i] = tail;
        }
        self.last_sent[i] = now;
    }

    /// Records an acknowledgement; returns whether the match advanced.
    pub fn on_ack(&mut self, p: NodeId, last_idx: Slot) -> bool {
        let i = p.0 as usize;
        if last_idx > self.match_index[i] {
            self.match_index[i] = last_idx;
            if self.sent_through[i] < last_idx {
                self.sent_through[i] = last_idx;
            }
            true
        } else {
            false
        }
    }

    /// Records a rejection with the follower's `last_idx` hint; rewinds
    /// the send cursor and returns the `prev` to probe next.
    pub fn on_reject(&mut self, p: NodeId, hint: Slot) -> Slot {
        let i = p.0 as usize;
        let backoff = Slot(self.prev_sent[i].0.saturating_sub(1));
        let mut new_prev = backoff.min(hint);
        if new_prev < self.match_index[i] {
            new_prev = self.match_index[i];
        }
        self.sent_through[i] = new_prev;
        self.prev_sent[i] = new_prev;
        new_prev
    }

    /// Timed retransmission: when `p` has unacknowledged in-flight
    /// entries older than `retry`, rewinds the cursor to the match point
    /// so the next send repeats them. Returns whether a rewind happened.
    pub fn maybe_rewind(&mut self, p: NodeId, now: SimTime, retry: SimDuration) -> bool {
        let i = p.0 as usize;
        if self.sent_through[i] > self.match_index[i]
            && now.since(self.last_sent[i].min(now)) > retry
        {
            self.sent_through[i] = self.match_index[i];
            true
        } else {
            false
        }
    }

    /// The largest slot replicated on at least `k` of the tracked peers
    /// (the leader itself not included).
    pub fn kth_largest_match(&self, k: usize, exclude: NodeId) -> Slot {
        let mut m: Vec<Slot> = self
            .match_index
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != exclude.0 as usize)
            .map(|(_, &s)| s)
            .collect();
        m.sort_unstable();
        if k == 0 || k > m.len() {
            return Slot::NONE;
        }
        m[m.len() - k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn fresh_tracker_sends_everything() {
        let r = Replicator::new(3);
        assert_eq!(r.next_prev(NodeId(1)), Slot::NONE);
    }

    #[test]
    fn mark_sent_suppresses_retransmission() {
        let mut r = Replicator::new(3);
        r.mark_sent(NodeId(1), Slot::NONE, Slot(10), t(0));
        // The next batch flush ships only entries after 10.
        assert_eq!(r.next_prev(NodeId(1)), Slot(10));
    }

    #[test]
    fn ack_advances_match() {
        let mut r = Replicator::new(3);
        r.mark_sent(NodeId(1), Slot::NONE, Slot(10), t(0));
        assert!(r.on_ack(NodeId(1), Slot(10)));
        assert!(!r.on_ack(NodeId(1), Slot(5)), "stale ack ignored");
        assert_eq!(r.match_index(NodeId(1)), Slot(10));
    }

    #[test]
    fn reject_backs_off_and_respects_hint() {
        let mut r = Replicator::new(3);
        r.reset_for_leadership(Slot(20));
        // Probe at prev=20 fails; follower says its last index is 3.
        let p = r.on_reject(NodeId(2), Slot(3));
        assert_eq!(p, Slot(3), "jump to the follower's tail");
        r.mark_sent(NodeId(2), p, Slot(20), t(0));
        // Another mismatch without a useful hint decrements.
        let p2 = r.on_reject(NodeId(2), Slot(3));
        assert_eq!(p2, Slot(2));
    }

    #[test]
    fn reject_never_rewinds_before_match() {
        let mut r = Replicator::new(3);
        r.on_ack(NodeId(1), Slot(8));
        r.mark_sent(NodeId(1), Slot(8), Slot(12), t(0));
        let p = r.on_reject(NodeId(1), Slot(1));
        assert_eq!(p, Slot(8), "matched prefix is never re-probed");
    }

    #[test]
    fn rewind_after_retry_interval() {
        let mut r = Replicator::new(3);
        r.mark_sent(NodeId(1), Slot::NONE, Slot(10), t(0));
        assert!(!r.maybe_rewind(NodeId(1), t(100), SimDuration::from_millis(600)));
        assert!(r.maybe_rewind(NodeId(1), t(700), SimDuration::from_millis(600)));
        assert_eq!(r.next_prev(NodeId(1)), Slot::NONE, "cursor back at match");
    }

    #[test]
    fn no_rewind_when_fully_acked() {
        let mut r = Replicator::new(3);
        r.mark_sent(NodeId(1), Slot::NONE, Slot(10), t(0));
        r.on_ack(NodeId(1), Slot(10));
        assert!(!r.maybe_rewind(NodeId(1), t(10_000), SimDuration::from_millis(600)));
    }

    #[test]
    fn kth_largest_match_quorum() {
        let mut r = Replicator::new(5);
        r.on_ack(NodeId(1), Slot(10));
        r.on_ack(NodeId(2), Slot(7));
        r.on_ack(NodeId(3), Slot(3));
        // Excluding leader 0; matches are [10,7,3,0]; 2nd largest = 7:
        // 2 followers + leader = majority of 5.
        assert_eq!(r.kth_largest_match(2, NodeId(0)), Slot(7));
        assert_eq!(r.kth_largest_match(1, NodeId(0)), Slot(10));
        assert_eq!(r.kth_largest_match(4, NodeId(0)), Slot::NONE);
    }

    #[test]
    fn leadership_reset_is_optimistic() {
        let mut r = Replicator::new(3);
        r.on_ack(NodeId(1), Slot(5));
        r.reset_for_leadership(Slot(9));
        assert_eq!(r.match_index(NodeId(1)), Slot::NONE);
        assert_eq!(r.next_prev(NodeId(1)), Slot(9));
    }
}
