//! Closed-loop measurement clients (Section 5 "Workload").
//!
//! Each client issues get/put requests back-to-back against its nearest
//! replica, drawing operations from the YCSB-like generator. Completions
//! are timestamped on the virtual clock so the harness can trim warm-up
//! and cool-down windows; optionally the client records a linearizability
//! history for its operations.

use paxraft_sim::impl_actor_any;
use paxraft_sim::sim::{Actor, ActorId, Ctx};
use paxraft_sim::time::{SimDuration, SimTime};
use paxraft_sim::trace::SpanKind;
use paxraft_workload::generator::{Generator, OpKind};
use paxraft_workload::linearize::{Action, OpRecord};

use crate::kv::{CmdId, Command, Key, Reply};
use crate::msg::{ClientMsg, Msg};
use crate::shard::ShardRouter;
use crate::telemetry::LatencyHistogram;

/// Client-side shard routing: the partition map plus, per group, the
/// replica this client talks to (its own region's member of that group).
#[derive(Debug, Clone)]
pub struct ClientRouting {
    /// The partition map the client believes in. May be stale relative
    /// to the replicas' map — the [`Reply::WrongGroup`] redirect is what
    /// reconciles a raced lookup.
    pub router: ShardRouter,
    /// `targets[g]` serves group `g` for this client.
    pub targets: Vec<ActorId>,
}

impl ClientRouting {
    /// The replica serving `key`'s group, or `None` when the (possibly
    /// stale) router names a group this client has no target for — the
    /// caller falls back to its default replica and lets the
    /// [`Reply::WrongGroup`] redirect correct the route.
    fn target_for(&self, key: Key) -> Option<ActorId> {
        self.targets
            .get(self.router.group_of(key) as usize)
            .copied()
    }
}

/// One completed operation, for metrics.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Virtual completion time (ns).
    pub at_ns: u64,
    /// Request latency (ns).
    pub latency_ns: u64,
    /// Read or write.
    pub kind: OpKind,
}

/// A closed-loop workload client.
pub struct WorkloadClient {
    /// Logical client id.
    pub client_id: u32,
    /// The replica this client talks to (its nearest).
    pub target: ActorId,
    gen: Generator,
    seq: u64,
    inflight: Option<Inflight>,
    retry_after: SimDuration,
    /// Completed operations (never trimmed; the harness filters windows).
    pub completions: Vec<Completion>,
    /// When `Some(key)`, record a linearizability history for that key
    /// (`None` disables recording).
    pub history_key: Option<Key>,
    /// Recorded per-key history.
    pub history: Vec<OpRecord>,
    /// Sharded clusters: per-key routing over the replica groups
    /// (`None` = unsharded, every operation goes to [`Self::target`]).
    pub shard: Option<ClientRouting>,
    /// Operations answered with [`Reply::WrongGroup`] and re-sent to the
    /// owning group (stats; misrouting is expected when the client's
    /// partition map is stale or a migration is in flight).
    pub redirects: u64,
    /// Redirects *ignored* because the replier's map version was older
    /// than the newest version this client has seen — waiting out a
    /// replica that lags behind a migration instead of ping-ponging
    /// (stats).
    pub stale_redirects: u64,
    /// Router updates adopted from the rebalance coordinator (stats).
    pub router_updates: u64,
    /// Highest partition-map version observed (own router or any
    /// redirect). Redirects below this are stale repliers to be waited
    /// out: during the freeze→install window the destination still
    /// answers per the old map, and without the ratchet a client whose
    /// own map predates the migration would bounce between the two
    /// groups at RTT rate.
    pub seen_version: u64,
    /// Cumulative per-group latency histograms, indexed by the group
    /// that served each completion (group 0 when unsharded). Pure
    /// bookkeeping at completion time — never touches the schedule —
    /// so it is always on; the harness snapshots these into the
    /// telemetry registry at each sampling tick.
    pub group_latency: Vec<LatencyHistogram>,
    /// Set while a load-shaping pause timer is armed (scenario load
    /// shapes only); stops the poll tick from double-sending.
    pause_pending: bool,
}

/// Timer token for the regular send/retry poll tick.
const T_POLL: u64 = 1;
/// Timer token for the short stalled-redirect re-send.
const T_STALL: u64 = 2;
/// Timer token for a load-shaping pre-send pause (scenario workloads
/// only; never armed without one, which keeps unscripted runs
/// schedule-identical).
const T_PAUSE: u64 = 3;

#[derive(Debug, Clone)]
struct Inflight {
    cmd: Command,
    kind: OpKind,
    key: Key,
    /// Where the operation was last sent (redirects move it).
    dest: ActorId,
    sent: SimTime,
    first_sent: SimTime,
    /// Set when a redirect was ignored as stale (the replier's map was
    /// older than ours — it has not applied the move we know about
    /// yet); the short stall timer re-sends instead of following the
    /// redirect backwards.
    stalled: bool,
}

impl WorkloadClient {
    /// Creates a client driving `target` with the given generator.
    pub fn new(client_id: u32, target: ActorId, gen: Generator) -> Self {
        WorkloadClient {
            client_id,
            target,
            gen,
            seq: 0,
            inflight: None,
            // Well above the slowest protocol's op latency (~400 ms for
            // Mencius-100%), well below a closed-loop stall being the
            // dominant cost under message loss.
            retry_after: SimDuration::from_secs(1),
            completions: Vec::new(),
            history_key: None,
            history: Vec::new(),
            shard: None,
            redirects: 0,
            stale_redirects: 0,
            router_updates: 0,
            seen_version: 0,
            group_latency: Vec::new(),
            pause_pending: false,
        }
    }

    fn next_command(&mut self, now_ns: u64) -> (Command, OpKind, Key) {
        let spec = self.gen.next_op_at(now_ns);
        self.seq += 1;
        let id = CmdId {
            client: self.client_id,
            seq: self.seq,
        };
        let cmd = match spec.kind {
            OpKind::Read => Command::get(id, spec.key),
            OpKind::Write => Command::put(id, spec.key, vec![0; spec.value_size.max(8)]),
        };
        (cmd, spec.kind, spec.key)
    }

    fn send_next(&mut self, ctx: &mut Ctx<Msg>) {
        // Load shaping (scenario workloads): hold the next send for the
        // shape's pause. Without a scenario the pause is always zero
        // and no timer is ever armed.
        let pause = self.gen.pause_at(ctx.now().as_nanos());
        if pause > SimDuration::ZERO {
            self.pause_pending = true;
            ctx.set_timer(pause, T_PAUSE);
            return;
        }
        self.send_now(ctx);
    }

    fn send_now(&mut self, ctx: &mut Ctx<Msg>) {
        let (cmd, kind, key) = self.next_command(ctx.now().as_nanos());
        let dest = self
            .shard
            .as_ref()
            .and_then(|s| s.target_for(key))
            .unwrap_or(self.target);
        self.inflight = Some(Inflight {
            cmd: cmd.clone(),
            kind,
            key,
            dest,
            sent: ctx.now(),
            first_sent: ctx.now(),
            stalled: false,
        });
        ctx.send(dest, Msg::Client(ClientMsg::Request { cmd }));
        ctx.trace_span(SpanKind::ClientSend, self.client_id, self.seq);
    }

    /// The recorded history, completed by the still-in-flight operation
    /// if it is a write to the recorded key. An unanswered write may
    /// already have taken effect at the replicas (the response was
    /// simply still crossing the WAN when the run stopped), and a
    /// completed read may have observed its value — omitting it would
    /// make the checker report a read of an unwritten value. The open
    /// interval (`respond_ns = u64::MAX`) lets the checker linearize it
    /// anywhere at or after its invocation, including "never visible"
    /// (ordered after every completed read). An in-flight *read*
    /// constrains nothing and is dropped.
    pub fn history_records(&self) -> Vec<OpRecord> {
        let mut out = self.history.clone();
        if let Some(inflight) = &self.inflight {
            if self.history_key == Some(inflight.key) && inflight.kind == OpKind::Write {
                out.push(OpRecord {
                    client: self.client_id as usize,
                    key: inflight.key,
                    action: Action::Write(inflight.cmd.id.as_value_id()),
                    invoke_ns: inflight.first_sent.as_nanos(),
                    respond_ns: u64::MAX,
                });
            }
        }
        out
    }
}

impl Actor<Msg> for WorkloadClient {
    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        // Stagger client start within 10 ms to avoid lockstep batches.
        let jitter = SimDuration::from_micros(ctx.rng().gen_range(10_000));
        ctx.set_timer(jitter, 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, _from: ActorId, msg: Msg) {
        if let Msg::Client(ClientMsg::RouterUpdate { router }) = &msg {
            // The rebalance coordinator published a bumped partition
            // map; adopt it if it is newer than ours.
            self.seen_version = self.seen_version.max(router.version());
            if let Some(s) = &mut self.shard {
                if router.version() > s.router.version() {
                    s.router = router.clone();
                    self.router_updates += 1;
                }
            }
            return;
        }
        let Msg::Client(ClientMsg::Response { id, reply }) = msg else {
            return;
        };
        let Some(inflight) = &self.inflight else {
            return;
        };
        if inflight.cmd.id != id {
            return; // stale response from a retry
        }
        if let Reply::WrongGroup { group, version } = reply {
            let my_version = self
                .shard
                .as_ref()
                .map_or(0, |s| s.router.version())
                .max(self.seen_version);
            if version < my_version {
                // The replier's map is older than the newest one we
                // have seen: it has not applied the move yet (typically
                // the destination of an in-flight migration that has
                // not committed its install). Following the redirect
                // would ping-pong between the two groups at RTT rate;
                // hold the operation and re-send after a short stall.
                self.stale_redirects += 1;
                if let Some(inf) = &mut self.inflight {
                    inf.stalled = true;
                }
                ctx.trace_span(SpanKind::ClientStall, id.client, id.seq);
                ctx.set_timer(SimDuration::from_millis(50), T_STALL);
                return;
            }
            // The replica's partition map is at or ahead of everything
            // we have seen: follow (and ratchet to) its version, and
            // re-send to the group it named (latency keeps accruing
            // from the first send — the misroute is part of the
            // operation).
            self.seen_version = self.seen_version.max(version);
            self.redirects += 1;
            let dest = self
                .shard
                .as_ref()
                .and_then(|s| s.targets.get(group as usize).copied())
                .unwrap_or(self.target);
            let cmd = inflight.cmd.clone();
            if let Some(inf) = &mut self.inflight {
                inf.dest = dest;
                inf.sent = ctx.now();
                inf.stalled = false;
            }
            ctx.send(dest, Msg::Client(ClientMsg::Request { cmd }));
            ctx.trace_span(
                SpanKind::ClientRedirect {
                    group: group as u64,
                },
                id.client,
                id.seq,
            );
            return;
        }
        let inflight = self.inflight.take().expect("checked");
        let now = ctx.now();
        let latency = now.since(inflight.first_sent);
        ctx.trace_span(SpanKind::ClientDone, id.client, id.seq);
        self.completions.push(Completion {
            at_ns: now.as_nanos(),
            latency_ns: latency.as_nanos(),
            kind: inflight.kind,
        });
        let g = self
            .shard
            .as_ref()
            .map_or(0, |s| s.router.group_of(inflight.key)) as usize;
        if self.group_latency.len() <= g {
            self.group_latency
                .resize(g + 1, LatencyHistogram::default());
        }
        self.group_latency[g].record(latency);
        if self.history_key == Some(inflight.key) {
            let action = match inflight.kind {
                OpKind::Write => Action::Write(id.as_value_id()),
                OpKind::Read => Action::Read(reply.value_id()),
            };
            self.history.push(OpRecord {
                client: self.client_id as usize,
                key: inflight.key,
                action,
                invoke_ns: inflight.first_sent.as_nanos(),
                respond_ns: now.as_nanos(),
            });
        }
        self.send_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, token: u64) {
        if token == T_PAUSE {
            // The load-shaping pause elapsed: issue the held send (the
            // closed loop stays closed — only the gap widened).
            if self.pause_pending && self.inflight.is_none() {
                self.pause_pending = false;
                self.send_now(ctx);
            }
            return;
        }
        if token == T_STALL {
            // Re-send an operation held back by a stale redirect. Use
            // whichever routing knowledge is freshest: the client's own
            // map if it is at the newest version seen, else the last
            // followed redirect's target (`dest`) — a newer redirect
            // taught us a move our map does not have yet. The replier
            // catches up within a migration's install time, so short
            // retries converge quickly.
            if let Some(inflight) = &self.inflight {
                if inflight.stalled {
                    let cmd = inflight.cmd.clone();
                    let own_map_fresh = self
                        .shard
                        .as_ref()
                        .is_some_and(|s| s.router.version() >= self.seen_version);
                    let dest = if own_map_fresh {
                        self.shard
                            .as_ref()
                            .and_then(|s| s.target_for(inflight.key))
                            .unwrap_or(inflight.dest)
                    } else {
                        inflight.dest
                    };
                    if let Some(inf) = &mut self.inflight {
                        inf.dest = dest;
                        inf.sent = ctx.now();
                        inf.stalled = false;
                    }
                    let id = cmd.id;
                    ctx.send(dest, Msg::Client(ClientMsg::Request { cmd }));
                    ctx.trace_span(SpanKind::ClientRetry, id.client, id.seq);
                }
            }
            return;
        }
        match &self.inflight {
            None if self.pause_pending => {} // a pause timer will send
            None => self.send_next(ctx),
            Some(inflight) => {
                if ctx.now().since(inflight.sent) > self.retry_after {
                    // Retry (dedup at the replicas makes this safe).
                    let cmd = inflight.cmd.clone();
                    let dest = inflight.dest;
                    if let Some(inf) = &mut self.inflight {
                        inf.sent = ctx.now();
                    }
                    let id = cmd.id;
                    ctx.send(dest, Msg::Client(ClientMsg::Request { cmd }));
                    ctx.trace_span(SpanKind::ClientRetry, id.client, id.seq);
                }
            }
        }
        ctx.set_timer(SimDuration::from_millis(500), T_POLL);
    }

    impl_actor_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxraft_sim::rng::SimRng;
    use paxraft_workload::generator::WorkloadConfig;

    #[test]
    fn commands_get_unique_increasing_seqs() {
        let gen = Generator::new(WorkloadConfig::default(), 0, SimRng::new(1));
        let mut c = WorkloadClient::new(3, ActorId(0), gen);
        let (c1, _, _) = c.next_command(0);
        let (c2, _, _) = c.next_command(0);
        assert_eq!(c1.id.client, 3);
        assert_eq!(c1.id.seq + 1, c2.id.seq);
    }

    #[test]
    fn stale_router_with_more_groups_than_targets_falls_back() {
        // A router believing in 4 groups on a client holding 2 targets
        // (partition map raced a split): keys the router maps to groups
        // 2/3 fall back to the default target instead of panicking; the
        // replica-side WrongGroup redirect then corrects the route.
        let routing = ClientRouting {
            router: ShardRouter::new(1_000, 4),
            targets: vec![ActorId(0), ActorId(1)],
        };
        let (lo3, _) = routing.router.range(3);
        assert_eq!(routing.target_for(5), Some(ActorId(0)));
        assert_eq!(routing.target_for(lo3), None, "no target for group 3");
    }

    #[test]
    fn write_values_sized_by_workload() {
        let cfg = WorkloadConfig {
            read_fraction: 0.0,
            value_size: 4096,
            ..WorkloadConfig::default()
        };
        let gen = Generator::new(cfg, 0, SimRng::new(1));
        let mut c = WorkloadClient::new(0, ActorId(0), gen);
        let (cmd, kind, _) = c.next_command(0);
        assert_eq!(kind, OpKind::Write);
        if let crate::kv::Op::Put { value, .. } = &cmd.op {
            assert_eq!(value.len(), 4096);
        } else {
            panic!("expected put");
        }
    }
}
