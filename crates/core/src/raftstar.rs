//! Raft* (Section 3, Figure 2 *including* the blue code) with the ported
//! Paxos Quorum Lease optimization (Raft*-PQL, Figure 8) and the
//! Leader-Lease baseline as read-mode options.
//!
//! Raft* differs from Raft in exactly the two ways Section 3 introduces:
//!
//! 1. **No erasing.** A voter attaches the entries it has *beyond* the
//!    candidate's log to its `requestVoteOK` (`extra`), and the new
//!    leader extends its log with the safe value (highest ballot) per
//!    index. An acceptor rejects an append whose result would be shorter
//!    than its own log (`lastIndex ≤ prev + length(ents)`), so follower
//!    logs are only ever overwritten or extended — the state transition
//!    maps onto Paxos `Accept`, never onto an impossible "un-accept".
//! 2. **Ballot rewriting.** Every entry carries a `bal` field; each
//!    accepted append rewrites `bal = term` for the whole covered prefix,
//!    so an `appendOK` at term `t` is a Paxos `acceptOK` at ballot `t`
//!    for every covered instance. This removes Raft's Section-5.4.2
//!    commit restriction: Raft*'s `LeaderLearn` commits the f-th largest
//!    follower match with **no entry-term check**.
//!
//! The `[PQL]`-marked blocks are the mechanical port of Paxos Quorum
//! Lease under the refinement mapping (Figure 8): `Phase2b`'s holder
//! attachment maps to `appendOK`, `Learn`'s holder-quorum check maps to
//! `LeaderLearn` *including the leader's own grants* (the implicit
//! `acceptOK`), and the added `LocalRead` action waits until every log
//! entry touching the key is `≤ commitIndex` and applied.

use std::collections::HashMap;

use paxraft_sim::impl_actor_any;
use paxraft_sim::sim::{Actor, ActorId, Ctx};
use paxraft_sim::time::SimDuration;

use crate::config::{ReadMode, ReplicaConfig};
use crate::kv::{Command, Key, KvStore, Op};
use crate::log::{Entry, Log};
use crate::msg::{ClientMsg, LeaseMsg, Msg, RaftMsg};
use crate::pql::LeaseManager;
use crate::raft::Role;
use crate::replicate::Replicator;
use crate::snapshot::{self, Snapshot, SnapshotAssembler, SnapshotSender, SnapshotStats};
use crate::types::{max_failures, quorum, NodeId, Slot, Term};

const T_ELECTION: u64 = 1 << 48;
const T_HEARTBEAT: u64 = 2 << 48;
const T_BATCH: u64 = 3 << 48;
const T_LEASE: u64 = 4 << 48;
const KIND_MASK: u64 = 0xFFFF << 48;

/// A Raft* replica, optionally running the ported PQL or LL read path.
pub struct RaftStarReplica {
    cfg: ReplicaConfig,
    current_term: Term,
    role: Role,
    leader_hint: Option<NodeId>,
    log: Log,
    commit_index: Slot,
    last_applied: Slot,
    kv: KvStore,
    votes: u64,
    /// Raft*: extras received from voters, keyed by voter.
    vote_extras: HashMap<NodeId, (Slot, Vec<Entry>)>,
    repl: Replicator,
    /// [PQL] Last lease-holder set reported by each follower's appendOK.
    reported_holders: Vec<Vec<NodeId>>,
    /// [PQL] Lease state (present in LeaderLease/QuorumLease modes).
    lease: Option<LeaseManager>,
    /// [PQL] Highest log slot writing each key (conflict check for local
    /// reads; conservative across overwrites).
    key_last_write: HashMap<Key, Slot>,
    /// [PQL] Local reads waiting for a conflicting write to apply:
    /// `(command, serve once last_applied ≥ slot)`.
    parked_reads: Vec<(Command, Slot)>,
    pending: Vec<Command>,
    batch_armed: bool,
    election_gen: u64,
    heartbeat_gen: u64,
    /// Reassembles incoming snapshot chunks (follower side).
    snap_asm: SnapshotAssembler,
    /// Per-peer transfer rate-limiting (leader side).
    snap_send: SnapshotSender,
    /// Durable snapshot backing the compacted log prefix; restored on
    /// crash-restart.
    stable_snap: Option<Snapshot>,
    snap_stats: SnapshotStats,
    /// Client responses sent (stats).
    pub responses_sent: u64,
    /// [PQL] Reads served from the local copy (stats).
    pub local_reads_served: u64,
}

impl RaftStarReplica {
    /// Creates a replica; `cfg.read_mode` selects Raft* (`LogRead`),
    /// LL (`LeaderLease`) or Raft*-PQL (`QuorumLease`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ReplicaConfig) -> Self {
        cfg.validate().expect("invalid replica config");
        let n = cfg.n;
        let lease = match cfg.read_mode {
            ReadMode::LogRead => None,
            mode => Some(LeaseManager::new(cfg.lease.clone(), mode, n, cfg.id)),
        };
        RaftStarReplica {
            cfg,
            current_term: Term::ZERO,
            role: Role::Follower,
            leader_hint: None,
            log: Log::new(),
            commit_index: Slot::NONE,
            last_applied: Slot::NONE,
            kv: KvStore::new(),
            votes: 0,
            vote_extras: HashMap::new(),
            repl: Replicator::new(n),
            reported_holders: vec![Vec::new(); n],
            lease,
            key_last_write: HashMap::new(),
            parked_reads: Vec::new(),
            pending: Vec::new(),
            batch_armed: false,
            election_gen: 0,
            heartbeat_gen: 0,
            snap_asm: SnapshotAssembler::default(),
            snap_send: SnapshotSender::new(n),
            stable_snap: None,
            snap_stats: SnapshotStats::default(),
            responses_sent: 0,
            local_reads_served: 0,
        }
    }

    /// Whether this replica is the leader.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Current term.
    pub fn current_term(&self) -> Term {
        self.current_term
    }

    /// The log (for convergence and invariant tests).
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// Commit index.
    pub fn commit_index(&self) -> Slot {
        self.commit_index
    }

    /// Read-only state machine access.
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// Lease state (tests).
    pub fn lease(&self) -> Option<&LeaseManager> {
        self.lease.as_ref()
    }

    /// Compaction / snapshot-transfer counters, peaks included.
    pub fn snap_stats(&self) -> SnapshotStats {
        let mut s = self.snap_stats;
        s.note_log_size(self.log.peak_entries(), self.log.peak_bytes());
        s
    }

    fn me_bit(&self) -> u64 {
        1 << self.cfg.id.0
    }

    fn arm_election(&mut self, ctx: &mut Ctx<Msg>) {
        self.election_gen += 1;
        let span = self.cfg.election_max.as_nanos() - self.cfg.election_min.as_nanos();
        let delay =
            if self.cfg.initial_leader == Some(self.cfg.id) && self.current_term == Term::ZERO {
                SimDuration::from_millis(5)
            } else {
                self.cfg.election_min + SimDuration::from_nanos(ctx.rng().gen_range(span.max(1)))
            };
        ctx.set_timer(delay, T_ELECTION | self.election_gen);
    }

    fn arm_heartbeat(&mut self, ctx: &mut Ctx<Msg>) {
        self.heartbeat_gen += 1;
        ctx.set_timer(self.cfg.heartbeat, T_HEARTBEAT | self.heartbeat_gen);
    }

    fn arm_batch(&mut self, ctx: &mut Ctx<Msg>) {
        if !self.batch_armed {
            self.batch_armed = true;
            ctx.set_timer(self.cfg.batch_delay, T_BATCH);
        }
    }

    fn step_down(&mut self, term: Term, ctx: &mut Ctx<Msg>) {
        self.current_term = term;
        self.role = Role::Follower;
        self.arm_election(ctx);
    }

    /// Figure 2a `RequestVote`.
    fn start_election(&mut self, ctx: &mut Ctx<Msg>) {
        self.current_term = self.current_term.next_for(self.cfg.id, self.cfg.n);
        self.role = Role::Candidate;
        self.leader_hint = None;
        self.votes = self.me_bit();
        self.vote_extras.clear();
        for peer in self.cfg.others() {
            ctx.send(
                self.cfg.peer(peer),
                Msg::Raft(RaftMsg::RequestVote {
                    term: self.current_term,
                    last_idx: self.log.last_index(),
                    last_term: self.log.last_term(),
                }),
            );
        }
        self.arm_election(ctx);
        self.try_become_leader(ctx);
    }

    /// Figure 2a `BecomeLeader`: merge the safe entries from voter extras
    /// (highest `bal` per index), rewriting their term and ballot to the
    /// new term.
    fn try_become_leader(&mut self, ctx: &mut Ctx<Msg>) {
        if self.role != Role::Candidate || (self.votes.count_ones() as usize) < quorum(self.cfg.n) {
            return;
        }
        let my_last = self.log.last_index();
        let max_end = self
            .vote_extras
            .values()
            .map(|(start, ents)| Slot(start.0 + ents.len() as u64).prev())
            .max()
            .unwrap_or(Slot::NONE);
        let mut idx = my_last.next();
        while idx <= max_end {
            let mut best: Option<&Entry> = None;
            for (start, ents) in self.vote_extras.values() {
                if idx.0 >= start.0 {
                    if let Some(e) = ents.get((idx.0 - start.0) as usize) {
                        if best.map(|b| e.bal > b.bal).unwrap_or(true) {
                            best = Some(e);
                        }
                    }
                }
            }
            let cmd = best.map(|e| e.cmd.clone()).unwrap_or_else(Command::noop);
            // Figure 2a lines 25-27: bal and term become currentTerm.
            self.log.append(Entry {
                term: self.current_term,
                bal: self.current_term,
                cmd,
            });
            idx = idx.next();
        }
        self.index_writes_from(my_last.next());
        self.role = Role::Leader;
        self.leader_hint = Some(self.cfg.id);
        self.repl.reset_for_leadership(self.log.last_index());
        // A fresh no-op carries the term forward (progress, not safety:
        // Raft* needs no 5.4.2-style commit restriction).
        self.log.append(Entry {
            term: self.current_term,
            bal: self.current_term,
            cmd: Command::noop(),
        });
        self.log
            .set_bal_upto(self.log.last_index(), self.current_term);
        self.broadcast_append(ctx);
        self.arm_heartbeat(ctx);
        self.flush_pending(ctx);
    }

    /// [PQL] Records key→slot for entries from `from` onward.
    fn index_writes_from(&mut self, from: Slot) {
        if self.lease.is_none() {
            return;
        }
        let mut s = from;
        while let Some(e) = self.log.get(s) {
            if let Op::Put { key, .. } = &e.cmd.op {
                self.key_last_write.insert(*key, s);
            }
            s = s.next();
        }
    }

    fn broadcast_append(&mut self, ctx: &mut Ctx<Msg>) {
        let peers: Vec<NodeId> = self.cfg.others().collect();
        for peer in peers {
            self.send_append_to(ctx, peer);
        }
    }

    fn send_append_to(&mut self, ctx: &mut Ctx<Msg>, peer: NodeId) {
        let mut prev = self.repl.next_prev(peer);
        if prev < self.log.last_included().0 {
            // The follower's next entry was compacted away: ship the
            // state-machine snapshot, then pipeline the retained suffix
            // behind it on the FIFO link.
            let Some(snap_slot) = self.send_snapshot_to(ctx, peer) else {
                return; // transfer in flight
            };
            prev = snap_slot;
        }
        let prev_term = self.log.term_at(prev).unwrap_or(Term::ZERO);
        let entries = self.log.suffix_from(prev);
        self.repl
            .mark_sent(peer, prev, self.log.last_index(), ctx.now());
        ctx.send(
            self.cfg.peer(peer),
            Msg::Raft(RaftMsg::Append {
                term: self.current_term,
                prev,
                prev_term,
                entries,
                commit: self.commit_index,
            }),
        );
    }

    /// Ships the current state-machine snapshot to `peer` in chunks,
    /// rate-limited to one transfer per retry interval.
    fn send_snapshot_to(&mut self, ctx: &mut Ctx<Msg>, peer: NodeId) -> Option<Slot> {
        if !self
            .snap_send
            .try_begin(peer.0 as usize, ctx.now(), self.cfg.retry_interval)
        {
            return None;
        }
        let last_slot = self.last_applied;
        let last_term = self.log.term_at(last_slot).unwrap_or(Term::ZERO);
        let snap = Snapshot {
            last_slot,
            last_term,
            kv: self.kv.snapshot(),
        };
        ctx.charge(self.cfg.costs.snapshot_cost(snap.size_bytes()));
        self.snap_stats.note_sent(snap.size_bytes());
        for (offset, total, data) in snap.chunks(self.cfg.snapshot.chunk_bytes) {
            ctx.send(
                self.cfg.peer(peer),
                Msg::Raft(RaftMsg::InstallSnapshot {
                    term: self.current_term,
                    last_slot,
                    last_term,
                    offset,
                    total,
                    data,
                }),
            );
        }
        Some(last_slot)
    }

    /// Figure 2b `AppendEntries` (leader side): append the batch, rewrite
    /// ballots, replicate.
    fn flush_pending(&mut self, ctx: &mut Ctx<Msg>) {
        if self.role != Role::Leader {
            self.forward_pending(ctx);
            return;
        }
        if self.pending.is_empty() {
            return;
        }
        let cmds = std::mem::take(&mut self.pending);
        let bytes: usize = cmds.iter().map(Command::size_bytes).sum();
        ctx.charge(
            self.cfg.costs.propose_fixed
                + self.cfg.costs.propose_per_cmd * cmds.len() as u64
                + self.cfg.costs.size_cost(bytes),
        );
        let first_new = self.log.last_index().next();
        for cmd in cmds {
            self.log.append(Entry {
                term: self.current_term,
                bal: self.current_term,
                cmd,
            });
        }
        // Figure 2b lines 6-7: all ballots become the new entry's term.
        self.log
            .set_bal_upto(self.log.last_index(), self.current_term);
        self.index_writes_from(first_new);
        self.broadcast_append(ctx);
    }

    fn forward_pending(&mut self, ctx: &mut Ctx<Msg>) {
        let Some(leader) = self.leader_hint else {
            if !self.pending.is_empty() {
                self.batch_armed = false;
                self.arm_batch(ctx);
            }
            return;
        };
        if leader == self.cfg.id || self.pending.is_empty() {
            return;
        }
        let cmds = std::mem::take(&mut self.pending);
        ctx.charge(self.cfg.costs.forward_per_cmd * cmds.len() as u64);
        ctx.send(self.cfg.peer(leader), Msg::Raft(RaftMsg::Forward { cmds }));
    }

    /// Figure 2b `LeaderLearn` with the [PQL] holder gate of Figure 8.
    fn advance_commit(&mut self, ctx: &mut Ctx<Msg>) {
        if self.role != Role::Leader {
            return;
        }
        let f = max_failures(self.cfg.n);
        let mut target = self.repl.kth_largest_match(f, self.cfg.id);
        // [PQL] holderSet = holders reported by the *responders* (the
        // followers whose appendOKs form this commit's quorum) ∪ holders
        // granted by the leader itself (the implicit appendOK). Every
        // holder must have acknowledged up to the commit point. The loop
        // shrinks the target until the holder condition holds; stale
        // reports from non-responding (e.g. crashed) followers are never
        // consulted, so an expired holder stops gating writes.
        if let Some(lease) = &self.lease {
            if lease.mode() == ReadMode::QuorumLease {
                while target > self.commit_index {
                    let mut holders: Vec<NodeId> = lease.current_holders(ctx.now());
                    for p in self.cfg.others() {
                        if self.repl.match_index(p) >= target {
                            for h in &self.reported_holders[p.0 as usize] {
                                if !holders.contains(h) {
                                    holders.push(*h);
                                }
                            }
                        }
                    }
                    let mut limit = target;
                    for h in holders {
                        if h != self.cfg.id {
                            limit = limit.min(self.repl.match_index(h));
                        }
                    }
                    if limit >= target {
                        break;
                    }
                    target = limit;
                }
            }
        }
        if target > self.commit_index {
            self.commit_index = target;
            self.apply_committed(ctx);
        }
    }

    fn apply_committed(&mut self, ctx: &mut Ctx<Msg>) {
        while self.last_applied < self.commit_index {
            let next = self.last_applied.next();
            let Some(entry) = self.log.get(next) else {
                break;
            };
            let cmd = entry.cmd.clone();
            ctx.charge(self.cfg.costs.apply_per_cmd);
            let reply = self.kv.apply(&cmd);
            self.last_applied = next;
            if self.role == Role::Leader && cmd.id.client != u32::MAX {
                ctx.charge(self.cfg.costs.reply_fixed);
                ctx.send(
                    self.cfg.client_actor(cmd.id.client),
                    Msg::Client(ClientMsg::Response { id: cmd.id, reply }),
                );
                self.responses_sent += 1;
            }
        }
        self.serve_parked_reads(ctx);
        self.maybe_compact(ctx);
    }

    /// Compacts the applied log prefix once it crosses the configured
    /// threshold, snapshotting the state machine first.
    fn maybe_compact(&mut self, ctx: &mut Ctx<Msg>) {
        if let Some(bytes) = snapshot::compact_applied_prefix(
            &self.cfg.snapshot,
            &mut self.log,
            &self.kv,
            self.last_applied,
            &mut self.stable_snap,
            &mut self.snap_stats,
        ) {
            ctx.charge(self.cfg.costs.snapshot_cost(bytes));
        }
    }

    /// Installs a fully reassembled snapshot received from the leader.
    /// (The shared helper's log replacement is safe for Raft* too: the
    /// "no erasing" restriction is about live appends, and any
    /// accepted-but-uncommitted value discarded here is retained by the
    /// up-to-date leader that shipped the snapshot.)
    fn install_snapshot(&mut self, ctx: &mut Ctx<Msg>, from: ActorId, snap: Snapshot) {
        let bytes = snap.size_bytes();
        let first_new = snap.last_slot.next();
        if snapshot::install_into_raft_state(
            snap,
            &mut self.log,
            &mut self.kv,
            &mut self.last_applied,
            &mut self.commit_index,
            &mut self.stable_snap,
            &mut self.snap_stats,
        ) {
            ctx.charge(self.cfg.costs.snapshot_cost(bytes));
            self.index_writes_from(first_new);
            self.serve_parked_reads(ctx);
        }
        ctx.send(
            from,
            Msg::Raft(RaftMsg::SnapshotAck {
                term: self.current_term,
                last_idx: self.last_applied,
            }),
        );
    }

    /// [PQL] Figure 13 `LocalRead`: serve, park, or decline.
    fn try_local_read(&mut self, ctx: &mut Ctx<Msg>, cmd: &Command) -> bool {
        let Some(lease) = &self.lease else {
            return false;
        };
        let Op::Get { key } = &cmd.op else {
            return false;
        };
        match lease.mode() {
            ReadMode::QuorumLease => {
                if !lease.has_quorum_lease(ctx.now()) {
                    return false;
                }
            }
            ReadMode::LeaderLease => {
                if self.role != Role::Leader || !lease.has_quorum_lease(ctx.now()) {
                    return false;
                }
            }
            ReadMode::LogRead => return false,
        }
        let lease_floor = self
            .lease
            .as_ref()
            .map(|l| l.read_floor())
            .unwrap_or(Slot::NONE);
        let conflict = self
            .key_last_write
            .get(key)
            .copied()
            .unwrap_or(Slot::NONE)
            .max(lease_floor);
        if conflict > self.last_applied {
            // Figure 13 line 4: wait until the conflicting write commits
            // and applies locally — and, after a lease lapse, until the
            // replica has caught up to the grant's read floor (writes
            // committed during the lapse never waited for us).
            self.parked_reads.push((cmd.clone(), conflict));
            return true;
        }
        ctx.charge(self.cfg.costs.read_local);
        let reply = self.kv.read_local(*key);
        ctx.send(
            self.cfg.client_actor(cmd.id.client),
            Msg::Client(ClientMsg::Response { id: cmd.id, reply }),
        );
        self.responses_sent += 1;
        self.local_reads_served += 1;
        true
    }

    fn serve_parked_reads(&mut self, ctx: &mut Ctx<Msg>) {
        if self.parked_reads.is_empty() {
            return;
        }
        let ready: Vec<Command> = {
            let applied = self.last_applied;
            let (serve, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.parked_reads)
                .into_iter()
                .partition(|(_, s)| *s <= applied);
            self.parked_reads = keep;
            serve.into_iter().map(|(c, _)| c).collect()
        };
        for cmd in ready {
            // The conflict index was snapshotted at arrival (Figure 13
            // line 4): the read linearizes right after that write, so it
            // must NOT re-park behind newer writes — that would starve
            // hot-key readers under a continuous write stream.
            let lease_ok = self
                .lease
                .as_ref()
                .map(|l| match l.mode() {
                    ReadMode::QuorumLease => l.has_quorum_lease(ctx.now()),
                    ReadMode::LeaderLease => {
                        self.role == Role::Leader && l.has_quorum_lease(ctx.now())
                    }
                    ReadMode::LogRead => false,
                })
                .unwrap_or(false);
            if lease_ok {
                if let Op::Get { key } = &cmd.op {
                    ctx.charge(self.cfg.costs.read_local);
                    let reply = self.kv.read_local(*key);
                    ctx.send(
                        self.cfg.client_actor(cmd.id.client),
                        Msg::Client(ClientMsg::Response { id: cmd.id, reply }),
                    );
                    self.responses_sent += 1;
                    self.local_reads_served += 1;
                    continue;
                }
            }
            // Lease lapsed while parked: fall back to replication.
            self.pending.push(cmd);
            self.arm_batch(ctx);
        }
    }

    /// [PQL] Periodic lease renewal (grantors renew every 0.5 s).
    fn lease_tick(&mut self, ctx: &mut Ctx<Msg>) {
        let Some(lease) = &mut self.lease else { return };
        ctx.charge(self.cfg.costs.lease_msg);
        lease.self_grant(ctx.now());
        let expiry = lease.grant_expiry(ctx.now());
        let targets = lease.grant_targets(self.leader_hint);
        let last_idx = self.log.last_index();
        for t in targets {
            ctx.send(
                self.cfg.peer(t),
                Msg::Lease(LeaseMsg::Grant {
                    expires_ns: expiry.as_nanos(),
                    last_idx,
                }),
            );
        }
        ctx.set_timer(self.cfg.lease.renew_every, T_LEASE);
        // Expired holders may unblock commits.
        self.advance_commit(ctx);
    }

    fn on_raft(&mut self, ctx: &mut Ctx<Msg>, from: ActorId, msg: RaftMsg) {
        match msg {
            RaftMsg::RequestVote {
                term,
                last_idx,
                last_term,
            } => {
                if term > self.current_term {
                    // Raft* vote rule: grant when our log's ballot (==
                    // last entry term, by the uniform-ballot invariant)
                    // does not exceed the candidate's; attach extras.
                    // With compaction there is one more condition: a
                    // candidate whose log ends below our compaction
                    // floor cannot be completed by extras (the entries
                    // are gone), so we refuse — it catches up from the
                    // eventual winner via InstallSnapshot instead.
                    let granted =
                        self.log.last_term() <= last_term && last_idx >= self.log.last_included().0;
                    self.step_down(term, ctx);
                    self.leader_hint = None;
                    let (extra_start, extra) = if granted && self.log.last_index() > last_idx {
                        (last_idx.next(), self.log.suffix_from(last_idx))
                    } else {
                        (last_idx.next(), Vec::new())
                    };
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::Vote {
                            term,
                            granted,
                            extra_start,
                            extra,
                        }),
                    );
                }
            }
            RaftMsg::Vote {
                term,
                granted,
                extra_start,
                extra,
            } => {
                if term > self.current_term {
                    self.step_down(term, ctx);
                } else if term == self.current_term && granted && self.role == Role::Candidate {
                    self.votes |= 1 << node_of(from).0;
                    self.vote_extras.insert(node_of(from), (extra_start, extra));
                    self.try_become_leader(ctx);
                }
            }
            RaftMsg::Append {
                term,
                prev,
                prev_term,
                entries,
                commit,
            } => {
                if term < self.current_term {
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::AppendReject {
                            term: self.current_term,
                            last_idx: self.log.last_index(),
                        }),
                    );
                    return;
                }
                self.current_term = term;
                self.role = Role::Follower;
                self.leader_hint = Some(term.owner(self.cfg.n));
                self.arm_election(ctx);
                let bytes: usize = entries.iter().map(Entry::size_bytes).sum();
                ctx.charge(
                    self.cfg.costs.append_fixed
                        + self.cfg.costs.append_per_cmd * entries.len().max(1) as u64
                        + self.cfg.costs.size_cost(bytes),
                );
                // Entries at or below our compaction floor are applied
                // committed state: skip the overlap and anchor the
                // consistency check at the floor.
                let (floor, floor_term) = self.log.last_included();
                let (prev, prev_term, entries) = if prev < floor {
                    let overlap = (floor.0 - prev.0) as usize;
                    if entries.len() <= overlap {
                        let holders = self
                            .lease
                            .as_ref()
                            .map(|l| l.current_holders(ctx.now()))
                            .unwrap_or_default();
                        ctx.send(
                            from,
                            Msg::Raft(RaftMsg::AppendOk {
                                term: self.current_term,
                                last_idx: floor,
                                holders,
                            }),
                        );
                        return;
                    }
                    (floor, floor_term, entries[overlap..].to_vec())
                } else {
                    (prev, prev_term, entries)
                };
                let new_last = Slot(prev.0 + entries.len() as u64);
                // Figure 2b RecieveAppend: match on prev AND never let the
                // log shrink (`lastIndex ≤ prev + length(ents)`).
                if !self.log.matches(prev, prev_term) || new_last < self.log.last_index() {
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::AppendReject {
                            term: self.current_term,
                            last_idx: self.log.last_index(),
                        }),
                    );
                    return;
                }
                self.log.replace_suffix(prev, entries);
                // Figure 2b: every covered ballot becomes the append term.
                self.log.set_bal_upto(new_last, term);
                self.index_writes_from(prev.next());
                if commit > self.commit_index {
                    self.commit_index = Slot(commit.0.min(new_last.0));
                    self.apply_committed(ctx);
                }
                // [PQL] Phase2b Δ: attach the holders we granted.
                let holders = self
                    .lease
                    .as_ref()
                    .map(|l| l.current_holders(ctx.now()))
                    .unwrap_or_default();
                ctx.send(
                    from,
                    Msg::Raft(RaftMsg::AppendOk {
                        term: self.current_term,
                        last_idx: new_last,
                        holders,
                    }),
                );
            }
            RaftMsg::AppendOk {
                term,
                last_idx,
                holders,
            } => {
                if term > self.current_term {
                    self.step_down(term, ctx);
                } else if term == self.current_term && self.role == Role::Leader {
                    ctx.charge(self.cfg.costs.ack_process);
                    self.reported_holders[node_of(from).0 as usize] = holders;
                    if self.repl.on_ack(node_of(from), last_idx) {
                        self.advance_commit(ctx);
                    } else {
                        // Holder reports may still unblock the PQL gate.
                        self.advance_commit(ctx);
                    }
                }
            }
            RaftMsg::AppendReject { term, last_idx } => {
                if term > self.current_term {
                    self.step_down(term, ctx);
                } else if term == self.current_term && self.role == Role::Leader {
                    self.repl.on_reject(node_of(from), last_idx);
                    // Back off for a prev mismatch; when the follower's
                    // log is simply longer than ours (the Raft* "no
                    // shrink" rule), wait for new appends instead of
                    // ping-ponging rejects.
                    if last_idx <= self.log.last_index() {
                        self.send_append_to(ctx, node_of(from));
                    }
                }
            }
            RaftMsg::Forward { cmds } => {
                ctx.charge(self.cfg.costs.forward_per_cmd * cmds.len() as u64);
                for cmd in cmds {
                    // [PQL] a forwarded read may be lease-served here too.
                    if matches!(cmd.op, Op::Get { .. }) && self.try_local_read(ctx, &cmd) {
                        continue;
                    }
                    self.pending.push(cmd);
                }
                if self.role == Role::Leader && self.pending.len() >= self.cfg.batch_max {
                    self.flush_pending(ctx);
                } else if !self.pending.is_empty() {
                    self.arm_batch(ctx);
                }
            }
            // `last_term` rides inside the encoded payload; the header
            // copy only matters for observability.
            RaftMsg::InstallSnapshot {
                term,
                last_slot,
                last_term: _,
                offset,
                total,
                data,
            } => {
                if term < self.current_term {
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::AppendReject {
                            term: self.current_term,
                            last_idx: self.log.last_index(),
                        }),
                    );
                    return;
                }
                self.current_term = term;
                self.role = Role::Follower;
                self.leader_hint = Some(term.owner(self.cfg.n));
                self.arm_election(ctx);
                ctx.charge(self.cfg.costs.append_fixed + self.cfg.costs.snapshot_cost(data.len()));
                if let Some(snap) =
                    self.snap_asm
                        .offer(from.0 as u64, last_slot, offset, total, &data)
                {
                    self.install_snapshot(ctx, from, snap);
                }
            }
            RaftMsg::SnapshotAck { term, last_idx } => {
                if term > self.current_term {
                    self.step_down(term, ctx);
                } else if term == self.current_term && self.role == Role::Leader {
                    self.snap_send.finish(node_of(from).0 as usize);
                    if self.repl.on_ack(node_of(from), last_idx) {
                        self.advance_commit(ctx);
                    }
                }
            }
        }
    }
}

fn node_of(from: ActorId) -> NodeId {
    NodeId(from.0 as u32)
}

impl Actor<Msg> for RaftStarReplica {
    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        self.arm_election(ctx);
        if self.lease.is_some() {
            ctx.set_timer(SimDuration::from_millis(1), T_LEASE);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Raft(m) => self.on_raft(ctx, from, m),
            Msg::Client(ClientMsg::Request { cmd }) => {
                ctx.charge(self.cfg.costs.client_req);
                // [PQL] added LocalRead action.
                if self.try_local_read(ctx, &cmd) {
                    return;
                }
                self.pending.push(cmd);
                if self.role == Role::Leader && self.pending.len() >= self.cfg.batch_max {
                    self.flush_pending(ctx);
                } else {
                    self.arm_batch(ctx);
                }
            }
            Msg::Lease(LeaseMsg::Grant {
                expires_ns,
                last_idx,
            }) => {
                if let Some(lease) = &mut self.lease {
                    ctx.charge(self.cfg.costs.lease_msg);
                    let t = paxraft_sim::time::SimTime::from_nanos(expires_ns);
                    lease.on_grant(node_of(from), t, last_idx, ctx.now());
                    ctx.send(from, Msg::Lease(LeaseMsg::GrantAck { expires_ns }));
                }
            }
            Msg::Lease(LeaseMsg::GrantAck { expires_ns }) => {
                if let Some(lease) = &mut self.lease {
                    let t = paxraft_sim::time::SimTime::from_nanos(expires_ns);
                    lease.on_grant_ack(node_of(from), t);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, token: u64) {
        match token & KIND_MASK {
            T_ELECTION => {
                if token & !KIND_MASK == self.election_gen && self.role != Role::Leader {
                    self.start_election(ctx);
                }
            }
            T_HEARTBEAT => {
                if token & !KIND_MASK == self.heartbeat_gen && self.role == Role::Leader {
                    let peers: Vec<NodeId> = self.cfg.others().collect();
                    for peer in peers {
                        self.repl
                            .maybe_rewind(peer, ctx.now(), self.cfg.retry_interval);
                        self.send_append_to(ctx, peer);
                    }
                    self.arm_heartbeat(ctx);
                }
            }
            T_BATCH => {
                self.batch_armed = false;
                if !self.pending.is_empty() {
                    self.flush_pending(ctx);
                }
                if !self.pending.is_empty() {
                    self.arm_batch(ctx);
                }
            }
            T_LEASE => self.lease_tick(ctx),
            _ => {}
        }
    }

    fn on_crash(&mut self) {
        // Persistent: term, log, the durable snapshot backing the
        // compacted prefix, and grants *given* (a recovering grantor
        // must still honour them). Volatile: everything else, including
        // leases held. The state machine restarts from the snapshot —
        // the compacted prefix cannot be replayed.
        self.role = Role::Follower;
        self.leader_hint = None;
        self.votes = 0;
        self.vote_extras.clear();
        self.commit_index = Slot::NONE;
        self.last_applied = Slot::NONE;
        self.kv = KvStore::new();
        if let Some(snap) = &self.stable_snap {
            self.kv.restore(&snap.kv);
            self.last_applied = snap.last_slot;
            self.commit_index = snap.last_slot;
        }
        self.pending.clear();
        self.parked_reads.clear();
        self.batch_armed = false;
        self.snap_asm.clear();
        self.snap_send.reset();
        if let Some(lease) = &mut self.lease {
            lease.drop_held();
        }
    }

    impl_actor_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{cluster_with, drive_until, TestClient};
    use paxraft_sim::sim::Simulation;
    use paxraft_sim::time::SimTime;

    fn star_cluster(n: usize, mode: ReadMode) -> (Simulation<Msg>, Vec<ActorId>, ActorId) {
        cluster_with(n, |mut cfg| {
            cfg.initial_leader = Some(NodeId(0));
            cfg.read_mode = mode;
            Box::new(RaftStarReplica::new(cfg))
        })
    }

    #[test]
    fn elects_and_commits() {
        let (mut sim, replicas, client) = star_cluster(3, ReadMode::LogRead);
        sim.actor_mut::<TestClient>(client).enqueue_put(42);
        sim.actor_mut::<TestClient>(client).enqueue_get(42);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 2
        }));
        assert!(sim.actor::<RaftStarReplica>(replicas[0]).is_leader());
        let c = sim.actor::<TestClient>(client);
        assert!(c.replies[1].1.value_id().is_some());
    }

    #[test]
    fn logs_converge_with_uniform_ballots() {
        let (mut sim, replicas, client) = star_cluster(3, ReadMode::LogRead);
        for k in 0..10 {
            sim.actor_mut::<TestClient>(client).enqueue_put(k);
        }
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 10
        }));
        sim.run_for(SimDuration::from_secs(1));
        for &r in &replicas {
            let rep = sim.actor::<RaftStarReplica>(r);
            let last_term = rep.log().last_term();
            // LogBallotInv (Appendix B.2): every entry's ballot equals the
            // term of the last accepted append.
            for (s, e) in rep.log().iter() {
                assert_eq!(e.bal, last_term, "uniform ballot at {s}");
            }
        }
        let log0: Vec<_> = sim
            .actor::<RaftStarReplica>(replicas[0])
            .log()
            .iter()
            .map(|(s, e)| (s, e.cmd.id))
            .collect();
        for &r in &replicas[1..] {
            let lr: Vec<_> = sim
                .actor::<RaftStarReplica>(r)
                .log()
                .iter()
                .map(|(s, e)| (s, e.cmd.id))
                .collect();
            assert_eq!(lr, log0);
        }
    }

    #[test]
    fn extras_preserve_committed_entries_for_lagging_candidate() {
        // Node 2 misses all appends (partitioned), then campaigns first
        // after the leader dies. Voter 1's extras must carry the
        // committed entries into node 2's log.
        let (mut sim, replicas, client) = cluster_with(3, |mut cfg| {
            cfg.initial_leader = Some(NodeId(0));
            // Make node 2 campaign well before node 1 after the crash.
            if cfg.id == NodeId(2) {
                cfg.election_min = SimDuration::from_millis(400);
                cfg.election_max = SimDuration::from_millis(500);
            } else {
                cfg.election_min = SimDuration::from_millis(4_000);
                cfg.election_max = SimDuration::from_millis(5_000);
            }
            Box::new(RaftStarReplica::new(cfg))
        });
        // First replicate one entry everywhere so node 2 shares the
        // leader's term (the Raft* vote rule compares log ballots).
        sim.actor_mut::<TestClient>(client).enqueue_put(6);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        }));
        sim.run_for(SimDuration::from_millis(400)); // heartbeat reaches 2
                                                    // Cut node 2 off while further entries commit on {0, 1}.
        sim.partition_at(vec![0, 0, 1, 0], sim.now() + SimDuration::from_millis(1));
        sim.actor_mut::<TestClient>(client).enqueue_put(7);
        sim.actor_mut::<TestClient>(client).enqueue_put(8);
        assert!(drive_until(&mut sim, SimTime::from_secs(8), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 3
        }));
        // Leader dies; partition heals; 2 campaigns with a short log.
        let now = sim.now();
        sim.crash_at(replicas[0], now + SimDuration::from_millis(1));
        sim.heal_at(now + SimDuration::from_millis(2));
        assert!(drive_until(&mut sim, SimTime::from_secs(20), |sim| {
            sim.actor::<RaftStarReplica>(replicas[2]).is_leader()
        }));
        // The new leader must have merged the committed writes.
        sim.actor_mut::<TestClient>(client).target = replicas[2];
        sim.actor_mut::<TestClient>(client).enqueue_get(7);
        assert!(drive_until(&mut sim, SimTime::from_secs(30), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 4
        }));
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[3].1.value_id().is_some(),
            "committed write survived leader change via vote extras"
        );
    }

    #[test]
    fn quorum_lease_enables_follower_local_reads() {
        let (mut sim, replicas, client) = star_cluster(5, ReadMode::QuorumLease);
        // Let leases establish.
        sim.run_for(SimDuration::from_secs(2));
        assert!(sim
            .actor::<RaftStarReplica>(replicas[3])
            .lease()
            .unwrap()
            .has_quorum_lease(sim.now()));
        // Write through the leader first.
        sim.actor_mut::<TestClient>(client).enqueue_put(5);
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        }));
        sim.run_for(SimDuration::from_secs(1)); // let commit reach followers
                                                // Read from a follower: must be served locally.
        sim.actor_mut::<TestClient>(client).target = replicas[3];
        sim.actor_mut::<TestClient>(client).enqueue_get(5);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 2
        }));
        let served = sim.actor::<RaftStarReplica>(replicas[3]).local_reads_served;
        assert_eq!(served, 1, "follower served the read locally");
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[1].1.value_id().is_some(),
            "local read sees the write"
        );
    }

    #[test]
    fn leader_lease_serves_reads_only_at_leader() {
        let (mut sim, replicas, client) = star_cluster(3, ReadMode::LeaderLease);
        sim.run_for(SimDuration::from_secs(2));
        sim.actor_mut::<TestClient>(client).enqueue_put(9);
        sim.actor_mut::<TestClient>(client).enqueue_get(9);
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 2
        }));
        assert_eq!(
            sim.actor::<RaftStarReplica>(replicas[0]).local_reads_served,
            1
        );
        assert_eq!(
            sim.actor::<RaftStarReplica>(replicas[1]).local_reads_served,
            0
        );
    }

    #[test]
    fn pql_write_waits_for_crashed_holder_until_expiry() {
        let (mut sim, replicas, client) = star_cluster(3, ReadMode::QuorumLease);
        sim.run_for(SimDuration::from_secs(2)); // leases up
        sim.actor_mut::<TestClient>(client).enqueue_put(1);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        }));
        // Crash a follower that holds leases; a subsequent write must wait
        // for its grant to lapse (≤ 2s) but still completes.
        sim.crash_at(replicas[2], sim.now() + SimDuration::from_millis(1));
        let before = sim.now();
        sim.actor_mut::<TestClient>(client).enqueue_put(2);
        assert!(drive_until(&mut sim, SimTime::from_secs(20), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 2
        }));
        let write_latency = sim.actor::<TestClient>(client).replies[1].2.since(before);
        assert!(
            write_latency < SimDuration::from_secs(4),
            "write unblocked after lease expiry, took {write_latency}"
        );
    }

    #[test]
    fn conflicting_local_read_parks_until_write_applies() {
        let (mut sim, replicas, client) = star_cluster(5, ReadMode::QuorumLease);
        sim.run_for(SimDuration::from_secs(2));
        // Prime the key so the follower knows about it.
        sim.actor_mut::<TestClient>(client).enqueue_put(3);
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        }));
        sim.run_for(SimDuration::from_secs(1));
        // Inject an uncommitted write by appending directly at a follower
        // via a second client writing through the leader, and read from
        // the follower immediately after the append lands but before
        // commit: emulate by reading right after issuing the write.
        sim.actor_mut::<TestClient>(client).enqueue_put(3);
        sim.run_for(SimDuration::from_millis(60)); // append reaches followers
        let mut reader = TestClient::new(1, replicas[1]);
        reader.enqueue_get(3);
        let reader_id = sim.add_actor(paxraft_sim::net::Region::Ohio, Box::new(reader));
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(reader_id).replies.len() == 1
                && sim.actor::<TestClient>(client).replies.len() == 2
        }));
        // The read must observe the second write (it parked behind it) —
        // seq 2 of client 0.
        let got = sim.actor::<TestClient>(reader_id).replies[0].1.value_id();
        assert_eq!(
            got,
            Some(crate::kv::CmdId { client: 0, seq: 2 }.as_value_id()),
            "parked read observed the conflicting write"
        );
    }
}
