//! Raft* (Section 3, Figure 2 *including* the blue code) with the ported
//! Paxos Quorum Lease optimization (Raft*-PQL, Figure 8) and the
//! Leader-Lease baseline as read-mode options, expressed as
//! [`ProtocolRules`] over the shared [`ReplicaEngine`].
//!
//! Raft* differs from Raft in exactly the two ways Section 3 introduces:
//!
//! 1. **No erasing.** A voter attaches the entries it has *beyond* the
//!    candidate's log to its `requestVoteOK` (`extra`), and the new
//!    leader extends its log with the safe value (highest ballot) per
//!    index. An acceptor rejects an append whose result would be shorter
//!    than its own log (`lastIndex ≤ prev + length(ents)`), so follower
//!    logs are only ever overwritten or extended — the state transition
//!    maps onto Paxos `Accept`, never onto an impossible "un-accept".
//! 2. **Ballot rewriting.** Every entry carries a `bal` field; each
//!    accepted append rewrites `bal = term` for the whole covered prefix,
//!    so an `appendOK` at term `t` is a Paxos `acceptOK` at ballot `t`
//!    for every covered instance. This removes Raft's Section-5.4.2
//!    commit restriction: Raft*'s `LeaderLearn` commits the f-th largest
//!    follower match with **no entry-term check**.
//!
//! The `[PQL]`-marked blocks are the mechanical port of Paxos Quorum
//! Lease under the refinement mapping (Figure 8): `Phase2b`'s holder
//! attachment maps to `appendOK`, `Learn`'s holder-quorum check maps to
//! `LeaderLearn` *including the leader's own grants* (the implicit
//! `acceptOK`), and the added `LocalRead` action waits until every log
//! entry touching the key is `≤ commitIndex` and applied. The local-read
//! intercept rides the engine's [`ProtocolRules::try_serve_local`] hook,
//! so it applies uniformly to direct and forwarded requests.
//!
//! # Durability (group commit)
//!
//! Same invariant as standard Raft (see `raft.rs`'s module docs): an
//! `appendOK` at ballot `t` attests that the covered entries survive a
//! crash, so it is routed through [`EngineCore::ack_after_sync`], and
//! `LeaderLearn` counts the leader's own copy only up to
//! [`RaftBase::durable_tail`]. One Raft*-specific nuance: an accepted
//! append *rewrites* the suffix after `prev` ([`Log::replace_suffix`]),
//! so the durable watermark is clamped below the rewrite point before
//! the replacement write is recorded — an fsync in flight for the old
//! suffix must not vouch for the new one. The ballot rewrite *below*
//! `prev` ([`Log::set_bal_upto`]) is content-preserving; like terms and
//! votes, the model treats that small per-entry metadata write as free
//! and always-durable (ballots survive crashes with the log), so only
//! entry payloads ride the modeled disk.

use std::collections::HashMap;

use paxraft_sim::sim::{ActorId, Ctx};
use paxraft_sim::time::SimDuration;

use crate::config::{ReadMode, ReplicaConfig};
use crate::engine::raft_family::{RaftBase, Role};
use crate::engine::{self, EngineCore, ProtocolRules, ReplicaEngine, T_LEASE};
use crate::kv::{Command, Key, Op};
use crate::log::{Entry, Log};
use crate::msg::{LeaseMsg, Msg, RaftMsg};
use crate::pql::LeaseManager;
use crate::snapshot::{Snapshot, SnapshotStats};
use crate::types::{max_failures, me_bit, quorum, NodeId, Slot, Term};

/// A Raft* replica, optionally running the ported PQL or LL read path:
/// the shared engine running [`RaftStarRules`].
pub type RaftStarReplica = ReplicaEngine<RaftStarRules>;

/// What Raft* adds on top of the engine: vote extras, ballot rewriting,
/// the erase-free append rule, and the ported lease read paths.
pub struct RaftStarRules {
    base: RaftBase,
    /// Raft*: extras received from voters, keyed by voter.
    vote_extras: HashMap<NodeId, (Slot, Vec<Entry>)>,
    /// [PQL] Last lease-holder set reported by each follower's appendOK.
    reported_holders: Vec<Vec<NodeId>>,
    /// [PQL] Lease state (present in LeaderLease/QuorumLease modes).
    lease: Option<LeaseManager>,
    /// [PQL] Highest log slot writing each key (conflict check for local
    /// reads; conservative across overwrites).
    key_last_write: HashMap<Key, Slot>,
    /// [PQL] Local reads waiting for a conflicting write to apply:
    /// `(command, serve once last_applied ≥ slot)`.
    parked_reads: Vec<(Command, Slot)>,
    /// [PQL] Key ranges frozen by an in-log, possibly not-yet-applied
    /// `FreezeRange`: `(slot, lo, hi)`. A lease-local read of a covered
    /// key must wait for that slot to apply — the applied shard state
    /// then redirects it — or the lease holder would serve a copy that
    /// is already migrating (writes land in the destination group from
    /// the freeze on, which never consults this replica's lease).
    /// Pruned as slots apply.
    frozen_in_log: Vec<(Slot, Key, Key)>,
    /// [PQL] Reads served from the local copy (stats).
    local_reads_served: u64,
}

impl RaftStarReplica {
    /// Creates a replica; `cfg.read_mode` selects Raft* (`LogRead`),
    /// LL (`LeaderLease`) or Raft*-PQL (`QuorumLease`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: ReplicaConfig) -> Self {
        cfg.validate().expect("invalid replica config");
        let n = cfg.n;
        let lease = match cfg.read_mode {
            ReadMode::LogRead => None,
            mode => Some(LeaseManager::new(cfg.lease.clone(), mode, n, cfg.id)),
        };
        ReplicaEngine::from_parts(
            EngineCore::new(cfg),
            RaftStarRules {
                base: RaftBase::new(n),
                vote_extras: HashMap::new(),
                reported_holders: vec![Vec::new(); n],
                lease,
                key_last_write: HashMap::new(),
                parked_reads: Vec::new(),
                frozen_in_log: Vec::new(),
                local_reads_served: 0,
            },
        )
    }

    /// Current term.
    pub fn current_term(&self) -> Term {
        self.rules.base.current_term
    }

    /// The log (for convergence and invariant tests).
    pub fn log(&self) -> &Log {
        &self.rules.base.log
    }

    /// Commit index.
    pub fn commit_index(&self) -> Slot {
        self.rules.base.commit_index
    }

    /// Lease state (tests).
    pub fn lease(&self) -> Option<&LeaseManager> {
        self.rules.lease.as_ref()
    }

    /// [PQL] Reads served from the local copy (stats).
    pub fn local_reads_served(&self) -> u64 {
        self.rules.local_reads_served
    }
}

impl RaftStarRules {
    /// Figure 2a `RequestVote`.
    fn start_election(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.vote_extras.clear();
        self.base.begin_election(core, ctx);
        self.try_become_leader(core, ctx);
    }

    /// Figure 2a `BecomeLeader`: merge the safe entries from voter extras
    /// (highest `bal` per index), rewriting their term and ballot to the
    /// new term.
    fn try_become_leader(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if self.base.role != Role::Candidate
            || (self.base.votes.count_ones() as usize) < quorum(core.cfg.n)
        {
            return;
        }
        let my_last = self.base.log.last_index();
        let max_end = self
            .vote_extras
            .values()
            .map(|(start, ents)| Slot(start.0 + ents.len() as u64).prev())
            .max()
            .unwrap_or(Slot::NONE);
        let mut merged_bytes = 0usize;
        let mut merged = 0usize;
        let mut idx = my_last.next();
        while idx <= max_end {
            let mut best: Option<&Entry> = None;
            for (start, ents) in self.vote_extras.values() {
                if idx.0 >= start.0 {
                    if let Some(e) = ents.get((idx.0 - start.0) as usize) {
                        if best.map(|b| e.bal > b.bal).unwrap_or(true) {
                            best = Some(e);
                        }
                    }
                }
            }
            let cmd = best.map(|e| e.cmd.clone()).unwrap_or_else(Command::noop);
            // Figure 2a lines 25-27: bal and term become currentTerm.
            let e = Entry {
                term: self.base.current_term,
                bal: self.base.current_term,
                cmd,
            };
            merged_bytes += e.size_bytes();
            merged += 1;
            self.base.log.append(e);
            idx = idx.next();
        }
        self.index_writes_from(my_last.next());
        self.base.role = Role::Leader;
        core.leader_hint = Some(core.cfg.id);
        self.base
            .repl
            .reset_for_leadership(self.base.log.last_index());
        core.pipe.reset();
        // A fresh no-op carries the term forward (progress, not safety:
        // Raft* needs no 5.4.2-style commit restriction).
        let noop = Entry {
            term: self.base.current_term,
            bal: self.base.current_term,
            cmd: Command::noop(),
        };
        merged_bytes += noop.size_bytes();
        merged += 1;
        self.base.log.append(noop);
        self.base
            .log
            .set_bal_upto(self.base.log.last_index(), self.base.current_term);
        // The merged extras and the no-op are new log content on this
        // node's disk (the ballot rewrite of older entries is free
        // metadata — see the module docs).
        self.base
            .note_append_durable(core, ctx, merged_bytes, merged, self.base.log.last_index());
        self.base.broadcast_append(core, ctx);
        core.arm_heartbeat(ctx);
        engine::flush_pending(self, core, ctx);
    }

    /// [PQL] Records key→slot (and in-log freeze ranges) for entries
    /// from `from` onward.
    fn index_writes_from(&mut self, from: Slot) {
        if self.lease.is_none() {
            return;
        }
        // Slots from `from` on are being (re)written — an append can
        // overwrite an uncommitted suffix, so drop their old records
        // and re-index from the log.
        self.frozen_in_log.retain(|(s, _, _)| *s < from);
        let mut s = from;
        while let Some(e) = self.base.log.get(s) {
            match &e.cmd.op {
                Op::Put { key, .. } => {
                    self.key_last_write.insert(*key, s);
                }
                Op::FreezeRange { lo, hi, .. } => self.frozen_in_log.push((s, *lo, *hi)),
                _ => {}
            }
            s = s.next();
        }
    }

    /// Figure 2b `LeaderLearn` with the [PQL] holder gate of Figure 8.
    fn advance_commit(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if self.base.role != Role::Leader {
            return;
        }
        let f = max_failures(core.cfg.n);
        // The leader's own copy counts toward the quorum only once
        // locally fsynced (no-op when durability is disabled); the
        // engine's `on_durable` hook re-runs this tally as syncs land.
        let tally = self.base.repl.kth_largest_match(f, core.cfg.id);
        let mut target = tally.min(self.base.durable_tail(core));
        let lease_gated = self
            .lease
            .as_ref()
            .is_some_and(|l| l.mode() == ReadMode::QuorumLease);
        // [PQL] holderSet = holders reported by the *responders* (the
        // followers whose appendOKs form this commit's quorum) ∪ holders
        // granted by the leader itself (the implicit appendOK). Every
        // holder must have acknowledged up to the commit point. The loop
        // shrinks the target until the holder condition holds; stale
        // reports from non-responding (e.g. crashed) followers are never
        // consulted, so an expired holder stops gating writes.
        if let Some(lease) = &self.lease {
            if lease.mode() == ReadMode::QuorumLease {
                while target > self.base.commit_index {
                    let mut holders: Vec<NodeId> = lease.current_holders(ctx.now());
                    for p in core.cfg.others() {
                        if self.base.repl.match_index(p) >= target {
                            for h in &self.reported_holders[p.0 as usize] {
                                if !holders.contains(h) {
                                    holders.push(*h);
                                }
                            }
                        }
                    }
                    let mut limit = target;
                    for h in holders {
                        if h != core.cfg.id {
                            limit = limit.min(self.base.repl.match_index(h));
                        }
                    }
                    if limit >= target {
                        break;
                    }
                    target = limit;
                }
            }
        }
        // Span bookkeeping: the replication-quorum instant is the
        // pre-clamp tally — except under the PQL holder gate, where the
        // gate is part of consensus wait (booked to replication), so
        // the quorum mark follows the gated target instead.
        self.base
            .note_quorum(ctx, if lease_gated { target } else { tally });
        if target > self.base.commit_index {
            self.base.commit_index = target;
            self.apply_committed(core, ctx);
        }
    }

    fn apply_committed(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.base.apply_loop(core, ctx);
        // Applied freezes live in the shard state now; the in-log gate
        // only needs the unapplied suffix.
        let applied = self.base.last_applied;
        self.frozen_in_log.retain(|(s, _, _)| *s > applied);
        self.serve_parked_reads(core, ctx);
        self.base.maybe_compact(core, ctx);
    }

    fn serve_parked_reads(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        if self.parked_reads.is_empty() {
            return;
        }
        let ready: Vec<Command> = {
            let applied = self.base.last_applied;
            let (serve, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.parked_reads)
                .into_iter()
                .partition(|(_, s)| *s <= applied);
            self.parked_reads = keep;
            serve.into_iter().map(|(c, _)| c).collect()
        };
        for cmd in ready {
            // The key's range may have frozen while the read was parked
            // (the park target can be the freeze slot itself): once
            // applied, the shard state owns the answer and the read must
            // chase the range to its new group, not read the local copy.
            if let Some((group, version)) = core.misroute(&cmd.op) {
                core.send_redirect(ctx, cmd.id, group, version);
                continue;
            }
            // The conflict index was snapshotted at arrival (Figure 13
            // line 4): the read linearizes right after that write, so it
            // must NOT re-park behind newer writes — that would starve
            // hot-key readers under a continuous write stream.
            let lease_ok = self
                .lease
                .as_ref()
                .map(|l| match l.mode() {
                    ReadMode::QuorumLease => l.has_quorum_lease(ctx.now()),
                    ReadMode::LeaderLease => {
                        self.base.role == Role::Leader && l.has_quorum_lease(ctx.now())
                    }
                    ReadMode::LogRead => false,
                })
                .unwrap_or(false);
            if lease_ok {
                if let Op::Get { key } = &cmd.op {
                    ctx.charge(core.cfg.costs.read_local);
                    let reply = core.kv.read_local(*key);
                    core.send_response(ctx, cmd.id, reply);
                    self.local_reads_served += 1;
                    continue;
                }
            }
            // Lease lapsed while parked: fall back to replication.
            ctx.trace_span(
                paxraft_sim::trace::SpanKind::Enqueue {
                    proposer: self.base.role == Role::Leader,
                },
                cmd.id.client,
                cmd.id.seq,
            );
            core.pending.push(cmd);
            core.arm_batch(ctx);
        }
    }

    /// [PQL] Periodic lease renewal (grantors renew every 0.5 s).
    fn lease_tick(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        let Some(lease) = &mut self.lease else { return };
        ctx.charge(core.cfg.costs.lease_msg);
        lease.self_grant(ctx.now());
        let expiry = lease.grant_expiry(ctx.now());
        let targets = lease.grant_targets(core.leader_hint);
        let last_idx = self.base.log.last_index();
        for t in targets {
            ctx.send(
                core.cfg.peer(t),
                Msg::Lease(LeaseMsg::Grant {
                    expires_ns: expiry.as_nanos(),
                    last_idx,
                }),
            );
        }
        ctx.set_timer(core.cfg.lease.renew_every, T_LEASE);
        // Expired holders may unblock commits.
        self.advance_commit(core, ctx);
    }

    fn on_raft(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, from: ActorId, msg: RaftMsg) {
        match msg {
            RaftMsg::RequestVote {
                term,
                last_idx,
                last_term,
            } => {
                if term > self.base.current_term {
                    // Raft* vote rule: grant when our log's ballot (==
                    // last entry term, by the uniform-ballot invariant)
                    // does not exceed the candidate's; attach extras.
                    // With compaction there is one more condition: a
                    // candidate whose log ends below our compaction
                    // floor cannot be completed by extras (the entries
                    // are gone), so we refuse — it catches up from the
                    // eventual winner via the snapshot path instead.
                    let granted = self.base.log.last_term() <= last_term
                        && last_idx >= self.base.log.last_included().0;
                    self.base.step_down(core, term, ctx);
                    core.leader_hint = None;
                    let (extra_start, extra) = if granted && self.base.log.last_index() > last_idx {
                        (last_idx.next(), self.base.log.suffix_from(last_idx))
                    } else {
                        (last_idx.next(), Vec::new())
                    };
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::Vote {
                            term,
                            granted,
                            extra_start,
                            extra,
                        }),
                    );
                }
            }
            RaftMsg::Vote {
                term,
                granted,
                extra_start,
                extra,
            } => {
                if term > self.base.current_term {
                    self.base.step_down(core, term, ctx);
                } else if term == self.base.current_term
                    && granted
                    && self.base.role == Role::Candidate
                {
                    let voter = core.cfg.node_of(from);
                    self.base.votes |= me_bit(voter);
                    self.vote_extras.insert(voter, (extra_start, extra));
                    self.try_become_leader(core, ctx);
                }
            }
            RaftMsg::Append {
                term,
                prev,
                prev_term,
                entries,
                commit,
                window_room,
            } => {
                if term < self.base.current_term {
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::AppendReject {
                            term: self.base.current_term,
                            last_idx: self.base.log.last_index(),
                        }),
                    );
                    return;
                }
                self.base.current_term = term;
                self.base.role = Role::Follower;
                core.leader_hint = Some(term.owner(core.cfg.n));
                core.note_window_hint(window_room, ctx.now());
                self.base.arm_election(core, ctx);
                let bytes: usize = entries.iter().map(Entry::size_bytes).sum();
                ctx.charge(
                    core.cfg.costs.append_fixed
                        + core.cfg.costs.append_per_cmd * entries.len().max(1) as u64
                        + core.cfg.costs.size_cost(bytes),
                );
                // Entries at or below our compaction floor are applied
                // committed state: skip the overlap and anchor the
                // consistency check at the floor.
                let (floor, floor_term) = self.base.log.last_included();
                let (prev, prev_term, entries) = if prev < floor {
                    let overlap = (floor.0 - prev.0) as usize;
                    if entries.len() <= overlap {
                        let holders = self
                            .lease
                            .as_ref()
                            .map(|l| l.current_holders(ctx.now()))
                            .unwrap_or_default();
                        // Attests to log content: rides the
                        // ack-after-fsync path (immediate when nothing
                        // is unsynced).
                        let ok = Msg::Raft(RaftMsg::AppendOk {
                            term: self.base.current_term,
                            last_idx: floor,
                            holders,
                        });
                        core.ack_after_sync(ctx, from, ok);
                        return;
                    }
                    (floor, floor_term, entries[overlap..].to_vec())
                } else {
                    (prev, prev_term, entries)
                };
                let new_last = Slot(prev.0 + entries.len() as u64);
                // Figure 2b RecieveAppend: match on prev AND never let the
                // log shrink (`lastIndex ≤ prev + length(ents)`).
                if !self.base.log.matches(prev, prev_term) || new_last < self.base.log.last_index()
                {
                    ctx.send(
                        from,
                        Msg::Raft(RaftMsg::AppendReject {
                            term: self.base.current_term,
                            last_idx: self.base.log.last_index(),
                        }),
                    );
                    return;
                }
                // Raft* rewrites the whole suffix after `prev`: any
                // fsync in flight for the old suffix must not vouch for
                // the replacement, so clamp the durable watermark first,
                // then record the replacement as a fresh disk write.
                let appended = entries.len();
                self.base.note_rewrite_from(prev.next());
                self.base.log.replace_suffix(prev, entries);
                // Figure 2b: every covered ballot becomes the append term.
                self.base.log.set_bal_upto(new_last, term);
                if appended > 0 {
                    self.base
                        .note_append_durable(core, ctx, bytes, appended, new_last);
                }
                self.index_writes_from(prev.next());
                if commit > self.base.commit_index {
                    self.base.commit_index = Slot(commit.0.min(new_last.0));
                    self.apply_committed(core, ctx);
                }
                // [PQL] Phase2b Δ: attach the holders we granted. The
                // appendOK is a Paxos acceptOK for every covered
                // instance — it leaves only after the fsync covering
                // the suffix it vouches for (group commit batches it).
                let holders = self
                    .lease
                    .as_ref()
                    .map(|l| l.current_holders(ctx.now()))
                    .unwrap_or_default();
                let ok = Msg::Raft(RaftMsg::AppendOk {
                    term: self.base.current_term,
                    last_idx: new_last,
                    holders,
                });
                core.ack_after_sync(ctx, from, ok);
            }
            RaftMsg::AppendOk {
                term,
                last_idx,
                holders,
            } => {
                if term > self.base.current_term {
                    self.base.step_down(core, term, ctx);
                } else if term == self.base.current_term && self.base.role == Role::Leader {
                    ctx.charge(core.cfg.costs.ack_process);
                    let peer = core.cfg.node_of(from);
                    self.reported_holders[peer.0 as usize] = holders;
                    core.pipe.on_ack(peer, last_idx);
                    // Advance on a match step — or on holder reports
                    // alone, which may still unblock the PQL gate.
                    self.base.repl.on_ack(peer, last_idx);
                    self.advance_commit(core, ctx);
                    // The freed window slot may have a backlog waiting.
                    self.base.pump(core, ctx, peer);
                }
            }
            RaftMsg::AppendReject { term, last_idx } => {
                if term > self.base.current_term {
                    self.base.step_down(core, term, ctx);
                } else if term == self.base.current_term && self.base.role == Role::Leader {
                    let peer = core.cfg.node_of(from);
                    self.base.repl.on_reject(peer, last_idx);
                    // In-flight rounds to that follower are dead.
                    core.pipe.on_regress(peer);
                    // Back off for a prev mismatch; when the follower's
                    // log is simply longer than ours (the Raft* "no
                    // shrink" rule), wait for new appends instead of
                    // ping-ponging rejects.
                    if last_idx <= self.base.log.last_index() {
                        self.base.send_append_to(core, ctx, peer);
                    }
                }
            }
        }
    }
}

impl ProtocolRules for RaftStarRules {
    fn can_propose(&self, _core: &EngineCore) -> bool {
        self.base.role == Role::Leader
    }

    fn applied_index(&self, _core: &EngineCore) -> Slot {
        self.base.last_applied
    }

    /// Figure 2b `AppendEntries` (leader side): append the batch, rewrite
    /// ballots, replicate.
    fn propose(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, cmds: Vec<Command>) {
        let first_new = self.base.log.last_index().next();
        let count = cmds.len();
        let mut bytes = 0;
        for cmd in cmds {
            let e = Entry {
                term: self.base.current_term,
                bal: self.base.current_term,
                cmd,
            };
            bytes += e.size_bytes();
            self.base.log.append(e);
        }
        // Figure 2b lines 6-7: all ballots become the new entry's term.
        self.base
            .log
            .set_bal_upto(self.base.log.last_index(), self.base.current_term);
        // The leader's own copy is a disk write too; LeaderLearn is
        // clamped by `durable_tail` until its fsync lands.
        self.base
            .note_append_durable(core, ctx, bytes, count, self.base.log.last_index());
        self.index_writes_from(first_new);
        self.base.broadcast_append(core, ctx);
    }

    /// [PQL] Figure 13 `LocalRead`: serve, park, or decline.
    fn try_serve_local(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        cmd: &Command,
    ) -> bool {
        let Some(lease) = &self.lease else {
            return false;
        };
        let Op::Get { key } = &cmd.op else {
            return false;
        };
        match lease.mode() {
            ReadMode::QuorumLease => {
                if !lease.has_quorum_lease(ctx.now()) {
                    return false;
                }
            }
            ReadMode::LeaderLease => {
                if self.base.role != Role::Leader || !lease.has_quorum_lease(ctx.now()) {
                    return false;
                }
            }
            ReadMode::LogRead => return false,
        }
        let lease_floor = self
            .lease
            .as_ref()
            .map(|l| l.read_floor())
            .unwrap_or(Slot::NONE);
        // An in-log `FreezeRange` covering the key gates the read even
        // though it is not a write to the key: from the freeze's slot
        // on, writes to the range commit in the *destination* group
        // without consulting this lease, so serving the local copy past
        // it would be stale. Parking until the freeze applies routes
        // the read through the applied shard state's redirect.
        let freeze_gate = self
            .frozen_in_log
            .iter()
            .filter(|(_, lo, hi)| (*lo..*hi).contains(key))
            .map(|(s, _, _)| *s)
            .max()
            .unwrap_or(Slot::NONE);
        let conflict = self
            .key_last_write
            .get(key)
            .copied()
            .unwrap_or(Slot::NONE)
            .max(lease_floor)
            .max(freeze_gate);
        if conflict > self.base.last_applied {
            // Figure 13 line 4: wait until the conflicting write commits
            // and applies locally — and, after a lease lapse, until the
            // replica has caught up to the grant's read floor (writes
            // committed during the lapse never waited for us).
            self.parked_reads.push((cmd.clone(), conflict));
            return true;
        }
        ctx.charge(core.cfg.costs.read_local);
        let reply = core.kv.read_local(*key);
        core.send_response(ctx, cmd.id, reply);
        self.local_reads_served += 1;
        true
    }

    fn on_start(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.base.arm_election(core, ctx);
        if self.lease.is_some() {
            ctx.set_timer(SimDuration::from_millis(1), T_LEASE);
        }
    }

    fn on_election_timeout(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.start_election(core, ctx);
    }

    fn on_heartbeat(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        self.base.heartbeat(core, ctx);
    }

    fn on_timer(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, kind: u64, _token: u64) {
        if kind == T_LEASE {
            self.lease_tick(core, ctx);
        }
    }

    fn on_msg(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Raft(m) => self.on_raft(core, ctx, from, m),
            Msg::Lease(LeaseMsg::Grant {
                expires_ns,
                last_idx,
            }) => {
                if let Some(lease) = &mut self.lease {
                    ctx.charge(core.cfg.costs.lease_msg);
                    let t = paxraft_sim::time::SimTime::from_nanos(expires_ns);
                    lease.on_grant(core.cfg.node_of(from), t, last_idx, ctx.now());
                    ctx.send(from, Msg::Lease(LeaseMsg::GrantAck { expires_ns }));
                }
            }
            Msg::Lease(LeaseMsg::GrantAck { expires_ns }) => {
                if let Some(lease) = &mut self.lease {
                    let t = paxraft_sim::time::SimTime::from_nanos(expires_ns);
                    lease.on_grant_ack(core.cfg.node_of(from), t);
                }
            }
            _ => {}
        }
    }

    fn accept_snapshot_chunk(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        seal: Term,
    ) -> bool {
        self.base.accept_snapshot_chunk(core, ctx, from, seal)
    }

    /// Installs a fully reassembled snapshot received from the leader.
    /// (The shared helper's log replacement is safe for Raft* too: the
    /// "no erasing" restriction is about live appends, and any
    /// accepted-but-uncommitted value discarded here is retained by the
    /// up-to-date leader that shipped the snapshot.)
    fn install_snapshot(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        snap: Snapshot,
    ) {
        let first_new = snap.last_slot.next();
        if self.base.install_snapshot(core, ctx, snap) {
            self.index_writes_from(first_new);
            self.serve_parked_reads(core, ctx);
        }
        self.base.ack_snapshot(core, ctx, from);
    }

    fn on_snapshot_ack(
        &mut self,
        core: &mut EngineCore,
        ctx: &mut Ctx<Msg>,
        from: ActorId,
        seal: Term,
        upto: Slot,
    ) {
        if self.base.on_snapshot_ack(core, ctx, from, seal, upto) {
            self.advance_commit(core, ctx);
        }
    }

    fn decorate_stats(&self, stats: &mut SnapshotStats) {
        self.base.decorate_stats(stats);
    }

    fn on_durable(&mut self, core: &mut EngineCore, ctx: &mut Ctx<Msg>) {
        // An fsync landed: absorb the new durable watermark and re-run
        // LeaderLearn — the leader's own contribution may have just
        // become countable.
        self.base.absorb_synced(core);
        self.advance_commit(core, ctx);
    }

    fn on_crash(&mut self, core: &mut EngineCore) {
        // Persistent: term, log, the durable snapshot backing the
        // compacted prefix, and grants *given* (a recovering grantor
        // must still honour them). Volatile: everything else, including
        // leases held. The state machine restarts from the snapshot —
        // the compacted prefix cannot be replayed.
        self.base.crash_reset(core);
        if core.dur.enabled() {
            // crash_reset may have truncated an unsynced suffix the
            // [PQL] key index still points into; rebuild it from the
            // retained log.
            self.key_last_write.clear();
            self.frozen_in_log.clear();
            self.index_writes_from(self.base.log.last_included().0.next());
        }
        self.vote_extras.clear();
        self.parked_reads.clear();
        if let Some(lease) = &mut self.lease {
            lease.drop_held();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{cluster_with, drive_until, TestClient};
    use paxraft_sim::sim::Simulation;
    use paxraft_sim::time::SimTime;

    fn star_cluster(n: usize, mode: ReadMode) -> (Simulation<Msg>, Vec<ActorId>, ActorId) {
        cluster_with(n, |mut cfg| {
            cfg.initial_leader = Some(NodeId(0));
            cfg.read_mode = mode;
            Box::new(RaftStarReplica::new(cfg))
        })
    }

    #[test]
    fn logs_converge_with_uniform_ballots() {
        let (mut sim, replicas, client) = star_cluster(3, ReadMode::LogRead);
        for k in 0..10 {
            sim.actor_mut::<TestClient>(client).enqueue_put(k);
        }
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 10
        }));
        sim.run_for(SimDuration::from_secs(1));
        for &r in &replicas {
            let rep = sim.actor::<RaftStarReplica>(r);
            let last_term = rep.log().last_term();
            // LogBallotInv (Appendix B.2): every entry's ballot equals the
            // term of the last accepted append.
            for (s, e) in rep.log().iter() {
                assert_eq!(e.bal, last_term, "uniform ballot at {s}");
            }
        }
        let log0: Vec<_> = sim
            .actor::<RaftStarReplica>(replicas[0])
            .log()
            .iter()
            .map(|(s, e)| (s, e.cmd.id))
            .collect();
        for &r in &replicas[1..] {
            let lr: Vec<_> = sim
                .actor::<RaftStarReplica>(r)
                .log()
                .iter()
                .map(|(s, e)| (s, e.cmd.id))
                .collect();
            assert_eq!(lr, log0);
        }
    }

    #[test]
    fn extras_preserve_committed_entries_for_lagging_candidate() {
        // Node 2 misses all appends (partitioned), then campaigns first
        // after the leader dies. Voter 1's extras must carry the
        // committed entries into node 2's log.
        let (mut sim, replicas, client) = cluster_with(3, |mut cfg| {
            cfg.initial_leader = Some(NodeId(0));
            // Make node 2 campaign well before node 1 after the crash.
            if cfg.id == NodeId(2) {
                cfg.election_min = SimDuration::from_millis(400);
                cfg.election_max = SimDuration::from_millis(500);
            } else {
                cfg.election_min = SimDuration::from_millis(4_000);
                cfg.election_max = SimDuration::from_millis(5_000);
            }
            Box::new(RaftStarReplica::new(cfg))
        });
        // First replicate one entry everywhere so node 2 shares the
        // leader's term (the Raft* vote rule compares log ballots).
        sim.actor_mut::<TestClient>(client).enqueue_put(6);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        }));
        sim.run_for(SimDuration::from_millis(400)); // heartbeat reaches 2
                                                    // Cut node 2 off while further entries commit on {0, 1}.
        sim.partition_at(vec![0, 0, 1, 0], sim.now() + SimDuration::from_millis(1));
        sim.actor_mut::<TestClient>(client).enqueue_put(7);
        sim.actor_mut::<TestClient>(client).enqueue_put(8);
        assert!(drive_until(&mut sim, SimTime::from_secs(8), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 3
        }));
        // Leader dies; partition heals; 2 campaigns with a short log.
        let now = sim.now();
        sim.crash_at(replicas[0], now + SimDuration::from_millis(1));
        sim.heal_at(now + SimDuration::from_millis(2));
        assert!(drive_until(&mut sim, SimTime::from_secs(20), |sim| {
            sim.actor::<RaftStarReplica>(replicas[2]).is_leader()
        }));
        // The new leader must have merged the committed writes.
        sim.actor_mut::<TestClient>(client).target = replicas[2];
        sim.actor_mut::<TestClient>(client).enqueue_get(7);
        assert!(drive_until(&mut sim, SimTime::from_secs(30), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 4
        }));
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[3].1.value_id().is_some(),
            "committed write survived leader change via vote extras"
        );
    }

    #[test]
    fn quorum_lease_enables_follower_local_reads() {
        let (mut sim, replicas, client) = star_cluster(5, ReadMode::QuorumLease);
        // Let leases establish.
        sim.run_for(SimDuration::from_secs(2));
        assert!(sim
            .actor::<RaftStarReplica>(replicas[3])
            .lease()
            .unwrap()
            .has_quorum_lease(sim.now()));
        // Write through the leader first.
        sim.actor_mut::<TestClient>(client).enqueue_put(5);
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        }));
        sim.run_for(SimDuration::from_secs(1)); // let commit reach followers
                                                // Read from a follower: must be served locally.
        sim.actor_mut::<TestClient>(client).target = replicas[3];
        sim.actor_mut::<TestClient>(client).enqueue_get(5);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 2
        }));
        let served = sim
            .actor::<RaftStarReplica>(replicas[3])
            .local_reads_served();
        assert_eq!(served, 1, "follower served the read locally");
        let c = sim.actor::<TestClient>(client);
        assert!(
            c.replies[1].1.value_id().is_some(),
            "local read sees the write"
        );
    }

    #[test]
    fn leader_lease_serves_reads_only_at_leader() {
        let (mut sim, replicas, client) = star_cluster(3, ReadMode::LeaderLease);
        sim.run_for(SimDuration::from_secs(2));
        sim.actor_mut::<TestClient>(client).enqueue_put(9);
        sim.actor_mut::<TestClient>(client).enqueue_get(9);
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 2
        }));
        assert_eq!(
            sim.actor::<RaftStarReplica>(replicas[0])
                .local_reads_served(),
            1
        );
        assert_eq!(
            sim.actor::<RaftStarReplica>(replicas[1])
                .local_reads_served(),
            0
        );
    }

    #[test]
    fn pql_write_waits_for_crashed_holder_until_expiry() {
        let (mut sim, replicas, client) = star_cluster(3, ReadMode::QuorumLease);
        sim.run_for(SimDuration::from_secs(2)); // leases up
        sim.actor_mut::<TestClient>(client).enqueue_put(1);
        assert!(drive_until(&mut sim, SimTime::from_secs(5), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        }));
        // Crash a follower that holds leases; a subsequent write must wait
        // for its grant to lapse (≤ 2s) but still completes.
        sim.crash_at(replicas[2], sim.now() + SimDuration::from_millis(1));
        let before = sim.now();
        sim.actor_mut::<TestClient>(client).enqueue_put(2);
        assert!(drive_until(&mut sim, SimTime::from_secs(20), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 2
        }));
        let write_latency = sim.actor::<TestClient>(client).replies[1].2.since(before);
        assert!(
            write_latency < SimDuration::from_secs(4),
            "write unblocked after lease expiry, took {write_latency}"
        );
    }

    #[test]
    fn conflicting_local_read_parks_until_write_applies() {
        let (mut sim, replicas, client) = star_cluster(5, ReadMode::QuorumLease);
        sim.run_for(SimDuration::from_secs(2));
        // Prime the key so the follower knows about it.
        sim.actor_mut::<TestClient>(client).enqueue_put(3);
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(client).replies.len() == 1
        }));
        sim.run_for(SimDuration::from_secs(1));
        // Inject an uncommitted write by appending directly at a follower
        // via a second client writing through the leader, and read from
        // the follower immediately after the append lands but before
        // commit: emulate by reading right after issuing the write.
        sim.actor_mut::<TestClient>(client).enqueue_put(3);
        sim.run_for(SimDuration::from_millis(60)); // append reaches followers
        let mut reader = TestClient::new(1, replicas[1]);
        reader.enqueue_get(3);
        let reader_id = sim.add_actor(paxraft_sim::net::Region::Ohio, Box::new(reader));
        assert!(drive_until(&mut sim, SimTime::from_secs(10), |sim| {
            sim.actor::<TestClient>(reader_id).replies.len() == 1
                && sim.actor::<TestClient>(client).replies.len() == 2
        }));
        // The read must observe the second write (it parked behind it) —
        // seq 2 of client 0.
        let got = sim.actor::<TestClient>(reader_id).replies[0].1.value_id();
        assert_eq!(
            got,
            Some(crate::kv::CmdId { client: 0, seq: 2 }.as_value_id()),
            "parked read observed the conflicting write"
        );
    }
}
