//! Shared identifier types for the consensus protocols.
//!
//! The paper's Figure 3 maps Raft* vocabulary to MultiPaxos vocabulary:
//! `currentTerm ↔ ballot`, `entry.index ↔ instance.id`. We keep distinct
//! newtypes for each so the mapping stays explicit in code.

use std::fmt;

/// A replica identifier, `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A Raft term / Paxos ballot round.
///
/// Values are globally unique per proposer: `term = round * n + node`,
/// which is the standard Paxos ballot encoding. Raft achieves uniqueness
/// differently (per-term single vote), but using the encoded form for both
/// keeps the Figure-3 correspondence `currentTerm ↔ ballot` literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Term(pub u64);

impl Term {
    /// The zero term (no leader has ever existed).
    pub const ZERO: Term = Term(0);

    /// Encodes a (round, proposer) pair into a unique term/ballot.
    pub fn encode(round: u64, node: NodeId, n: usize) -> Term {
        Term(round * n as u64 + node.0 as u64)
    }

    /// The proposer that owns this term under the encoding.
    pub fn owner(self, n: usize) -> NodeId {
        NodeId((self.0 % n as u64) as u32)
    }

    /// The round component of this term.
    pub fn round(self, n: usize) -> u64 {
        self.0 / n as u64
    }

    /// The smallest term owned by `node` strictly greater than `self`.
    pub fn next_for(self, node: NodeId, n: usize) -> Term {
        let mut round = self.round(n);
        loop {
            round += 1;
            let t = Term::encode(round, node, n);
            if t > self {
                return t;
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A log index / Paxos instance id. Logs are 1-based; `Slot(0)` is the
/// sentinel "before the first entry" (the paper's `-1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Slot(pub u64);

impl Slot {
    /// Sentinel for "no entry" (paper's index `-1`).
    pub const NONE: Slot = Slot(0);

    /// The following slot.
    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    /// The preceding slot.
    ///
    /// # Panics
    ///
    /// Panics if called on [`Slot::NONE`].
    pub fn prev(self) -> Slot {
        assert!(self.0 > 0, "Slot::NONE has no predecessor");
        Slot(self.0 - 1)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The quorum-bitmap bit of a replica (acknowledgement and vote sets are
/// `u64` bitmaps indexed by node id).
pub fn me_bit(id: NodeId) -> u64 {
    1 << id.0
}

/// Size of the majority quorum for `n` replicas (`f + 1` where
/// `n = 2f + 1`).
pub fn quorum(n: usize) -> usize {
    n / 2 + 1
}

/// The `f` in `n = 2f + 1`: the number of tolerated failures, and the
/// number of *follower* acknowledgements a Raft leader needs (Figure 8's
/// "from f acceptors").
pub fn max_failures(n: usize) -> usize {
    (n - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_encoding_unique_per_owner() {
        let n = 5;
        for round in 0..4u64 {
            for node in 0..n as u32 {
                let t = Term::encode(round, NodeId(node), n);
                assert_eq!(t.owner(n), NodeId(node));
                assert_eq!(t.round(n), round);
            }
        }
    }

    #[test]
    fn next_for_is_strictly_greater_and_owned() {
        let n = 5;
        let t = Term::encode(3, NodeId(4), n);
        for node in 0..n as u32 {
            let nx = t.next_for(NodeId(node), n);
            assert!(nx > t);
            assert_eq!(nx.owner(n), NodeId(node));
        }
    }

    #[test]
    fn next_for_from_zero() {
        let n = 3;
        let t = Term::ZERO.next_for(NodeId(2), n);
        assert_eq!(t, Term(5)); // round 1, node 2
        assert!(t > Term::ZERO);
    }

    #[test]
    fn slot_navigation() {
        assert_eq!(Slot::NONE.next(), Slot(1));
        assert_eq!(Slot(5).prev(), Slot(4));
    }

    #[test]
    #[should_panic(expected = "no predecessor")]
    fn slot_none_prev_panics() {
        let _ = Slot::NONE.prev();
    }

    #[test]
    fn quorum_sizes() {
        assert_eq!(quorum(3), 2);
        assert_eq!(quorum(5), 3);
        assert_eq!(quorum(7), 4);
        assert_eq!(max_failures(3), 1);
        assert_eq!(max_failures(5), 2);
    }

    #[test]
    fn me_bit_indexes_quorum_bitmaps() {
        assert_eq!(me_bit(NodeId(0)), 1);
        assert_eq!(me_bit(NodeId(5)), 32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", NodeId(2)), "n2");
        assert_eq!(format!("{}", Term(9)), "t9");
        assert_eq!(format!("{}", Slot(4)), "s4");
    }
}
