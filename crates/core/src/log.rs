//! The replicated log shared by the Raft-family replicas.
//!
//! Entries carry both a `term` (Raft's per-entry term) and a `bal` field —
//! the ballot Raft* adds so that a refinement mapping to MultiPaxos exists
//! (Section 3: "a ballot field is added to each entry; on appending a new
//! entry, Raft* will change all entries' ballot to be the new entry's
//! term").
//!
//! Standard Raft uses [`Log::truncate_from`] to erase conflicting
//! suffixes; Raft* never truncates — it uses [`Log::replace_suffix`],
//! which only ever overwrites or extends (the "no erasing" restriction
//! that makes Raft* map onto Paxos, Section 3).

use crate::kv::Command;
use crate::types::{Slot, Term};

/// One log entry / Paxos instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Raft entry term (Figure 2's `log[i].term`).
    pub term: Term,
    /// Paxos-style accepted ballot (Figure 2's `log[i].bal`, added by Raft*).
    pub bal: Term,
    /// The replicated command.
    pub cmd: Command,
}

impl Entry {
    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        16 + self.cmd.size_bytes()
    }
}

/// A 1-based append-only-ish log. `Slot(0)` is the empty sentinel.
#[derive(Debug, Clone, Default)]
pub struct Log {
    entries: Vec<Entry>,
}

impl Log {
    /// An empty log.
    pub fn new() -> Self {
        Log::default()
    }

    /// Index of the last entry, or [`Slot::NONE`] when empty.
    pub fn last_index(&self) -> Slot {
        Slot(self.entries.len() as u64)
    }

    /// Term of the last entry ([`Term::ZERO`] when empty).
    pub fn last_term(&self) -> Term {
        self.entries.last().map_or(Term::ZERO, |e| e.term)
    }

    /// The entry at `slot`, if present.
    pub fn get(&self, slot: Slot) -> Option<&Entry> {
        if slot == Slot::NONE {
            return None;
        }
        self.entries.get(slot.0 as usize - 1)
    }

    /// Term at `slot`; [`Slot::NONE`] maps to [`Term::ZERO`] (the paper's
    /// `log[-1].term = -1` convention). Returns `None` past the end.
    pub fn term_at(&self, slot: Slot) -> Option<Term> {
        if slot == Slot::NONE {
            Some(Term::ZERO)
        } else {
            self.get(slot).map(|e| e.term)
        }
    }

    /// Appends an entry, returning its slot.
    pub fn append(&mut self, entry: Entry) -> Slot {
        self.entries.push(entry);
        self.last_index()
    }

    /// Whether `(prev, prev_term)` matches this log (the AppendEntries
    /// consistency check).
    pub fn matches(&self, prev: Slot, prev_term: Term) -> bool {
        self.term_at(prev) == Some(prev_term)
    }

    /// **Raft only.** Removes every entry at `slot` and beyond. This is
    /// the "erase extraneous entries" step that has no MultiPaxos
    /// counterpart (Section 3's first obstacle to a direct mapping).
    pub fn truncate_from(&mut self, slot: Slot) {
        assert!(slot != Slot::NONE, "cannot truncate from the sentinel");
        self.entries.truncate(slot.0 as usize - 1);
    }

    /// **Raft\*.** Replaces the entries after `prev` with `entries`.
    ///
    /// # Panics
    ///
    /// Panics if the replacement would *shorten* the log — Raft* acceptors
    /// must reject such appends (Figure 2b: `lastIndex ≤ prev +
    /// length(ents)`), so reaching this state is a protocol bug.
    pub fn replace_suffix(&mut self, prev: Slot, entries: Vec<Entry>) {
        let new_last = prev.0 + entries.len() as u64;
        assert!(
            new_last >= self.last_index().0,
            "Raft* replace_suffix would shorten the log ({} < {})",
            new_last,
            self.last_index().0
        );
        self.entries.truncate(prev.0 as usize);
        self.entries.extend(entries);
    }

    /// **Raft\*.** Sets `bal = term` on every entry up to and including
    /// `upto` (Figure 2's "change all entries' ballot to be the new
    /// entry's term").
    pub fn set_bal_upto(&mut self, upto: Slot, term: Term) {
        let n = (upto.0 as usize).min(self.entries.len());
        for e in &mut self.entries[..n] {
            e.bal = term;
        }
    }

    /// Clones the entries strictly after `prev` (for AppendEntries
    /// payloads and Raft* vote-reply extras).
    pub fn suffix_from(&self, prev: Slot) -> Vec<Entry> {
        self.entries[(prev.0 as usize).min(self.entries.len())..].to_vec()
    }

    /// Iterates entries with their slots.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &Entry)> {
        self.entries.iter().enumerate().map(|(i, e)| (Slot(i as u64 + 1), e))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{CmdId, Command};

    fn entry(term: u64, key: u64) -> Entry {
        Entry {
            term: Term(term),
            bal: Term(term),
            cmd: Command::put(CmdId { client: 1, seq: key }, key, vec![0; 8]),
        }
    }

    #[test]
    fn empty_log_sentinels() {
        let log = Log::new();
        assert_eq!(log.last_index(), Slot::NONE);
        assert_eq!(log.last_term(), Term::ZERO);
        assert_eq!(log.term_at(Slot::NONE), Some(Term::ZERO));
        assert_eq!(log.term_at(Slot(1)), None);
        assert!(log.matches(Slot::NONE, Term::ZERO));
        assert!(log.is_empty());
    }

    #[test]
    fn append_and_get() {
        let mut log = Log::new();
        assert_eq!(log.append(entry(1, 10)), Slot(1));
        assert_eq!(log.append(entry(1, 11)), Slot(2));
        assert_eq!(log.get(Slot(2)).unwrap().cmd.op.key(), Some(11));
        assert_eq!(log.last_term(), Term(1));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn matches_consistency_check() {
        let mut log = Log::new();
        log.append(entry(1, 1));
        log.append(entry(2, 2));
        assert!(log.matches(Slot(2), Term(2)));
        assert!(!log.matches(Slot(2), Term(1)));
        assert!(!log.matches(Slot(3), Term(2)), "past the end never matches");
    }

    #[test]
    fn raft_truncation_erases_suffix() {
        let mut log = Log::new();
        for i in 0..5 {
            log.append(entry(1, i));
        }
        log.truncate_from(Slot(3));
        assert_eq!(log.last_index(), Slot(2));
        assert!(log.get(Slot(3)).is_none());
    }

    #[test]
    fn raftstar_replace_suffix_overwrites() {
        let mut log = Log::new();
        log.append(entry(1, 1));
        log.append(entry(1, 2));
        log.replace_suffix(Slot(1), vec![entry(2, 20), entry(2, 21)]);
        assert_eq!(log.last_index(), Slot(3));
        assert_eq!(log.get(Slot(2)).unwrap().term, Term(2));
        assert_eq!(log.get(Slot(1)).unwrap().term, Term(1), "prefix untouched");
    }

    #[test]
    #[should_panic(expected = "shorten")]
    fn raftstar_replace_suffix_rejects_shortening() {
        let mut log = Log::new();
        for i in 0..4 {
            log.append(entry(1, i));
        }
        // prev=1 with one entry would leave lastIndex 2 < 4.
        log.replace_suffix(Slot(1), vec![entry(2, 9)]);
    }

    #[test]
    fn bal_rewrite_covers_prefix() {
        let mut log = Log::new();
        log.append(entry(1, 1));
        log.append(entry(2, 2));
        log.append(entry(2, 3));
        log.set_bal_upto(Slot(2), Term(7));
        assert_eq!(log.get(Slot(1)).unwrap().bal, Term(7));
        assert_eq!(log.get(Slot(2)).unwrap().bal, Term(7));
        assert_eq!(log.get(Slot(3)).unwrap().bal, Term(2), "beyond upto untouched");
        // Terms are never rewritten by bal updates.
        assert_eq!(log.get(Slot(1)).unwrap().term, Term(1));
    }

    #[test]
    fn suffix_from_clones_tail() {
        let mut log = Log::new();
        for i in 0..4 {
            log.append(entry(1, i));
        }
        let tail = log.suffix_from(Slot(2));
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].cmd.op.key(), Some(2));
        assert!(log.suffix_from(Slot(9)).is_empty());
        assert_eq!(log.suffix_from(Slot::NONE).len(), 4);
    }

    #[test]
    fn iter_yields_one_based_slots() {
        let mut log = Log::new();
        log.append(entry(1, 5));
        log.append(entry(1, 6));
        let slots: Vec<Slot> = log.iter().map(|(s, _)| s).collect();
        assert_eq!(slots, vec![Slot(1), Slot(2)]);
    }
}
