//! The replicated log shared by the Raft-family replicas.
//!
//! Entries carry both a `term` (Raft's per-entry term) and a `bal` field —
//! the ballot Raft* adds so that a refinement mapping to MultiPaxos exists
//! (Section 3: "a ballot field is added to each entry; on appending a new
//! entry, Raft* will change all entries' ballot to be the new entry's
//! term").
//!
//! Standard Raft uses [`Log::truncate_from`] to erase conflicting
//! suffixes; Raft* never truncates — it uses [`Log::replace_suffix`],
//! which only ever overwrites or extends (the "no erasing" restriction
//! that makes Raft* map onto Paxos, Section 3).
//!
//! # Compaction
//!
//! [`Log::compact_to`] discards an *applied* prefix after the state
//! machine has been snapshotted, retaining `last_included()` — the slot
//! and term of the last discarded entry — so the AppendEntries
//! consistency check still works at the compaction boundary:
//! `term_at(start)` answers with the retained term, slots below the
//! boundary answer `None` ("unknown, ask for a snapshot"). Slot numbering
//! is global and never shifts: slot `s` names the same entry before and
//! after compaction.

use paxraft_workload::metrics::PeakGauge;

use crate::kv::Command;
use crate::types::{Slot, Term};

/// One log entry / Paxos instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Raft entry term (Figure 2's `log[i].term`).
    pub term: Term,
    /// Paxos-style accepted ballot (Figure 2's `log[i].bal`, added by Raft*).
    pub bal: Term,
    /// The replicated command.
    pub cmd: Command,
}

impl Entry {
    /// Approximate wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        16 + self.cmd.size_bytes()
    }
}

/// A 1-based append-only-ish log. `Slot(0)` is the empty sentinel.
#[derive(Debug, Clone, Default)]
pub struct Log {
    entries: Vec<Entry>,
    /// Compacted-through slot: every entry at or below it has been
    /// discarded (applied and snapshotted). [`Slot::NONE`] when the log
    /// has never been compacted.
    start: Slot,
    /// Term of the entry at `start` (the paper's `log[-1].term` once the
    /// prefix is gone); [`Term::ZERO`] when never compacted.
    start_term: Term,
    /// Retained payload bytes (sum of entry sizes).
    bytes: usize,
    /// High-water mark of retained entries (for compaction metrics).
    peak_entries: PeakGauge,
    /// High-water mark of retained bytes.
    peak_bytes: PeakGauge,
}

impl Log {
    /// An empty log.
    pub fn new() -> Self {
        Log::default()
    }

    /// Index of the last entry, or [`Slot::NONE`] when empty and never
    /// compacted. Global slot numbering survives compaction.
    pub fn last_index(&self) -> Slot {
        Slot(self.start.0 + self.entries.len() as u64)
    }

    /// Term of the last entry ([`Term::ZERO`] when empty; the last
    /// *included* term when everything is compacted away).
    pub fn last_term(&self) -> Term {
        self.entries.last().map_or(self.start_term, |e| e.term)
    }

    /// First retained slot (`start + 1`).
    pub fn first_index(&self) -> Slot {
        self.start.next()
    }

    /// `(slot, term)` of the last compacted-away entry:
    /// `(Slot::NONE, Term::ZERO)` when never compacted.
    pub fn last_included(&self) -> (Slot, Term) {
        (self.start, self.start_term)
    }

    /// The entry at `slot`, if retained.
    pub fn get(&self, slot: Slot) -> Option<&Entry> {
        if slot <= self.start {
            return None;
        }
        self.entries.get((slot.0 - self.start.0) as usize - 1)
    }

    /// Term at `slot`. The compaction boundary answers with the retained
    /// `last_included` term (for an uncompacted log that is the paper's
    /// `log[-1].term = -1` convention at [`Slot::NONE`]); slots *below*
    /// the boundary answer `None` — they are unknown here and a caller
    /// needing them must fall back to a snapshot. Also `None` past the
    /// end.
    pub fn term_at(&self, slot: Slot) -> Option<Term> {
        if slot == self.start {
            Some(self.start_term)
        } else {
            self.get(slot).map(|e| e.term)
        }
    }

    /// Appends an entry, returning its slot.
    pub fn append(&mut self, entry: Entry) -> Slot {
        self.bytes += entry.size_bytes();
        self.entries.push(entry);
        self.note_peak();
        self.last_index()
    }

    /// Whether `(prev, prev_term)` matches this log (the AppendEntries
    /// consistency check). Slots inside the compacted prefix never match
    /// — callers detect `prev < last_included` separately and treat the
    /// overlap as implicitly matching (it is committed state).
    pub fn matches(&self, prev: Slot, prev_term: Term) -> bool {
        self.term_at(prev) == Some(prev_term)
    }

    /// **Raft only.** Removes every entry at `slot` and beyond. This is
    /// the "erase extraneous entries" step that has no MultiPaxos
    /// counterpart (Section 3's first obstacle to a direct mapping).
    ///
    /// # Panics
    ///
    /// Panics if `slot` lies inside the compacted prefix (those entries
    /// are applied and can never conflict) or is the sentinel.
    pub fn truncate_from(&mut self, slot: Slot) {
        assert!(slot != Slot::NONE, "cannot truncate from the sentinel");
        assert!(
            slot > self.start,
            "cannot truncate into the compacted prefix ({} <= {})",
            slot,
            self.start
        );
        let keep = (slot.0 - self.start.0) as usize - 1;
        for e in &self.entries[keep.min(self.entries.len())..] {
            self.bytes -= e.size_bytes();
        }
        self.entries.truncate(keep);
    }

    /// **Raft\*.** Replaces the entries after `prev` with `entries`.
    ///
    /// # Panics
    ///
    /// Panics if the replacement would *shorten* the log — Raft* acceptors
    /// must reject such appends (Figure 2b: `lastIndex ≤ prev +
    /// length(ents)`), so reaching this state is a protocol bug — or if
    /// `prev` lies inside the compacted prefix (callers must skip the
    /// overlap first).
    pub fn replace_suffix(&mut self, prev: Slot, entries: Vec<Entry>) {
        assert!(
            prev >= self.start,
            "replace_suffix reaches into the compacted prefix ({} < {})",
            prev,
            self.start
        );
        let new_last = prev.0 + entries.len() as u64;
        assert!(
            new_last >= self.last_index().0,
            "Raft* replace_suffix would shorten the log ({} < {})",
            new_last,
            self.last_index().0
        );
        let keep = (prev.0 - self.start.0) as usize;
        for e in &self.entries[keep.min(self.entries.len())..] {
            self.bytes -= e.size_bytes();
        }
        self.entries.truncate(keep);
        for e in &entries {
            self.bytes += e.size_bytes();
        }
        self.entries.extend(entries);
        self.note_peak();
    }

    /// **Raft\*.** Sets `bal = term` on every entry up to and including
    /// `upto` (Figure 2's "change all entries' ballot to be the new
    /// entry's term"). Compacted entries are untouched (they are applied;
    /// their ballots no longer matter).
    pub fn set_bal_upto(&mut self, upto: Slot, term: Term) {
        let n = (upto.0.saturating_sub(self.start.0) as usize).min(self.entries.len());
        for e in &mut self.entries[..n] {
            e.bal = term;
        }
    }

    /// Clones the retained entries strictly after `prev` (for
    /// AppendEntries payloads and Raft* vote-reply extras). A `prev`
    /// inside the compacted prefix yields everything retained — callers
    /// wanting the discarded part must ship a snapshot instead.
    pub fn suffix_from(&self, prev: Slot) -> Vec<Entry> {
        let from = (prev.0.saturating_sub(self.start.0) as usize).min(self.entries.len());
        self.entries[from..].to_vec()
    }

    /// Iterates retained entries with their (global) slots.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &Entry)> {
        let start = self.start.0;
        self.entries
            .iter()
            .enumerate()
            .map(move |(i, e)| (Slot(start + i as u64 + 1), e))
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are retained (the log may still have a
    /// compacted history — check [`Log::last_included`]).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Retained payload bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// High-water mark of retained entries since creation.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries.peak() as usize
    }

    /// High-water mark of retained bytes since creation.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.peak() as usize
    }

    /// Discards every entry at or below `upto` (clamped to the end of
    /// the log), retaining its slot and term as the new
    /// [`Log::last_included`]. Returns the number of entries discarded.
    ///
    /// Callers must only compact an *applied* prefix — the discarded
    /// entries live on solely inside the state-machine snapshot.
    pub fn compact_to(&mut self, upto: Slot) -> usize {
        let upto = Slot(upto.0.min(self.last_index().0));
        if upto <= self.start {
            return 0;
        }
        let term = self.term_at(upto).expect("compaction point is in range");
        let k = (upto.0 - self.start.0) as usize;
        for e in self.entries.drain(..k) {
            self.bytes -= e.size_bytes();
        }
        self.start = upto;
        self.start_term = term;
        k
    }

    /// Replaces the entire log with the history implied by an installed
    /// snapshot: nothing retained, `last_included = (slot, term)`. Used
    /// by a follower whose log conflicts with (or ends before) a
    /// received snapshot.
    pub fn reset_to(&mut self, slot: Slot, term: Term) {
        self.entries.clear();
        self.bytes = 0;
        self.start = slot;
        self.start_term = term;
    }

    fn note_peak(&mut self) {
        self.peak_entries.observe(self.entries.len() as u64);
        self.peak_bytes.observe(self.bytes as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{CmdId, Command};

    fn entry(term: u64, key: u64) -> Entry {
        Entry {
            term: Term(term),
            bal: Term(term),
            cmd: Command::put(
                CmdId {
                    client: 1,
                    seq: key,
                },
                key,
                vec![0; 8],
            ),
        }
    }

    #[test]
    fn empty_log_sentinels() {
        let log = Log::new();
        assert_eq!(log.last_index(), Slot::NONE);
        assert_eq!(log.last_term(), Term::ZERO);
        assert_eq!(log.term_at(Slot::NONE), Some(Term::ZERO));
        assert_eq!(log.term_at(Slot(1)), None);
        assert!(log.matches(Slot::NONE, Term::ZERO));
        assert!(log.is_empty());
        assert_eq!(log.first_index(), Slot(1));
        assert_eq!(log.last_included(), (Slot::NONE, Term::ZERO));
    }

    #[test]
    fn append_and_get() {
        let mut log = Log::new();
        assert_eq!(log.append(entry(1, 10)), Slot(1));
        assert_eq!(log.append(entry(1, 11)), Slot(2));
        assert_eq!(log.get(Slot(2)).unwrap().cmd.op.key(), Some(11));
        assert_eq!(log.last_term(), Term(1));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn matches_consistency_check() {
        let mut log = Log::new();
        log.append(entry(1, 1));
        log.append(entry(2, 2));
        assert!(log.matches(Slot(2), Term(2)));
        assert!(!log.matches(Slot(2), Term(1)));
        assert!(!log.matches(Slot(3), Term(2)), "past the end never matches");
    }

    #[test]
    fn raft_truncation_erases_suffix() {
        let mut log = Log::new();
        for i in 0..5 {
            log.append(entry(1, i));
        }
        log.truncate_from(Slot(3));
        assert_eq!(log.last_index(), Slot(2));
        assert!(log.get(Slot(3)).is_none());
    }

    #[test]
    fn raftstar_replace_suffix_overwrites() {
        let mut log = Log::new();
        log.append(entry(1, 1));
        log.append(entry(1, 2));
        log.replace_suffix(Slot(1), vec![entry(2, 20), entry(2, 21)]);
        assert_eq!(log.last_index(), Slot(3));
        assert_eq!(log.get(Slot(2)).unwrap().term, Term(2));
        assert_eq!(log.get(Slot(1)).unwrap().term, Term(1), "prefix untouched");
    }

    #[test]
    #[should_panic(expected = "shorten")]
    fn raftstar_replace_suffix_rejects_shortening() {
        let mut log = Log::new();
        for i in 0..4 {
            log.append(entry(1, i));
        }
        // prev=1 with one entry would leave lastIndex 2 < 4.
        log.replace_suffix(Slot(1), vec![entry(2, 9)]);
    }

    #[test]
    fn bal_rewrite_covers_prefix() {
        let mut log = Log::new();
        log.append(entry(1, 1));
        log.append(entry(2, 2));
        log.append(entry(2, 3));
        log.set_bal_upto(Slot(2), Term(7));
        assert_eq!(log.get(Slot(1)).unwrap().bal, Term(7));
        assert_eq!(log.get(Slot(2)).unwrap().bal, Term(7));
        assert_eq!(
            log.get(Slot(3)).unwrap().bal,
            Term(2),
            "beyond upto untouched"
        );
        // Terms are never rewritten by bal updates.
        assert_eq!(log.get(Slot(1)).unwrap().term, Term(1));
    }

    #[test]
    fn suffix_from_clones_tail() {
        let mut log = Log::new();
        for i in 0..4 {
            log.append(entry(1, i));
        }
        let tail = log.suffix_from(Slot(2));
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].cmd.op.key(), Some(2));
        assert!(log.suffix_from(Slot(9)).is_empty());
        assert_eq!(log.suffix_from(Slot::NONE).len(), 4);
    }

    #[test]
    fn iter_yields_one_based_slots() {
        let mut log = Log::new();
        log.append(entry(1, 5));
        log.append(entry(1, 6));
        let slots: Vec<Slot> = log.iter().map(|(s, _)| s).collect();
        assert_eq!(slots, vec![Slot(1), Slot(2)]);
    }

    // ── compaction ──────────────────────────────────────────────────

    fn log_of(terms: &[u64]) -> Log {
        let mut log = Log::new();
        for (i, &t) in terms.iter().enumerate() {
            log.append(entry(t, i as u64));
        }
        log
    }

    #[test]
    fn compact_discards_prefix_and_keeps_numbering() {
        let mut log = log_of(&[1, 1, 2, 2, 3]);
        assert_eq!(log.compact_to(Slot(3)), 3);
        assert_eq!(log.last_included(), (Slot(3), Term(2)));
        assert_eq!(log.first_index(), Slot(4));
        assert_eq!(log.last_index(), Slot(5), "global numbering survives");
        assert_eq!(log.len(), 2);
        assert!(log.get(Slot(3)).is_none(), "compacted entry gone");
        assert_eq!(
            log.get(Slot(4)).unwrap().term,
            Term(2),
            "retained entry still at its slot"
        );
        assert_eq!(log.get(Slot(5)).unwrap().term, Term(3));
    }

    #[test]
    fn term_at_boundary_and_below() {
        let mut log = log_of(&[1, 2, 3, 3]);
        log.compact_to(Slot(2));
        assert_eq!(
            log.term_at(Slot(2)),
            Some(Term(2)),
            "boundary keeps its term"
        );
        assert_eq!(log.term_at(Slot(1)), None, "below the boundary is unknown");
        assert_eq!(
            log.term_at(Slot::NONE),
            None,
            "sentinel is below the boundary too"
        );
        assert_eq!(log.term_at(Slot(3)), Some(Term(3)));
    }

    #[test]
    fn matches_across_compaction_boundary() {
        let mut log = log_of(&[1, 2, 3, 3]);
        log.compact_to(Slot(2));
        assert!(
            log.matches(Slot(2), Term(2)),
            "consistency check works at the boundary"
        );
        assert!(!log.matches(Slot(2), Term(1)));
        assert!(
            !log.matches(Slot(1), Term(1)),
            "inside the prefix never matches"
        );
        assert!(log.matches(Slot(3), Term(3)), "retained entries unaffected");
    }

    #[test]
    fn compact_past_end_clamps_to_last_index() {
        let mut log = log_of(&[1, 1, 2]);
        assert_eq!(log.compact_to(Slot(99)), 3, "clamped to the whole log");
        assert_eq!(log.last_included(), (Slot(3), Term(2)));
        assert_eq!(log.last_index(), Slot(3));
        assert_eq!(
            log.last_term(),
            Term(2),
            "last_term survives full compaction"
        );
        assert!(log.is_empty());
        // Appending after a full compaction continues the numbering.
        log.append(entry(4, 9));
        assert_eq!(log.last_index(), Slot(4));
        assert_eq!(log.term_at(Slot(4)), Some(Term(4)));
    }

    #[test]
    fn compact_is_idempotent_and_monotone() {
        let mut log = log_of(&[1, 1, 1, 1]);
        assert_eq!(log.compact_to(Slot(2)), 2);
        assert_eq!(log.compact_to(Slot(2)), 0, "same point is a no-op");
        assert_eq!(log.compact_to(Slot(1)), 0, "earlier point is a no-op");
        assert_eq!(log.compact_to(Slot(4)), 2, "further compaction continues");
    }

    #[test]
    fn suffix_from_clamps_to_compaction_boundary() {
        let mut log = log_of(&[1, 1, 2, 2]);
        log.compact_to(Slot(2));
        // A prev inside the discarded prefix yields the whole retained log.
        assert_eq!(log.suffix_from(Slot::NONE).len(), 2);
        assert_eq!(log.suffix_from(Slot(1)).len(), 2);
        assert_eq!(log.suffix_from(Slot(2)).len(), 2);
        assert_eq!(log.suffix_from(Slot(3)).len(), 1);
    }

    #[test]
    fn bytes_tracks_append_truncate_compact() {
        let mut log = Log::new();
        assert_eq!(log.bytes(), 0);
        log.append(entry(1, 1));
        log.append(entry(1, 2));
        let per = entry(1, 1).size_bytes();
        assert_eq!(log.bytes(), 2 * per);
        log.compact_to(Slot(1));
        assert_eq!(log.bytes(), per);
        log.truncate_from(Slot(2));
        assert_eq!(log.bytes(), 0);
        assert!(log.peak_bytes() >= 2 * per);
        assert_eq!(log.peak_entries(), 2);
    }

    #[test]
    fn replace_suffix_at_boundary_after_compaction() {
        let mut log = log_of(&[1, 1]);
        log.compact_to(Slot(2));
        log.replace_suffix(Slot(2), vec![entry(3, 7), entry(3, 8)]);
        assert_eq!(log.last_index(), Slot(4));
        assert_eq!(log.get(Slot(3)).unwrap().term, Term(3));
    }

    #[test]
    #[should_panic(expected = "compacted prefix")]
    fn truncate_into_compacted_prefix_panics() {
        let mut log = log_of(&[1, 1, 1]);
        log.compact_to(Slot(2));
        log.truncate_from(Slot(2));
    }

    #[test]
    fn reset_to_installs_snapshot_history() {
        let mut log = log_of(&[1, 1, 1]);
        log.reset_to(Slot(10), Term(5));
        assert!(log.is_empty());
        assert_eq!(log.last_index(), Slot(10));
        assert_eq!(log.last_term(), Term(5));
        assert_eq!(log.term_at(Slot(10)), Some(Term(5)));
        assert!(log.matches(Slot(10), Term(5)));
        log.append(entry(6, 1));
        assert_eq!(log.last_index(), Slot(11));
    }
}
