//! Cluster harness: builds a geo-replicated cluster of any protocol,
//! attaches closed-loop clients per region, runs a measured interval with
//! warm-up/cool-down trimming, and reports the paper's metrics
//! (throughput; p50/p90/p99 latency split into leader-region and
//! follower-region clients, read vs write).

use paxraft_sim::net::{NetConfig, Region};
use paxraft_sim::sim::{ActorId, Simulation};
use paxraft_sim::time::SimDuration;
use paxraft_workload::generator::{Generator, OpKind, WorkloadConfig};
use paxraft_workload::linearize::OpRecord;
use paxraft_workload::metrics::{LatencyRecorder, LatencyTriple};

use crate::client::WorkloadClient;
use crate::config::{DurabilityConfig, LeaseConfig, ReadMode, ReplicaConfig};
use crate::costs::CostModel;
use crate::engine::{DurabilityStats, PipelineConfig, PipelineStats};
use crate::kv::{CmdId, Command, Key, Op, Reply};
use crate::mencius::MenciusReplica;
use crate::msg::{ClientMsg, Msg};
use crate::multipaxos::MultiPaxosReplica;
use crate::raft::RaftReplica;
use crate::raftstar::RaftStarReplica;
use crate::snapshot::{SnapshotConfig, SnapshotStats};
use crate::telemetry::{
    HistogramSeries, LatencyHistogram, MetricRegistry, MetricSample, SpanAssembler, SpanReport,
    TelemetryConfig, TimeSeries,
};
use crate::types::NodeId;

/// Which protocol the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// MultiPaxos (Figure 1).
    MultiPaxos,
    /// Standard Raft.
    Raft,
    /// Raft* with log reads.
    RaftStar,
    /// Raft* + ported Paxos Quorum Lease.
    RaftStarPql,
    /// Raft* + Leader Lease baseline.
    LeaderLease,
    /// Raft*-Mencius (multi-leader).
    RaftStarMencius,
}

impl ProtocolKind {
    /// Display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::MultiPaxos => "MultiPaxos",
            ProtocolKind::Raft => "Raft",
            ProtocolKind::RaftStar => "Raft*",
            ProtocolKind::RaftStarPql => "Raft*-PQL",
            ProtocolKind::LeaderLease => "Raft*-LL",
            ProtocolKind::RaftStarMencius => "Raft*-Mencius",
        }
    }
}

/// Builder for [`Cluster`] (and, via
/// [`ClusterBuilder::build_sharded`], for
/// [`crate::shard::ShardedCluster`]).
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    pub(crate) protocol: ProtocolKind,
    pub(crate) replicas: usize,
    pub(crate) regions: Vec<Region>,
    pub(crate) leader: NodeId,
    pub(crate) clients_per_region: usize,
    pub(crate) workload: WorkloadConfig,
    pub(crate) seed: u64,
    pub(crate) costs: CostModel,
    pub(crate) net: NetConfig,
    pub(crate) record_history_key: Option<Key>,
    pub(crate) batch_delay: SimDuration,
    pub(crate) batch_max: usize,
    pub(crate) lease: LeaseConfig,
    pub(crate) snapshot: SnapshotConfig,
    pub(crate) pipeline: PipelineConfig,
    pub(crate) shard: crate::shard::ShardConfig,
    pub(crate) rebalance: crate::shard::RebalanceConfig,
    pub(crate) autobalance: crate::shard::AutoBalanceConfig,
    pub(crate) telemetry: TelemetryConfig,
    pub(crate) durability: DurabilityConfig,
}

impl ClusterBuilder {
    /// Number of replicas (default 5, one per region).
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Region placement (length must equal `replicas`).
    pub fn regions(mut self, regions: Vec<Region>) -> Self {
        self.regions = regions;
        self
    }

    /// Which node is bootstrapped as leader (default node 0 = Oregon;
    /// ignored by Mencius).
    pub fn leader(mut self, node: NodeId) -> Self {
        self.leader = node;
        self
    }

    /// Closed-loop clients per region (default 0; use
    /// [`Cluster::submit_and_wait`] for scripted ops).
    pub fn clients_per_region(mut self, c: usize) -> Self {
        self.clients_per_region = c;
        self
    }

    /// Workload parameters.
    pub fn workload(mut self, w: WorkloadConfig) -> Self {
        self.workload = w;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// CPU cost model.
    pub fn costs(mut self, c: CostModel) -> Self {
        self.costs = c;
        self
    }

    /// Network configuration.
    pub fn net(mut self, n: NetConfig) -> Self {
        self.net = n;
        self
    }

    /// Record linearizability histories for `key` at every client.
    pub fn record_history_for(mut self, key: Key) -> Self {
        self.record_history_key = Some(key);
        self
    }

    /// Leader batching window.
    pub fn batch_delay(mut self, d: SimDuration) -> Self {
        self.batch_delay = d;
        self
    }

    /// Batch-size cap: a pending batch flushes immediately once this
    /// many commands accumulate (default 64).
    pub fn batch_max(mut self, max: usize) -> Self {
        self.batch_max = max;
        self
    }

    /// Sharding parameters: how many replica groups to run and where
    /// their leaders bootstrap. Only [`ClusterBuilder::build_sharded`]
    /// consumes this; the unsharded [`ClusterBuilder::build`] refuses a
    /// multi-group configuration.
    pub fn shard_config(mut self, shard: crate::shard::ShardConfig) -> Self {
        self.shard = shard;
        self
    }

    /// Scripted live rebalancing: key-range migrations the coordinator
    /// runs at the given virtual times. Only
    /// [`ClusterBuilder::build_sharded`] consumes this; an empty plan
    /// (the default) creates no coordinator actor, keeping the cluster
    /// bit-for-bit the non-rebalancing cluster.
    pub fn rebalance_config(mut self, rebalance: crate::shard::RebalanceConfig) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// Closed-loop auto-rebalancing: a policy engine that watches live
    /// per-group telemetry and issues migrations itself. Only
    /// [`ClusterBuilder::build_sharded`] consumes this; the disabled
    /// default creates no policy (and no coordinator actor unless a
    /// scripted plan asks for one), keeping the cluster bit-for-bit
    /// the plain sharded cluster. Enabling it requires telemetry
    /// sampling and more than one group.
    pub fn autobalance_config(mut self, autobalance: crate::shard::AutoBalanceConfig) -> Self {
        self.autobalance = autobalance;
        self
    }

    /// Lease parameters (PQL / LL modes).
    pub fn lease_config(mut self, lease: LeaseConfig) -> Self {
        self.lease = lease;
        self
    }

    /// Snapshot / log-compaction parameters for every replica
    /// (default: disabled).
    pub fn snapshot_config(mut self, snapshot: SnapshotConfig) -> Self {
        self.snapshot = snapshot;
        self
    }

    /// Replication pipelining / adaptive-batching parameters for every
    /// replica (default: enabled, depth 8; `PipelineConfig::disabled()`
    /// restores the one-round-per-timer legacy batching).
    pub fn pipeline_config(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Telemetry: the flight recorder and the virtual-time metric
    /// sampler (default: both off). Sampling and tracing are pure
    /// observation — enabling them never changes the event schedule or
    /// the RNG stream, so reports stay bit-for-bit identical either
    /// way (pinned by the conformance suite).
    pub fn telemetry_config(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Durable-storage model for every replica (default: disabled — the
    /// zero-cost disk, acks never wait for fsync, runs bit-for-bit
    /// identical to a build without the disk model). Enabling it
    /// provisions one simulated disk per node (sharded clusters
    /// co-locate all of a node's group replicas on that node's disk)
    /// and makes every durability-attesting ack wait for its covering
    /// fsync per the configured [`crate::config::FsyncPolicy`].
    pub fn durability_config(mut self, durability: DurabilityConfig) -> Self {
        self.durability = durability;
        self
    }

    /// Constructs the cluster.
    ///
    /// # Panics
    ///
    /// Panics if region placement does not match the replica count.
    pub fn build(self) -> Cluster {
        assert_eq!(self.regions.len(), self.replicas, "one region per replica");
        assert!(
            self.shard.groups <= 1,
            "multi-group configs need build_sharded()"
        );
        let mut sim = Simulation::new(self.net.clone(), self.seed);
        if self.telemetry.trace_capacity > 0 {
            sim.enable_trace(self.telemetry.trace_capacity);
        }
        if self.telemetry.trace_spans {
            sim.enable_spans();
        }
        // Provision the disks (the default actor→disk mapping gives each
        // replica its own device, which is exactly one disk per node in
        // the unsharded layout).
        let disk = self.durability.disk_config();
        if !disk.is_zero_cost() {
            sim.set_disk_config(disk);
        }
        let peers: Vec<ActorId> = (0..self.replicas).map(ActorId).collect();
        let client_base = self.replicas;
        let mut replicas = Vec::new();
        for i in 0..self.replicas {
            let cfg = self.replica_config(NodeId(i as u32), peers.clone(), client_base, None);
            replicas.push(sim.add_actor(self.regions[i], make_replica(self.protocol, cfg)));
        }
        // One workload client group per region, targeting that region's
        // replica (clients in regions without a replica would target the
        // nearest; with the default 1:1 placement this is exact).
        let mut clients = Vec::new();
        let mut rng = paxraft_sim::rng::SimRng::new(self.seed ^ 0xC11E57);
        let mut workload = self.workload.clone();
        workload.partitions = self.regions.len();
        for (ri, &region) in self.regions.iter().enumerate() {
            for _ in 0..self.clients_per_region {
                let cid = clients.len() as u32;
                let gen = Generator::new(workload.clone(), ri, rng.fork(cid as u64));
                let mut wc = WorkloadClient::new(cid, replicas[ri], gen);
                wc.history_key = self.record_history_key;
                let id = sim.add_actor(region, Box::new(wc));
                clients.push(id);
            }
        }
        Cluster {
            sim,
            protocol: self.protocol,
            replicas,
            clients,
            regions: self.regions,
            leader: self.leader,
            probe: None,
            probe_seq: 0,
            metrics: MetricRegistry::new(&self.telemetry),
            per_replica: self.telemetry.per_replica,
        }
    }

    /// One replica's configuration under this builder's knobs. Shared by
    /// the unsharded build and the sharded build (which passes each
    /// group's peer table and membership).
    pub(crate) fn replica_config(
        &self,
        id: NodeId,
        peers: Vec<ActorId>,
        client_base: usize,
        shard: Option<crate::shard::ShardMembership>,
    ) -> ReplicaConfig {
        let mut cfg = ReplicaConfig::wan_default(id, self.replicas);
        cfg.peers = peers;
        cfg.client_base = client_base;
        cfg.costs = self.costs.clone();
        cfg.batch_delay = self.batch_delay;
        cfg.batch_max = self.batch_max;
        cfg.lease = self.lease.clone();
        cfg.snapshot = self.snapshot.clone();
        cfg.pipeline = self.pipeline.clone();
        cfg.durability = self.durability.clone();
        cfg.initial_leader = Some(self.leader);
        cfg.shard = shard;
        cfg.read_mode = match self.protocol {
            ProtocolKind::RaftStarPql => ReadMode::QuorumLease,
            ProtocolKind::LeaderLease => ReadMode::LeaderLease,
            _ => ReadMode::LogRead,
        };
        cfg
    }
}

/// Boxes the right replica type for a protocol (the harness-side face of
/// the `ProtocolRules` dispatch).
pub(crate) fn make_replica(
    protocol: ProtocolKind,
    cfg: ReplicaConfig,
) -> Box<dyn paxraft_sim::sim::Actor<Msg>> {
    match protocol {
        ProtocolKind::MultiPaxos => Box::new(MultiPaxosReplica::new(cfg)),
        ProtocolKind::Raft => Box::new(RaftReplica::new(cfg)),
        ProtocolKind::RaftStar | ProtocolKind::RaftStarPql | ProtocolKind::LeaderLease => {
            Box::new(RaftStarReplica::new(cfg))
        }
        ProtocolKind::RaftStarMencius => Box::new(MenciusReplica::new(cfg)),
    }
}

/// Whether the replica actor currently claims leadership (Mencius is
/// always "led": every replica leads its own slots).
pub(crate) fn replica_is_leader(
    sim: &paxraft_sim::sim::Simulation<Msg>,
    protocol: ProtocolKind,
    id: ActorId,
) -> bool {
    match protocol {
        ProtocolKind::MultiPaxos => sim.actor::<MultiPaxosReplica>(id).is_leader(),
        ProtocolKind::Raft => sim.actor::<RaftReplica>(id).is_leader(),
        ProtocolKind::RaftStar | ProtocolKind::RaftStarPql | ProtocolKind::LeaderLease => {
            sim.actor::<RaftStarReplica>(id).is_leader()
        }
        ProtocolKind::RaftStarMencius => true,
    }
}

/// The replica actor's snapshot/compaction counters.
pub(crate) fn replica_snap_stats(
    sim: &paxraft_sim::sim::Simulation<Msg>,
    protocol: ProtocolKind,
    id: ActorId,
) -> SnapshotStats {
    match protocol {
        ProtocolKind::MultiPaxos => sim.actor::<MultiPaxosReplica>(id).snap_stats(),
        ProtocolKind::Raft => sim.actor::<RaftReplica>(id).snap_stats(),
        ProtocolKind::RaftStar | ProtocolKind::RaftStarPql | ProtocolKind::LeaderLease => {
            sim.actor::<RaftStarReplica>(id).snap_stats()
        }
        ProtocolKind::RaftStarMencius => sim.actor::<MenciusReplica>(id).snap_stats(),
    }
}

/// The replica actor's pipeline occupancy counters.
pub(crate) fn replica_pipeline_stats(
    sim: &paxraft_sim::sim::Simulation<Msg>,
    protocol: ProtocolKind,
    id: ActorId,
) -> PipelineStats {
    match protocol {
        ProtocolKind::MultiPaxos => sim.actor::<MultiPaxosReplica>(id).pipeline_stats(),
        ProtocolKind::Raft => sim.actor::<RaftReplica>(id).pipeline_stats(),
        ProtocolKind::RaftStar | ProtocolKind::RaftStarPql | ProtocolKind::LeaderLease => {
            sim.actor::<RaftStarReplica>(id).pipeline_stats()
        }
        ProtocolKind::RaftStarMencius => sim.actor::<MenciusReplica>(id).pipeline_stats(),
    }
}

/// The replica actor's fsync / deferred-ack counters.
pub(crate) fn replica_durability_stats(
    sim: &paxraft_sim::sim::Simulation<Msg>,
    protocol: ProtocolKind,
    id: ActorId,
) -> DurabilityStats {
    match protocol {
        ProtocolKind::MultiPaxos => sim.actor::<MultiPaxosReplica>(id).durability_stats(),
        ProtocolKind::Raft => sim.actor::<RaftReplica>(id).durability_stats(),
        ProtocolKind::RaftStar | ProtocolKind::RaftStarPql | ProtocolKind::LeaderLease => {
            sim.actor::<RaftStarReplica>(id).durability_stats()
        }
        ProtocolKind::RaftStarMencius => sim.actor::<MenciusReplica>(id).durability_stats(),
    }
}

/// The replica actor's state machine (tests: cross-group exclusivity
/// assertions).
#[cfg(test)]
pub(crate) fn replica_kv(
    sim: &paxraft_sim::sim::Simulation<Msg>,
    protocol: ProtocolKind,
    id: ActorId,
) -> &crate::kv::KvStore {
    match protocol {
        ProtocolKind::MultiPaxos => sim.actor::<MultiPaxosReplica>(id).kv(),
        ProtocolKind::Raft => sim.actor::<RaftReplica>(id).kv(),
        ProtocolKind::RaftStar | ProtocolKind::RaftStarPql | ProtocolKind::LeaderLease => {
            sim.actor::<RaftStarReplica>(id).kv()
        }
        ProtocolKind::RaftStarMencius => sim.actor::<MenciusReplica>(id).kv(),
    }
}

/// The replica actor's registered metric sample (named counters and
/// gauges) — the single source the sampler and the end-of-run group
/// aggregates read.
pub(crate) fn replica_metrics(
    sim: &paxraft_sim::sim::Simulation<Msg>,
    protocol: ProtocolKind,
    id: ActorId,
) -> MetricSample {
    match protocol {
        ProtocolKind::MultiPaxos => sim.actor::<MultiPaxosReplica>(id).metric_sample(),
        ProtocolKind::Raft => sim.actor::<RaftReplica>(id).metric_sample(),
        ProtocolKind::RaftStar | ProtocolKind::RaftStarPql | ProtocolKind::LeaderLease => {
            sim.actor::<RaftStarReplica>(id).metric_sample()
        }
        ProtocolKind::RaftStarMencius => sim.actor::<MenciusReplica>(id).metric_sample(),
    }
}

/// One sampling tick's group-level registry entries: the group's summed
/// replica sample plus the harness-observed NIC backlog. The cumulative
/// `responses` counter becomes the `throughput_ops` rate series;
/// everything else records as a gauge of the instantaneous (queue
/// depths) or cumulative (migration/redirect counts) value.
pub(crate) fn record_group_sample(
    registry: &mut MetricRegistry,
    at: paxraft_sim::time::SimTime,
    group: u32,
    sample: &MetricSample,
    nic_backlog_ms: f64,
    disk_backlog_ms: f64,
) {
    let name = |metric: &str| format!("group{group}/{metric}");
    registry.counter_rate(at, &name("throughput_ops"), sample.get("responses"));
    registry.counter_rate(at, &name("fsync_rate"), sample.get("fsyncs"));
    registry.gauge(at, &name("pending_depth"), sample.get("pending_depth"));
    registry.gauge(
        at,
        &name("pipeline_occupancy"),
        sample.get("pipeline_occupancy"),
    );
    registry.gauge(at, &name("nic_backlog_ms"), nic_backlog_ms);
    registry.gauge(at, &name("disk_backlog_ms"), disk_backlog_ms);
    registry.gauge(at, &name("forwarded"), sample.get("forwarded"));
    registry.gauge(at, &name("redirects"), sample.get("redirects"));
    registry.gauge(at, &name("range_exports"), sample.get("range_exports"));
    registry.gauge(at, &name("range_installs"), sample.get("range_installs"));
}

/// One sampling tick's **per-replica** registry entries (behind
/// [`TelemetryConfig::per_replica`]): each live replica's own response
/// rate, fsync rate, queue depth and disk backlog, keyed by actor id so
/// names stay unique across groups in the sharded layout. This is the
/// straggler-debugging view: a slow disk shows up as one replica's
/// `disk_backlog_ms` series diverging while its group's aggregate only
/// sags. Crashed replicas record no point (a visible series gap).
pub(crate) fn record_replica_samples(
    registry: &mut MetricRegistry,
    sim: &Simulation<Msg>,
    protocol: ProtocolKind,
    at: paxraft_sim::time::SimTime,
    actors: &[ActorId],
) {
    for &r in actors {
        if sim.is_crashed(r) {
            continue;
        }
        let sample = replica_metrics(sim, protocol, r);
        let name = |metric: &str| format!("replica{}/{metric}", r.0);
        registry.counter_rate(at, &name("throughput_ops"), sample.get("responses"));
        registry.counter_rate(at, &name("fsync_rate"), sample.get("fsyncs"));
        registry.gauge(at, &name("pending_depth"), sample.get("pending_depth"));
        registry.gauge(
            at,
            &name("disk_backlog_ms"),
            sim.disk_backlog_at(r).as_millis_f64(),
        );
    }
}

/// Sums the live replicas' metric samples and NIC backlog for one group
/// of actors at the current instant.
pub(crate) fn group_sample_now(
    sim: &Simulation<Msg>,
    protocol: ProtocolKind,
    actors: &[ActorId],
) -> (MetricSample, f64, f64) {
    let now = sim.now();
    let mut sample = MetricSample::default();
    let mut nic_backlog_ms = 0.0;
    let mut disk_backlog_ms = 0.0;
    for &r in actors {
        if sim.is_crashed(r) {
            continue;
        }
        sample.merge_sum(&replica_metrics(sim, protocol, r));
        let nic_free = sim.network().nic_free_at(r.0);
        if nic_free > now {
            nic_backlog_ms += (nic_free - now).as_millis_f64();
        }
        disk_backlog_ms += sim.disk_backlog_at(r).as_millis_f64();
    }
    (sample, nic_backlog_ms, disk_backlog_ms)
}

/// Throughput/latency measurements from one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Completed operations inside the measurement window, per second.
    pub throughput_ops: f64,
    /// Read latency for clients co-located with the leader.
    pub leader_reads: Option<LatencyTriple>,
    /// Read latency for all other clients.
    pub follower_reads: Option<LatencyTriple>,
    /// Write latency for leader-region clients.
    pub leader_writes: Option<LatencyTriple>,
    /// Write latency for follower-region clients.
    pub follower_writes: Option<LatencyTriple>,
    /// Linearizability histories (when recording was enabled).
    pub histories: Vec<OpRecord>,
    /// Snapshot / compaction counters summed across replicas; the peak
    /// log-size fields take the cluster-wide maximum, so a bounded
    /// `peak_log_entries` certifies that compaction kept every replica's
    /// in-memory log bounded for the whole run.
    pub snapshots: SnapshotStats,
    /// Pipeline occupancy and adaptive-batching counters summed across
    /// replicas (`peak_in_flight` takes the cluster-wide maximum, i.e.
    /// the deepest any peer window got during the run).
    pub pipeline: PipelineStats,
    /// Fsync / deferred-ack counters summed across replicas
    /// (`last_batch_len` takes the cluster-wide maximum). All zero
    /// unless [`ClusterBuilder::durability_config`] enabled the
    /// durability model; under group commit,
    /// `durability.mean_batch_len()` is the amortization factor the
    /// fsync-bound bench sweeps report.
    pub durability: DurabilityStats,
    /// Sampled metric time-series collected so far (empty unless
    /// [`ClusterBuilder::telemetry_config`] enabled the sampler).
    pub telemetry: Vec<TimeSeries>,
    /// Sampled cumulative latency-histogram series, one per group
    /// (empty unless the sampler is enabled). Windowing two snapshots
    /// localizes a latency regression — a migration window's p99, say —
    /// to one group and one phase of the run.
    pub latency_hists: Vec<HistogramSeries>,
    /// Per-command latency breakdowns assembled from the span log
    /// (`None` unless [`TelemetryConfig::trace_spans`] enabled causal
    /// tracing).
    pub spans: Option<SpanReport>,
}

/// A built cluster ready to run.
pub struct Cluster {
    /// The underlying simulation (exposed for fault injection).
    pub sim: Simulation<Msg>,
    protocol: ProtocolKind,
    replicas: Vec<ActorId>,
    clients: Vec<ActorId>,
    regions: Vec<Region>,
    leader: NodeId,
    probe: Option<ActorId>,
    probe_seq: u64,
    pub(crate) metrics: MetricRegistry,
    per_replica: bool,
}

impl Cluster {
    /// Starts a builder.
    pub fn builder(protocol: ProtocolKind) -> ClusterBuilder {
        ClusterBuilder {
            protocol,
            replicas: 5,
            regions: Region::ALL.to_vec(),
            leader: NodeId(0),
            clients_per_region: 0,
            workload: WorkloadConfig::default(),
            seed: 42,
            costs: CostModel::default(),
            net: NetConfig::default(),
            record_history_key: None,
            batch_delay: SimDuration::from_millis(2),
            batch_max: 64,
            lease: LeaseConfig::default(),
            snapshot: SnapshotConfig::default(),
            pipeline: PipelineConfig::default(),
            shard: crate::shard::ShardConfig::default(),
            rebalance: crate::shard::RebalanceConfig::default(),
            autobalance: crate::shard::AutoBalanceConfig::default(),
            telemetry: TelemetryConfig::default(),
            durability: DurabilityConfig::default(),
        }
    }

    /// The protocol under test.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Replica actor ids.
    pub fn replicas(&self) -> &[ActorId] {
        &self.replicas
    }

    /// Client actor ids.
    pub fn clients(&self) -> &[ActorId] {
        &self.clients
    }

    /// The configured leader node.
    pub fn leader(&self) -> NodeId {
        self.leader
    }

    /// Whether some replica currently claims leadership (Mencius is
    /// always "led": every replica leads its own slots).
    pub fn has_leader(&self) -> bool {
        self.replicas
            .iter()
            .any(|&r| replica_is_leader(&self.sim, self.protocol, r))
    }

    /// Snapshot / compaction counters aggregated over all replicas
    /// (sums for counters, maxima for peaks).
    pub fn snapshot_stats(&self) -> SnapshotStats {
        let mut total = SnapshotStats::default();
        for &r in &self.replicas {
            total.absorb(&replica_snap_stats(&self.sim, self.protocol, r));
        }
        total
    }

    /// Pipeline occupancy / adaptive-batching counters aggregated over
    /// all replicas (sums for counters, maximum for `peak_in_flight`).
    pub fn pipeline_stats(&self) -> PipelineStats {
        let mut total = PipelineStats::default();
        for &r in &self.replicas {
            total.absorb(&replica_pipeline_stats(&self.sim, self.protocol, r));
        }
        total
    }

    /// Fsync / deferred-ack counters aggregated over all replicas (sums
    /// for counters, maximum for `last_batch_len`).
    pub fn durability_stats(&self) -> DurabilityStats {
        let mut total = DurabilityStats::default();
        for &r in &self.replicas {
            total.absorb(&replica_durability_stats(&self.sim, self.protocol, r));
        }
        total
    }

    /// Runs until a leader is elected (and leases, if any, are live).
    pub fn elect_leader(&mut self) {
        let deadline = self.sim.now() + SimDuration::from_secs(30);
        while !self.has_leader() && self.sim.now() < deadline {
            self.sim.run_for(SimDuration::from_millis(50));
        }
        assert!(self.has_leader(), "no leader elected within 30s");
        if matches!(
            self.protocol,
            ProtocolKind::RaftStarPql | ProtocolKind::LeaderLease
        ) {
            // Let the first grant round complete.
            self.sim.run_for(SimDuration::from_millis(700));
        }
    }

    /// Submits one operation through an internal probe client and waits
    /// for its reply (for examples and tests, not measurement).
    ///
    /// # Errors
    ///
    /// Returns `Err` if no reply arrives within 30 virtual seconds.
    pub fn submit_and_wait(&mut self, op: Op) -> Result<Reply, String> {
        use crate::probe::ProbeClient;
        self.sim.start();
        let pid = match self.probe {
            Some(pid) => pid,
            None => {
                let region = self.regions[self.leader.0 as usize];
                let pid = self.sim.add_actor(region, Box::new(ProbeClient::default()));
                self.probe = Some(pid);
                pid
            }
        };
        // Replicas route replies to `client_base + id.client`; the probe's
        // actor index encodes the matching client id.
        let client_index = (pid.0 - self.replicas.len()) as u32;
        self.probe_seq += 1;
        let id = CmdId {
            client: client_index,
            seq: self.probe_seq,
        };
        let cmd = Command { id, op };
        // Target the configured leader's replica unless it is crashed;
        // fall back to the first live replica (its forwarding finds the
        // actual leader).
        let mut target = self.replicas[self.leader.0 as usize];
        if self.sim.is_crashed(target) {
            target = *self
                .replicas
                .iter()
                .find(|&&r| !self.sim.is_crashed(r))
                .expect("at least one live replica");
        }
        {
            let p = self.sim.actor_mut::<ProbeClient>(pid);
            p.waiting = Some(id);
            p.reply = None;
            p.outbox = Some((target, Msg::Client(ClientMsg::Request { cmd })));
        }
        let deadline = self.sim.now() + SimDuration::from_secs(30);
        while self.sim.now() < deadline {
            self.sim.run_for(SimDuration::from_millis(20));
            if let Some(r) = self.sim.actor::<ProbeClient>(pid).reply.clone() {
                return Ok(r);
            }
        }
        Err("probe timed out".into())
    }

    /// Advances virtual time by `d`, pausing at each due sampling
    /// instant to read replica state into the metric registry.
    ///
    /// Determinism: stepping `run_until` in chunks processes the
    /// identical event order as a single call (events are heap-ordered
    /// by `(time, seq)`, and setting the clock between chunks is inert)
    /// and sampling is read-only, so enabling the sampler never changes
    /// the run.
    fn advance(&mut self, d: SimDuration) {
        let target = self.sim.now() + d;
        if !self.metrics.enabled() {
            self.sim.run_until(target);
            return;
        }
        self.metrics.fast_forward(self.sim.now());
        while self.metrics.next_due() <= target {
            self.sim.run_until(self.metrics.next_due());
            let (sample, nic, disk) = group_sample_now(&self.sim, self.protocol, &self.replicas);
            record_group_sample(&mut self.metrics, self.sim.now(), 0, &sample, nic, disk);
            if self.per_replica {
                record_replica_samples(
                    &mut self.metrics,
                    &self.sim,
                    self.protocol,
                    self.sim.now(),
                    &self.replicas,
                );
            }
            let mut hist = LatencyHistogram::default();
            for &c in &self.clients {
                for h in &self.sim.actor::<WorkloadClient>(c).group_latency {
                    hist.merge(h);
                }
            }
            self.metrics
                .histogram(self.sim.now(), "group0/latency", hist);
            self.metrics.advance();
        }
        self.sim.run_until(target);
    }

    /// The sampled metric time-series collected so far (empty unless
    /// telemetry sampling is enabled).
    pub fn telemetry_series(&self) -> Vec<TimeSeries> {
        self.metrics.snapshot()
    }

    /// Assembles the span log recorded so far into per-command latency
    /// breakdowns (`None` unless span tracing is enabled).
    pub fn span_report(&self) -> Option<SpanReport> {
        self.sim
            .trace()
            .spans_enabled()
            .then(|| SpanAssembler::assemble(self.sim.trace().spans()))
    }

    /// Runs `warmup + measure + cooldown`, counting only completions
    /// inside the measurement window (Section 5: 50 s trials with 10 s
    /// warm-up and cool-down; benches use scaled-down windows).
    pub fn run_measurement(
        &mut self,
        warmup: SimDuration,
        measure: SimDuration,
        cooldown: SimDuration,
    ) -> RunReport {
        self.advance(warmup);
        let w_start = self.sim.now().as_nanos();
        self.advance(measure);
        let w_end = self.sim.now().as_nanos();
        self.advance(cooldown);

        let leader_region = self.regions[self.leader.0 as usize];
        let mut leader_reads = LatencyRecorder::new();
        let mut follower_reads = LatencyRecorder::new();
        let mut leader_writes = LatencyRecorder::new();
        let mut follower_writes = LatencyRecorder::new();
        let mut completed: u64 = 0;
        let mut histories = Vec::new();
        for &c in &self.clients {
            let region = self.sim.region_of(c);
            let is_leader_group = region == leader_region;
            let client = self.sim.actor::<WorkloadClient>(c);
            for comp in &client.completions {
                if !(w_start..w_end).contains(&comp.at_ns) {
                    continue;
                }
                completed += 1;
                match (comp.kind, is_leader_group) {
                    (OpKind::Read, true) => leader_reads.record_ns(comp.latency_ns),
                    (OpKind::Read, false) => follower_reads.record_ns(comp.latency_ns),
                    (OpKind::Write, true) => leader_writes.record_ns(comp.latency_ns),
                    (OpKind::Write, false) => follower_writes.record_ns(comp.latency_ns),
                }
            }
            histories.extend(client.history_records());
        }
        RunReport {
            throughput_ops: completed as f64 / measure.as_secs_f64(),
            leader_reads: leader_reads.paper_triple_ms(),
            follower_reads: follower_reads.paper_triple_ms(),
            leader_writes: leader_writes.paper_triple_ms(),
            follower_writes: follower_writes.paper_triple_ms(),
            histories,
            snapshots: self.snapshot_stats(),
            pipeline: self.pipeline_stats(),
            durability: self.durability_stats(),
            telemetry: self.metrics.snapshot(),
            latency_hists: self.metrics.hist_snapshot(),
            spans: self.span_report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_elects_every_protocol() {
        for p in [
            ProtocolKind::MultiPaxos,
            ProtocolKind::Raft,
            ProtocolKind::RaftStar,
            ProtocolKind::RaftStarPql,
            ProtocolKind::LeaderLease,
            ProtocolKind::RaftStarMencius,
        ] {
            let mut cluster = Cluster::builder(p).build();
            cluster.elect_leader();
            assert!(cluster.has_leader(), "{} has a leader", p.name());
        }
    }

    #[test]
    fn submit_and_wait_round_trips() {
        let mut cluster = Cluster::builder(ProtocolKind::RaftStar).build();
        cluster.elect_leader();
        let r = cluster
            .submit_and_wait(Op::Put {
                key: 1,
                value: vec![7; 16],
            })
            .expect("put succeeds");
        assert_eq!(r, Reply::Done);
        let r = cluster
            .submit_and_wait(Op::Get { key: 1 })
            .expect("get succeeds");
        assert!(matches!(r, Reply::Value(Some(_))));
    }

    #[test]
    fn measurement_produces_throughput_and_latency() {
        let w = WorkloadConfig {
            read_fraction: 0.5,
            conflict_rate: 0.0,
            ..Default::default()
        };
        let mut cluster = Cluster::builder(ProtocolKind::Raft)
            .clients_per_region(2)
            .workload(w)
            .build();
        cluster.elect_leader();
        let report = cluster.run_measurement(
            SimDuration::from_secs(2),
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
        );
        assert!(report.throughput_ops > 1.0, "got {}", report.throughput_ops);
        assert!(report.leader_reads.is_some());
        assert!(report.follower_writes.is_some());
    }

    /// The per-replica series satellite's demo: degrade exactly one
    /// replica's disk and find the straggler *from the metric series
    /// alone* — the `replica{i}/disk_backlog_ms` gauge of the slow
    /// device dominates every healthy one, and no group-level series
    /// could have said which node it was.
    #[test]
    fn per_replica_series_expose_an_injected_slow_disk_straggler() {
        use paxraft_sim::disk::DiskConfig;
        let mut cluster = Cluster::builder(ProtocolKind::Raft)
            .clients_per_region(1)
            .durability_config(DurabilityConfig::group_commit(
                SimDuration::from_millis(1),
                8,
                SimDuration::from_millis(2),
            ))
            .telemetry_config(TelemetryConfig::sampled().with_per_replica())
            .seed(17)
            .build();
        // Node 2 (a follower) gets a device an order of magnitude
        // slower than the fleet default.
        let straggler = cluster.replicas()[2];
        cluster.sim.set_disk_config_for(
            straggler,
            DiskConfig {
                write_bandwidth_bps: 100_000.0,
                fsync_latency: SimDuration::from_millis(25),
            },
        );
        cluster.elect_leader();
        let report = cluster.run_measurement(
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
            SimDuration::from_secs(1),
        );
        let mut worst: Option<(&str, f64)> = None;
        let mut healthy_max = 0.0f64;
        for s in &report.telemetry {
            let Some(node) = s
                .name
                .strip_prefix("replica")
                .and_then(|rest| rest.strip_suffix("/disk_backlog_ms"))
            else {
                continue;
            };
            assert!(!s.is_empty(), "{} has samples", s.name);
            let mean = s.points.iter().map(|p| p.1).sum::<f64>() / s.len() as f64;
            if worst.is_none_or(|(_, w)| mean > w) {
                if let Some((prev, w)) = worst {
                    let _ = prev;
                    healthy_max = healthy_max.max(w);
                }
                worst = Some((node, mean));
            } else {
                healthy_max = healthy_max.max(mean);
            }
        }
        let (node, backlog) = worst.expect("per-replica backlog series collected");
        assert_eq!(
            node,
            straggler.0.to_string(),
            "the series alone identify the degraded device"
        );
        assert!(
            backlog > 2.0 * healthy_max.max(0.01),
            "straggler backlog ({backlog:.2} ms) dominates healthy peers ({healthy_max:.2} ms)"
        );
    }
}
