//! Test helpers shared by the protocol unit tests: a minimal closed-loop
//! client and a cluster constructor. (The full measurement harness lives
//! in [`crate::harness`]; this module stays deliberately tiny so protocol
//! tests do not depend on it.)

use std::collections::VecDeque;

use paxraft_sim::impl_actor_any;
use paxraft_sim::net::{NetConfig, Region};
use paxraft_sim::sim::{Actor, ActorId, Ctx, Simulation};
use paxraft_sim::time::{SimDuration, SimTime};

use crate::config::ReplicaConfig;
use crate::kv::{CmdId, Command, Reply};
use crate::msg::{ClientMsg, Msg};
use crate::types::NodeId;

/// A scripted closed-loop client: sends one queued command at a time to a
/// fixed target replica, retrying on silence.
pub struct TestClient {
    /// Logical client id (maps to `client_base + id`).
    pub client_id: u32,
    /// Replica the client talks to.
    pub target: ActorId,
    /// Commands sent so far (in order).
    pub sent: Vec<Command>,
    /// Replies received: `(id, reply, at)`.
    pub replies: Vec<(CmdId, Reply, SimTime)>,
    queue: VecDeque<Command>,
    seq: u64,
    inflight: Option<(CmdId, SimTime)>,
    retry_after: SimDuration,
}

impl TestClient {
    /// Creates a client with an empty script.
    pub fn new(client_id: u32, target: ActorId) -> Self {
        TestClient {
            client_id,
            target,
            sent: Vec::new(),
            replies: Vec::new(),
            queue: VecDeque::new(),
            seq: 0,
            inflight: None,
            retry_after: SimDuration::from_secs(5),
        }
    }

    /// Queues a write to `key` (value embeds the command id).
    pub fn enqueue_put(&mut self, key: u64) {
        self.seq += 1;
        let id = CmdId {
            client: self.client_id,
            seq: self.seq,
        };
        self.queue.push_back(Command::put(id, key, vec![0; 8]));
    }

    /// Queues a read of `key`.
    pub fn enqueue_get(&mut self, key: u64) {
        self.seq += 1;
        let id = CmdId {
            client: self.client_id,
            seq: self.seq,
        };
        self.queue.push_back(Command::get(id, key));
    }

    fn pump(&mut self, ctx: &mut Ctx<Msg>) {
        if self.inflight.is_none() {
            if let Some(cmd) = self.queue.pop_front() {
                self.inflight = Some((cmd.id, ctx.now()));
                self.sent.push(cmd.clone());
                ctx.send(self.target, Msg::Client(ClientMsg::Request { cmd }));
            }
        } else if let Some((id, since)) = self.inflight {
            if ctx.now().since(since) > self.retry_after {
                // Retry the same command (dedup makes this safe).
                let cmd = self
                    .sent
                    .iter()
                    .rev()
                    .find(|c| c.id == id)
                    .expect("inflight command was sent")
                    .clone();
                self.inflight = Some((id, ctx.now()));
                ctx.send(self.target, Msg::Client(ClientMsg::Request { cmd }));
            }
        }
    }
}

impl Actor<Msg> for TestClient {
    fn on_start(&mut self, ctx: &mut Ctx<Msg>) {
        ctx.set_timer(SimDuration::from_millis(10), 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Msg>, _from: ActorId, msg: Msg) {
        if let Msg::Client(ClientMsg::Response { id, reply }) = msg {
            if self.inflight.map(|(i, _)| i) == Some(id) {
                self.inflight = None;
                self.replies.push((id, reply, ctx.now()));
                self.pump(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Msg>, _token: u64) {
        self.pump(ctx);
        ctx.set_timer(SimDuration::from_millis(50), 1);
    }

    impl_actor_any!();
}

/// Regions used for replica placement, in the paper's order.
pub fn region_of(i: usize) -> Region {
    Region::ALL[i % Region::ALL.len()]
}

/// Builds an `n`-replica cluster plus one [`TestClient`] (client id 0,
/// targeting replica 0). The closure turns a filled-in [`ReplicaConfig`]
/// into the protocol actor under test.
pub fn cluster_with(
    n: usize,
    mut make: impl FnMut(ReplicaConfig) -> Box<dyn Actor<Msg>>,
) -> (Simulation<Msg>, Vec<ActorId>, ActorId) {
    let mut sim = Simulation::new(NetConfig::default(), 7);
    // Flight recorder on for every protocol test: recording never
    // perturbs the schedule (pinned by the sim crate's parity test),
    // and a failing scenario dumps the tail for post-mortem context.
    sim.enable_trace(TRACE_CAPACITY);
    let peers: Vec<ActorId> = (0..n).map(ActorId).collect();
    let mut replicas = Vec::new();
    for i in 0..n {
        let mut cfg = ReplicaConfig::wan_default(NodeId(i as u32), n);
        cfg.peers = peers.clone();
        cfg.client_base = n;
        let actor = make(cfg);
        replicas.push(sim.add_actor(region_of(i), actor));
    }
    let client = sim.add_actor(Region::Oregon, Box::new(TestClient::new(0, replicas[0])));
    (sim, replicas, client)
}

/// Flight-recorder ring capacity for test clusters.
pub const TRACE_CAPACITY: usize = 256;

/// Default tail length for an on-failure trace dump.
pub const TRACE_DUMP_LAST: usize = 40;

/// How many trace events a failure dump prints: the `TRACE_DUMP_LAST`
/// environment variable when set to a positive integer (capped at the
/// ring's [`TRACE_CAPACITY`] — asking for more than the recorder keeps
/// cannot help), [`TRACE_DUMP_LAST`] otherwise. Debugging a dense
/// failure locally? `TRACE_DUMP_LAST=256 cargo test …` widens every
/// dump without a recompile.
pub fn trace_dump_last() -> usize {
    std::env::var("TRACE_DUMP_LAST")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(TRACE_DUMP_LAST)
        .min(TRACE_CAPACITY)
}

/// If `TRACE_DUMP_DIR` is set, writes the flight recorder's machine-
/// readable export there and returns the path — CI sets the variable
/// and uploads the directory as an artifact when a test job fails, so
/// a red run carries its event history out of the runner. Files are
/// named by process id and a counter: parallel test binaries and
/// multiple failures in one binary never collide.
pub fn export_trace_artifact(sim: &Simulation<Msg>) -> Option<std::path::PathBuf> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::path::PathBuf::from(std::env::var_os("TRACE_DUMP_DIR")?);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("trace-{}-{}.json", std::process::id(), n));
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    match std::fs::write(&path, sim.trace().export_json()) {
        Ok(()) => {
            eprintln!("flight-recorder export written to {}", path.display());
            Some(path)
        }
        Err(_) => None,
    }
}

/// Steps the simulation in 50 ms increments until `pred` holds or
/// `deadline` passes. Returns whether the predicate held; on timeout
/// (the caller is about to fail its assertion) the tail of the flight
/// recorder goes to stderr first, so the failure carries the event
/// context that led to it.
pub fn drive_until<F>(sim: &mut Simulation<Msg>, deadline: SimTime, mut pred: F) -> bool
where
    F: FnMut(&Simulation<Msg>) -> bool,
{
    loop {
        if pred(sim) {
            return true;
        }
        if sim.now() >= deadline {
            let tail = trace_dump_last();
            eprintln!(
                "drive_until: predicate still false at {} — last {} trace events:\n{}",
                sim.now(),
                tail.min(sim.trace().len()),
                sim.trace().render_last(tail)
            );
            export_trace_artifact(sim);
            return false;
        }
        sim.run_for(SimDuration::from_millis(50));
    }
}

/// Runs `f`; if it panics (a failed assertion), prints the tail of the
/// simulation's flight recorder before resuming the unwind — the
/// conformance suite wraps its densest invariant blocks in this so a
/// red assertion comes with the recent event history.
pub fn with_trace_dump<R>(
    sim: &mut Simulation<Msg>,
    f: impl FnOnce(&mut Simulation<Msg>) -> R,
) -> R {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(sim))) {
        Ok(r) => r,
        Err(e) => {
            let tail = trace_dump_last();
            eprintln!(
                "assertion failed — last {} trace events:\n{}",
                tail.min(sim.trace().len()),
                sim.trace().render_last(tail)
            );
            export_trace_artifact(sim);
            std::panic::resume_unwind(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_dump_tail_is_env_configurable() {
        std::env::remove_var("TRACE_DUMP_LAST");
        assert_eq!(trace_dump_last(), TRACE_DUMP_LAST);
        std::env::set_var("TRACE_DUMP_LAST", "96");
        assert_eq!(trace_dump_last(), 96);
        // Nonsense and zero fall back to the default; requests beyond
        // the ring capacity clamp to it.
        std::env::set_var("TRACE_DUMP_LAST", "lots");
        assert_eq!(trace_dump_last(), TRACE_DUMP_LAST);
        std::env::set_var("TRACE_DUMP_LAST", "0");
        assert_eq!(trace_dump_last(), TRACE_DUMP_LAST);
        std::env::set_var("TRACE_DUMP_LAST", "100000");
        assert_eq!(trace_dump_last(), TRACE_CAPACITY);
        std::env::remove_var("TRACE_DUMP_LAST");
    }

    #[test]
    fn export_trace_artifact_writes_json_when_dir_is_set() {
        // No TRACE_DUMP_DIR → no file, no error.
        std::env::remove_var("TRACE_DUMP_DIR");
        let (mut sim, _replicas, _client) =
            cluster_with(1, |cfg| Box::new(crate::raft::RaftReplica::new(cfg)));
        sim.run_for(SimDuration::from_millis(100));
        assert!(export_trace_artifact(&sim).is_none());
        // With it set, the export lands as well-formed JSON lines.
        let dir = std::env::temp_dir().join(format!("paxraft-trace-{}", std::process::id()));
        std::env::set_var("TRACE_DUMP_DIR", &dir);
        let path = export_trace_artifact(&sim).expect("artifact written");
        std::env::remove_var("TRACE_DUMP_DIR");
        let json = std::fs::read_to_string(&path).expect("artifact readable");
        assert!(json.starts_with("[\n"), "array framing: {json:.40}");
        assert!(json.contains("\"kind\""), "events serialized");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
