//! Virtual-time telemetry: a metric registry sampled into time-series.
//!
//! End-of-run aggregates ([`crate::harness::RunReport`],
//! [`crate::shard::GroupStats`]) answer "how fast was this run"; the
//! ROADMAP's next steps (load-driven auto-rebalancing, shared-resource
//! node models) need *signals over time* — per-group throughput and
//! queue depths across a migration window, not just their averages.
//!
//! The pieces:
//!
//! - [`MetricSample`]: the named counters and gauges one replica
//!   registers at a sampling instant
//!   ([`crate::engine::ReplicaEngine::metric_sample`]); group samples
//!   are sums of replica samples.
//! - [`MetricRegistry`]: owns the sampling cadence and folds samples
//!   into named [`TimeSeries`] buffers — cumulative counters become
//!   per-second rates, gauges are recorded as-is.
//! - [`TelemetryConfig`]: cluster-level knob. The default is **off**,
//!   and the sampler is driven entirely from the harness *between*
//!   simulation steps, so enabling it never changes the event schedule
//!   or the RNG stream (the determinism tests in the conformance suite
//!   pin this bit-for-bit).
//! - [`spans`]: the causal command-tracing layer — per-command span
//!   trees assembled from the flight recorder's span log, with a
//!   latency breakdown whose stages sum exactly to the end-to-end
//!   latency and a critical-path analyzer over the aggregate.

pub mod spans;

pub use spans::{CommandBreakdown, SpanAssembler, SpanReport, Stage, StageTotals};

use std::collections::BTreeMap;

use paxraft_sim::time::{SimDuration, SimTime};

/// Cluster-level telemetry configuration
/// ([`crate::harness::ClusterBuilder::telemetry_config`]).
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Fixed virtual-time sampling interval; `ZERO` disables sampling.
    pub sample_every: SimDuration,
    /// Flight-recorder ring capacity; `0` disables tracing.
    pub trace_capacity: usize,
    /// Causal span tracing ([`spans`]); off by default. Observation
    /// only — enabling it never changes the event schedule.
    pub trace_spans: bool,
    /// Per-replica series (`replica{i}/…`) next to the per-group ones;
    /// off by default (straggler debugging multiplies series count).
    pub per_replica: bool,
}

impl TelemetryConfig {
    /// The standard enabled configuration: sample every 100 ms of
    /// virtual time, keep the last 256 trace events.
    pub fn sampled() -> Self {
        TelemetryConfig {
            sample_every: SimDuration::from_millis(100),
            trace_capacity: 256,
            ..TelemetryConfig::default()
        }
    }

    /// This configuration with the given sampling interval.
    pub fn every(mut self, interval: SimDuration) -> Self {
        self.sample_every = interval;
        self
    }

    /// This configuration with the given flight-recorder capacity.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// This configuration with causal span tracing on.
    pub fn with_spans(mut self) -> Self {
        self.trace_spans = true;
        self
    }

    /// This configuration with per-replica series on.
    pub fn with_per_replica(mut self) -> Self {
        self.per_replica = true;
        self
    }

    /// Whether the virtual-time sampler runs.
    pub fn sampling_enabled(&self) -> bool {
        self.sample_every > SimDuration::ZERO
    }
}

/// The named metric values one replica registers at one instant.
///
/// Names are static so registration stays allocation-light; counters
/// carry their cumulative value (the registry differences them into
/// rates), gauges carry the instantaneous value.
#[derive(Debug, Clone, Default)]
pub struct MetricSample {
    values: Vec<(&'static str, f64)>,
}

impl MetricSample {
    /// Registers one named value.
    pub fn record(&mut self, name: &'static str, value: f64) {
        self.values.push((name, value));
    }

    /// The registered value, or 0.0 when the name was never recorded.
    pub fn get(&self, name: &str) -> f64 {
        self.values
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0.0, |(_, v)| *v)
    }

    /// All registered `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.values.iter().copied()
    }

    /// Adds another sample's values into this one name-by-name (how a
    /// group sample aggregates its replicas' samples).
    pub fn merge_sum(&mut self, other: &MetricSample) {
        for (name, v) in &other.values {
            match self.values.iter_mut().find(|(n, _)| n == name) {
                Some((_, acc)) => *acc += v,
                None => self.values.push((name, *v)),
            }
        }
    }
}

/// One named metric's samples over virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Series name, e.g. `"group0/throughput_ops"`.
    pub name: String,
    /// `(virtual time, value)` samples in time order.
    pub points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the samples falling in `[from, to)`, or `None` when the
    /// window holds no samples — how the migration-window dip is
    /// compared against aggregate phase throughput.
    pub fn window_mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(at, v) in &self.points {
            if at >= from && at < to {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }
}

/// A mergeable fixed-bucket latency histogram (log-spaced microsecond
/// buckets).
///
/// Bucket `0` covers `[0, 1)` µs; bucket `i ≥ 1` covers
/// `[2^(i−1), 2^i)` µs; the last bucket absorbs everything above
/// ~35 minutes. Fixed buckets make histograms **mergeable** — across
/// replicas of a group, across groups, and across time windows — by
/// plain element-wise addition, and **subtractable**, so the cumulative
/// histogram series yields any window's distribution as a difference
/// of two snapshots. That is what lets the sharded bench localize a
/// migration window's p99 to one group and one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&mut self, latency: SimDuration) {
        let us = latency.as_nanos() / 1_000;
        let b = (64 - us.leading_zeros() as usize).min(31);
        self.buckets[b] += 1;
    }

    /// Adds another histogram into this one (replica → group → cluster
    /// aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (acc, v) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *acc += v;
        }
    }

    /// The observations recorded here but not in `earlier` — how a
    /// cumulative series is windowed. Saturating, so a crash-reset
    /// counter yields an empty bucket rather than wrapping.
    pub fn since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for (b, (now, then)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            out.buckets[b] = now.saturating_sub(*then);
        }
        out
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The nearest-rank percentile (`q` in `[0, 1]`) in milliseconds,
    /// reported as the covering bucket's upper edge — a conservative
    /// (never understating) bound. `None` when empty.
    pub fn percentile_ms(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket b's upper edge is 2^b µs (bucket 0: 1 µs).
                return Some((1u64 << b) as f64 / 1_000.0);
            }
        }
        None
    }
}

/// One label's cumulative [`LatencyHistogram`] over virtual time —
/// a snapshot per sampling tick, windowed by subtraction.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSeries {
    /// Series name, e.g. `"group0/latency"`.
    pub name: String,
    /// `(virtual time, cumulative histogram)` snapshots in time order.
    pub points: Vec<(SimTime, LatencyHistogram)>,
}

impl HistogramSeries {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        HistogramSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends one cumulative snapshot.
    pub fn push(&mut self, at: SimTime, hist: LatencyHistogram) {
        self.points.push((at, hist));
    }

    /// The observations that completed in `[from, to)`: the last
    /// snapshot before `to` minus the last snapshot before `from`.
    pub fn window(&self, from: SimTime, to: SimTime) -> LatencyHistogram {
        let at_or_before = |t: SimTime| {
            self.points
                .iter()
                .rev()
                .find(|&&(at, _)| at < t)
                .map_or(LatencyHistogram::default(), |&(_, h)| h)
        };
        at_or_before(to).since(&at_or_before(from))
    }

    /// The window's p99 in milliseconds (`None` for an empty window).
    pub fn window_p99_ms(&self, from: SimTime, to: SimTime) -> Option<f64> {
        self.window(from, to).percentile_ms(0.99)
    }
}

/// Folds per-instant [`MetricSample`]s into named [`TimeSeries`]
/// buffers at a fixed virtual-time cadence.
///
/// The registry never touches the simulation: the harness advances the
/// clock to [`MetricRegistry::next_due`], reads replica state, records
/// here, and repeats. Disabled registries record nothing.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    sample_every: SimDuration,
    next_due: SimTime,
    series: BTreeMap<String, TimeSeries>,
    hists: BTreeMap<String, HistogramSeries>,
    last: BTreeMap<String, f64>,
}

impl MetricRegistry {
    /// A registry with the configured cadence (disabled when the config
    /// disables sampling).
    pub fn new(cfg: &TelemetryConfig) -> Self {
        MetricRegistry {
            sample_every: cfg.sample_every,
            next_due: SimTime::ZERO + cfg.sample_every,
            series: BTreeMap::new(),
            hists: BTreeMap::new(),
            last: BTreeMap::new(),
        }
    }

    /// Whether the sampler runs.
    pub fn enabled(&self) -> bool {
        self.sample_every > SimDuration::ZERO
    }

    /// The sampling interval.
    pub fn sample_every(&self) -> SimDuration {
        self.sample_every
    }

    /// The next virtual time a sample is due.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Skips sample points that fell before `now` (time the harness
    /// advanced outside a sampled window, e.g. during elections).
    pub fn fast_forward(&mut self, now: SimTime) {
        while self.next_due < now {
            self.next_due += self.sample_every;
        }
    }

    /// Schedules the next sample one interval later.
    pub fn advance(&mut self) {
        self.next_due += self.sample_every;
    }

    /// Records a gauge sample (instantaneous value).
    pub fn gauge(&mut self, at: SimTime, name: &str, value: f64) {
        self.series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(name))
            .push(at, value);
    }

    /// Records a cumulative counter sample as a per-second **rate**
    /// against the previous sample of the same name. Negative deltas
    /// (a counter reset by a crash-restart) clamp to zero.
    pub fn counter_rate(&mut self, at: SimTime, name: &str, cumulative: f64) {
        let prev = self.last.insert(name.to_string(), cumulative);
        let delta = (cumulative - prev.unwrap_or(0.0)).max(0.0);
        let secs = self.sample_every.as_nanos() as f64 / 1e9;
        let rate = if secs > 0.0 { delta / secs } else { 0.0 };
        self.series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(name))
            .push(at, rate);
    }

    /// Records one cumulative latency-histogram snapshot for `name`.
    pub fn histogram(&mut self, at: SimTime, name: &str, hist: LatencyHistogram) {
        self.hists
            .entry(name.to_string())
            .or_insert_with(|| HistogramSeries::new(name))
            .push(at, hist);
    }

    /// The collected series, name order.
    pub fn series(&self) -> impl Iterator<Item = &TimeSeries> {
        self.series.values()
    }

    /// A clone of the collected series (what a
    /// [`crate::harness::RunReport`] carries out of a measurement).
    pub fn snapshot(&self) -> Vec<TimeSeries> {
        self.series.values().cloned().collect()
    }

    /// A clone of the collected histogram series.
    pub fn hist_snapshot(&self) -> Vec<HistogramSeries> {
        self.hists.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_registers_and_merges_by_name() {
        let mut a = MetricSample::default();
        a.record("responses", 10.0);
        a.record("pending_depth", 2.0);
        let mut b = MetricSample::default();
        b.record("responses", 5.0);
        b.record("nic_backlog_ms", 1.5);
        a.merge_sum(&b);
        assert_eq!(a.get("responses"), 15.0);
        assert_eq!(a.get("pending_depth"), 2.0);
        assert_eq!(a.get("nic_backlog_ms"), 1.5);
        assert_eq!(a.get("missing"), 0.0);
    }

    #[test]
    fn registry_cadence_and_fast_forward() {
        let cfg = TelemetryConfig::sampled();
        let mut r = MetricRegistry::new(&cfg);
        assert!(r.enabled());
        assert_eq!(r.next_due(), SimTime::from_millis(100));
        r.advance();
        assert_eq!(r.next_due(), SimTime::from_millis(200));
        r.fast_forward(SimTime::from_millis(1_450));
        assert_eq!(r.next_due(), SimTime::from_millis(1_500));
        // Already at/after now: unchanged.
        r.fast_forward(SimTime::from_millis(1_500));
        assert_eq!(r.next_due(), SimTime::from_millis(1_500));
    }

    #[test]
    fn counter_rate_differences_and_clamps_resets() {
        let cfg = TelemetryConfig::sampled(); // 100 ms interval
        let mut r = MetricRegistry::new(&cfg);
        r.counter_rate(SimTime::from_millis(100), "g0/throughput_ops", 10.0);
        r.counter_rate(SimTime::from_millis(200), "g0/throughput_ops", 25.0);
        // Crash reset the counter: clamp, don't go negative.
        r.counter_rate(SimTime::from_millis(300), "g0/throughput_ops", 5.0);
        let s = r.series().next().unwrap();
        assert_eq!(s.name, "g0/throughput_ops");
        // First sample rates against an implicit 0.
        assert_eq!(s.points[0].1, 100.0);
        assert_eq!(s.points[1].1, 150.0);
        assert_eq!(s.points[2].1, 0.0);
    }

    #[test]
    fn gauge_records_as_is_and_window_mean_selects() {
        let cfg = TelemetryConfig::sampled();
        let mut r = MetricRegistry::new(&cfg);
        for (ms, v) in [(100u64, 4.0), (200, 6.0), (300, 100.0)] {
            r.gauge(SimTime::from_millis(ms), "g1/pending_depth", v);
        }
        let s = r.snapshot().pop().unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.window_mean(SimTime::from_millis(100), SimTime::from_millis(300)),
            Some(5.0)
        );
        assert_eq!(
            s.window_mean(SimTime::from_millis(400), SimTime::from_millis(500)),
            None
        );
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = LatencyHistogram::default();
        // 99 fast ops at ~0.5 ms, one slow at ~40 ms.
        for _ in 0..99 {
            h.record(SimDuration::from_micros(500));
        }
        h.record(SimDuration::from_millis(40));
        assert_eq!(h.count(), 100);
        // p50 lands in the [256, 512) µs bucket → upper edge 0.512 ms.
        assert_eq!(h.percentile_ms(0.50), Some(0.512));
        // p99 is still a fast op; p100 is the slow one: [32768, 65536)
        // µs bucket → upper edge 65.536 ms.
        assert_eq!(h.percentile_ms(0.99), Some(0.512));
        assert_eq!(h.percentile_ms(1.0), Some(65.536));
        assert_eq!(LatencyHistogram::default().percentile_ms(0.99), None);
    }

    #[test]
    fn histogram_merge_and_since_are_elementwise() {
        let mut a = LatencyHistogram::default();
        a.record(SimDuration::from_micros(100));
        let snap = a;
        a.record(SimDuration::from_millis(10));
        a.record(SimDuration::from_millis(10));
        let window = a.since(&snap);
        assert_eq!(window.count(), 2);
        assert_eq!(window.percentile_ms(0.99), Some(16.384));
        let mut merged = snap;
        merged.merge(&window);
        assert_eq!(merged, a, "merge(since) reassembles the cumulative");
        // since() against a *later* snapshot saturates instead of
        // wrapping (a crash reset the per-replica counters).
        assert_eq!(snap.since(&a).count(), 0);
    }

    #[test]
    fn histogram_series_windows_by_subtraction() {
        let mut s = HistogramSeries::new("group0/latency");
        let mut cum = LatencyHistogram::default();
        cum.record(SimDuration::from_micros(200));
        s.push(SimTime::from_millis(100), cum);
        cum.record(SimDuration::from_millis(50));
        s.push(SimTime::from_millis(200), cum);
        cum.record(SimDuration::from_micros(200));
        s.push(SimTime::from_millis(300), cum);
        // [150, 250): only the slow op landed in this window.
        let w = s.window(SimTime::from_millis(150), SimTime::from_millis(250));
        assert_eq!(w.count(), 1);
        assert_eq!(
            s.window_p99_ms(SimTime::from_millis(150), SimTime::from_millis(250)),
            Some(65.536)
        );
        // The whole run.
        assert_eq!(s.window(SimTime::ZERO, SimTime::from_secs(10)).count(), 3);
        // An empty window.
        assert_eq!(
            s.window_p99_ms(SimTime::from_secs(5), SimTime::from_secs(6)),
            None
        );
    }

    #[test]
    fn registry_collects_histogram_series() {
        let mut r = MetricRegistry::new(&TelemetryConfig::sampled());
        let mut h = LatencyHistogram::default();
        h.record(SimDuration::from_micros(300));
        r.histogram(SimTime::from_millis(100), "group0/latency", h);
        h.record(SimDuration::from_micros(300));
        r.histogram(SimTime::from_millis(200), "group0/latency", h);
        let hs = r.hist_snapshot();
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].name, "group0/latency");
        assert_eq!(hs[0].points.len(), 2);
        assert_eq!(hs[0].points[1].1.count(), 2);
    }

    #[test]
    fn disabled_config_disables_registry() {
        let r = MetricRegistry::new(&TelemetryConfig::default());
        assert!(!r.enabled());
        assert!(!TelemetryConfig::default().sampling_enabled());
        assert!(TelemetryConfig::sampled().sampling_enabled());
    }
}
