//! Causal command tracing: per-command span trees and the latency
//! breakdown that explains *where* a command's time went.
//!
//! The simulator records [`SpanEvent`]s — lifecycle *points* (client
//! send, enqueue, propose, quorum, commit, reply, …) keyed by the
//! command's `(client, seq)` correlation id. This module stitches them
//! post-run into one [`CommandBreakdown`] per completed command.
//!
//! ## The accounting identity
//!
//! Spans are points, not intervals, and the breakdown **telescopes**:
//! the command's events are taken in emission order (the simulation is
//! single-threaded, so emission order is time order), every event
//! selects the stage the command is in *from that instant on*, and the
//! gap to the next event is booked to that stage. The stage components
//! therefore sum to `done − issued` **exactly**, by construction — no
//! unattributed time, no double counting — regardless of retries,
//! redirects, duplicate deliveries or crash-induced re-sends. The
//! conformance suite asserts the identity for every traced command in
//! a loss+crash run.
//!
//! ## Stage semantics
//!
//! - **queueing** — at a *non*-proposing replica waiting for the
//!   forward hop, or stalled at the client during a migration freeze
//!   window (`ClientStall`).
//! - **batching** — in the proposer's pending batch waiting for the
//!   batch cutter (including explicit `WindowDefer`s when the
//!   replication window or NIC is the reason the cut didn't happen).
//! - **network** — everything in flight between actors: client→replica,
//!   forward hop, redirect bounces, and the reply path. Handler CPU
//!   service time surfaces here too (a handler's outputs take effect
//!   after its charge elapses).
//! - **replication** — from `Propose` until the slot's replication
//!   quorum (`Quorum`, Raft/Raft* leaders) or commit, whichever is
//!   observable: MultiPaxos/Mencius have no durability clamp hook, so
//!   their fsync wait folds into replication and `fsync` reads 0.
//! - **fsync** — from replication quorum to commit: the window where
//!   only the durability clamp (PR 7 `ack_after_sync`) holds the commit
//!   back. Zero when durability is off (quorum and commit coincide).
//! - **apply** — from commit to the reply send.
//!
//! A lease-served local read never enters the batch: its breakdown is
//! pure network (send → reply), which is exactly the claim the
//! local-read optimization makes.

use paxraft_sim::sim::ActorId;
use paxraft_sim::time::{SimDuration, SimTime};
use paxraft_sim::trace::{SpanEvent, SpanKind};
use std::collections::BTreeMap;

/// The latency stages of the breakdown, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Waiting at a non-proposing replica / stalled at the client.
    Queueing,
    /// Waiting in the proposer's pending batch for the cutter.
    Batching,
    /// In flight between actors (includes handler CPU service).
    Network,
    /// From proposal to replication quorum.
    Replication,
    /// From replication quorum to commit (durability clamp).
    Fsync,
    /// From commit to the reply send.
    Apply,
}

impl Stage {
    /// All stages, in report order.
    pub const ALL: [Stage; 6] = [
        Stage::Queueing,
        Stage::Batching,
        Stage::Network,
        Stage::Replication,
        Stage::Fsync,
        Stage::Apply,
    ];

    /// Number of stages.
    pub const COUNT: usize = 6;

    /// Stable array index.
    pub fn index(self) -> usize {
        match self {
            Stage::Queueing => 0,
            Stage::Batching => 1,
            Stage::Network => 2,
            Stage::Replication => 3,
            Stage::Fsync => 4,
            Stage::Apply => 5,
        }
    }

    /// Report label (also the JSON key in `BENCH_pr10.json`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queueing => "queueing",
            Stage::Batching => "batching",
            Stage::Network => "network",
            Stage::Replication => "replication",
            Stage::Fsync => "fsync",
            Stage::Apply => "apply",
        }
    }

    /// The stage a command is in *after* observing `kind`.
    /// `ClientDone` is terminal and never accrues (returns `None`).
    fn after(kind: SpanKind) -> Option<Stage> {
        match kind {
            SpanKind::ClientSend
            | SpanKind::ClientRetry
            | SpanKind::ClientRedirect { .. }
            | SpanKind::Forward
            | SpanKind::Reply
            | SpanKind::Redirect { .. } => Some(Stage::Network),
            SpanKind::ClientStall | SpanKind::Enqueue { proposer: false } => Some(Stage::Queueing),
            SpanKind::Enqueue { proposer: true } | SpanKind::WindowDefer => Some(Stage::Batching),
            SpanKind::Propose => Some(Stage::Replication),
            SpanKind::Quorum => Some(Stage::Fsync),
            SpanKind::Commit => Some(Stage::Apply),
            SpanKind::ClientDone => None,
        }
    }
}

/// One completed command's latency breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandBreakdown {
    /// Issuing client id.
    pub client: u32,
    /// Client-local sequence number.
    pub seq: u64,
    /// Virtual time of the first `ClientSend`.
    pub issued_at: SimTime,
    /// Virtual time of `ClientDone`.
    pub done_at: SimTime,
    /// Per-stage time, indexed by [`Stage::index`]. Sums to
    /// `done_at − issued_at` exactly (the accounting identity).
    pub stages: [SimDuration; Stage::COUNT],
    /// The replica that sent the final reply (maps to a group in the
    /// sharded layout); `None` for a command that completed without an
    /// observed `Reply` (e.g. the reply span predates span enablement).
    pub served_by: Option<ActorId>,
    /// `WrongGroup` redirect bounces the client followed.
    pub redirects: u32,
    /// Freeze-window stalls (stale redirect during migration).
    pub stalls: u32,
    /// Timeout-driven client retries.
    pub retries: u32,
    /// Span events observed for this command.
    pub events: u32,
}

impl CommandBreakdown {
    /// End-to-end latency.
    pub fn total(&self) -> SimDuration {
        self.done_at - self.issued_at
    }

    /// One stage's component.
    pub fn stage(&self, s: Stage) -> SimDuration {
        self.stages[s.index()]
    }

    /// The critical-path verdict: the stage that ate the most time
    /// (earliest stage in report order wins ties, deterministically).
    pub fn dominant(&self) -> Stage {
        let mut best = Stage::ALL[0];
        for s in Stage::ALL {
            if self.stages[s.index()] > self.stages[best.index()] {
                best = s;
            }
        }
        best
    }
}

/// Aggregate stage attribution over a set of commands — the
/// critical-path analyzer's summary for a group, a phase window, or the
/// whole run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTotals {
    /// Summed per-stage time, indexed by [`Stage::index`].
    pub totals: [SimDuration; Stage::COUNT],
    /// Commands aggregated.
    pub commands: u64,
    /// Summed end-to-end latency (equals the stage totals' sum).
    pub total: SimDuration,
    /// How many commands each stage dominated, indexed by
    /// [`Stage::index`].
    pub dominant: [u64; Stage::COUNT],
}

impl StageTotals {
    /// Folds one command in.
    pub fn add(&mut self, b: &CommandBreakdown) {
        for s in Stage::ALL {
            self.totals[s.index()] += b.stages[s.index()];
        }
        self.total += b.total();
        self.commands += 1;
        self.dominant[b.dominant().index()] += 1;
    }

    /// The share of total time spent in `s` (0 when no time recorded).
    pub fn fraction(&self, s: Stage) -> f64 {
        let t = self.total.as_nanos();
        if t == 0 {
            return 0.0;
        }
        self.totals[s.index()].as_nanos() as f64 / t as f64
    }

    /// Mean per-command time in `s`, in milliseconds.
    pub fn mean_ms(&self, s: Stage) -> f64 {
        if self.commands == 0 {
            return 0.0;
        }
        self.totals[s.index()].as_nanos() as f64 / self.commands as f64 / 1e6
    }

    /// Mean end-to-end latency, in milliseconds.
    pub fn mean_total_ms(&self) -> f64 {
        if self.commands == 0 {
            return 0.0;
        }
        self.total.as_nanos() as f64 / self.commands as f64 / 1e6
    }

    /// The stage that dominated the most commands (ties resolve to the
    /// earliest stage in report order).
    pub fn dominant_stage(&self) -> Stage {
        let mut best = Stage::ALL[0];
        for s in Stage::ALL {
            if self.dominant[s.index()] > self.dominant[best.index()] {
                best = s;
            }
        }
        best
    }
}

/// The assembled per-command breakdowns of one run.
#[derive(Debug, Clone, Default)]
pub struct SpanReport {
    /// Completed commands (observed `ClientDone`), completion order.
    pub commands: Vec<CommandBreakdown>,
    /// Commands with span events but no `ClientDone` (still in flight
    /// when the run ended, or lost to a crash).
    pub incomplete: u64,
}

impl SpanReport {
    /// Aggregate stage attribution over every completed command.
    pub fn totals(&self) -> StageTotals {
        self.totals_where(|_| true)
    }

    /// Aggregate over the commands that completed in `[from, to)` —
    /// per-phase attribution (warmup vs migration window vs steady
    /// state).
    pub fn window(&self, from: SimTime, to: SimTime) -> StageTotals {
        self.totals_where(|b| b.done_at >= from && b.done_at < to)
    }

    /// Aggregate over an arbitrary command subset — the per-group hook
    /// (filter on `served_by` through the harness's actor→group map).
    pub fn totals_where(&self, mut keep: impl FnMut(&CommandBreakdown) -> bool) -> StageTotals {
        let mut t = StageTotals::default();
        for b in &self.commands {
            if keep(b) {
                t.add(b);
            }
        }
        t
    }
}

/// Stitches the flight recorder's span log into a [`SpanReport`].
///
/// Deterministic: the log is processed in emission order (= time
/// order), grouping is by correlation id, and no ordering decision
/// depends on anything but the log contents.
#[derive(Debug, Default)]
pub struct SpanAssembler;

impl SpanAssembler {
    /// Assembles per-command breakdowns from the raw span log.
    ///
    /// Events before the command's first `ClientSend` (none exist in
    /// practice) and after its `ClientDone` (duplicate replies from a
    /// re-elected leader) are ignored; internal commands carrying the
    /// `u32::MAX` sentinel client id are skipped.
    pub fn assemble(spans: &[SpanEvent]) -> SpanReport {
        // Group event indices per command, preserving emission order.
        let mut per_cmd: BTreeMap<(u32, u64), Vec<usize>> = BTreeMap::new();
        for (i, ev) in spans.iter().enumerate() {
            if ev.client == u32::MAX {
                continue;
            }
            per_cmd.entry((ev.client, ev.seq)).or_default().push(i);
        }
        let mut report = SpanReport::default();
        let mut done_order: Vec<(SimTime, usize, CommandBreakdown)> = Vec::new();
        for ((client, seq), idxs) in per_cmd {
            let evs = || idxs.iter().map(|&i| &spans[i]);
            // The span opens at the first ClientSend and closes at the
            // first ClientDone after it.
            let Some(first) = evs().find(|e| e.kind == SpanKind::ClientSend) else {
                report.incomplete += 1;
                continue;
            };
            let issued_at = first.at;
            let Some(done) = evs().find(|e| e.kind == SpanKind::ClientDone) else {
                report.incomplete += 1;
                continue;
            };
            let done_at = done.at;
            let mut b = CommandBreakdown {
                client,
                seq,
                issued_at,
                done_at,
                stages: [SimDuration::ZERO; Stage::COUNT],
                served_by: None,
                redirects: 0,
                stalls: 0,
                retries: 0,
                events: 0,
            };
            // Telescope: each event selects the stage until the next.
            let mut stage = Stage::Network; // ClientSend's stage
            let mut prev_at = issued_at;
            let mut open = false;
            for ev in evs() {
                if ev.at < issued_at {
                    continue;
                }
                if !open {
                    // Skip anything before the opening ClientSend.
                    if ev.kind != SpanKind::ClientSend {
                        continue;
                    }
                    open = true;
                }
                b.events += 1;
                b.stages[stage.index()] += ev.at - prev_at;
                prev_at = ev.at;
                match ev.kind {
                    SpanKind::ClientRedirect { .. } => b.redirects += 1,
                    SpanKind::ClientStall => b.stalls += 1,
                    SpanKind::ClientRetry => b.retries += 1,
                    SpanKind::Reply => b.served_by = Some(ev.actor),
                    _ => {}
                }
                match Stage::after(ev.kind) {
                    Some(s) => stage = s,
                    None => break, // ClientDone closes the span
                }
            }
            done_order.push((done_at, idxs[0], b));
        }
        // Completion order (ties broken by first-event order) keeps the
        // report deterministic and phase-windowable.
        done_order.sort_by_key(|&(at, first_idx, _)| (at, first_idx));
        report.commands = done_order.into_iter().map(|(_, _, b)| b).collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64, actor: usize, kind: SpanKind) -> SpanEvent {
        SpanEvent {
            at: SimTime::from_millis(ms),
            actor: ActorId(actor),
            kind,
            client: 7,
            seq: 1,
        }
    }

    #[test]
    fn breakdown_telescopes_to_end_to_end() {
        // send(0) → enqueue@proposer(2) → propose(5) → quorum(9)
        //   → commit(10) → reply(10) → done(13)
        let log = vec![
            ev(0, 3, SpanKind::ClientSend),
            ev(2, 0, SpanKind::Enqueue { proposer: true }),
            ev(5, 0, SpanKind::Propose),
            ev(9, 0, SpanKind::Quorum),
            ev(10, 0, SpanKind::Commit),
            ev(10, 0, SpanKind::Reply),
            ev(13, 3, SpanKind::ClientDone),
        ];
        let r = SpanAssembler::assemble(&log);
        assert_eq!(r.commands.len(), 1);
        assert_eq!(r.incomplete, 0);
        let b = &r.commands[0];
        assert_eq!(b.total(), SimDuration::from_millis(13));
        assert_eq!(b.stage(Stage::Network), SimDuration::from_millis(2 + 3));
        assert_eq!(b.stage(Stage::Batching), SimDuration::from_millis(3));
        assert_eq!(b.stage(Stage::Replication), SimDuration::from_millis(4));
        assert_eq!(b.stage(Stage::Fsync), SimDuration::from_millis(1));
        assert_eq!(b.stage(Stage::Apply), SimDuration::ZERO);
        assert_eq!(b.stage(Stage::Queueing), SimDuration::ZERO);
        let sum = Stage::ALL
            .iter()
            .fold(SimDuration::ZERO, |acc, &s| acc + b.stage(s));
        assert_eq!(sum, b.total(), "accounting identity");
        assert_eq!(b.dominant(), Stage::Network);
        assert_eq!(b.served_by, Some(ActorId(0)));
    }

    #[test]
    fn redirect_and_stall_book_to_network_and_queueing() {
        // Migration-window shape: send → redirect bounce → stall →
        // re-send → served at the destination.
        let log = vec![
            ev(0, 9, SpanKind::ClientSend),
            ev(1, 0, SpanKind::Redirect { group: 1 }),
            ev(2, 9, SpanKind::ClientRedirect { group: 1 }),
            ev(3, 4, SpanKind::Redirect { group: 0 }), // stale bounce-back
            ev(4, 9, SpanKind::ClientStall),
            ev(54, 9, SpanKind::ClientRetry),
            ev(55, 4, SpanKind::Enqueue { proposer: true }),
            ev(56, 4, SpanKind::Propose),
            ev(58, 4, SpanKind::Commit),
            ev(58, 4, SpanKind::Reply),
            ev(59, 9, SpanKind::ClientDone),
        ];
        let r = SpanAssembler::assemble(&log);
        let b = &r.commands[0];
        assert_eq!(b.redirects, 1);
        assert_eq!(b.stalls, 1);
        assert_eq!(b.retries, 1);
        // The 50 ms freeze-bounce stall is queueing, the bounces are
        // network.
        assert_eq!(b.stage(Stage::Queueing), SimDuration::from_millis(50));
        assert_eq!(b.stage(Stage::Network), SimDuration::from_millis(6));
        let sum = Stage::ALL
            .iter()
            .fold(SimDuration::ZERO, |acc, &s| acc + b.stage(s));
        assert_eq!(sum, b.total());
        assert_eq!(b.dominant(), Stage::Queueing);
        assert_eq!(b.served_by, Some(ActorId(4)));
    }

    #[test]
    fn incomplete_and_sentinel_commands_are_excluded() {
        let mut log = vec![
            ev(0, 3, SpanKind::ClientSend),
            ev(2, 0, SpanKind::Enqueue { proposer: true }),
            // no ClientDone: still in flight at run end
        ];
        log.push(SpanEvent {
            at: SimTime::from_millis(1),
            actor: ActorId(0),
            kind: SpanKind::Commit,
            client: u32::MAX, // internal noop sentinel
            seq: 9,
        });
        let r = SpanAssembler::assemble(&log);
        assert!(r.commands.is_empty());
        assert_eq!(r.incomplete, 1);
    }

    #[test]
    fn totals_aggregate_and_window_filters_by_completion() {
        let mk = |seq: u64, base: u64| {
            [
                SpanEvent {
                    at: SimTime::from_millis(base),
                    actor: ActorId(9),
                    kind: SpanKind::ClientSend,
                    client: 1,
                    seq,
                },
                SpanEvent {
                    at: SimTime::from_millis(base + 1),
                    actor: ActorId(0),
                    kind: SpanKind::Enqueue { proposer: true },
                    client: 1,
                    seq,
                },
                SpanEvent {
                    at: SimTime::from_millis(base + 4),
                    actor: ActorId(0),
                    kind: SpanKind::Reply,
                    client: 1,
                    seq,
                },
                SpanEvent {
                    at: SimTime::from_millis(base + 5),
                    actor: ActorId(9),
                    kind: SpanKind::ClientDone,
                    client: 1,
                    seq,
                },
            ]
        };
        let mut log = Vec::new();
        log.extend(mk(1, 0));
        log.extend(mk(2, 100));
        let r = SpanAssembler::assemble(&log);
        assert_eq!(r.commands.len(), 2);
        let t = r.totals();
        assert_eq!(t.commands, 2);
        assert_eq!(t.total, SimDuration::from_millis(10));
        assert_eq!(
            t.totals[Stage::Batching.index()],
            SimDuration::from_millis(6)
        );
        assert_eq!(
            t.totals[Stage::Network.index()],
            SimDuration::from_millis(4)
        );
        assert!((t.fraction(Stage::Batching) - 0.6).abs() < 1e-9);
        assert_eq!(t.dominant_stage(), Stage::Batching);
        assert_eq!(t.mean_total_ms(), 5.0);
        // Phase window: only the second command completed after t=50ms.
        let w = r.window(SimTime::from_millis(50), SimTime::from_secs(1));
        assert_eq!(w.commands, 1);
    }
}
