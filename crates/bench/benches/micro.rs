//! Criterion micro-benchmarks for protocol-critical paths: log append,
//! replication-progress tracking, lease checks, the simulator event
//! loop, and a small model-checking run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use paxraft_core::config::{LeaseConfig, ReadMode};
use paxraft_core::kv::{CmdId, Command};
use paxraft_core::log::{Entry, Log};
use paxraft_core::pql::LeaseManager;
use paxraft_core::replicate::Replicator;
use paxraft_core::types::{NodeId, Slot, Term};
use paxraft_sim::net::{NetConfig, Region};
use paxraft_sim::sim::{Actor, ActorId, Ctx, Payload, Simulation};
use paxraft_sim::time::{SimDuration, SimTime};

fn bench_log_append(c: &mut Criterion) {
    c.bench_function("log_append_1k", |b| {
        b.iter(|| {
            let mut log = Log::new();
            for i in 0..1000u64 {
                log.append(Entry {
                    term: Term(1),
                    bal: Term(1),
                    cmd: Command::put(CmdId { client: 1, seq: i }, i, vec![0; 8]),
                });
            }
            black_box(log.last_index())
        })
    });
}

fn bench_bal_rewrite(c: &mut Criterion) {
    let mut log = Log::new();
    for i in 0..1000u64 {
        log.append(Entry {
            term: Term(1),
            bal: Term(1),
            cmd: Command::put(CmdId { client: 1, seq: i }, i, vec![0; 8]),
        });
    }
    c.bench_function("raftstar_bal_rewrite_1k", |b| {
        let mut t = 2u64;
        b.iter(|| {
            t += 1;
            log.set_bal_upto(Slot(1000), Term(t));
            black_box(log.last_term())
        })
    });
}

fn bench_replicator(c: &mut Criterion) {
    c.bench_function("replicator_ack_commit_track", |b| {
        b.iter(|| {
            let mut r = Replicator::new(5);
            for i in 1..=100u64 {
                for p in 1..5u32 {
                    r.on_ack(NodeId(p), Slot(i));
                }
                black_box(r.kth_largest_match(2, NodeId(0)));
            }
        })
    });
}

fn bench_lease_check(c: &mut Criterion) {
    let mut lm = LeaseManager::new(LeaseConfig::default(), ReadMode::QuorumLease, 5, NodeId(2));
    let now = SimTime::from_millis(100);
    lm.self_grant(now);
    for g in [0u32, 1, 3, 4] {
        lm.on_grant(NodeId(g), SimTime::from_secs(5), Slot::NONE, SimTime::ZERO);
        lm.on_grant_ack(NodeId(g), SimTime::from_secs(5));
    }
    c.bench_function("pql_quorum_lease_check", |b| {
        b.iter(|| black_box(lm.has_quorum_lease(now) && !lm.current_holders(now).is_empty()))
    });
}

#[derive(Debug, Clone)]
struct Ping;
impl Payload for Ping {
    fn size_bytes(&self) -> usize {
        16
    }
}
struct Echo {
    peer: ActorId,
    left: u32,
}
impl Actor<Ping> for Echo {
    fn on_start(&mut self, ctx: &mut Ctx<Ping>) {
        ctx.send(self.peer, Ping);
    }
    fn on_message(&mut self, ctx: &mut Ctx<Ping>, from: ActorId, _m: Ping) {
        if self.left > 0 {
            self.left -= 1;
            ctx.send(from, Ping);
        }
    }
    paxraft_sim::impl_actor_any!();
}

fn bench_sim_event_loop(c: &mut Criterion) {
    c.bench_function("sim_10k_message_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(NetConfig::default(), 7);
            let a = sim.add_actor(Region::Oregon, Box::new(Echo { peer: ActorId(1), left: 5000 }));
            let _b = sim.add_actor(Region::Ohio, Box::new(Echo { peer: a, left: 5000 }));
            sim.run_to_quiescence(SimTime::from_secs(3600));
            black_box(sim.stats.deliveries)
        })
    });
}

fn bench_model_check_small(c: &mut Criterion) {
    use paxraft_spec::check::{explore, Limits};
    use paxraft_spec::specs::multipaxos::{self, MpConfig};
    c.bench_function("model_check_multipaxos_2k_states", |b| {
        let cfg = MpConfig::default();
        let mp = multipaxos::spec(&cfg);
        b.iter(|| {
            let report = explore(&mp, &[], Limits { max_states: 2_000, max_depth: usize::MAX });
            black_box(report.states)
        })
    });
}

fn bench_cluster_commit(c: &mut Criterion) {
    use paxraft_core::harness::{Cluster, ProtocolKind};
    use paxraft_core::kv::Op;
    c.bench_function("raftstar_cluster_100_commits", |b| {
        b.iter(|| {
            let mut cluster = Cluster::builder(ProtocolKind::RaftStar).seed(3).build();
            cluster.elect_leader();
            for k in 0..100 {
                cluster
                    .submit_and_wait(Op::Put { key: k, value: vec![0; 8] })
                    .expect("commit");
            }
            black_box(cluster.sim.now())
        })
    });
    let _ = SimDuration::ZERO;
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_log_append,
    bench_bal_rewrite,
    bench_replicator,
    bench_lease_check,
    bench_sim_event_loop,
    bench_model_check_small,
    bench_cluster_commit
);
criterion_main!(micro);
