//! Micro-benchmarks for protocol-critical paths: log append,
//! replication-progress tracking, lease checks, the simulator event
//! loop, and a small model-checking run.
//!
//! Uses a self-contained timing harness (`harness = false`) so the
//! workspace carries no external bench dependency; each benchmark is
//! run for a fixed number of timed iterations after a short warm-up and
//! reported as ns/iter (median of samples).
//!
//! Besides the stdout table, results are written as JSON to the path in
//! `BENCH_JSON_OUT` (default `BENCH.json` in the working directory); CI
//! points that at a per-PR file to archive the perf trajectory.

use std::hint::black_box;
use std::time::Instant;

use paxraft_core::config::{LeaseConfig, ReadMode};
use paxraft_core::kv::{CmdId, Command};
use paxraft_core::log::{Entry, Log};
use paxraft_core::pql::LeaseManager;
use paxraft_core::replicate::Replicator;
use paxraft_core::types::{NodeId, Slot, Term};
use paxraft_sim::net::{NetConfig, Region};
use paxraft_sim::sim::{Actor, ActorId, Ctx, Payload, Simulation};
use paxraft_sim::time::SimTime;

/// Collects `(name, median ns/iter)` rows plus named virtual-time
/// series (telemetry samples from the sweep benchmarks) for the JSON
/// report.
struct Reporter {
    rows: Vec<(String, f64)>,
    /// `(name, [(t_secs, value), ...])` — per-group telemetry series.
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl Reporter {
    /// Writes the collected rows as a flat JSON object, with the
    /// telemetry series nested under a trailing `"timeseries"` key
    /// (hand-rolled: the workspace is intentionally dependency-free).
    fn write_json(&self, path: &str) -> std::io::Result<()> {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.3}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n");
        for (name, median) in &self.rows {
            out.push_str(&format!("  \"{name}\": {median:.1},\n"));
        }
        out.push_str("  \"timeseries\": {\n");
        for (i, (name, points)) in self.series.iter().enumerate() {
            let comma = if i + 1 == self.series.len() { "" } else { "," };
            let pts: Vec<String> = points
                .iter()
                .map(|&(t, v)| format!("[{}, {}]", num(t), num(v)))
                .collect();
            out.push_str(&format!("    \"{name}\": [{}]{comma}\n", pts.join(", ")));
        }
        out.push_str("  }\n}\n");
        std::fs::write(path, out)
    }
}

/// Times `f` over `samples` samples of `iters` iterations each and
/// prints the median ns/iter.
fn bench(rep: &mut Reporter, name: &str, samples: usize, iters: usize, mut f: impl FnMut()) {
    // Warm-up.
    for _ in 0..iters.min(3) {
        f();
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = per_iter[per_iter.len() / 2];
    println!("{name:<40} {median:>14.0} ns/iter  ({samples} x {iters})");
    rep.rows.push((name.to_string(), median));
}

fn bench_log_append(rep: &mut Reporter) {
    bench(rep, "log_append_1k", 10, 20, || {
        let mut log = Log::new();
        for i in 0..1000u64 {
            log.append(Entry {
                term: Term(1),
                bal: Term(1),
                cmd: Command::put(CmdId { client: 1, seq: i }, i, vec![0; 8]),
            });
        }
        black_box(log.last_index());
    });
}

fn bench_bal_rewrite(rep: &mut Reporter) {
    let mut log = Log::new();
    for i in 0..1000u64 {
        log.append(Entry {
            term: Term(1),
            bal: Term(1),
            cmd: Command::put(CmdId { client: 1, seq: i }, i, vec![0; 8]),
        });
    }
    let mut t = 2u64;
    bench(rep, "raftstar_bal_rewrite_1k", 10, 100, || {
        t += 1;
        log.set_bal_upto(Slot(1000), Term(t));
        black_box(log.last_term());
    });
}

fn bench_replicator(rep: &mut Reporter) {
    bench(rep, "replicator_ack_commit_track", 10, 50, || {
        let mut r = Replicator::new(5);
        for i in 1..=100u64 {
            for p in 1..5u32 {
                r.on_ack(NodeId(p), Slot(i));
            }
            black_box(r.kth_largest_match(2, NodeId(0)));
        }
    });
}

fn bench_lease_check(rep: &mut Reporter) {
    let mut lm = LeaseManager::new(LeaseConfig::default(), ReadMode::QuorumLease, 5, NodeId(2));
    let now = SimTime::from_millis(100);
    lm.self_grant(now);
    for g in [0u32, 1, 3, 4] {
        lm.on_grant(NodeId(g), SimTime::from_secs(5), Slot::NONE, SimTime::ZERO);
        lm.on_grant_ack(NodeId(g), SimTime::from_secs(5));
    }
    bench(rep, "pql_quorum_lease_check", 10, 10_000, || {
        black_box(lm.has_quorum_lease(now) && !lm.current_holders(now).is_empty());
    });
}

#[derive(Debug, Clone)]
struct Ping;
impl Payload for Ping {
    fn size_bytes(&self) -> usize {
        16
    }
}
struct Echo {
    peer: ActorId,
    left: u32,
}
impl Actor<Ping> for Echo {
    fn on_start(&mut self, ctx: &mut Ctx<Ping>) {
        ctx.send(self.peer, Ping);
    }
    fn on_message(&mut self, ctx: &mut Ctx<Ping>, from: ActorId, _m: Ping) {
        if self.left > 0 {
            self.left -= 1;
            ctx.send(from, Ping);
        }
    }
    paxraft_sim::impl_actor_any!();
}

fn bench_sim_event_loop(rep: &mut Reporter) {
    bench(rep, "sim_10k_message_events", 5, 3, || {
        let mut sim = Simulation::new(NetConfig::default(), 7);
        let a = sim.add_actor(
            Region::Oregon,
            Box::new(Echo {
                peer: ActorId(1),
                left: 5000,
            }),
        );
        let _b = sim.add_actor(
            Region::Ohio,
            Box::new(Echo {
                peer: a,
                left: 5000,
            }),
        );
        sim.run_to_quiescence(SimTime::from_secs(3600));
        black_box(sim.stats.deliveries);
    });
}

fn bench_model_check_small(rep: &mut Reporter) {
    use paxraft_spec::check::{explore, Limits};
    use paxraft_spec::specs::multipaxos::{self, MpConfig};
    let cfg = MpConfig::default();
    let mp = multipaxos::spec(&cfg);
    bench(rep, "model_check_multipaxos_2k_states", 5, 3, || {
        let report = explore(&mp, &[], Limits::states(2_000));
        black_box(report.states);
    });
}

fn bench_cluster_commit(rep: &mut Reporter) {
    use paxraft_core::harness::{Cluster, ProtocolKind};
    use paxraft_core::kv::Op;
    bench(rep, "raftstar_cluster_100_commits", 3, 1, || {
        let mut cluster = Cluster::builder(ProtocolKind::RaftStar).seed(3).build();
        cluster.elect_leader();
        for k in 0..100 {
            cluster
                .submit_and_wait(Op::Put {
                    key: k,
                    value: vec![0; 8],
                })
                .expect("commit");
        }
        black_box(cluster.sim.now());
    });
}

/// Pipeline-depth sweep on the high-latency WAN config: virtual time for
/// one closed-loop client to complete 100 write commits, per window
/// depth (0 = pipelining off, the pre-PR3 batching discipline), measured
/// both co-located with the leader and from the farthest follower region
/// (where the forward path pays the batch delay twice); plus aggregate
/// closed-loop throughput. These rows are *virtual-clock* measurements —
/// deterministic for the fixed seed — so the perf trajectory across PRs
/// is noise-free.
fn bench_pipeline_sweep(rep: &mut Reporter) {
    use paxraft_core::client::WorkloadClient;
    use paxraft_core::engine::PipelineConfig;
    use paxraft_core::harness::{Cluster, ProtocolKind};
    use paxraft_sim::rng::SimRng;
    use paxraft_sim::time::SimDuration;
    use paxraft_workload::generator::{Generator, WorkloadConfig};

    let serial_100 = |pipeline: PipelineConfig, region_idx: usize| -> f64 {
        let mut cluster = Cluster::builder(ProtocolKind::RaftStar)
            .seed(3)
            .pipeline_config(pipeline)
            .build();
        cluster.elect_leader();
        let writes = WorkloadConfig {
            read_fraction: 0.0,
            conflict_rate: 0.0,
            ..Default::default()
        };
        let target = cluster.replicas()[region_idx];
        // The first client actor added after the replicas maps to
        // logical client 0 (`client_base == replica count`).
        let wc = WorkloadClient::new(0, target, Generator::new(writes, 0, SimRng::new(9)));
        let added_at = cluster.sim.now();
        let wc_id = cluster.sim.add_actor(Region::ALL[region_idx], Box::new(wc));
        while cluster.sim.actor::<WorkloadClient>(wc_id).completions.len() < 100 {
            cluster.sim.run_for(SimDuration::from_millis(50));
        }
        let done = cluster.sim.actor::<WorkloadClient>(wc_id).completions[99].at_ns;
        (done - added_at.as_nanos()) as f64 / 1e6
    };
    for depth in [0usize, 2, 4, 8] {
        let ms = serial_100(PipelineConfig::depth(depth), 0);
        let name = format!("pipeline_depth{depth}_100_commits_leader_region_virtual_ms");
        println!("{name:<55} {ms:>10.3} ms (virtual)");
        rep.rows.push((name, ms));
    }
    for depth in [0usize, 8] {
        let ms = serial_100(PipelineConfig::depth(depth), 4); // Seoul: the farthest follower
        let name = format!("pipeline_depth{depth}_100_commits_follower_region_virtual_ms");
        println!("{name:<55} {ms:>10.3} ms (virtual)");
        rep.rows.push((name, ms));
    }
    // Follower-side adaptive forwarding is on by default since PR 5;
    // this row re-measures the old default (hints off) so the pair
    // documents what the flip buys on the far-follower forward path
    // (the ~2 ms batch delay per commit).
    {
        let ms = serial_100(PipelineConfig::default().without_follower_hints(), 4);
        let name = "pipeline_depth8_nohints_100_commits_follower_region_virtual_ms".to_string();
        println!("{name:<55} {ms:>10.3} ms (virtual)");
        rep.rows.push((name, ms));
    }
    for depth in [0usize, 8] {
        let w = WorkloadConfig {
            read_fraction: 0.5,
            conflict_rate: 0.2,
            ..Default::default()
        };
        let mut cluster = Cluster::builder(ProtocolKind::RaftStar)
            .clients_per_region(2)
            .workload(w)
            .seed(7)
            .pipeline_config(PipelineConfig::depth(depth))
            .build();
        cluster.elect_leader();
        let r = cluster.run_measurement(
            SimDuration::from_secs(2),
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
        );
        let name = format!("raftstar_wan_closed_loop_depth{depth}_ops_per_sec");
        println!("{name:<55} {:>10.1} ops/s (virtual)", r.throughput_ops);
        rep.rows.push((name, r.throughput_ops));
    }
}

/// Shard-count sweep (the PR 4 scaling demonstration): fixed-seed
/// closed-loop throughput at 1/2/4 replica groups per node, for both
/// leader-placement policies and both protocol families.
///
/// The CPU cost model is scaled 200× so a *small* client fleet saturates
/// one leader's CPU (the default constants put single-leader saturation
/// near the paper's 41K ops/s, far beyond what a seconds-long simulated
/// closed loop can offer); with the leader CPU as the bottleneck, adding
/// groups — each group's replica is its own actor with its own CPU —
/// lifts the ceiling linearly until the workload is latency-bound again.
/// Virtual-clock rows: deterministic for the fixed seed.
fn bench_shard_sweep(rep: &mut Reporter) {
    use paxraft_core::costs::CostModel;
    use paxraft_core::harness::{Cluster, ProtocolKind};
    use paxraft_core::shard::{LeaderPlacement, ShardConfig};
    use paxraft_sim::time::SimDuration;
    use paxraft_workload::generator::WorkloadConfig;

    let w = WorkloadConfig {
        read_fraction: 0.5,
        conflict_rate: 0.0,
        ..Default::default()
    };
    for (pname, protocol) in [
        ("raft", ProtocolKind::Raft),
        ("multipaxos", ProtocolKind::MultiPaxos),
    ] {
        for placement in [LeaderPlacement::AllOnOne, LeaderPlacement::RoundRobin] {
            for groups in [1usize, 2, 4] {
                let mut cluster = Cluster::builder(protocol)
                    .clients_per_region(25)
                    .workload(w.clone())
                    .seed(42)
                    .costs(CostModel::default().scaled_cpu(200))
                    .shard_config(ShardConfig::groups(groups).placement(placement))
                    .build_sharded();
                cluster.elect_leaders();
                let r = cluster.run_measurement(
                    SimDuration::from_secs(2),
                    SimDuration::from_secs(5),
                    SimDuration::from_secs(1),
                );
                let name = format!(
                    "shard_{pname}_groups{groups}_{}_ops_per_sec",
                    placement.name()
                );
                println!("{name:<55} {:>10.1} ops/s (virtual)", r.throughput_ops);
                rep.rows.push((name, r.throughput_ops));
            }
        }
    }
}

/// 4 KB-payload calibration (the paper's Figure 10b regime, where the
/// NIC rather than the leader CPU saturates): sweep `pipeline_depth` and
/// `batch_max` under 4 KB writes on a bandwidth-starved NIC (75 Mbps =
/// the testbed's 750 Mbps scaled 10× down, so a 50-client closed loop
/// reaches saturation). Justifies the defaults: once bytes dominate,
/// larger batches cannot buy throughput (the NIC moves the same bytes
/// either way), while pipelining still hides the round trip.
fn bench_payload_4kb(rep: &mut Reporter) {
    use paxraft_core::engine::PipelineConfig;
    use paxraft_core::harness::{Cluster, ProtocolKind};
    use paxraft_sim::net::NetConfig;
    use paxraft_sim::time::SimDuration;
    use paxraft_workload::generator::WorkloadConfig;

    let w = WorkloadConfig {
        read_fraction: 0.0,
        conflict_rate: 0.0,
        value_size: 4096,
        ..Default::default()
    };
    let net = NetConfig {
        bandwidth_bps: 75.0e6,
        ..NetConfig::default()
    };
    let run = |depth: usize, batch_max: usize| -> f64 {
        let mut cluster = Cluster::builder(ProtocolKind::RaftStar)
            .clients_per_region(10)
            .workload(w.clone())
            .seed(42)
            .net(net.clone())
            .batch_max(batch_max)
            .pipeline_config(PipelineConfig::depth(depth))
            .build();
        cluster.elect_leader();
        let r = cluster.run_measurement(
            SimDuration::from_secs(2),
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
        );
        r.throughput_ops
    };
    // batch_max swept in the timer-batched regime (depth 0) where it
    // actually binds; the depth-8 row now runs with the NIC-aware
    // cutter (on by default since PR 5): once the egress backlog
    // crosses a quarter of the batch delay the cutter stops cutting
    // eagerly and accumulates, recovering about a third of the ~9%
    // that per-command eager rounds lost to per-message overhead on a
    // saturated NIC (the PR 4 finding; the residual gap comes from the
    // per-peer window gating itself — see ROADMAP).
    for (depth, batch_max) in [(0usize, 8usize), (0, 64), (0, 256), (8, 64)] {
        let ops = run(depth, batch_max);
        let name = format!("payload_4kb_depth{depth}_batchmax{batch_max}_ops_per_sec");
        println!("{name:<55} {ops:>10.1} ops/s (virtual)");
        rep.rows.push((name, ops));
    }
    // Regression row: the same depth-8 run with NIC-aware cutting
    // forced off reproduces the PR 4 loss, pinning what the new cutter
    // buys.
    {
        let mut cluster = Cluster::builder(ProtocolKind::RaftStar)
            .clients_per_region(10)
            .workload(w.clone())
            .seed(42)
            .net(net.clone())
            .batch_max(64)
            .pipeline_config(PipelineConfig::depth(8).without_nic_aware_cutting())
            .build();
        cluster.elect_leader();
        let r = cluster.run_measurement(
            SimDuration::from_secs(2),
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
        );
        let name = "payload_4kb_depth8_nicoff_ops_per_sec".to_string();
        println!("{name:<55} {:>10.1} ops/s (virtual)", r.throughput_ops);
        rep.rows.push((name, r.throughput_ops));
    }
}

/// Live-rebalancing sweep (the PR 5 demonstration): fixed-seed
/// closed-loop throughput of a 2-group cluster through a scripted merge
/// (group 1's range into group 0 — manufacturing the hot-range regime
/// where one leader absorbs the whole keyspace) and the subsequent split
/// back out, for both protocol families. CPU costs scaled 200× as in the
/// shard sweep so the leader CPU is the bottleneck; virtual-clock rows,
/// deterministic for the fixed seed. `during` overlaps the merge's
/// freeze/transfer/install window — the price of migrating under load —
/// and `postsplit` shows the split restoring the balanced ceiling.
///
/// The run also samples per-group telemetry every 100 ms of virtual
/// time and embeds the `throughput_ops`/`pending_depth` series in the
/// JSON (under `"timeseries"`), so the artifact carries the *shape* of
/// the migration window — the dip and the post-split recovery — not
/// just the four phase means. Sampling is driven between simulation
/// steps and never perturbs the schedule, so the phase rows are
/// bit-for-bit what a telemetry-off run reports (pinned by the
/// conformance suite's determinism tests).
fn bench_rebalance_sweep(rep: &mut Reporter) {
    use paxraft_core::costs::CostModel;
    use paxraft_core::harness::{Cluster, ProtocolKind};
    use paxraft_core::shard::{MigrationSpec, RebalanceConfig, ShardConfig, ShardRouter};
    use paxraft_core::telemetry::TelemetryConfig;
    use paxraft_sim::time::SimDuration;
    use paxraft_workload::generator::WorkloadConfig;

    let w = WorkloadConfig {
        read_fraction: 0.5,
        conflict_rate: 0.0,
        ..Default::default()
    };
    let router = ShardRouter::new(w.records, 2);
    let (lo1, hi1) = router.range(1);
    for (pname, protocol) in [
        ("raft", ProtocolKind::Raft),
        ("multipaxos", ProtocolKind::MultiPaxos),
    ] {
        let mut cluster = Cluster::builder(protocol)
            .clients_per_region(25)
            .workload(w.clone())
            .seed(42)
            .costs(CostModel::default().scaled_cpu(200))
            .shard_config(ShardConfig::groups(2))
            .rebalance_config(
                RebalanceConfig::default()
                    .migrate(MigrationSpec {
                        at: SimDuration::from_millis(5_500),
                        lo: lo1,
                        hi: hi1,
                        to_group: 0,
                    })
                    .migrate(MigrationSpec {
                        at: SimDuration::from_millis(10_500),
                        lo: lo1,
                        hi: hi1,
                        to_group: 1,
                    }),
            )
            .telemetry_config(TelemetryConfig::sampled())
            .build_sharded();
        cluster.elect_leaders();
        let phases = [
            (
                "steady",
                SimDuration::from_secs(2),
                SimDuration::from_secs(3),
                SimDuration::ZERO,
            ),
            (
                "during",
                SimDuration::ZERO,
                SimDuration::from_secs(3),
                SimDuration::ZERO,
            ),
            (
                "merged",
                SimDuration::ZERO,
                SimDuration::from_secs(2),
                SimDuration::from_millis(500),
            ),
            (
                "postsplit",
                SimDuration::from_millis(1_500),
                SimDuration::from_secs(3),
                SimDuration::ZERO,
            ),
        ];
        for (phase, warmup, measure, cooldown) in phases {
            let r = cluster.run_measurement(warmup, measure, cooldown);
            let name = format!("rebalance_{pname}_{phase}_ops_per_sec");
            println!("{name:<55} {:>10.1} ops/s (virtual)", r.throughput_ops);
            rep.rows.push((name, r.throughput_ops));
        }
        // Embed the per-group series covering all four phases.
        let all = cluster.telemetry_series();
        for g in 0..2u32 {
            for metric in ["throughput_ops", "pending_depth"] {
                let sname = format!("group{g}/{metric}");
                let s = all
                    .iter()
                    .find(|s| s.name == sname)
                    .unwrap_or_else(|| panic!("series {sname} was collected"));
                assert!(!s.points.is_empty(), "{sname} has samples");
                rep.series.push((
                    format!("rebalance_{pname}_group{g}_{metric}"),
                    s.points
                        .iter()
                        .map(|&(at, v)| (at.as_millis_f64() / 1e3, v))
                        .collect(),
                ));
            }
        }
        cluster.run_until_rebalanced(SimDuration::from_secs(30));
        assert_eq!(
            cluster.migrations_completed(),
            vec![1, 2],
            "{pname}: both scripted migrations completed"
        );
    }
}

fn main() {
    let mut rep = Reporter {
        rows: Vec::new(),
        series: Vec::new(),
    };
    let rep = &mut rep;
    println!("{:<40} {:>14}", "benchmark", "median");
    bench_log_append(rep);
    bench_bal_rewrite(rep);
    bench_replicator(rep);
    bench_lease_check(rep);
    bench_sim_event_loop(rep);
    bench_model_check_small(rep);
    bench_cluster_commit(rep);
    bench_pipeline_sweep(rep);
    bench_shard_sweep(rep);
    bench_payload_4kb(rep);
    bench_rebalance_sweep(rep);
    let path = std::env::var("BENCH_JSON_OUT").unwrap_or_else(|_| "BENCH.json".into());
    match rep.write_json(&path) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
