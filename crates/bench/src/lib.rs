//! # paxraft-bench
//!
//! The benchmark harness that regenerates every evaluation artifact of
//! the paper (see DESIGN.md's experiment index):
//!
//! - `fig9` — Raft*-PQL vs LL vs Raft vs Raft* (Figures 9a–9d),
//! - `fig10` — Raft*-Mencius vs Raft (Figures 10a–10d),
//! - `fig3_mapping` — the machine-checked Raft*↔MultiPaxos mapping,
//! - `fig4_port_example` — the worked porting example of Section 4,
//! - `fig6_landscape` — the protocol landscape classification,
//! - `ablation_*` — design-choice ablations (batching, lease duration).
//!
//! Runs are scaled down from the paper's 50-second trials (the simulator
//! is deterministic, so long trials only narrow confidence intervals we
//! do not need); each binary prints the same rows/series the paper's
//! figures plot, plus JSON for regeneration diffs.

use paxraft_core::harness::{Cluster, ProtocolKind, RunReport};
use paxraft_core::types::NodeId;
use paxraft_sim::net::Region;
use paxraft_sim::time::SimDuration;
use paxraft_workload::generator::WorkloadConfig;

/// One measured point in a figure's series.
#[derive(Debug, Clone)]
pub struct Point {
    /// Series label (e.g. protocol / configuration name).
    pub series: String,
    /// X-coordinate (clients, read %, conflict % …).
    pub x: f64,
    /// Y-coordinate (ops/s or ms).
    pub y: f64,
}

/// A complete figure: id, axis labels, and measured points.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Paper figure id (e.g. "9c").
    pub id: String,
    /// What x means.
    pub x_label: String,
    /// What y means.
    pub y_label: String,
    /// The measured series.
    pub points: Vec<Point>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, x_label: &str, y_label: &str) -> Self {
        Figure {
            id: id.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            points: Vec::new(),
        }
    }

    /// Adds a point.
    pub fn push(&mut self, series: &str, x: f64, y: f64) {
        self.points.push(Point {
            series: series.to_string(),
            x,
            y,
        });
    }

    /// Renders an aligned text table, one row per point.
    pub fn table(&self) -> String {
        let mut out = format!(
            "── Figure {} ── ({} vs {})\n{:<22} {:>12} {:>14}\n",
            self.id, self.y_label, self.x_label, "series", self.x_label, self.y_label
        );
        for p in &self.points {
            out.push_str(&format!("{:<22} {:>12.2} {:>14.2}\n", p.series, p.x, p.y));
        }
        out
    }

    /// Serializes to JSON (for EXPERIMENTS.md regeneration diffs).
    /// Non-finite measurements (a degenerate run dividing by zero ops)
    /// serialize as `null`, and control characters are escaped, so the
    /// output always parses.
    pub fn json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let mut out = format!(
            "{{\n  \"id\": \"{}\",\n  \"x_label\": \"{}\",\n  \"y_label\": \"{}\",\n  \"points\": [",
            esc(&self.id),
            esc(&self.x_label),
            esc(&self.y_label)
        );
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\n      \"series\": \"{}\",\n      \"x\": {},\n      \"y\": {}\n    }}",
                esc(&p.series),
                num(p.x),
                num(p.y)
            ));
        }
        out.push_str("\n  ]\n}");
        out
    }
}

/// Measurement windows used by the harness binaries. The paper runs 50 s
/// trials with 10 s warm-up/cool-down; simulated runs use shorter windows
/// (deterministic simulation needs no long averaging) scaled to keep
/// hundreds of completions per client group.
#[derive(Debug, Clone, Copy)]
pub struct Windows {
    /// Warm-up (excluded).
    pub warmup: SimDuration,
    /// Measured interval.
    pub measure: SimDuration,
    /// Cool-down (excluded).
    pub cooldown: SimDuration,
}

impl Windows {
    /// Standard windows for figure runs.
    pub fn standard() -> Self {
        Windows {
            warmup: SimDuration::from_secs(3),
            measure: SimDuration::from_secs(8),
            cooldown: SimDuration::from_secs(1),
        }
    }

    /// Abbreviated windows for smoke tests.
    pub fn quick() -> Self {
        Windows {
            warmup: SimDuration::from_secs(1),
            measure: SimDuration::from_secs(3),
            cooldown: SimDuration::from_millis(500),
        }
    }
}

/// Configuration of one measured cluster run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Leader placement (`0` = Oregon … `4` = Seoul).
    pub leader: NodeId,
    /// Closed-loop clients per region.
    pub clients_per_region: usize,
    /// Workload parameters.
    pub workload: WorkloadConfig,
    /// Seed for the deterministic run.
    pub seed: u64,
}

impl RunSpec {
    /// A 5-region spec with the given protocol and defaults.
    pub fn new(protocol: ProtocolKind) -> Self {
        RunSpec {
            protocol,
            leader: NodeId(0),
            clients_per_region: 50,
            workload: WorkloadConfig::default(),
            seed: 42,
        }
    }

    /// Builds and runs the spec, returning the report.
    pub fn run(&self, windows: Windows) -> RunReport {
        let mut cluster = Cluster::builder(self.protocol)
            .replicas(5)
            .regions(Region::ALL.to_vec())
            .leader(self.leader)
            .clients_per_region(self.clients_per_region)
            .workload(self.workload.clone())
            .seed(self.seed)
            .build();
        cluster.elect_leader();
        cluster.run_measurement(windows.warmup, windows.measure, windows.cooldown)
    }
}

/// Sweeps client counts and returns the peak observed throughput
/// (the paper's "peak throughput" methodology: saturate, take the max).
pub fn peak_throughput(spec: &RunSpec, client_counts: &[usize], windows: Windows) -> f64 {
    let mut best: f64 = 0.0;
    for &c in client_counts {
        let mut s = spec.clone();
        s.clients_per_region = c;
        let report = s.run(windows);
        if report.throughput_ops > best {
            best = report.throughput_ops;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_table_renders_points() {
        let mut f = Figure::new("9c", "read %", "ops/s");
        f.push("Raft", 90.0, 41_000.0);
        f.push("Raft*-PQL", 90.0, 66_000.0);
        let t = f.table();
        assert!(t.contains("Figure 9c"));
        assert!(t.contains("Raft*-PQL"));
        let j = f.json();
        assert!(j.contains("\"series\": \"Raft*-PQL\""));
    }

    #[test]
    fn json_handles_non_finite_and_control_chars() {
        let mut f = Figure::new("x", "a\tb", "c\"d");
        f.push("nan\nseries", f64::NAN, f64::INFINITY);
        f.push("ok", 1.0, 2.5);
        let j = f.json();
        assert!(j.contains("\"x\": null"), "NaN serializes as null: {j}");
        assert!(j.contains("\"y\": null"), "inf serializes as null: {j}");
        assert!(j.contains("a\\tb") && j.contains("c\\\"d") && j.contains("nan\\nseries"));
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn quick_raft_run_produces_throughput() {
        let mut spec = RunSpec::new(ProtocolKind::Raft);
        spec.clients_per_region = 10;
        let report = spec.run(Windows::quick());
        assert!(
            report.throughput_ops > 10.0,
            "got {}",
            report.throughput_ops
        );
    }

    #[test]
    fn quick_mencius_run_produces_throughput() {
        let mut spec = RunSpec::new(ProtocolKind::RaftStarMencius);
        spec.clients_per_region = 10;
        spec.workload.read_fraction = 0.0;
        let report = spec.run(Windows::quick());
        assert!(
            report.throughput_ops > 10.0,
            "got {}",
            report.throughput_ops
        );
    }
}
