//! Regenerates Figure 10 (Section 5.2): Raft*-Mencius vs Raft with the
//! leader at the best (Oregon) and worst (Seoul) site, under a 100%-write
//! workload at 0% and 100% conflict.
//!
//! Panels:
//! - `a` — throughput vs clients/region with 8 B requests (CPU-bound).
//! - `b` — throughput vs clients/region with 4 KB requests
//!   (network-bound: the leader NIC saturates first).
//! - `c` — latency (p90, leader vs follower clients) at 50 clients/region
//!   for 8 B.
//! - `d` — same for 4 KB.
//!
//! Usage: `fig10 [--panel a|b|c|d|all] [--quick]`

use paxraft_bench::{Figure, RunSpec, Windows};
use paxraft_core::harness::ProtocolKind;
use paxraft_core::types::NodeId;
use paxraft_workload::generator::WorkloadConfig;

/// The five configurations the paper compares. Node 0 sits in Oregon,
/// node 4 in Seoul.
fn configs() -> Vec<(String, RunSpec)> {
    let mk = |p, leader, conflict: f64| {
        let mut s = RunSpec::new(p);
        s.leader = NodeId(leader);
        s.workload = WorkloadConfig {
            read_fraction: 0.0,
            conflict_rate: conflict,
            value_size: 8,
            ..Default::default()
        };
        s
    };
    vec![
        (
            "Raft*-M-100%".into(),
            mk(ProtocolKind::RaftStarMencius, 0, 1.0),
        ),
        (
            "Raft*-M-0%".into(),
            mk(ProtocolKind::RaftStarMencius, 0, 0.0),
        ),
        ("Raft-Oregon".into(), mk(ProtocolKind::Raft, 0, 0.0)),
        ("Raft*-Oregon".into(), mk(ProtocolKind::RaftStar, 0, 0.0)),
        ("Raft-Seoul".into(), mk(ProtocolKind::Raft, 4, 0.0)),
    ]
}

fn throughput_panel(id: &str, value_size: usize, counts: &[usize], windows: Windows) -> Figure {
    let mut fig = Figure::new(id, "clients per region", "throughput (ops/s)");
    println!("\nFigure {id}: throughput vs clients/region ({value_size} B values)");
    print!("{:<14}", "series");
    for c in counts {
        print!(" {c:>9}");
    }
    println!();
    for (name, base) in configs() {
        print!("{name:<14}");
        for &c in counts {
            let mut spec = base.clone();
            spec.clients_per_region = c;
            spec.workload.value_size = value_size;
            let t = spec.run(windows).throughput_ops;
            print!(" {t:>9.0}");
            fig.push(&name, c as f64, t);
        }
        println!();
    }
    fig
}

fn latency_panel(id: &str, value_size: usize, windows: Windows) -> Figure {
    let mut fig = Figure::new(id, "group", "write latency p90 (ms)");
    println!("\nFigure {id}: latency at 50 clients/region ({value_size} B values)");
    println!(
        "{:<14} {:>24} {:>24}",
        "series", "leader(p50/p90/p99 ms)", "followers(p50/p90/p99)"
    );
    for (name, base) in configs() {
        let mut spec = base.clone();
        spec.clients_per_region = 50;
        spec.workload.value_size = value_size;
        let r = spec.run(windows);
        let fmt = |t: &Option<paxraft_workload::metrics::LatencyTriple>| match t {
            Some(t) => format!("{:.0}/{:.0}/{:.0}", t.p50_ms, t.p90_ms, t.p99_ms),
            None => "-".to_string(),
        };
        println!(
            "{:<14} {:>24} {:>24}",
            name,
            fmt(&r.leader_writes),
            fmt(&r.follower_writes)
        );
        if let Some(t) = r.leader_writes {
            fig.push(&format!("{name}-Leader"), 0.0, t.p90_ms);
        }
        if let Some(t) = r.follower_writes {
            fig.push(&format!("{name}-Followers"), 1.0, t.p90_ms);
        }
    }
    fig
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all")
        .to_string();
    let windows = if quick {
        Windows::quick()
    } else {
        Windows::standard()
    };
    let counts_8b: &[usize] = if quick {
        &[200, 1000, 3000]
    } else {
        &[100, 500, 1000, 2000, 4000, 6000]
    };
    let counts_4k: &[usize] = if quick {
        &[50, 200, 600]
    } else {
        &[25, 50, 100, 200, 400, 800]
    };

    let mut figures = Vec::new();
    if panel == "a" || panel == "all" {
        figures.push(throughput_panel("10a", 8, counts_8b, windows));
    }
    if panel == "b" || panel == "all" {
        figures.push(throughput_panel("10b", 4096, counts_4k, windows));
    }
    if panel == "c" || panel == "all" {
        figures.push(latency_panel("10c", 8, windows));
    }
    if panel == "d" || panel == "all" {
        figures.push(latency_panel("10d", 4096, windows));
    }
    std::fs::create_dir_all("bench_results").ok();
    for f in &figures {
        println!("\n{}", f.table());
        let path = format!("bench_results/fig{}.json", f.id);
        std::fs::write(&path, f.json()).ok();
        println!("wrote {path}");
    }
}
