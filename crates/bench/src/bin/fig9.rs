//! Regenerates Figure 9 (Section 5.1): Raft*-PQL vs Leader-Lease vs Raft
//! vs Raft* on a 5-region geo-replicated cluster.
//!
//! Panels:
//! - `a` — read latency, leader-region vs follower-region clients
//!   (p50/p90/p99; the paper plots p90 bars with p50–p99 error bars).
//! - `b` — write latency, same split.
//! - `c` — peak throughput at 50% / 90% / 99% reads.
//! - `d` — throughput speedup of Raft*-PQL over Raft* as the conflict
//!   rate falls from 50% to 0%.
//!
//! Usage: `fig9 [--panel a|b|c|d|all] [--quick]`

use paxraft_bench::{peak_throughput, Figure, RunSpec, Windows};
use paxraft_core::harness::ProtocolKind;
use paxraft_workload::generator::WorkloadConfig;

const PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::RaftStarPql,
    ProtocolKind::LeaderLease,
    ProtocolKind::Raft,
    ProtocolKind::RaftStar,
];

fn latency_panels(quick: bool) -> (Figure, Figure) {
    let mut fig_a = Figure::new("9a", "group", "read latency p90 (ms)");
    let mut fig_b = Figure::new("9b", "group", "write latency p90 (ms)");
    let windows = if quick {
        Windows::quick()
    } else {
        Windows::standard()
    };
    println!("Figure 9a/9b: 90% reads, 5% conflict, 50 clients/region");
    println!(
        "{:<14} {:>22} {:>22} {:>22} {:>22}",
        "protocol", "read@leader(p50/90/99)", "read@followers", "write@leader", "write@followers"
    );
    for p in PROTOCOLS {
        let mut spec = RunSpec::new(p);
        spec.clients_per_region = 50;
        spec.workload = WorkloadConfig {
            read_fraction: 0.9,
            conflict_rate: 0.05,
            value_size: 8,
            ..Default::default()
        };
        let r = spec.run(windows);
        let fmt = |t: &Option<paxraft_workload::metrics::LatencyTriple>| match t {
            Some(t) => format!("{:.1}/{:.1}/{:.1}", t.p50_ms, t.p90_ms, t.p99_ms),
            None => "-".to_string(),
        };
        println!(
            "{:<14} {:>22} {:>22} {:>22} {:>22}",
            p.name(),
            fmt(&r.leader_reads),
            fmt(&r.follower_reads),
            fmt(&r.leader_writes),
            fmt(&r.follower_writes)
        );
        if let Some(t) = r.leader_reads {
            fig_a.push(&format!("{}-Leader", p.name()), 0.0, t.p90_ms);
        }
        if let Some(t) = r.follower_reads {
            fig_a.push(&format!("{}-Followers", p.name()), 1.0, t.p90_ms);
        }
        if let Some(t) = r.leader_writes {
            fig_b.push(&format!("{}-Leader", p.name()), 0.0, t.p90_ms);
        }
        if let Some(t) = r.follower_writes {
            fig_b.push(&format!("{}-Followers", p.name()), 1.0, t.p90_ms);
        }
    }
    (fig_a, fig_b)
}

fn panel_c(quick: bool) -> Figure {
    let mut fig = Figure::new("9c", "read %", "peak throughput (ops/s)");
    let windows = if quick {
        Windows::quick()
    } else {
        Windows::standard()
    };
    let counts: &[usize] = if quick {
        &[500, 2000]
    } else {
        &[500, 2000, 4000]
    };
    println!("\nFigure 9c: peak throughput vs read percentage");
    println!("{:<14} {:>8} {:>14}", "protocol", "read %", "peak ops/s");
    for read_pct in [50.0, 90.0, 99.0] {
        for p in PROTOCOLS {
            let mut spec = RunSpec::new(p);
            spec.workload = WorkloadConfig {
                read_fraction: read_pct / 100.0,
                conflict_rate: 0.05,
                value_size: 8,
                ..Default::default()
            };
            let peak = peak_throughput(&spec, counts, windows);
            println!("{:<14} {:>8} {:>14.0}", p.name(), read_pct, peak);
            fig.push(p.name(), read_pct, peak);
        }
    }
    fig
}

fn panel_d(quick: bool) -> Figure {
    let mut fig = Figure::new(
        "9d",
        "conflict rate %",
        "speedup of Raft*-PQL over Raft* (%)",
    );
    let windows = if quick {
        Windows::quick()
    } else {
        Windows::standard()
    };
    // Peak-throughput comparison (saturate both systems, take the max).
    let counts: &[usize] = if quick {
        &[1000, 3000]
    } else {
        &[1000, 2000, 4000]
    };
    println!(
        "\nFigure 9d: Raft*-PQL peak-throughput speedup over Raft* vs conflict rate (90% reads)"
    );
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "conflict %", "PQL ops/s", "Raft* ops/s", "speedup"
    );
    let rates: &[f64] = if quick {
        &[0.0, 20.0, 50.0]
    } else {
        &[0.0, 10.0, 20.0, 30.0, 40.0, 50.0]
    };
    for &conflict in rates {
        let workload = WorkloadConfig {
            read_fraction: 0.9,
            conflict_rate: conflict / 100.0,
            value_size: 8,
            ..Default::default()
        };
        let mut pql = RunSpec::new(ProtocolKind::RaftStarPql);
        pql.workload = workload.clone();
        let mut star = RunSpec::new(ProtocolKind::RaftStar);
        star.workload = workload;
        let t_pql = peak_throughput(&pql, counts, windows);
        let t_star = peak_throughput(&star, counts, windows);
        let speedup = (t_pql - t_star) / t_star * 100.0;
        println!(
            "{:>12} {:>14.0} {:>14.0} {:>9.1}%",
            conflict, t_pql, t_star, speedup
        );
        fig.push("Raft*-PQL vs. Raft*", conflict, speedup);
    }
    fig
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all")
        .to_string();

    let mut figures = Vec::new();
    if panel == "a" || panel == "b" || panel == "all" {
        let (a, b) = latency_panels(quick);
        figures.push(a);
        figures.push(b);
    }
    if panel == "c" || panel == "all" {
        figures.push(panel_c(quick));
    }
    if panel == "d" || panel == "all" {
        figures.push(panel_d(quick));
    }
    std::fs::create_dir_all("bench_results").ok();
    for f in &figures {
        println!("\n{}", f.table());
        let path = format!("bench_results/fig{}.json", f.id);
        std::fs::write(&path, f.json()).ok();
        println!("wrote {path}");
    }
}
