//! Regenerates Figure 6: the landscape of Paxos variants, with the
//! mechanical non-mutating verdicts for the implemented case studies.

use paxraft_spec::landscape;

fn main() {
    println!("Figure 6 — Paxos variants and optimizations\n");
    print!("{}", landscape::render());
    println!("\nMechanical Section-4.2 verdicts (check_non_mutating on the real deltas):");
    for (name, ok) in landscape::mechanical_verdicts() {
        println!(
            "  {name}: {}",
            if ok {
                "non-mutating ✓"
            } else {
                "MUTATING ✗"
            }
        );
    }
}
