//! Regenerates the Figure-4 worked example: ports the size-tracking
//! optimization from the key-value store A to the log store B, compares
//! the generated B∆ with the hand-written Figure 4d, and checks both
//! refinements.

use paxraft_spec::check::Limits;
use paxraft_spec::port::{extended_map, port, projection_map};
use paxraft_spec::refine::check_refinement;
use paxraft_spec::specs::kvlog;

fn main() {
    let a = kvlog::kv_store();
    let b = kvlog::log_store();
    let delta = kvlog::size_delta();
    let map = kvlog::port_map();

    println!("Figure 4 — porting the size-tracking optimization\n");
    println!("A  = {} (vars: {:?})", a.name, a.vars);
    println!("B  = {} (vars: {:?})", b.name, b.vars);
    println!("A∆ adds var 'size', modifies Put with [table[k] = empty, size' = size + 1]\n");

    let bd = port(&a, &delta, &b, &map).expect("port succeeds");
    println!("Generated B∆ = {} (vars: {:?})", bd.name, bd.vars);
    let hand = kvlog::log_store_with_size_by_hand();
    let same = bd.vars == hand.vars
        && bd.actions.len() == hand.actions.len()
        && bd
            .actions
            .iter()
            .zip(&hand.actions)
            .all(|(g, h)| g.guard == h.guard && g.updates == h.updates);
    println!("Structurally equal to hand-written Figure 4d: {same}\n");

    let ad = delta.apply_to(&a);
    let ext = extended_map(&a, &b, &delta, &map.state_map);
    let r1 = check_refinement(&bd, &ad, &ext, Limits::default()).expect("B∆ ⇒ A∆");
    println!(
        "B∆ ⇒ A∆ checked: {} states, {} transitions, exhausted={}",
        r1.b_states, r1.b_transitions, r1.exhausted
    );
    let r2 = check_refinement(&bd, &b, &projection_map(&b), Limits::default()).expect("B∆ ⇒ B");
    println!(
        "B∆ ⇒ B  checked: {} states, {} transitions, exhausted={}",
        r2.b_states, r2.b_transitions, r2.exhausted
    );
}
