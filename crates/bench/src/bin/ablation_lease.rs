//! Ablation: PQL lease duration vs the write stall after a leaseholder
//! crash. Section 5.1 fixes the duration at 2 s with 0.5 s renewals;
//! this sweep shows the availability trade-off — a crashed holder gates
//! writes until its last acknowledged grant expires.
//!
//! Usage: `ablation_lease`

use paxraft_bench::Figure;
use paxraft_core::config::LeaseConfig;
use paxraft_core::harness::{Cluster, ProtocolKind};
use paxraft_core::kv::Op;
use paxraft_sim::time::SimDuration;

fn main() {
    let mut fig = Figure::new("ablation-lease", "lease duration (s)", "write stall (ms)");
    println!("Ablation: write stall after a leaseholder crash vs lease duration");
    println!("{:>16} {:>20}", "lease duration", "write stall (ms)");
    for millis in [500u64, 1000, 2000, 4000] {
        let lease = LeaseConfig {
            duration: SimDuration::from_millis(millis),
            renew_every: SimDuration::from_millis(millis / 4),
        };
        let mut cluster = Cluster::builder(ProtocolKind::RaftStarPql)
            .lease_config(lease)
            .seed(71)
            .build();
        cluster.elect_leader();
        cluster
            .submit_and_wait(Op::Put {
                key: 1,
                value: vec![1; 8],
            })
            .expect("baseline write");
        // Crash a follower leaseholder, then time the next write.
        let victim = cluster.replicas()[4];
        cluster
            .sim
            .crash_at(victim, cluster.sim.now() + SimDuration::from_millis(1));
        cluster.sim.run_for(SimDuration::from_millis(5));
        let t0 = cluster.sim.now();
        cluster
            .submit_and_wait(Op::Put {
                key: 2,
                value: vec![2; 8],
            })
            .expect("write completes after the grant expires");
        let stall = cluster.sim.now().since(t0).as_millis_f64();
        println!("{:>14}ms {:>20.0}", millis, stall);
        fig.push("Raft*-PQL", millis as f64 / 1000.0, stall);
    }
    std::fs::create_dir_all("bench_results").ok();
    std::fs::write("bench_results/ablation_lease.json", fig.json()).ok();
    println!("\nThe stall tracks the remaining lifetime of the crashed holder's");
    println!("grant: shorter leases recover writes faster but renew more often —");
    println!("Section 5.1's 2 s / 0.5 s choice sits in the middle.");
}
