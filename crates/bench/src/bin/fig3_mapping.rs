//! Regenerates Figure 3 / Appendix C: the Raft* ↔ MultiPaxos mapping,
//! machine-checked. Prints the variable/function correspondence table
//! and runs the bounded refinement check at several model sizes.

use paxraft_spec::check::Limits;
use paxraft_spec::refine::check_refinement;
use paxraft_spec::specs::{multipaxos, raftstar};

fn main() {
    println!("Figure 3 / Appendix C — mapping between Raft* and MultiPaxos\n");
    println!("{:<28} {:<28}", "Raft*", "MultiPaxos");
    println!("{:-<56}", "");
    for (r, p) in [
        ("currentTerm", "ballot"),
        ("isLeader", "phase1Succeeded"),
        ("entry.index", "instance.id"),
        ("entry.val", "instance.val"),
        ("entry.bal", "instance.bal"),
        ("votes", "votes"),
        ("commitIndex", "(derived chosenSet)"),
        ("RequestVote+BecomeLeader", "Phase1a/1b/Succeed"),
        ("ProposeEntry", "Propose (Phase2a)"),
        ("AppendEntries/RecieveAppend", "AcceptAll (Phase2a+2b)"),
        ("LeaderLearn", "Learn (stutter on cidx)"),
    ] {
        println!("{r:<28} {p:<28}");
    }

    println!("\nBounded refinement checks (every Raft* step maps to a MultiPaxos");
    println!("step or stutter under the mapping):\n");
    let configs = [
        (
            "3 acceptors, 3 ballots, 1 slot",
            multipaxos::MpConfig::default(),
        ),
        (
            "3 acceptors, 2 ballots, 2 slots",
            multipaxos::MpConfig {
                slots: 2,
                max_ballot: 2,
                ..Default::default()
            },
        ),
    ];
    for (label, cfg) in configs {
        let rs = raftstar::spec(&cfg);
        let mp = multipaxos::spec(&cfg);
        let t0 = std::time::Instant::now();
        match check_refinement(
            &rs,
            &mp,
            &raftstar::refinement_map(),
            Limits::states(40_000),
        ) {
            Ok(r) => println!(
                "  [{label}] OK: {} Raft* states, {} transitions ({} stutters), exhausted={}, {:.1}s",
                r.b_states,
                r.b_transitions,
                r.stutters,
                r.exhausted,
                t0.elapsed().as_secs_f64()
            ),
            Err(e) => println!("  [{label}] FAILED:\n{e}"),
        }
    }
}
