//! Ablation: the leader batching window (Section 5 "Implementation"
//! credits etcd's batching with a 2.4× throughput gain; this sweeps our
//! equivalent knob).
//!
//! Usage: `ablation_batching [--quick]`

use paxraft_bench::{Figure, Windows};
use paxraft_core::harness::{Cluster, ProtocolKind};
use paxraft_sim::net::Region;
use paxraft_sim::time::SimDuration;
use paxraft_workload::generator::WorkloadConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let windows = if quick {
        Windows::quick()
    } else {
        Windows::standard()
    };
    let clients = if quick { 1500 } else { 3000 };
    let mut fig = Figure::new(
        "ablation-batching",
        "batch window (ms)",
        "throughput (ops/s)",
    );
    println!(
        "Ablation: Raft throughput vs leader batch window ({clients} clients/region, 100% writes)"
    );
    println!(
        "{:>16} {:>14} {:>18}",
        "batch window", "ops/s", "leader p90 (ms)"
    );
    for batch_us in [0u64, 500, 1000, 2000, 5000, 10000] {
        let mut cluster = Cluster::builder(ProtocolKind::Raft)
            .replicas(5)
            .regions(Region::ALL.to_vec())
            .clients_per_region(clients)
            .workload(WorkloadConfig {
                read_fraction: 0.0,
                ..Default::default()
            })
            .batch_delay(SimDuration::from_micros(batch_us.max(10)))
            .seed(42)
            .build();
        cluster.elect_leader();
        let r = cluster.run_measurement(windows.warmup, windows.measure, windows.cooldown);
        let p90 = r.leader_writes.map(|t| t.p90_ms).unwrap_or(f64::NAN);
        println!(
            "{:>13}us {:>14.0} {:>18.1}",
            batch_us, r.throughput_ops, p90
        );
        fig.push("Raft", batch_us as f64 / 1000.0, r.throughput_ops);
    }
    std::fs::create_dir_all("bench_results").ok();
    std::fs::write("bench_results/ablation_batching.json", fig.json()).ok();
    println!("\n{}", fig.table());
}
