//! YCSB-like workload generation (Section 5, "Workload").
//!
//! The paper's clients are closed-loop: each client issues get/put requests
//! back-to-back. The key space holds 100K records. To create contention,
//! each operation targets a single popular record with a configured
//! probability (the *conflict rate*); otherwise the key space is
//! pre-partitioned evenly among datacenters and a key is drawn uniformly
//! from the client's own partition.

use paxraft_sim::rng::SimRng;
use paxraft_sim::time::SimDuration;

use crate::scenario::{KeyDist, ScenarioConfig};

/// The popular record all conflicting operations touch.
pub const HOT_KEY: u64 = 0;

/// Inclusive-exclusive key range of slice `idx` when keys `1..records`
/// are split contiguously into `parts` slices (key 0 is reserved for
/// the hot record; the last slice absorbs the remainder).
///
/// This is the single arithmetic behind both the per-region
/// [`WorkloadConfig::partition_range`] and the sharding subsystem's
/// per-group key ranges, so clients, replicas and the generator always
/// agree on who owns a key.
pub fn contiguous_split(records: u64, parts: usize, idx: usize) -> (u64, u64) {
    assert!(parts > 0, "at least one slice");
    assert!(idx < parts, "slice out of range");
    let usable = records - 1; // key 0 reserved for the hot record
    let per = usable / parts as u64;
    let start = 1 + idx as u64 * per;
    let end = if idx == parts - 1 {
        records
    } else {
        start + per
    };
    (start, end)
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A `get` request.
    Read,
    /// A `put` request.
    Write,
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpec {
    /// Read or write.
    pub kind: OpKind,
    /// Target record key.
    pub key: u64,
    /// Payload size in bytes for writes (the paper uses 8 B and 4 KB).
    pub value_size: usize,
}

/// Workload parameters matching Section 5.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Fraction of operations that are reads (paper: 0.5, 0.9, 0.99 for
    /// PQL; 0.0 for Mencius).
    pub read_fraction: f64,
    /// Probability an operation targets [`HOT_KEY`] (paper: 0–50%).
    pub conflict_rate: f64,
    /// Number of records the store is initialized with (paper: 100K).
    pub records: u64,
    /// Number of partitions the key space is split into (one per region).
    pub partitions: usize,
    /// Value size in bytes (paper: 8 B and 4 KB).
    pub value_size: usize,
    /// Optional time-varying traffic scenario
    /// ([`crate::scenario::ScenarioConfig`]). `None` (the default)
    /// draws exactly as the stationary paper workload — same RNG
    /// stream, same keys — so existing runs are bit-identical.
    pub scenario: Option<ScenarioConfig>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            read_fraction: 0.9,
            conflict_rate: 0.05,
            records: 100_000,
            partitions: 5,
            value_size: 8,
            scenario: None,
        }
    }
}

impl WorkloadConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return Err(format!(
                "read_fraction {} outside [0,1]",
                self.read_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.conflict_rate) {
            return Err(format!(
                "conflict_rate {} outside [0,1]",
                self.conflict_rate
            ));
        }
        if self.partitions == 0 {
            return Err("partitions must be positive".into());
        }
        if self.records < self.partitions as u64 {
            return Err(format!(
                "records {} fewer than partitions {}",
                self.records, self.partitions
            ));
        }
        if let Some(s) = &self.scenario {
            s.validate()?;
        }
        Ok(())
    }

    /// Inclusive-exclusive key range of partition `p`.
    ///
    /// Key 0 is the hot key; partition ranges start at 1 so that
    /// non-conflicting traffic never touches the popular record.
    pub fn partition_range(&self, p: usize) -> (u64, u64) {
        contiguous_split(self.records, self.partitions, p)
    }

    /// Inclusive-exclusive key range of replica group `g` when this
    /// workload's key space is sharded over `groups` groups — the same
    /// contiguous split the per-region partitioning uses, so a sharded
    /// cluster's router and the generator stay in lockstep.
    pub fn group_range(&self, groups: usize, g: usize) -> (u64, u64) {
        contiguous_split(self.records, groups, g)
    }
}

/// A per-client operation stream.
///
/// Each closed-loop client owns one generator seeded from the run seed and
/// its client id, so streams are independent and reproducible.
#[derive(Debug)]
pub struct Generator {
    config: WorkloadConfig,
    partition: usize,
    rng: SimRng,
}

impl Generator {
    /// Creates a generator for a client living in partition `partition`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`WorkloadConfig::validate`].
    pub fn new(config: WorkloadConfig, partition: usize, rng: SimRng) -> Self {
        config.validate().expect("invalid workload config");
        assert!(partition < config.partitions, "partition out of range");
        Generator {
            config,
            partition,
            rng,
        }
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> OpSpec {
        let kind = if self.rng.gen_bool(self.config.read_fraction) {
            OpKind::Read
        } else {
            OpKind::Write
        };
        let key = if self.rng.gen_bool(self.config.conflict_rate) {
            HOT_KEY
        } else {
            let (lo, hi) = self.config.partition_range(self.partition);
            self.rng.gen_range_inclusive(lo, hi - 1)
        };
        OpSpec {
            kind,
            key,
            value_size: self.config.value_size,
        }
    }

    /// Draws the next operation at virtual time `now_ns`. Without a
    /// scenario this is exactly [`Generator::next_op`] (same RNG
    /// stream); with one, flash crowds, the (possibly drifting) hotspot
    /// and the base key distribution apply in that order.
    pub fn next_op_at(&mut self, now_ns: u64) -> OpSpec {
        let Some(scenario) = self.config.scenario else {
            return self.next_op();
        };
        let kind = if self.rng.gen_bool(self.config.read_fraction) {
            OpKind::Read
        } else {
            OpKind::Write
        };
        let key = self.scenario_key(&scenario, now_ns);
        OpSpec {
            kind,
            key,
            value_size: self.config.value_size,
        }
    }

    /// The load-shaping pause to insert before sending the next
    /// operation. [`SimDuration::ZERO`] without a scenario (or under a
    /// steady load shape), so unscripted clients never arm the timer.
    pub fn pause_at(&self, now_ns: u64) -> SimDuration {
        self.config
            .scenario
            .as_ref()
            .map_or(SimDuration::ZERO, |s| s.pause_at(now_ns))
    }

    fn scenario_key(&mut self, scenario: &ScenarioConfig, now_ns: u64) -> u64 {
        // The paper's conflict-rate hot record stays first so scenario
        // runs remain comparable on that axis.
        if self.rng.gen_bool(self.config.conflict_rate) {
            return HOT_KEY;
        }
        if let Some(f) = &scenario.flash {
            let active =
                now_ns >= f.at.as_nanos() && now_ns < f.at.as_nanos() + f.duration.as_nanos();
            if active && self.rng.gen_bool(f.weight) {
                return self.rng.gen_range_inclusive(f.lo, f.hi - 1);
            }
        }
        if let Some(h) = &scenario.hotspot {
            if self.rng.gen_bool(h.weight) {
                let (lo, hi) = scenario
                    .hotspot_window(now_ns, self.config.records)
                    .expect("hotspot present");
                return self.rng.gen_range_inclusive(lo, hi - 1);
            }
        }
        let (lo, hi) = self.config.partition_range(self.partition);
        match scenario.dist {
            KeyDist::Uniform => self.rng.gen_range_inclusive(lo, hi - 1),
            KeyDist::Zipfian { exponent } => {
                lo + crate::scenario::zipf_rank(&mut self.rng, hi - lo, exponent)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_with(read: f64, conflict: f64, partition: usize) -> Generator {
        let cfg = WorkloadConfig {
            read_fraction: read,
            conflict_rate: conflict,
            ..WorkloadConfig::default()
        };
        Generator::new(cfg, partition, SimRng::new(7))
    }

    #[test]
    fn read_fraction_respected() {
        let mut g = gen_with(0.9, 0.0, 0);
        let reads = (0..10_000)
            .filter(|_| g.next_op().kind == OpKind::Read)
            .count();
        assert!((8_800..9_200).contains(&reads), "got {reads}");
    }

    #[test]
    fn conflict_rate_targets_hot_key() {
        let mut g = gen_with(0.5, 0.3, 2);
        let hot = (0..10_000).filter(|_| g.next_op().key == HOT_KEY).count();
        assert!((2_700..3_300).contains(&hot), "got {hot}");
    }

    #[test]
    fn zero_conflict_never_touches_hot_key() {
        let mut g = gen_with(0.5, 0.0, 1);
        assert!((0..10_000).all(|_| g.next_op().key != HOT_KEY));
    }

    #[test]
    fn keys_stay_in_own_partition() {
        for p in 0..5 {
            let mut g = gen_with(0.5, 0.0, p);
            let (lo, hi) = g.config().partition_range(p);
            for _ in 0..2_000 {
                let k = g.next_op().key;
                assert!(
                    (lo..hi).contains(&k),
                    "key {k} outside [{lo},{hi}) for p{p}"
                );
            }
        }
    }

    #[test]
    fn partitions_cover_keyspace_disjointly() {
        let cfg = WorkloadConfig::default();
        let mut covered = 0u64;
        let mut prev_end = 1;
        for p in 0..cfg.partitions {
            let (lo, hi) = cfg.partition_range(p);
            assert_eq!(lo, prev_end, "partitions contiguous");
            assert!(hi > lo);
            covered += hi - lo;
            prev_end = hi;
        }
        assert_eq!(covered, cfg.records - 1, "all non-hot keys covered");
        assert_eq!(prev_end, cfg.records);
    }

    #[test]
    fn group_ranges_cover_keyspace_for_any_group_count() {
        let cfg = WorkloadConfig::default();
        for groups in [1usize, 2, 4, 8] {
            let mut prev_end = 1;
            for g in 0..groups {
                let (lo, hi) = cfg.group_range(groups, g);
                assert_eq!(lo, prev_end, "{groups} groups: group {g} contiguous");
                prev_end = hi;
            }
            assert_eq!(prev_end, cfg.records, "{groups} groups cover all keys");
        }
        // One group over the whole space degenerates to "everything".
        assert_eq!(cfg.group_range(1, 0), (1, cfg.records));
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let bad = WorkloadConfig {
            read_fraction: 1.5,
            ..WorkloadConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WorkloadConfig {
            conflict_rate: -0.1,
            ..WorkloadConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WorkloadConfig {
            partitions: 0,
            ..WorkloadConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WorkloadConfig {
            records: 2,
            partitions: 5,
            ..WorkloadConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = gen_with(0.9, 0.05, 0);
        let mut b = gen_with(0.9, 0.05, 0);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn next_op_at_without_scenario_matches_next_op_exactly() {
        let mut a = gen_with(0.9, 0.05, 0);
        let mut b = gen_with(0.9, 0.05, 0);
        for i in 0..200u64 {
            assert_eq!(a.next_op(), b.next_op_at(i * 1_000_000), "op {i}");
        }
        assert_eq!(
            a.pause_at(1_000_000),
            paxraft_sim::time::SimDuration::ZERO,
            "no scenario, no pacing timer"
        );
    }

    #[test]
    fn scenario_hotspot_concentrates_and_drifts() {
        use crate::scenario::ScenarioConfig;
        let cfg = WorkloadConfig {
            conflict_rate: 0.0,
            scenario: Some(ScenarioConfig::drifting_hotspot(
                0.8,
                10_000,
                90_000,
                12_000,
                paxraft_sim::time::SimDuration::from_secs(10),
            )),
            ..WorkloadConfig::default()
        };
        let mut g = Generator::new(cfg, 0, SimRng::new(3));
        let hits_in = |g: &mut Generator, now_ns: u64, lo: u64, hi: u64| {
            (0..2_000)
                .filter(|_| (lo..hi).contains(&g.next_op_at(now_ns).key))
                .count()
        };
        // t=0: window centered at 10 000.
        let early = hits_in(&mut g, 0, 4_000, 16_000);
        assert!(early > 1_400, "hotspot weight 0.8 at t=0: {early}");
        // t=5 s: the window has drifted to ~50 000; the old window is
        // back to background-only traffic.
        let moved = hits_in(&mut g, 5_000_000_000, 44_000, 56_000);
        let stale = hits_in(&mut g, 5_000_000_000, 4_000, 16_000);
        assert!(moved > 1_400, "drifted window hot at t=5s: {moved}");
        assert!(stale < 500, "old window cooled off: {stale}");
    }

    #[test]
    fn value_size_passes_through() {
        let cfg = WorkloadConfig {
            value_size: 4096,
            ..WorkloadConfig::default()
        };
        let mut g = Generator::new(cfg, 0, SimRng::new(1));
        assert_eq!(g.next_op().value_size, 4096);
    }
}
