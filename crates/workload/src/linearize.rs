//! Linearizability checking for register histories.
//!
//! Paxos Quorum Lease's claim (Section A.1) is that local reads remain
//! *strongly consistent*: "both read and write are consistent". We validate
//! that claim on simulated runs by recording per-key operation histories
//! (invocation and response times on the virtual clock) and checking each
//! key's history for linearizability with the Wing–Gong search, memoized
//! on (remaining-operation set, register value).
//!
//! The search is worst-case exponential, but protocol histories write
//! distinct values ("unambiguous" histories in Gibbons–Korach terms),
//! which keeps the search effectively linear; a state budget guards
//! against pathological inputs.

use std::collections::HashSet;

/// What an operation did to the register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Wrote the given (unique) value id.
    Write(u64),
    /// Read and observed the given value; `None` means "unset/initial".
    Read(Option<u64>),
}

/// One completed operation in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Issuing client (for diagnostics only).
    pub client: usize,
    /// Key the operation targeted.
    pub key: u64,
    /// What happened.
    pub action: Action,
    /// Virtual time the client invoked the operation (ns).
    pub invoke_ns: u64,
    /// Virtual time the client received the response (ns).
    pub respond_ns: u64,
}

/// Why a history failed the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// No linearization exists; carries the key and a witness description.
    Violation { key: u64, detail: String },
    /// The search exceeded its state budget before reaching a verdict.
    BudgetExhausted { key: u64, states: usize },
    /// An operation's response precedes its invocation.
    MalformedRecord { key: u64, detail: String },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Violation { key, detail } => {
                write!(f, "history for key {key} is not linearizable: {detail}")
            }
            CheckError::BudgetExhausted { key, states } => {
                write!(
                    f,
                    "checker budget exhausted for key {key} after {states} states"
                )
            }
            CheckError::MalformedRecord { key, detail } => {
                write!(f, "malformed record for key {key}: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Checks a single-register history (all records must share one key).
///
/// # Errors
///
/// Returns [`CheckError::Violation`] when no linearization exists,
/// [`CheckError::BudgetExhausted`] when the search exceeds `max_states`,
/// and [`CheckError::MalformedRecord`] for inconsistent timestamps.
pub fn check_register(history: &[OpRecord], max_states: usize) -> Result<(), CheckError> {
    if history.is_empty() {
        return Ok(());
    }
    let key = history[0].key;
    for op in history {
        if op.respond_ns < op.invoke_ns {
            return Err(CheckError::MalformedRecord {
                key,
                detail: format!("respond {} < invoke {}", op.respond_ns, op.invoke_ns),
            });
        }
        debug_assert_eq!(op.key, key, "check_register requires a single key");
    }

    let n = history.len();
    let words = n.div_ceil(64);
    // remaining[i] bit set => op i not yet linearized.
    let mut remaining = vec![u64::MAX; words];
    if n % 64 != 0 {
        remaining[words - 1] = (1u64 << (n % 64)) - 1;
    }

    let mut visited: HashSet<(Vec<u64>, Option<u64>)> = HashSet::new();
    let mut states = 0usize;

    // Depth-first search over (remaining set, register value).
    // Each stack frame remembers which candidate index to try next.
    struct Frame {
        remaining: Vec<u64>,
        value: Option<u64>,
        candidates: Vec<usize>,
        next: usize,
    }

    fn candidates_of(history: &[OpRecord], remaining: &[u64]) -> Vec<usize> {
        let mut min_respond = u64::MAX;
        for (i, op) in history.iter().enumerate() {
            if remaining[i / 64] >> (i % 64) & 1 == 1 {
                min_respond = min_respond.min(op.respond_ns);
            }
        }
        history
            .iter()
            .enumerate()
            .filter(|(i, op)| remaining[i / 64] >> (i % 64) & 1 == 1 && op.invoke_ns <= min_respond)
            .map(|(i, _)| i)
            .collect()
    }

    let root_candidates = candidates_of(history, &remaining);
    let mut stack = vec![Frame {
        remaining,
        value: None,
        candidates: root_candidates,
        next: 0,
    }];

    while let Some(frame) = stack.last_mut() {
        if frame.remaining.iter().all(|&w| w == 0) {
            return Ok(());
        }
        let mut advanced = false;
        while frame.next < frame.candidates.len() {
            let i = frame.candidates[frame.next];
            frame.next += 1;
            let op = &history[i];
            let new_value = match op.action {
                Action::Write(v) => Some(v),
                Action::Read(r) => {
                    if r != frame.value {
                        continue; // read can't linearize here
                    }
                    frame.value
                }
            };
            let mut new_remaining = frame.remaining.clone();
            new_remaining[i / 64] &= !(1u64 << (i % 64));
            if !visited.insert((new_remaining.clone(), new_value)) {
                continue;
            }
            states += 1;
            if states > max_states {
                return Err(CheckError::BudgetExhausted { key, states });
            }
            let cands = candidates_of(history, &new_remaining);
            stack.push(Frame {
                remaining: new_remaining,
                value: new_value,
                candidates: cands,
                next: 0,
            });
            advanced = true;
            break;
        }
        if !advanced {
            stack.pop();
            if stack.is_empty() {
                break;
            }
        }
    }

    // Build a small diagnostic: the earliest-invoked pending read is the
    // usual culprit.
    let witness = history
        .iter()
        .min_by_key(|op| op.invoke_ns)
        .map(|op| {
            format!(
                "{:?} by client {} at [{}, {}]",
                op.action, op.client, op.invoke_ns, op.respond_ns
            )
        })
        .unwrap_or_default();
    Err(CheckError::Violation {
        key,
        detail: format!("no valid linearization; first op: {witness}"),
    })
}

/// Groups a mixed-key history by key and checks each register separately.
///
/// # Errors
///
/// Propagates the first per-key error found (keys are checked in
/// ascending order for determinism).
pub fn check_history(history: &[OpRecord], max_states: usize) -> Result<(), CheckError> {
    let mut keys: Vec<u64> = history.iter().map(|op| op.key).collect();
    keys.sort_unstable();
    keys.dedup();
    for key in keys {
        let per_key: Vec<OpRecord> = history.iter().filter(|op| op.key == key).copied().collect();
        check_register(&per_key, max_states)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(client: usize, v: u64, invoke: u64, respond: u64) -> OpRecord {
        OpRecord {
            client,
            key: 1,
            action: Action::Write(v),
            invoke_ns: invoke,
            respond_ns: respond,
        }
    }
    fn r(client: usize, v: Option<u64>, invoke: u64, respond: u64) -> OpRecord {
        OpRecord {
            client,
            key: 1,
            action: Action::Read(v),
            invoke_ns: invoke,
            respond_ns: respond,
        }
    }

    const BUDGET: usize = 1 << 20;

    #[test]
    fn empty_history_ok() {
        assert_eq!(check_register(&[], BUDGET), Ok(()));
    }

    #[test]
    fn sequential_history_ok() {
        let h = vec![
            w(0, 10, 0, 5),
            r(1, Some(10), 10, 15),
            w(0, 20, 20, 25),
            r(1, Some(20), 30, 35),
        ];
        assert_eq!(check_register(&h, BUDGET), Ok(()));
    }

    #[test]
    fn read_of_unset_register_ok() {
        let h = vec![r(0, None, 0, 5), w(1, 1, 10, 15)];
        assert_eq!(check_register(&h, BUDGET), Ok(()));
    }

    #[test]
    fn stale_read_after_write_violates() {
        // Write(10) completes at 5; a read starting at 10 returns None.
        let h = vec![w(0, 10, 0, 5), r(1, None, 10, 15)];
        assert!(matches!(
            check_register(&h, BUDGET),
            Err(CheckError::Violation { .. })
        ));
    }

    #[test]
    fn concurrent_read_may_see_old_or_new() {
        // Read overlaps the write; both outcomes linearizable.
        let h_old = vec![w(0, 10, 0, 20), r(1, None, 5, 15)];
        let h_new = vec![w(0, 10, 0, 20), r(1, Some(10), 5, 15)];
        assert_eq!(check_register(&h_old, BUDGET), Ok(()));
        assert_eq!(check_register(&h_new, BUDGET), Ok(()));
    }

    #[test]
    fn read_your_writes_violation() {
        // Client writes 1 then 2 sequentially; later read sees 1 again
        // after another read saw 2: non-regression of reads is violated.
        let h = vec![
            w(0, 1, 0, 5),
            w(0, 2, 10, 15),
            r(1, Some(2), 20, 25),
            r(1, Some(1), 30, 35),
        ];
        assert!(matches!(
            check_register(&h, BUDGET),
            Err(CheckError::Violation { .. })
        ));
    }

    #[test]
    fn concurrent_writes_allow_either_order() {
        let h = vec![w(0, 1, 0, 20), w(1, 2, 0, 20), r(2, Some(1), 30, 35)];
        assert_eq!(check_register(&h, BUDGET), Ok(()));
        let h2 = vec![w(0, 1, 0, 20), w(1, 2, 0, 20), r(2, Some(2), 30, 35)];
        assert_eq!(check_register(&h2, BUDGET), Ok(()));
    }

    #[test]
    fn value_cannot_resurrect_across_sequential_writes() {
        // w1 < w2 sequentially; read after w2 must not see w1 if another
        // read already saw w2... simpler: read strictly after both sees w1
        // while w2 finished after w1 -> still OK only if w2 linearized
        // before w1; but w1 responded before w2 invoked, so order is fixed.
        let h = vec![w(0, 1, 0, 5), w(1, 2, 10, 15), r(2, Some(1), 20, 25)];
        assert!(matches!(
            check_register(&h, BUDGET),
            Err(CheckError::Violation { .. })
        ));
    }

    #[test]
    fn malformed_record_detected() {
        let h = vec![OpRecord {
            client: 0,
            key: 1,
            action: Action::Write(1),
            invoke_ns: 10,
            respond_ns: 5,
        }];
        assert!(matches!(
            check_register(&h, BUDGET),
            Err(CheckError::MalformedRecord { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_reported() {
        // Many fully-concurrent writes create a factorial search space; with
        // a tiny budget the checker gives up rather than spinning.
        let h: Vec<OpRecord> = (0..12).map(|i| w(i, i as u64 + 1, 0, 1000)).collect();
        let mut h = h;
        h.push(r(99, Some(13), 2000, 2001)); // unsatisfiable read forces full search
        match check_register(&h, 64) {
            Err(CheckError::BudgetExhausted { .. }) => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn check_history_splits_keys() {
        let mut h = vec![w(0, 1, 0, 5), r(1, Some(1), 10, 15)];
        h.push(OpRecord {
            client: 2,
            key: 2,
            action: Action::Read(None),
            invoke_ns: 0,
            respond_ns: 5,
        });
        assert_eq!(check_history(&h, BUDGET), Ok(()));
    }

    #[test]
    fn long_sequential_history_fast() {
        let mut h = Vec::new();
        let mut t = 0;
        for i in 0..500u64 {
            h.push(w(0, i + 1, t, t + 1));
            t += 2;
            h.push(r(1, Some(i + 1), t, t + 1));
            t += 2;
        }
        assert_eq!(check_register(&h, BUDGET), Ok(()));
    }
}
